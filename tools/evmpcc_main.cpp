// evmpcc — the EventMP source-to-source translator CLI.
//
// Usage:
//   evmpcc <input.cpp> [-o <output.cpp>] [--no-include] [--runtime <expr>]
//          [--annotate-sites] [--analyze] [--analyze-only] [--Werror]
//          [--no-ignores] [--diag-format=text|json|sarif]
//   evmpcc --analyze-only <a.cpp> <b.cpp> ...      (multi-TU linked lint)
//   evmpcc --analyze-project <dir> [options]       (lint every TU under dir)
//
// Reads C++ sources annotated with the paper's extended target directives
// (`//#omp target virtual(...) ...` or `#pragma omp target virtual(...)`)
// and emits the transformed source that calls the EventMP runtime — the
// same job the Pyjama compiler performs for Java (paper §IV.A). With
// --analyze the directive lint (DESIGN.md §8/§10/§12) runs first: E1-E5
// blocking-misuse, data-race, and use-after-scope errors, W1-W4
// tag/capture/race/escape warnings — interprocedurally, through the
// per-TU call graph and bottom-up function summaries. Multiple inputs
// (or --analyze-project) are linked as one program: name_as(tag)
// producers in one TU pair with wait(tag) consumers in another.
// `// evmp-lint-ignore(<rule>[,<rule>...])` comments suppress findings
// per site; --no-ignores audits past them.
//
// Exit codes (CI gates depend on these staying distinct):
//   0  success
//   1  cannot open input / cannot write output
//   2  usage error (unknown flag, missing flag argument, no input,
//      multiple inputs without --analyze-only)
//   3  the input does not translate (malformed directive or block)
//   4  analysis found errors (or warnings, under --Werror)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostic.hpp"
#include "compilerlib/translator.hpp"

#ifndef EVMPCC_VERSION
#define EVMPCC_VERSION "0.0.0"
#endif

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " <input.cpp> [options]\n"
         "       " << argv0
      << " --analyze-only <input.cpp> [<input.cpp> ...]\n"
         "       " << argv0
      << " --analyze-project <dir> [options]\n"
         "  -o <file>            write translated source to <file> (default: "
         "stdout)\n"
         "  --no-include         do not prepend the evmp runtime include\n"
         "  --runtime <expr>     runtime accessor expression (default: "
         "::evmp::rt())\n"
         "  --annotate-sites     wrap generated dispatches/waits in\n"
         "                       ScopedDispatchSite so EVMP_VERIFY and\n"
         "                       EVMP_RACECHECK reports carry call chains\n"
         "  --analyze            lint directives before translating\n"
         "  --analyze-only       lint and stop (no translation output);\n"
         "                       several inputs are linked as one program\n"
         "  --analyze-project <dir>  lint every .cpp/.cc/.cxx under <dir>\n"
         "                       as one linked program (implies "
         "--analyze-only)\n"
         "  --Werror             analysis warnings fail the run (exit 4)\n"
         "  --no-ignores         disregard evmp-lint-ignore suppression "
         "comments\n"
         "  --diag-format=<fmt>  diagnostics as 'text' (stderr), 'json' or "
         "'sarif' (stdout)\n"
         "  --version            print version and exit\n"
         "  -h, --help           this message\n"
         "\n"
         "directive notes:\n"
         "  num_threads(adaptive)  let the runtime's WidthGovernor size the\n"
         "                         region's team from live load instead of\n"
         "                         evaluating an expression (elastic teams)\n";
}

int usage_error(const char* argv0, const std::string& message) {
  std::cerr << "evmpcc: " << message << "\n";
  print_usage(std::cerr, argv0);
  return 2;
}

/// All translation units under `dir` (sorted for deterministic output).
std::vector<std::string> collect_project_sources(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> sources;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
      sources.push_back(it->path().generic_string());
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string output;
  std::string project_dir;
  std::string diag_format = "text";
  bool analyze = false;
  bool analyze_only = false;
  bool werror = false;
  evmp::analysis::AnalyzeOptions analyze_options;
  evmp::compiler::TranslateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        return usage_error(argv[0], "option '-o' requires an argument");
      }
      output = argv[++i];
    } else if (arg == "--no-include") {
      options.add_include = false;
    } else if (arg == "--runtime") {
      if (i + 1 >= argc) {
        return usage_error(argv[0], "option '--runtime' requires an argument");
      }
      options.runtime_expr = argv[++i];
    } else if (arg == "--annotate-sites") {
      options.annotate_sites = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--analyze-only") {
      analyze = true;
      analyze_only = true;
    } else if (arg == "--analyze-project") {
      if (i + 1 >= argc) {
        return usage_error(argv[0],
                           "option '--analyze-project' requires an argument");
      }
      project_dir = argv[++i];
      analyze = true;
      analyze_only = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--no-ignores") {
      analyze_options.honor_ignores = false;
    } else if (arg == "--diag-format" || arg.rfind("--diag-format=", 0) == 0) {
      if (arg == "--diag-format") {
        if (i + 1 >= argc) {
          return usage_error(argv[0],
                             "option '--diag-format' requires an argument");
        }
        diag_format = argv[++i];
      } else {
        diag_format = arg.substr(std::string("--diag-format=").size());
      }
      if (diag_format != "text" && diag_format != "json" &&
          diag_format != "sarif") {
        return usage_error(argv[0], "unknown --diag-format '" + diag_format +
                                        "' (expected text, json, or sarif)");
      }
    } else if (arg == "--version") {
      std::cout << "evmpcc (EventMP) " << EVMPCC_VERSION << "\n";
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error(argv[0], "unknown option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (!project_dir.empty()) {
    if (!inputs.empty()) {
      return usage_error(argv[0],
                         "--analyze-project and explicit inputs are "
                         "mutually exclusive");
    }
    inputs = collect_project_sources(project_dir);
    if (inputs.empty()) {
      std::cerr << "evmpcc: no .cpp/.cc/.cxx sources under " << project_dir
                << "\n";
      return 1;
    }
  }
  if (inputs.empty()) return usage_error(argv[0], "no input file");
  if (inputs.size() > 1 && !analyze_only) {
    return usage_error(argv[0],
                       "multiple input files require --analyze-only "
                       "(translation takes one input)");
  }

  std::vector<evmp::analysis::SourceUnit> units;
  units.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "evmpcc: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    units.push_back({path, buffer.str()});
  }

  if (analyze) {
    std::vector<evmp::analysis::Diagnostic> diags;
    if (units.size() == 1) {
      // Single-TU: preserves the historical output exactly (no file
      // prefixes inside the diagnostics; the render call supplies one).
      diags = evmp::analysis::analyze_source(units.front().text,
                                             analyze_options);
    } else {
      diags = evmp::analysis::analyze_program(units, analyze_options);
    }
    const std::string& render_file = units.front().file;
    if (diag_format == "json") {
      std::cout << evmp::analysis::render_json(diags, render_file);
    } else if (diag_format == "sarif") {
      std::cout << evmp::analysis::render_sarif(diags, render_file);
    } else {
      std::cerr << evmp::analysis::render_text(diags, render_file);
    }
    const evmp::analysis::DiagnosticCounts counts =
        evmp::analysis::count(diags);
    if (counts.errors > 0 || (werror && counts.warnings > 0)) {
      std::cerr << "evmpcc: analysis failed: " << counts.errors
                << " error(s), " << counts.warnings << " warning(s)"
                << (werror ? " [--Werror]" : "") << "\n";
      return 4;
    }
    if (analyze_only) return 0;
  }

  try {
    const auto result =
        evmp::compiler::translate_source(units.front().text, options);
    if (output.empty()) {
      std::cout << result.output;
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "evmpcc: cannot write " << output << "\n";
        return 1;
      }
      out << result.output;
    }
    std::cerr << "evmpcc: rewrote " << result.directives_rewritten
              << " directive(s)\n";
  } catch (const evmp::compiler::TranslateError& e) {
    std::cerr << "evmpcc: " << units.front().file << ":" << e.what() << "\n";
    return 3;
  }
  return 0;
}

// evmpcc — the EventMP source-to-source translator CLI.
//
// Usage:
//   evmpcc <input.cpp> [-o <output.cpp>] [--no-include] [--runtime <expr>]
//
// Reads a C++ source annotated with the paper's extended target directives
// (`//#omp target virtual(...) ...` or `#pragma omp target virtual(...)`)
// and emits the transformed source that calls the EventMP runtime — the
// same job the Pyjama compiler performs for Java (paper §IV.A).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compilerlib/translator.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <input.cpp> [-o <output.cpp>] [--no-include] [--runtime "
               "<expr>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  evmp::compiler::TranslateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--no-include") {
      options.add_include = false;
    } else if (arg == "--runtime" && i + 1 < argc) {
      options.runtime_expr = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  std::ifstream in(input);
  if (!in) {
    std::cerr << "evmpcc: cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const auto result =
        evmp::compiler::translate_source(buffer.str(), options);
    if (output.empty()) {
      std::cout << result.output;
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "evmpcc: cannot write " << output << "\n";
        return 1;
      }
      out << result.output;
    }
    std::cerr << "evmpcc: rewrote " << result.directives_rewritten
              << " directive(s)\n";
  } catch (const evmp::compiler::TranslateError& e) {
    std::cerr << "evmpcc: " << input << ":" << e.what() << "\n";
    return 1;
  }
  return 0;
}

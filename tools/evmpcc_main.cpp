// evmpcc — the EventMP source-to-source translator CLI.
//
// Usage:
//   evmpcc <input.cpp> [-o <output.cpp>] [--no-include] [--runtime <expr>]
//          [--analyze] [--analyze-only] [--Werror] [--no-ignores]
//          [--diag-format=text|json]
//
// Reads a C++ source annotated with the paper's extended target directives
// (`//#omp target virtual(...) ...` or `#pragma omp target virtual(...)`)
// and emits the transformed source that calls the EventMP runtime — the
// same job the Pyjama compiler performs for Java (paper §IV.A). With
// --analyze the directive lint (DESIGN.md §8/§10) runs first: E1-E4
// blocking-misuse and data-race errors, W1-W3 tag/capture/race warnings.
// `// evmp-lint-ignore(<rule>)` comments suppress findings per site;
// --no-ignores audits past them.
//
// Exit codes (CI gates depend on these staying distinct):
//   0  success
//   1  cannot open input / cannot write output
//   2  usage error (unknown flag, missing flag argument, no input)
//   3  the input does not translate (malformed directive or block)
//   4  analysis found errors (or warnings, under --Werror)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostic.hpp"
#include "compilerlib/translator.hpp"

#ifndef EVMPCC_VERSION
#define EVMPCC_VERSION "0.0.0"
#endif

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " <input.cpp> [options]\n"
         "  -o <file>            write translated source to <file> (default: "
         "stdout)\n"
         "  --no-include         do not prepend the evmp runtime include\n"
         "  --runtime <expr>     runtime accessor expression (default: "
         "::evmp::rt())\n"
         "  --analyze            lint directives before translating\n"
         "  --analyze-only       lint and stop (no translation output)\n"
         "  --Werror             analysis warnings fail the run (exit 4)\n"
         "  --no-ignores         disregard evmp-lint-ignore suppression "
         "comments\n"
         "  --diag-format=<fmt>  diagnostics as 'text' (stderr) or 'json' "
         "(stdout)\n"
         "  --version            print version and exit\n"
         "  -h, --help           this message\n"
         "\n"
         "directive notes:\n"
         "  num_threads(adaptive)  let the runtime's WidthGovernor size the\n"
         "                         region's team from live load instead of\n"
         "                         evaluating an expression (elastic teams)\n";
}

int usage_error(const char* argv0, const std::string& message) {
  std::cerr << "evmpcc: " << message << "\n";
  print_usage(std::cerr, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string diag_format = "text";
  bool analyze = false;
  bool analyze_only = false;
  bool werror = false;
  evmp::analysis::AnalyzeOptions analyze_options;
  evmp::compiler::TranslateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        return usage_error(argv[0], "option '-o' requires an argument");
      }
      output = argv[++i];
    } else if (arg == "--no-include") {
      options.add_include = false;
    } else if (arg == "--runtime") {
      if (i + 1 >= argc) {
        return usage_error(argv[0], "option '--runtime' requires an argument");
      }
      options.runtime_expr = argv[++i];
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--analyze-only") {
      analyze = true;
      analyze_only = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--no-ignores") {
      analyze_options.honor_ignores = false;
    } else if (arg == "--diag-format" || arg.rfind("--diag-format=", 0) == 0) {
      if (arg == "--diag-format") {
        if (i + 1 >= argc) {
          return usage_error(argv[0],
                             "option '--diag-format' requires an argument");
        }
        diag_format = argv[++i];
      } else {
        diag_format = arg.substr(std::string("--diag-format=").size());
      }
      if (diag_format != "text" && diag_format != "json") {
        return usage_error(argv[0], "unknown --diag-format '" + diag_format +
                                        "' (expected text or json)");
      }
    } else if (arg == "--version") {
      std::cout << "evmpcc (EventMP) " << EVMPCC_VERSION << "\n";
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error(argv[0], "unknown option '" + arg + "'");
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage_error(argv[0], "multiple input files given");
    }
  }
  if (input.empty()) return usage_error(argv[0], "no input file");

  std::ifstream in(input);
  if (!in) {
    std::cerr << "evmpcc: cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  if (analyze) {
    const std::vector<evmp::analysis::Diagnostic> diags =
        evmp::analysis::analyze_source(source, analyze_options);
    if (diag_format == "json") {
      std::cout << evmp::analysis::render_json(diags, input);
    } else {
      std::cerr << evmp::analysis::render_text(diags, input);
    }
    const evmp::analysis::DiagnosticCounts counts =
        evmp::analysis::count(diags);
    if (counts.errors > 0 || (werror && counts.warnings > 0)) {
      std::cerr << "evmpcc: analysis failed: " << counts.errors
                << " error(s), " << counts.warnings << " warning(s)"
                << (werror ? " [--Werror]" : "") << "\n";
      return 4;
    }
    if (analyze_only) return 0;
  }

  try {
    const auto result = evmp::compiler::translate_source(source, options);
    if (output.empty()) {
      std::cout << result.output;
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "evmpcc: cannot write " << output << "\n";
        return 1;
      }
      out << result.output;
    }
    std::cerr << "evmpcc: rewrote " << result.directives_rewritten
              << " directive(s)\n";
  } catch (const evmp::compiler::TranslateError& e) {
    std::cerr << "evmpcc: " << input << ":" << e.what() << "\n";
    return 3;
  }
  return 0;
}

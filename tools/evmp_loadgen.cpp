// evmp_loadgen — open-loop socket-level load generator for the net::Server
// front end (EXPERIMENTS.md §NET1).
//
// The server (reactor + admission control + worker virtual target) and the
// client (net::LoadClient: one epoll loop driving every connection) live in
// one process over loopback TCP, so a run needs ~2 fds per connection.
//
//   evmp_loadgen --conns=10000 --rate=2000 --duration=5         one round
//   evmp_loadgen --sweep=500,1000,2000,4000 --csv=out.csv       load curve
//   evmp_loadgen --check=bench/budgets.json                     CI gate:
//       exits nonzero when p99 exceeds net_smoke_p99_ms, the shed fraction
//       exceeds net_smoke_shed_rate, any transport error occurs, or the
//       round fails to drain.
//   evmp_loadgen --alloc-check=bench/budgets.json               CI gate:
//       steady-state process-wide heap allocations per request against
//       allocs_per_request_steady (skipped under sanitizers, whose
//       allocators the interposer would fight).
//
// Split mode, for connection counts near the per-process fd limit (each
// side then holds ~1 fd per connection instead of 2):
//
//   evmp_loadgen --serve-for=30 --port=18329 ...    server only
//   evmp_loadgen --connect=18329 ...                client only

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "core/runtime.hpp"
#include "httpsim/encryption_service.hpp"
#include "net/load_client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

// The interposer must not replace a sanitizer's allocator.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EVMP_LOADGEN_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EVMP_LOADGEN_SANITIZED 1
#endif
#endif
#ifndef EVMP_LOADGEN_SANITIZED
#define EVMP_LOADGEN_SANITIZED 0
#endif

#if !EVMP_LOADGEN_SANITIZED
// GCC pairs the replaced operator new (malloc-backed) with calls to the
// replaced sized/aligned deletes and flags them as mismatched even though
// every path ends in free(); silence that known false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// --- allocation-counting operator new/delete interposer -------------------
// Unlike bench_overhead's submitter-thread counter, this one is
// process-wide (relaxed atomic): a request's allocations are split across
// the reactor thread, the worker target, and the client loop, and the
// budget covers the whole path.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t process_allocs() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // !EVMP_LOADGEN_SANITIZED

namespace {

using evmp::common::CliArgs;
using evmp::common::LatencyQuantiles;
using evmp::net::LoadClient;
using evmp::net::RoundResult;

double read_budget(const std::string& path, const char* key,
                   double fallback) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "loadgen: cannot open %s; using budget %.3f\n",
                 path.c_str(), fallback);
    return fallback;
  }
  std::string text(1 << 16, '\0');
  const std::size_t got = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  text.resize(got);
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fallback;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

void print_round(const RoundResult& r) {
  const LatencyQuantiles q = r.latency.quantiles();
  std::printf(
      "rate=%8.0f/s sent=%8llu ok=%8llu shed=%7llu err=%5llu "
      "p50=%8.3fms p90=%8.3fms p99=%8.3fms p999=%8.3fms max=%8.3fms%s\n",
      r.offered_hz, static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors), q.p50 / 1e6, q.p90 / 1e6,
      q.p99 / 1e6, q.p999 / 1e6, q.max / 1e6,
      r.drained ? "" : "  [drain timeout]");
}

void write_csv_header(std::FILE* f) {
  std::fprintf(f,
               "offered_hz,sent,ok,shed,errors,wall_s,p50_ns,p90_ns,p99_ns,"
               "p999_ns,max_ns,mean_ns\n");
}

void write_csv_row(std::FILE* f, const RoundResult& r) {
  const LatencyQuantiles q = r.latency.quantiles();
  std::fprintf(
      f, "%.0f,%llu,%llu,%llu,%llu,%.3f,%llu,%llu,%llu,%llu,%llu,%.0f\n",
      r.offered_hz, static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors), r.wall_seconds,
      static_cast<unsigned long long>(q.p50),
      static_cast<unsigned long long>(q.p90),
      static_cast<unsigned long long>(q.p99),
      static_cast<unsigned long long>(q.p999),
      static_cast<unsigned long long>(q.max), q.mean_ns);
}

/// Steady-state allocations per request: one warmup round primes every
/// pool and buffer, then a measured round divides the process-wide
/// allocation delta by the requests completed.
int run_alloc_check(LoadClient& client, const std::string& budget_path,
                    double rate, double duration) {
#if EVMP_LOADGEN_SANITIZED
  (void)client;
  (void)budget_path;
  (void)rate;
  (void)duration;
  std::printf("alloc-check skipped under sanitizers\n");
  return 0;
#else
  const double budget =
      read_budget(budget_path, "allocs_per_request_steady", 64.0);
  const RoundResult warm =
      client.run_round(rate, duration, /*poisson=*/false, 10.0);
  if (warm.ok == 0) {
    std::fprintf(stderr, "alloc-check FAILED: warmup completed 0 requests\n");
    return 1;
  }
  const std::uint64_t before = process_allocs();
  const RoundResult measured =
      client.run_round(rate, duration, /*poisson=*/false, 10.0);
  const std::uint64_t delta = process_allocs() - before;
  if (measured.ok == 0) {
    std::fprintf(stderr, "alloc-check FAILED: measured 0 ok requests\n");
    return 1;
  }
  const double per_request =
      static_cast<double>(delta) / static_cast<double>(measured.ok);
  std::printf(
      "alloc-check: %llu process-wide allocations over %llu requests "
      "=> %.2f allocs/request (budget %.2f)\n",
      static_cast<unsigned long long>(delta),
      static_cast<unsigned long long>(measured.ok), per_request, budget);
  if (per_request > budget) {
    std::fprintf(stderr,
                 "alloc-check FAILED: %.2f allocs/request exceeds budget "
                 "allocs_per_request_steady=%.2f\n",
                 per_request, budget);
    return 1;
  }
  std::printf("alloc-check passed\n");
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto conns = static_cast<std::size_t>(args.get_long("conns", 1000));
  const double rate = args.get_double("rate", 2000.0);
  const double duration = args.get_double("duration", 5.0);
  const auto payload = static_cast<std::size_t>(args.get_long("payload", 64));
  const auto threads = static_cast<int>(args.get_long("threads", 2));
  const bool poisson = args.get_bool("poisson", true);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  const double drain_s = args.get_double("drain-timeout", 10.0);
  const std::string mode = args.get("mode", "echo");
  const std::string check = args.get("check", "");
  const std::string alloc_check = args.get("alloc-check", "");
  const std::string csv = args.get("csv", "");
  const std::vector<long> sweep = args.get_long_list("sweep", {});
  const double serve_for = args.get_double("serve-for", 0.0);
  const auto connect_port =
      static_cast<std::uint16_t>(args.get_long("connect", 0));
  const bool client_only = connect_port != 0;
  const bool server_only = serve_for > 0.0;

  // In the default in-process mode, client + server together hold two fds
  // per connection; a split side holds one.
  const std::size_t fds_needed =
      (client_only || server_only ? conns : 2 * conns) + 512;
  if (!evmp::net::raise_fd_limit(fds_needed)) {
    std::fprintf(stderr,
                 "loadgen: could not raise RLIMIT_NOFILE for %zu conns\n",
                 conns);
  }

  evmp::Runtime rt;
  evmp::http::EncryptionService service({.payload_bytes = payload});
  std::unique_ptr<evmp::net::Server> server;
  if (!client_only) {
    rt.create_worker("worker", threads);
    evmp::net::Server::Config cfg;
    cfg.port = static_cast<std::uint16_t>(args.get_long("port", 0));
    cfg.mode = mode == "handler" ? evmp::net::Server::Mode::kHandler
                                 : evmp::net::Server::Mode::kEcho;
    if (cfg.mode == evmp::net::Server::Mode::kHandler) {
      cfg.handler = service.handler();
    }
    cfg.high_watermark =
        static_cast<std::size_t>(args.get_long("high-watermark", 4096));
    cfg.low_watermark = static_cast<std::size_t>(
        args.get_long("low-watermark", cfg.high_watermark * 3 / 4));
    cfg.max_target_depth =
        static_cast<std::size_t>(args.get_long("max-depth", 0));
    cfg.max_connections =
        static_cast<std::size_t>(args.get_long("max-conns", 0));
    cfg.idle_timeout = evmp::common::Nanos{
        args.get_long("idle-timeout-ms", 0) * 1'000'000};
    server = std::make_unique<evmp::net::Server>(rt, cfg);
    server->start();
  }

  if (server_only) {
    std::printf("loadgen: serving on port %u for %.1fs (%s mode)\n",
                server->port(), serve_for, mode.c_str());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(serve_for));
    server->stop();
    const evmp::net::ServerStats s = server->stats();
    std::printf(
        "server: accepted=%llu recv=%llu admitted=%llu shed=%llu "
        "sent=%llu dropped=%llu proto_err=%llu idle_closed=%llu "
        "shed_entries=%llu gate_closes=%llu\n",
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.requests_received),
        static_cast<unsigned long long>(s.requests_admitted),
        static_cast<unsigned long long>(s.requests_shed),
        static_cast<unsigned long long>(s.responses_sent),
        static_cast<unsigned long long>(s.responses_dropped),
        static_cast<unsigned long long>(s.protocol_errors),
        static_cast<unsigned long long>(s.idle_closed),
        static_cast<unsigned long long>(s.shed_entries),
        static_cast<unsigned long long>(s.accept_gate_closes));
    return 0;
  }

  LoadClient client(client_only ? connect_port : server->port(), conns,
                    payload, seed);
  const std::size_t up = client.connect_all();
  std::printf("loadgen: %zu/%zu connections established (%s mode)\n", up,
              conns, mode.c_str());
  if (up == 0) {
    std::fprintf(stderr, "loadgen: no connections; aborting\n");
    return 2;
  }

  int status = 0;
  if (!alloc_check.empty()) {
    status = run_alloc_check(client, alloc_check, rate, duration);
  } else {
    std::FILE* csv_file = nullptr;
    if (!csv.empty()) {
      csv_file = std::fopen(csv.c_str(), "w");
      if (csv_file == nullptr) {
        std::fprintf(stderr, "loadgen: cannot write %s\n", csv.c_str());
        return 2;
      }
      write_csv_header(csv_file);
    }

    std::vector<double> rates;
    if (sweep.empty()) {
      rates.push_back(rate);
    } else {
      for (const long r : sweep) rates.push_back(static_cast<double>(r));
    }

    for (const double r : rates) {
      const RoundResult result =
          client.run_round(r, duration, poisson, drain_s);
      print_round(result);
      if (csv_file != nullptr) write_csv_row(csv_file, result);

      if (!check.empty()) {
        const LatencyQuantiles q = result.latency.quantiles();
        const double p99_budget_ms =
            read_budget(check, "net_smoke_p99_ms", 50.0);
        const double shed_budget =
            read_budget(check, "net_smoke_shed_rate", 0.01);
        const double p99_ms = q.p99 / 1e6;
        const double shed_rate =
            result.sent == 0 ? 0.0
                             : static_cast<double>(result.shed) /
                                   static_cast<double>(result.sent);
        if (p99_ms > p99_budget_ms) {
          std::fprintf(stderr,
                       "loadgen CHECK FAILED: p99 %.3fms exceeds budget "
                       "net_smoke_p99_ms=%.3fms\n",
                       p99_ms, p99_budget_ms);
          status = 1;
        }
        if (shed_rate > shed_budget) {
          std::fprintf(stderr,
                       "loadgen CHECK FAILED: shed rate %.4f exceeds budget "
                       "net_smoke_shed_rate=%.4f\n",
                       shed_rate, shed_budget);
          status = 1;
        }
        if (result.errors != 0) {
          std::fprintf(stderr,
                       "loadgen CHECK FAILED: %llu transport errors\n",
                       static_cast<unsigned long long>(result.errors));
          status = 1;
        }
        if (!result.drained) {
          std::fprintf(stderr, "loadgen CHECK FAILED: drain timeout\n");
          status = 1;
        }
        if (status == 0) std::printf("loadgen check passed\n");
      }
    }
    if (csv_file != nullptr) std::fclose(csv_file);
  }

  if (server == nullptr) return status;  // client side of a split run
  server->stop();
  const evmp::net::ServerStats s = server->stats();
  std::printf(
      "server: accepted=%llu recv=%llu admitted=%llu shed=%llu sent=%llu "
      "dropped=%llu proto_err=%llu idle_closed=%llu shed_entries=%llu "
      "gate_closes=%llu\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.requests_received),
      static_cast<unsigned long long>(s.requests_admitted),
      static_cast<unsigned long long>(s.requests_shed),
      static_cast<unsigned long long>(s.responses_sent),
      static_cast<unsigned long long>(s.responses_dropped),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(s.idle_closed),
      static_cast<unsigned long long>(s.shed_entries),
      static_cast<unsigned long long>(s.accept_gate_closes));
  return status;
}

// Unit tests for the EventLoop (EDT), its re-entrant pump, timers,
// instrumentation, and the ResponseProbe / OpenLoopDriver load machinery.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "event/event_loop.hpp"
#include "event/load.hpp"
#include "executor/thread_pool_executor.hpp"

namespace evmp::event {
namespace {

TEST(EventLoop, DispatchesPostedEvents) {
  EventLoop loop;
  loop.start();
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    loop.post([&] { count.fetch_add(1); });
  }
  loop.wait_until_idle();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(loop.dispatched(), 10u);
}

TEST(EventLoop, PostBatchDispatchesInSubmissionOrder) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  std::vector<exec::Task> batch;
  for (int i = 0; i < 16; ++i) {
    batch.emplace_back([&order, i] { order.push_back(i); });
  }
  loop.post_batch(batch);
  loop.wait_until_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(loop.dispatched(), 16u);
  EXPECT_EQ(loop.batch_posts(), 1u);
}

TEST(EventLoop, PostBatchToStoppedLoopIsDropped) {
  EventLoop loop;
  loop.start();
  loop.stop();
  std::atomic<bool> ran{false};
  std::vector<exec::Task> batch;
  batch.emplace_back([&] { ran.store(true); });
  loop.post_batch(batch);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(ran.load());
}

TEST(EventLoop, FifoDispatchOrder) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    loop.post([&order, i] { order.push_back(i); });
  }
  loop.wait_until_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, IsDispatchThread) {
  EventLoop loop;
  loop.start();
  EXPECT_FALSE(loop.is_dispatch_thread());
  std::atomic<bool> on_edt{false};
  loop.invoke_and_wait([&] { on_edt.store(loop.is_dispatch_thread()); });
  EXPECT_TRUE(on_edt.load());
}

TEST(EventLoop, InvokeAndWaitBlocksUntilRun) {
  EventLoop loop;
  loop.start();
  int value = 0;
  loop.invoke_and_wait([&] { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(EventLoop, InvokeAndWaitFromEdtRunsInline) {
  EventLoop loop;
  loop.start();
  int depth_value = 0;
  loop.invoke_and_wait([&] {
    // Would deadlock if it enqueued; must run inline.
    loop.invoke_and_wait([&] { depth_value = 7; });
  });
  EXPECT_EQ(depth_value, 7);
}

TEST(EventLoop, PostDelayedFiresAfterDelay) {
  EventLoop loop;
  loop.start();
  common::CountdownLatch latch(1);
  const auto posted = common::now();
  common::TimePoint fired;
  loop.post_delayed(
      [&] {
        fired = common::now();
        latch.count_down();
      },
      common::Millis{20});
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_GE(common::elapsed_ns(posted, fired), 18'000'000);
}

TEST(EventLoop, DelayedEventsOrderByDeadline) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  common::CountdownLatch latch(3);
  auto push = [&](int v) {
    order.push_back(v);
    latch.count_down();
  };
  loop.post_delayed([&] { push(3); }, common::Millis{40});
  loop.post_delayed([&] { push(1); }, common::Millis{5});
  loop.post_delayed([&] { push(2); }, common::Millis{20});
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, PumpOneDispatchesNestedEvent) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> nested_ran{false};
  std::atomic<bool> order_ok{false};
  common::CountdownLatch latch(1);
  loop.post([&] {
    loop.post([&] { nested_ran.store(true); });
    // Re-entrant dispatch from inside a handler: the modified AWT queue.
    while (!nested_ran.load()) {
      ASSERT_TRUE(loop.pump_one());
    }
    order_ok.store(true);
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_TRUE(order_ok.load());
  EXPECT_GE(loop.max_nesting(), 2);
}

TEST(EventLoop, PumpOneFromForeignThreadRefuses) {
  EventLoop loop;
  loop.start();
  loop.post([] {});
  EXPECT_FALSE(loop.pump_one());
  EXPECT_FALSE(loop.try_run_one());
  loop.wait_until_idle();
}

TEST(EventLoop, PumpOneReturnsFalseWhenEmpty) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> pumped{true};
  loop.invoke_and_wait([&] { pumped.store(loop.pump_one()); });
  EXPECT_FALSE(pumped.load());
}

TEST(EventLoop, StopDiscardsPendingEvents) {
  EventLoop loop;
  loop.start();
  common::ManualResetEvent release;
  common::CountdownLatch started(1);
  std::atomic<int> ran{0};
  loop.post([&] {
    started.count_down();
    release.wait();
  });
  ASSERT_TRUE(started.wait_for(std::chrono::seconds{5}));
  loop.post([&] { ran.fetch_add(1); });
  loop.stop();
  release.set();
  // Give the loop a moment to exit.
  while (loop.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(EventLoop, PostAfterStopIsDropped) {
  EventLoop loop;
  loop.start();
  loop.stop();
  while (loop.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  loop.post([] { FAIL() << "must not run"; });
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
}

TEST(EventLoop, BusyTimeAccumulates) {
  EventLoop loop;
  loop.start();
  loop.invoke_and_wait([] { common::precise_sleep(common::Millis{15}); });
  loop.wait_until_idle();
  EXPECT_GE(loop.busy_time().count(), 14'000'000);
}

TEST(EventLoop, DispatchDelayRecorded) {
  EventLoop loop;
  loop.start();
  // Jam the EDT so the next event queues for a while.
  loop.post([] { common::precise_sleep(common::Millis{20}); });
  loop.post([] {});
  loop.wait_until_idle();
  EXPECT_EQ(loop.dispatch_delay().total_count(), 2u);
  EXPECT_GE(loop.dispatch_delay().percentile(1.0), 10'000'000u);
}

TEST(EventLoop, ResetStatsClears) {
  EventLoop loop;
  loop.start();
  loop.invoke_and_wait([] {});
  loop.reset_stats();
  EXPECT_EQ(loop.dispatched(), 0u);
  EXPECT_EQ(loop.dispatch_delay().total_count(), 0u);
  EXPECT_EQ(loop.busy_time().count(), 0);
}

TEST(EventLoop, HandlerExceptionDoesNotKillLoop) {
  EventLoop loop;
  loop.start();
  auto prev = exec::unhandled_exception_hook();
  exec::set_unhandled_exception_hook(
      [](std::string_view, std::exception_ptr) {});
  loop.post([] { throw std::runtime_error("handler bug"); });
  std::atomic<bool> survived{false};
  loop.invoke_and_wait([&] { survived.store(true); });
  exec::set_unhandled_exception_hook(prev);
  EXPECT_TRUE(survived.load());
}

TEST(EventLoop, RunOnCallerThread) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  loop.post([&] {
    ran.store(true);
    loop.stop();
  });
  loop.run();  // returns after stop()
  EXPECT_TRUE(ran.load());
}

TEST(EventLoop, PostDelayedAfterStopIsDropped) {
  EventLoop loop;
  loop.start();
  loop.stop();
  while (loop.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  loop.post_delayed([] { FAIL() << "must not run"; }, common::Millis{1});
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
}

TEST(EventLoop, PumpOnePromotesDueTimers) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> timer_ran{false};
  common::CountdownLatch done(1);
  loop.post([&] {
    loop.post_delayed([&] { timer_ran.store(true); }, common::Millis{5});
    // Busy handler pumping: the due timer must surface through pump_one.
    const auto deadline = common::now() + common::Millis{500};
    while (!timer_ran.load() && common::now() < deadline) {
      if (!loop.pump_one()) {
        common::precise_sleep(common::Millis{1});
      }
    }
    done.count_down();
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{5}));
  EXPECT_TRUE(timer_ran.load());
}

TEST(EventLoop, TimersInterleaveWithImmediateEvents) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  common::CountdownLatch done(3);
  auto push = [&](int v) {
    order.push_back(v);
    done.count_down();
  };
  loop.post_delayed([&] { push(3); }, common::Millis{30});
  loop.post([&] { push(1); });
  loop.post([&] { push(2); });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{5}));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ResponseProbe, MeasuresIdleLoopQuickly) {
  EventLoop loop;
  loop.start();
  ResponseProbe probe(loop, common::Millis{5});
  probe.start();
  common::precise_sleep(common::Millis{60});
  probe.stop();
  loop.wait_until_idle();
  EXPECT_GE(probe.latencies().total_count(), 5u);
  // An idle loop dispatches probes in well under 5ms.
  EXPECT_LT(probe.latencies().percentile(0.5), 5'000'000u);
}

TEST(OpenLoopDriver, AllRequestsComplete) {
  EventLoop loop;
  loop.start();
  OpenLoopDriver::Options opt;
  opt.count = 20;
  opt.rate_hz = 500.0;
  auto result = OpenLoopDriver::run(
      loop, opt,
      [](std::size_t, const CompletionToken& token) { token.complete(); });
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.fired, 20u);
  EXPECT_EQ(result.completed, 20u);
  EXPECT_EQ(result.response_ms.count(), 20u);
}

TEST(OpenLoopDriver, AsynchronousCompletionIsMeasured) {
  EventLoop loop;
  loop.start();
  exec::ThreadPoolExecutor pool("w", 2);
  OpenLoopDriver::Options opt;
  opt.count = 10;
  opt.rate_hz = 1000.0;
  auto result = OpenLoopDriver::run(
      loop, opt, [&](std::size_t, const CompletionToken& token) {
        pool.post([token] {
          common::precise_sleep(common::Millis{5});
          token.complete();
        });
      });
  EXPECT_TRUE(result.all_completed);
  // Response time includes the asynchronous 5ms tail.
  EXPECT_GE(result.response_ms.percentile(0.0), 4.0);
}

TEST(OpenLoopDriver, CompletionTokenIsIdempotent) {
  EventLoop loop;
  loop.start();
  OpenLoopDriver::Options opt;
  opt.count = 5;
  opt.rate_hz = 1000.0;
  auto result = OpenLoopDriver::run(
      loop, opt, [](std::size_t, const CompletionToken& token) {
        token.complete();
        token.complete();  // second call ignored
      });
  EXPECT_EQ(result.completed, 5u);
}

TEST(OpenLoopDriver, PoissonArrivalsStillCountEverything) {
  EventLoop loop;
  loop.start();
  OpenLoopDriver::Options opt;
  opt.count = 30;
  opt.rate_hz = 2000.0;
  opt.poisson = true;
  auto result = OpenLoopDriver::run(
      loop, opt,
      [](std::size_t, const CompletionToken& token) { token.complete(); });
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.completed, 30u);
}

}  // namespace
}  // namespace evmp::event

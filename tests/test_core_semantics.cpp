// Semantic property tests for the programming model itself:
//
//  * sequential equivalence — "adding directives does not influence the
//    original correctness of the sequential execution": a directive-laden
//    program must compute the same observable result with the runtime
//    enabled and disabled;
//  * data-context sharing — virtual targets share the host memory, so [&]
//    captures behave like default(shared);
//  * continuation ordering — code after an await block runs after it;
//  * the directive-style macros.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "core/directive.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"
#include "event/gui.hpp"
#include "kernels/crypt.hpp"

namespace evmp {
namespace {

/// The Figure 6 program shape, parameterised by a Runtime. Returns the
/// "downloaded image" checksum that ends up displayed plus the log of
/// status messages, which together are the observable behaviour.
struct Fig6Result {
  std::uint64_t displayed = 0;
  std::vector<std::string> log;
  bool operator==(const Fig6Result&) const = default;
};

Fig6Result run_fig6_program(Runtime& rt, event::EventLoop& edt) {
  Fig6Result result;
  std::mutex log_mu;
  auto log = [&](const std::string& s) {
    std::scoped_lock lk(log_mu);
    result.log.push_back(s);
  };
  common::CountdownLatch finished(1);

  edt.post([&] {
    log("Started EDT handling");
    const int hscode = 7;  // Info -> hash code
    // //#omp target virtual(worker) await
    rt.target("worker").await([&] {
      // downloadAndCompute(hscode): network download + format conversion
      std::uint64_t buf = 0;
      for (int i = 0; i < 1000; ++i) {
        buf = buf * 31 + static_cast<std::uint64_t>(hscode + i);
      }
      const std::uint64_t img = buf ^ 0xabcdefull;
      // //#omp target virtual(edt) (default wait: display must precede
      // the "Finished!" message)
      rt.target("edt").run([&] {
        result.displayed = img;
        log("displayImg");
      });
    });
    // //#omp target virtual(edt) — we are on the EDT: runs inline
    rt.target("edt").run([&] { log("Finished!"); });
    finished.count_down();
  });
  finished.wait();
  edt.wait_until_idle();
  return result;
}

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("worker", 2);
  }
  void TearDown() override { rt_.clear(); }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
};

TEST_F(SemanticsTest, SequentialEquivalenceOfFigure6) {
  const Fig6Result parallel_run = run_fig6_program(rt_, edt_);
  rt_.set_enabled(false);
  const Fig6Result sequential_run = run_fig6_program(rt_, edt_);
  rt_.set_enabled(true);
  EXPECT_EQ(parallel_run, sequential_run);
  EXPECT_NE(parallel_run.displayed, 0u);
  ASSERT_EQ(parallel_run.log.size(), 3u);
  EXPECT_EQ(parallel_run.log[0], "Started EDT handling");
  EXPECT_EQ(parallel_run.log[1], "displayImg");
  EXPECT_EQ(parallel_run.log[2], "Finished!");
}

TEST_F(SemanticsTest, DataContextSharing) {
  // §III-B: "All the operations inside a target block share the intuitive
  // data context as if the target directive does not exist."
  int shared_counter = 0;
  std::string shared_text;
  rt_.target("worker").run([&] {
    shared_counter = 41;
    shared_text = "from worker";
  });
  shared_counter += 1;
  EXPECT_EQ(shared_counter, 42);
  EXPECT_EQ(shared_text, "from worker");
}

TEST_F(SemanticsTest, FirstprivateByValueCapture) {
  int x = 10;
  common::CountdownLatch done(1);
  std::atomic<int> observed{0};
  // Capturing by value == firstprivate(x): the block sees the value at
  // directive entry, not later mutations.
  rt_.target("worker").nowait([x, &observed, &done] {
    common::precise_sleep(common::Millis{5});
    observed.store(x);
    done.count_down();
  });
  x = 99;
  done.wait();
  EXPECT_EQ(observed.load(), 10);
}

TEST_F(SemanticsTest, AwaitContinuationRunsAfterBlock) {
  // "The end of a target block is intuitively followed by operations which
  // depend on it" — await's continuation must observe the block's effects.
  std::vector<int> order;
  rt_.target("worker").await([&] {
    common::precise_sleep(common::Millis{10});
    order.push_back(1);
  });
  order.push_back(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_F(SemanticsTest, AwaitContinuationStaysOnEncounteringThread) {
  std::thread::id before;
  std::thread::id after;
  common::CountdownLatch done(1);
  edt_.post([&] {
    before = std::this_thread::get_id();
    rt_.target("worker").await([] { common::precise_sleep(common::Millis{5}); });
    after = std::this_thread::get_id();
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(before, after);
}

TEST_F(SemanticsTest, NowaitBroadcastDoesNotBlock) {
  // §III-C: nowait "is useful for broadcasting interim updates".
  common::ManualResetEvent release;
  const common::Stopwatch sw;
  std::vector<exec::TaskHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(
        rt_.target("worker").nowait([&release] { release.wait(); }));
  }
  EXPECT_LT(sw.elapsed_ms(), 50.0);
  release.set();
  // Join before `release` leaves scope: queued blocks reference it.
  for (auto& h : handles) h.wait();
}

TEST_F(SemanticsTest, GuiConfinementHoldsThroughDirectives) {
  event::Gui gui(edt_, event::ConfinementPolicy::kThrow);
  auto& label = gui.add_label("status");
  common::CountdownLatch done(1);
  // Worker block must hop to the edt target for the GUI update; doing so
  // keeps the confinement checker silent.
  rt_.target("worker").nowait([&] {
    rt_.target("edt").nowait([&] {
      label.set_text("updated safely");
      done.count_down();
    });
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(gui.violations(), 0u);
  EXPECT_EQ(label.updates(), 1u);
}

TEST_F(SemanticsTest, MixedModesCompose) {
  std::atomic<int> sum{0};
  rt_.target("worker").name_as("a", [&] { sum.fetch_add(1); });
  rt_.target("worker").name_as("b", [&] { sum.fetch_add(10); });
  rt_.target("worker").name_as("a", [&] { sum.fetch_add(100); });
  rt_.wait_tag("a");
  const int after_a = sum.load();
  EXPECT_EQ(after_a % 10, 1);
  EXPECT_GE(after_a, 101);
  rt_.wait_tag("b");
  EXPECT_EQ(sum.load(), 111);
}

// --- macro spellings against the global runtime ---------------------------

class MacroTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edt_.start();
    rt().register_edt("edt", edt_);
    rt().create_worker("worker", 2);
  }
  void TearDown() override {
    rt().unregister("worker");
    rt().unregister("edt");
  }
  event::EventLoop edt_{"edt"};
};

TEST_F(MacroTest, TargetMacroBlocks) {
  int value = 0;
  EVMP_TARGET("worker") { value = 5; };
  EXPECT_EQ(value, 5);
}

TEST_F(MacroTest, NowaitAndAwaitMacros) {
  std::atomic<int> steps{0};
  auto handle = EVMP_TARGET_NOWAIT("worker") { steps.fetch_add(1); };
  handle.wait();
  EVMP_TARGET_AWAIT("worker") { steps.fetch_add(1); };
  EXPECT_EQ(steps.load(), 2);
}

TEST_F(MacroTest, NameAsAndWaitMacros) {
  std::atomic<int> done{0};
  EVMP_TARGET_NAME_AS("worker", "dl") { done.fetch_add(1); };
  EVMP_TARGET_NAME_AS("worker", "dl") { done.fetch_add(1); };
  EVMP_WAIT("dl");
  EXPECT_EQ(done.load(), 2);
}

TEST_F(MacroTest, FreeFunctionHelpers) {
  std::atomic<bool> ran{false};
  target("worker").run([&] { ran.store(true); });
  EXPECT_TRUE(ran.load());
  target("worker").name_as("t", [] {});
  wait_tag("t");
}

}  // namespace
}  // namespace evmp

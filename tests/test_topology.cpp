// Tests for common::Topology: sysfs fixture parsing (including partial and
// missing trees degrading to the flat fallback), distance tiers, victim
// ordering (near-before-far, deterministic per seed) and the executor's
// topology-ordered stealing against a fake two-node machine.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/topology.hpp"
#include "executor/work_stealing_executor.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace evmp::common {
namespace {

namespace fs = std::filesystem;

// --- parse_cpulist ---------------------------------------------------------

TEST(ParseCpulist, RangesAndSingles) {
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist("1-1"), (std::vector<int>{1}));
}

TEST(ParseCpulist, SortsAndDeduplicates) {
  EXPECT_EQ(parse_cpulist("3,1,2-3"), (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpulist, MalformedYieldsParsedPrefix) {
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("x").empty());
  EXPECT_EQ(parse_cpulist("0-2,junk"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_cpulist("4-"), (std::vector<int>{4}));
}

// --- sysfs fixtures --------------------------------------------------------

/// Builds synthetic /sys/devices/system/cpu trees under a fresh temp dir.
class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("evmp_topo_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& rel, const std::string& text) const {
    const fs::path full = root_ / rel;
    fs::create_directories(full.parent_path());
    std::ofstream out(full);
    out << text << "\n";
  }
  void mkdir(const fs::path& rel) const {
    fs::create_directories(root_ / rel);
  }

  /// The canonical fake machine: 8 CPUs, SMT pairs (0,1)(2,3)(4,5)(6,7),
  /// one LLC per 4-CPU node, nodes {0-3} and {4-7}.
  void write_two_node_machine() const {
    write("possible", "0-7");
    for (int id = 0; id < 8; ++id) {
      const std::string cpu = "cpu" + std::to_string(id);
      const int pair = id - (id % 2);
      write(cpu + "/topology/thread_siblings_list",
            std::to_string(pair) + "-" + std::to_string(pair + 1));
      write(cpu + "/cache/index0/level", "1");
      write(cpu + "/cache/index0/shared_cpu_list", std::to_string(id));
      write(cpu + "/cache/index3/level", "3");
      write(cpu + "/cache/index3/shared_cpu_list", id < 4 ? "0-3" : "4-7");
      mkdir(cpu + "/node" + std::to_string(id < 4 ? 0 : 1));
    }
  }

  [[nodiscard]] std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST_F(SysfsFixture, FullTreeParses) {
  write_two_node_machine();
  const Topology topo = Topology::from_sysfs(root());
  EXPECT_TRUE(topo.discovered());
  EXPECT_EQ(topo.num_cpus(), 8);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.distance(0, 0), Topology::Distance::kSelf);
  EXPECT_EQ(topo.distance(0, 1), Topology::Distance::kSmt);
  EXPECT_EQ(topo.distance(0, 2), Topology::Distance::kLlc);
  EXPECT_EQ(topo.distance(0, 4), Topology::Distance::kRemote);
  EXPECT_EQ(topo.distance(4, 6), Topology::Distance::kLlc);
}

TEST_F(SysfsFixture, BareCpuListDegradesToFlat) {
  // A cpu list with no topology attributes carries no distance info.
  write("possible", "0-3");
  const Topology topo = Topology::from_sysfs(root());
  EXPECT_FALSE(topo.discovered());
  EXPECT_EQ(topo.num_cpus(), 4);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.distance(0, 3), Topology::Distance::kLlc);
}

TEST_F(SysfsFixture, MissingRootDegradesToFlatFallback) {
  const Topology topo =
      Topology::from_sysfs(root() + "/does_not_exist", /*fallback_cpus=*/3);
  EXPECT_FALSE(topo.discovered());
  EXPECT_EQ(topo.num_cpus(), 3);
  EXPECT_EQ(topo.distance(1, 2), Topology::Distance::kLlc);
}

TEST_F(SysfsFixture, PartialAttributesDegradeIndependently) {
  // Only cpus 0-1 expose SMT siblings; nobody exposes caches or nodes.
  write("possible", "0-3");
  write("cpu0/topology/thread_siblings_list", "0-1");
  write("cpu1/topology/thread_siblings_list", "0-1");
  const Topology topo = Topology::from_sysfs(root());
  EXPECT_TRUE(topo.discovered());
  EXPECT_EQ(topo.num_cpus(), 4);
  EXPECT_EQ(topo.distance(0, 1), Topology::Distance::kSmt);
  // Unknown caches are assumed private; same (default) node => kNode.
  EXPECT_EQ(topo.distance(2, 3), Topology::Distance::kNode);
}

TEST_F(SysfsFixture, CpuDirsScannedWhenNoPossibleFile) {
  for (int id = 0; id < 2; ++id) {
    const std::string cpu = "cpu" + std::to_string(id);
    write(cpu + "/topology/thread_siblings_list", "0-1");
  }
  const Topology topo = Topology::from_sysfs(root());
  EXPECT_TRUE(topo.discovered());
  EXPECT_EQ(topo.num_cpus(), 2);
  EXPECT_EQ(topo.distance(0, 1), Topology::Distance::kSmt);
}

TEST_F(SysfsFixture, SparseIdsKeepSysfsIdForPinning) {
  write("possible", "0,2");
  write("cpu0/topology/thread_siblings_list", "0");
  write("cpu2/topology/thread_siblings_list", "2");
  const Topology topo = Topology::from_sysfs(root());
  ASSERT_EQ(topo.num_cpus(), 2);
  EXPECT_EQ(topo.cpu(0).id, 0);
  EXPECT_EQ(topo.cpu(1).id, 2);  // dense index 1, sysfs id 2
}

// --- flat / from_cpus models ----------------------------------------------

TEST(Topology, FlatIsUniform) {
  const Topology topo = Topology::flat(4);
  EXPECT_EQ(topo.num_cpus(), 4);
  EXPECT_FALSE(topo.discovered());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(topo.distance(a, b), a == b ? Topology::Distance::kSelf
                                            : Topology::Distance::kLlc);
    }
  }
}

TEST(Topology, InstanceIsUsable) {
  const Topology& topo = Topology::instance();
  EXPECT_GE(topo.num_cpus(), 1);
  EXPECT_EQ(&topo, &Topology::instance());
}

/// 2 nodes x 2 CPUs, one LLC per node, no SMT.
Topology fake_two_node() {
  return Topology::from_cpus({
      {0, 0, 0, 0},
      {1, 1, 0, 0},
      {2, 2, 2, 1},
      {3, 3, 2, 1},
  });
}

TEST(Topology, FromCpusCanonicalisesGroups) {
  // Arbitrary group labels: CPUs 0/1 share label 7, CPUs 2/3 label 9.
  const Topology topo = Topology::from_cpus({
      {0, 5, 7, 0},
      {1, 6, 7, 0},
      {2, 8, 9, 1},
      {3, 8, 9, 1},
  });
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.distance(0, 1), Topology::Distance::kLlc);
  EXPECT_EQ(topo.distance(2, 3), Topology::Distance::kSmt);
  EXPECT_EQ(topo.distance(0, 2), Topology::Distance::kRemote);
}

// --- victim ordering -------------------------------------------------------

TEST(VictimOrder, NearBeforeFar) {
  const Topology topo = fake_two_node();
  const auto vo = topo.victim_order(/*self=*/0, /*worker_count=*/4);
  ASSERT_EQ(vo.order.size(), 3u);
  EXPECT_EQ(vo.near_count, 1u);
  EXPECT_EQ(vo.order[0], 1);  // the LLC peer probes first
  EXPECT_EQ((std::set<int>(vo.order.begin() + 1, vo.order.end())),
            (std::set<int>{2, 3}));
}

TEST(VictimOrder, SmtTierPrecedesLlcTier) {
  // 4 CPUs, SMT pairs (0,1)(2,3), all one LLC/node.
  const Topology topo = Topology::from_cpus({
      {0, 0, 0, 0},
      {1, 0, 0, 0},
      {2, 2, 0, 0},
      {3, 2, 0, 0},
  });
  const auto vo = topo.victim_order(0, 4);
  ASSERT_EQ(vo.order.size(), 3u);
  EXPECT_EQ(vo.order[0], 1);  // SMT sibling first
  EXPECT_EQ(vo.near_count, 3u);  // everything shares the LLC
}

TEST(VictimOrder, FlatDegradesToUniform) {
  const Topology topo = Topology::flat(4);
  const auto vo = topo.victim_order(2, 4);
  ASSERT_EQ(vo.order.size(), 3u);
  // One uniform tier: every peer is "near" and the order is a shuffle.
  EXPECT_EQ(vo.near_count, 3u);
  EXPECT_EQ((std::set<int>(vo.order.begin(), vo.order.end())),
            (std::set<int>{0, 1, 3}));
}

TEST(VictimOrder, DeterministicPerSeedAndWorker) {
  const Topology topo = Topology::flat(8);
  const auto a = topo.victim_order(3, 8, 42);
  const auto b = topo.victim_order(3, 8, 42);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.near_count, b.near_count);
}

TEST(VictimOrder, FoldedWorkersRankNearest) {
  // More workers than CPUs: worker 2 shares CPU 0 with worker 0.
  const Topology topo = Topology::flat(2);
  const auto vo = topo.victim_order(0, 4);
  ASSERT_EQ(vo.order.size(), 3u);
  EXPECT_EQ(vo.order[0], 2);  // same-CPU worker probes before LLC peers
}

TEST(VictimOrder, SingleWorkerHasNoVictims) {
  const Topology topo = Topology::flat(4);
  const auto vo = topo.victim_order(0, 1);
  EXPECT_TRUE(vo.order.empty());
  EXPECT_EQ(vo.near_count, 0u);
}

TEST(Topology, PinCurrentThreadIsAdvisory) {
  // Out-of-range is always refused; a real pin must land on the CPU.
  EXPECT_FALSE(Topology::pin_current_thread(-1));
  std::thread probe([] {
    const bool pinned = Topology::pin_current_thread(0);
#if defined(__linux__)
    if (pinned) {
      EXPECT_EQ(sched_getcpu(), 0);
    }
#else
    EXPECT_FALSE(pinned);
#endif
  });
  probe.join();
}

}  // namespace
}  // namespace evmp::common

namespace evmp::exec {
namespace {

using evmp::common::Topology;

Topology fake_two_node() {
  return Topology::from_cpus({
      {0, 0, 0, 0},
      {1, 1, 0, 0},
      {2, 2, 2, 1},
      {3, 3, 2, 1},
  });
}

TEST(TopologyStealing, VictimOrdersAreLocalityAware) {
  WorkStealingExecutor pool("topo-order", 4, fake_two_node(), /*pin=*/false);
  // Worker 0 (cpu 0): near = worker 1 (LLC peer), far = workers 2 and 3.
  EXPECT_EQ(pool.near_victims_of(0), 1u);
  const auto order0 = pool.victim_order_for(0);
  ASSERT_EQ(order0.size(), 3u);
  EXPECT_EQ(order0[0], 1);
  // Worker 3 (cpu 3): near = worker 2.
  EXPECT_EQ(pool.near_victims_of(3), 1u);
  EXPECT_EQ(pool.victim_order_for(3)[0], 2);
  pool.shutdown();
}

TEST(TopologyStealing, ExactlyOnceUnderOrderedStealing) {
  // The locality-ordered probe loop must preserve the exactly-once
  // execution contract of the Chase-Lev stealing path.
  constexpr int kTasks = 20'000;
  std::vector<std::atomic<int>> runs(kTasks);
  {
    WorkStealingExecutor pool("topo-stress", 4, fake_two_node(),
                              /*pin=*/false);
    evmp::common::CountdownLatch latch(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      pool.post([&runs, &latch, i] {
        runs[static_cast<std::size_t>(i)].fetch_add(1);
        latch.count_down();
      });
    }
    latch.wait();
    // Every execution is a local pop, a steal or an injection pop.
    EXPECT_EQ(pool.local_pops() + pool.steals() + pool.injection_pops(),
              static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(pool.steals(), pool.near_steals() + pool.far_steals());
    pool.shutdown();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(TopologyStealing, PinnedConstructorRunsWork) {
  // pin=true must behave identically even where sched_setaffinity is
  // unavailable or refused (pinning is advisory).
  WorkStealingExecutor pool("topo-pin", 2, Topology::flat(2), /*pin=*/true);
  std::atomic<int> ran{0};
  evmp::common::CountdownLatch latch(100);
  for (int i = 0; i < 100; ++i) {
    pool.post([&] {
      ran.fetch_add(1);
      latch.count_down();
    });
  }
  latch.wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_LE(pool.pinned_workers(), 2u);
  pool.shutdown();
}

}  // namespace
}  // namespace evmp::exec

// Tests for the lock-free Chase–Lev deque and the EventCount parking
// primitive backing WorkStealingExecutor. The stress cases are sized to be
// meaningful under the TSan CI leg (which is where the memory-ordering
// claims of DESIGN.md §9 are actually checked by a tool).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/chase_lev_deque.hpp"
#include "common/event_count.hpp"

namespace evmp::common {
namespace {

using Deque = ChaseLevDeque<std::uint64_t*>;
using Steal = Deque::Steal;

// The deque stores pointers; tests use indices into this backing array so
// every popped/stolen value is identifiable.
std::vector<std::uint64_t> make_values(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(ChaseLevDeque, OwnerPopsLifo) {
  auto values = make_values(10);
  Deque deque;
  for (auto& v : values) deque.push_bottom(&v);
  EXPECT_EQ(deque.size(), 10u);
  for (int i = 9; i >= 0; --i) {
    std::uint64_t* out = nullptr;
    ASSERT_TRUE(deque.pop_bottom(out));
    EXPECT_EQ(*out, static_cast<std::uint64_t>(i));
  }
  std::uint64_t* out = nullptr;
  EXPECT_FALSE(deque.pop_bottom(out));
  EXPECT_TRUE(deque.empty());
}

TEST(ChaseLevDeque, ThievesStealFifo) {
  auto values = make_values(10);
  Deque deque;
  for (auto& v : values) deque.push_bottom(&v);
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::uint64_t* out = nullptr;
    ASSERT_EQ(deque.steal_top(out), Steal::kSuccess);
    EXPECT_EQ(*out, i);
  }
  std::uint64_t* out = nullptr;
  EXPECT_EQ(deque.steal_top(out), Steal::kEmpty);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacityAndRetiresBuffers) {
  auto values = make_values(1000);
  Deque deque(/*initial_capacity=*/64);
  EXPECT_EQ(deque.capacity(), 64u);
  for (auto& v : values) deque.push_bottom(&v);
  EXPECT_GE(deque.capacity(), 1000u);
  EXPECT_GE(deque.retired_buffers(), 1u);  // old arrays parked, not freed
  // Every element survives the copies: pop all, LIFO.
  for (int i = 999; i >= 0; --i) {
    std::uint64_t* out = nullptr;
    ASSERT_TRUE(deque.pop_bottom(out));
    ASSERT_EQ(*out, static_cast<std::uint64_t>(i));
  }
}

TEST(ChaseLevDeque, GrowUnderConcurrentSteal) {
  // The owner pushes enough to force repeated growth while a thief steals
  // continuously — the retired-buffer chain is what makes the thief's racy
  // reads of stale arrays safe.
  constexpr std::uint64_t kItems = 20000;
  // Element values are written by the owner *after* the thief starts, so
  // a race detector checks the push→steal publication edge for the
  // payload, not just index conservation.
  std::vector<std::uint64_t> values(kItems);
  Deque deque(/*initial_capacity=*/64);
  std::atomic<std::uint64_t> stolen_sum{0};
  std::atomic<std::uint64_t> stolen_count{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    std::uint64_t* out = nullptr;
    while (!done.load(std::memory_order_acquire) || !deque.empty()) {
      if (deque.steal_top(out) == Steal::kSuccess) {
        stolen_sum.fetch_add(*out, std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::uint64_t owned_sum = 0;
  std::uint64_t owned_count = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    values[i] = i;
    deque.push_bottom(&values[i]);
  }
  std::uint64_t* out = nullptr;
  while (deque.pop_bottom(out)) {
    owned_sum += *out;
    ++owned_count;
  }
  done.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(owned_count + stolen_count.load(), kItems);
  EXPECT_EQ(owned_sum + stolen_sum.load(), kItems * (kItems - 1) / 2);
  EXPECT_GE(deque.retired_buffers(), 1u);
}

TEST(ChaseLevDeque, OneOwnerManyThievesEveryElementExactlyOnce) {
  // 1 owner × N thieves over interleaved push/pop: each element must be
  // surrendered exactly once (no loss, no duplication). Runs under the
  // TSan CI leg, which validates the fence placement.
  constexpr int kThieves = 4;
  constexpr std::uint64_t kItems = 50000;
  std::vector<std::uint64_t> values(kItems);  // written just before push
  Deque deque;
  std::atomic<std::uint64_t> taken_sum{0};
  std::atomic<std::uint64_t> taken_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint64_t* out = nullptr;
      while (!done.load(std::memory_order_acquire) || !deque.empty()) {
        if (deque.steal_top(out) == Steal::kSuccess) {
          taken_sum.fetch_add(*out, std::memory_order_relaxed);
          taken_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Owner: bursts of pushes with pops in between (the executor's pattern).
  std::uint64_t owner_sum = 0;
  std::uint64_t owner_count = 0;
  std::size_t next = 0;
  while (next < kItems) {
    const std::size_t burst = std::min<std::size_t>(64, kItems - next);
    for (std::size_t i = 0; i < burst; ++i) {
      values[next] = next;
      deque.push_bottom(&values[next]);
      ++next;
    }
    std::uint64_t* out = nullptr;
    for (std::size_t i = 0; i < burst / 2; ++i) {
      if (!deque.pop_bottom(out)) break;
      owner_sum += *out;
      ++owner_count;
    }
  }
  std::uint64_t* out = nullptr;
  while (deque.pop_bottom(out)) {
    owner_sum += *out;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(owner_count + taken_count.load(), kItems);
  EXPECT_EQ(owner_sum + taken_sum.load(), kItems * (kItems - 1) / 2);
}

TEST(EventCount, NotifyBeforeCommitIsNotLost) {
  // The classic lost-wakeup shape: consumer prepares, condition becomes
  // true, producer notifies *before* the consumer commits. commit_wait
  // must return immediately (epoch moved), not sleep forever.
  EventCount ec;
  const auto key = ec.prepare_wait();
  ec.notify_one();       // fires while no one is parked yet
  ec.commit_wait(key);   // must not block
  SUCCEED();
}

TEST(EventCount, CancelAfterConditionObserved) {
  EventCount ec;
  const auto key = ec.prepare_wait();
  (void)key;
  ec.cancel_wait();
  EXPECT_FALSE(ec.has_waiters());
}

TEST(EventCount, SingleSlotHandoffNeverLosesAWakeup) {
  // Producer/consumer over a single atomic slot with no other
  // synchronisation: if any notify were lost the consumer would park
  // forever and the test would time out (ctest TIMEOUT backstop).
  constexpr int kRounds = 20000;
  EventCount ec;
  std::atomic<int> slot{0};

  std::thread consumer([&] {
    for (int expected = 1; expected <= kRounds;) {
      if (slot.load(std::memory_order_acquire) >= expected) {
        ++expected;
        continue;
      }
      const auto key = ec.prepare_wait();
      if (slot.load(std::memory_order_acquire) >= expected) {
        ec.cancel_wait();
        continue;
      }
      ec.commit_wait(key);
    }
  });

  for (int i = 1; i <= kRounds; ++i) {
    slot.store(i, std::memory_order_release);
    ec.notify_one();
  }
  consumer.join();
  EXPECT_EQ(slot.load(), kRounds);
}

TEST(EventCount, NotifyAllReleasesEveryWaiter) {
  constexpr int kWaiters = 4;
  EventCount ec;
  std::atomic<bool> go{false};
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      for (;;) {
        if (go.load(std::memory_order_acquire)) break;
        const auto key = ec.prepare_wait();
        if (go.load(std::memory_order_acquire)) {
          ec.cancel_wait();
          break;
        }
        ec.commit_wait(key);
      }
      woken.fetch_add(1);
    });
  }
  // Give the waiters a moment to actually park, then release them all.
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  go.store(true, std::memory_order_release);
  ec.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

}  // namespace
}  // namespace evmp::common

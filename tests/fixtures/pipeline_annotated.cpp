// evmpcc INPUT FIXTURE — this file is not compiled directly. The build
// translates it with the freshly built evmpcc (runtime expression "rt",
// see tests/CMakeLists.txt) and compiles the OUTPUT into test_integration,
// proving end-to-end that generated code is valid, correct C++.

#include <mutex>
#include <string>
#include <vector>

#include "core/evmp.hpp"

namespace evmp_fixture {

// The paper's §IV.A compilation example, extended with name_as/wait and an
// if-clause. Requires targets "worker" and "io" plus an "edt" loop.
std::vector<std::string> run_pipeline(evmp::Runtime& rt, bool offload) {
  std::vector<std::string> log;
  std::mutex mu;
  auto add = [&](const std::string& s) {
    std::scoped_lock lk(mu);
    log.push_back(s);
  };
  int value = 0;

  add("start");
  //#omp target virtual(worker) await if(offload)
  {
    value += 1;  // S1
    //#omp target virtual(io) name_as(batch)
    { add("batch-a"); }
    //#omp target virtual(io) name_as(batch)
    { add("batch-b"); }
    //#omp wait(batch)
    value += 10;  // S3
    //#omp target virtual(edt) nowait firstprivate(value)
    { add("progress " + std::to_string(value)); }
  }
  add(value == 11 ? "sum-ok" : "sum-bad");

  int doubled = 0;
  //#omp target virtual(worker) await
  doubled = value * 2;

  add(doubled == 22 ? "double-ok" : "double-bad");

  // Fence: the EDT dispatches FIFO, so awaiting a block on it guarantees
  // the nowait progress event above ran before the stack locals it
  // captures (mu, log) go out of scope.
  //#omp target virtual(edt) await
  { add("flushed"); }
  return log;
}

// Traditional OpenMP directives (the fork-join model the event extension
// coexists with), also rewritten by evmpcc: worksharing with reductions.
double run_traditional(int n) {
  std::vector<double> data(static_cast<std::size_t>(n));
  #pragma omp parallel for schedule(static) firstprivate(n)
  for (int i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(i % (n + 1));
  }

  double sum = 0.0;
  double largest = -1.0;
  long hits = 0;
  #pragma omp parallel for num_threads(3) schedule(dynamic, 8) \
      reduction(+: sum) reduction(max: largest) reduction(+: hits)
  for (int i = 0; i < n; ++i) {
    const double v = data[static_cast<std::size_t>(i)];
    sum += v;
    if (v > largest) largest = v;
    if (v > 1.0) ++hits;
  }

  int members = 0;
  std::mutex members_mu;
  #pragma omp parallel num_threads(4)
  {
    std::scoped_lock lk(members_mu);
    ++members;
  }

  return sum + largest + static_cast<double>(hits) +
         1000.0 * static_cast<double>(members);
}

// Elastic width: num_threads(adaptive) lets the runtime's WidthGovernor
// size the team from live load, so the computation must be width-agnostic
// (here a + reduction that counts the range exactly once).
long run_adaptive(int n) {
  long count = 0;
  #pragma omp parallel for num_threads(adaptive) reduction(+: count)
  for (int i = 0; i < n; ++i) {
    if (i >= 0) ++count;
  }
  return count;
}

}  // namespace evmp_fixture

// Unit tests for the executor substrate: UniqueFunction, CompletionState /
// TaskHandle, ThreadPoolExecutor, SerialExecutor, InlineExecutor and the
// simulated accelerator device.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "executor/completion.hpp"
#include "executor/executor.hpp"
#include "executor/inline_executor.hpp"
#include "executor/serial_executor.hpp"
#include "executor/simulated_device.hpp"
#include "executor/thread_pool_executor.hpp"
#include "executor/unique_function.hpp"

namespace evmp::exec {
namespace {

TEST(UniqueFunction, EmptyIsFalse) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesAndReturns) {
  UniqueFunction<int(int)> f = [](int x) { return x * 2; };
  EXPECT_EQ(f(21), 42);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(9);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 9);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  UniqueFunction<int()> f = [] { return 1; };
  UniqueFunction<int()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 1);
}

// --- small-buffer optimization boundary ---------------------------------

template <std::size_t N>
struct SizedCallable {
  unsigned char payload[N];
  explicit SizedCallable(unsigned char fill) { payload[0] = fill; }
  int operator()() const { return payload[0]; }
};

TEST(UniqueFunction, CallableAtCapacityStaysInline) {
  constexpr auto kCap = UniqueFunction<int()>::kInlineCapacity;
  UniqueFunction<int()> f = SizedCallable<kCap>(7);
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, CallableOverCapacityGoesToHeap) {
  constexpr auto kCap = UniqueFunction<int()>::kInlineCapacity;
  UniqueFunction<int()> f = SizedCallable<kCap + 1>(9);
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 9);
}

TEST(UniqueFunction, ThrowingMoveFallsBackToHeap) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    int operator()() const { return 3; }
  };
  UniqueFunction<int()> f = ThrowingMove{};
  EXPECT_FALSE(f.is_inline());  // SBO relocation must be noexcept
  EXPECT_EQ(f(), 3);
}

TEST(UniqueFunction, InlineMovePreservesCallableState) {
  // Straddle the boundary from both sides and move repeatedly: the inline
  // copy must relocate the payload, the heap copy only its pointer.
  constexpr auto kCap = UniqueFunction<int()>::kInlineCapacity;
  UniqueFunction<int()> small = SizedCallable<kCap - 8>(21);
  UniqueFunction<int()> big = SizedCallable<kCap + 8>(42);
  for (int i = 0; i < 4; ++i) {
    UniqueFunction<int()> s2 = std::move(small);
    small = std::move(s2);
    UniqueFunction<int()> b2 = std::move(big);
    big = std::move(b2);
  }
  EXPECT_TRUE(small.is_inline());
  EXPECT_FALSE(big.is_inline());
  EXPECT_EQ(small(), 21);
  EXPECT_EQ(big(), 42);
}

TEST(UniqueFunction, DestroysInlineCaptureExactlyOnce) {
  struct Counter {
    int* live;
    explicit Counter(int* p) : live(p) { ++*live; }
    Counter(const Counter& o) : live(o.live) { ++*live; }
    Counter(Counter&& o) noexcept : live(o.live) { ++*live; }
    ~Counter() { --*live; }
    void operator()() const {}
  };
  int live = 0;
  {
    UniqueFunction<void()> f = Counter(&live);
    ASSERT_TRUE(f.is_inline());
    EXPECT_GE(live, 1);
    UniqueFunction<void()> g = std::move(f);
    g();
  }
  EXPECT_EQ(live, 0);
}

TEST(CompletionState, WaitAfterDoneReturnsImmediately) {
  CompletionState s;
  s.set_done();
  s.wait();
  EXPECT_TRUE(s.done());
  EXPECT_FALSE(s.failed());
}

TEST(CompletionState, WaitForTimesOutWhenPending) {
  CompletionState s;
  EXPECT_FALSE(s.wait_for(std::chrono::milliseconds{2}));
}

TEST(CompletionState, ExceptionRethrownAtWait) {
  CompletionState s;
  s.set_exception(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(s.failed());
  EXPECT_THROW(s.wait(), std::runtime_error);
  // Every join observes the same exception.
  EXPECT_THROW(s.rethrow_if_error(), std::runtime_error);
}

TEST(TaskHandle, EmptyHandleIsDone) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_TRUE(h.done());
  h.wait();  // no-op
  EXPECT_TRUE(h.wait_for(std::chrono::milliseconds{1}));
}

TEST(TaskHandle, CrossThreadWait) {
  CompletionRef state = CompletionState::make();
  TaskHandle h(state);
  EXPECT_FALSE(h.done());
  std::jthread t([state] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    state->set_done();
  });
  h.wait();
  EXPECT_TRUE(h.done());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPoolExecutor pool("p", 3);
  std::atomic<int> count{0};
  common::CountdownLatch latch(100);
  for (int i = 0; i < 100; ++i) {
    pool.post([&] {
      count.fetch_add(1);
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.concurrency(), 3u);
}

TEST(ThreadPool, TasksExecuteOnMemberThreads) {
  ThreadPoolExecutor pool("p", 2);
  std::atomic<bool> member{false};
  common::CountdownLatch latch(1);
  pool.post([&] {
    member.store(pool.owns_current_thread());
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_TRUE(member.load());
  EXPECT_FALSE(pool.owns_current_thread());  // the test thread is foreign
}

TEST(ThreadPool, CurrentExecutorIsSetInsideTasks) {
  ThreadPoolExecutor pool("p", 1);
  Executor* observed = nullptr;
  common::CountdownLatch latch(1);
  pool.post([&] {
    observed = Executor::current();
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_EQ(observed, &pool);
  EXPECT_EQ(Executor::current(), nullptr);
}

TEST(ThreadPool, TryRunOneExecutesOnCaller) {
  ThreadPoolExecutor pool("p", 1);
  // Occupy the single worker so the queue backs up.
  common::ManualResetEvent release;
  common::CountdownLatch started(1);
  pool.post([&] {
    started.count_down();
    release.wait();
  });
  ASSERT_TRUE(started.wait_for(std::chrono::seconds{5}));
  std::atomic<bool> ran_on_caller{false};
  const auto caller_id = std::this_thread::get_id();
  pool.post([&] { ran_on_caller.store(std::this_thread::get_id() == caller_id); });
  EXPECT_TRUE(pool.try_run_one());  // steals the queued task
  EXPECT_TRUE(ran_on_caller.load());
  EXPECT_FALSE(pool.try_run_one());  // queue empty now
  release.set();
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPoolExecutor pool("p", 2);
    for (int i = 0; i < 50; ++i) {
      pool.post([&] { count.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, PostAfterShutdownIsDropped) {
  ThreadPoolExecutor pool("p", 1);
  pool.shutdown();
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPoolExecutor pool("p", 0);
  EXPECT_EQ(pool.concurrency(), 1u);
}

TEST(ThreadPool, TasksExecutedCounter) {
  ThreadPoolExecutor pool("p", 2);
  common::CountdownLatch latch(10);
  for (int i = 0; i < 10; ++i) {
    pool.post([&] { latch.count_down(); });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(), 10u);
}

TEST(ThreadPool, PostBatchRunsAllTasks) {
  ThreadPoolExecutor pool("p", 3);
  std::atomic<int> count{0};
  common::CountdownLatch latch(64);
  std::vector<Task> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&] {
      count.fetch_add(1);
      latch.count_down();
    });
  }
  pool.post_batch(tasks);
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(count.load(), 64);
  const auto s = pool.queue_stats();
  EXPECT_EQ(s.batch_pushes, 1u);
  EXPECT_EQ(s.batch_items, 64u);
}

TEST(ThreadPool, PostBatchEquivalentToIndividualPosts) {
  // Same observable effect as N posts from one producer: every task runs,
  // in submission order on a single-thread pool.
  ThreadPoolExecutor pool("p", 1);
  std::vector<int> order;
  common::CountdownLatch latch(20);
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.emplace_back([&, i] {
      order.push_back(i);  // single worker: no race
      latch.count_down();
    });
  }
  pool.post_batch(tasks);
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  pool.shutdown();  // counter increments after the task body returns
  EXPECT_EQ(pool.tasks_executed(), 20u);
}

TEST(ThreadPool, PostBatchAfterShutdownIsDropped) {
  ThreadPoolExecutor pool("p", 1);
  pool.shutdown();
  std::atomic<bool> ran{false};
  std::vector<Task> tasks;
  tasks.emplace_back([&] { ran.store(true); });
  pool.post_batch(tasks);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPool, ShutdownDrainsBatchedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPoolExecutor pool("p", 2);
    std::vector<Task> tasks;
    for (int i = 0; i < 50; ++i) {
      tasks.emplace_back([&] { count.fetch_add(1); });
    }
    pool.post_batch(tasks);
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ManyProducersSpreadOverShards) {
  ThreadPoolExecutor pool("p", 4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  common::CountdownLatch latch(kProducers * kPerProducer);
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          pool.post([&] { latch.count_down(); });
        }
      });
    }
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{30}));
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(UnhandledHook, ReceivesFireAndForgetExceptions) {
  static std::atomic<int> hook_hits{0};
  auto prev = unhandled_exception_hook();
  set_unhandled_exception_hook(
      [](std::string_view, std::exception_ptr) { hook_hits.fetch_add(1); });
  {
    ThreadPoolExecutor pool("p", 1);
    pool.post([] { throw std::runtime_error("unhandled"); });
    pool.shutdown();
  }
  set_unhandled_exception_hook(prev);
  EXPECT_EQ(hook_hits.load(), 1);
}

TEST(SerialExecutor, StrictFifo) {
  SerialExecutor ex("s");
  std::vector<int> order;
  common::CountdownLatch latch(20);
  for (int i = 0; i < 20; ++i) {
    ex.post([&, i] {
      order.push_back(i);  // single thread: no race
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SerialExecutor, SingleThreadServesEverything) {
  SerialExecutor ex("s");
  std::set<std::thread::id> ids;
  std::mutex mu;
  common::CountdownLatch latch(10);
  for (int i = 0; i < 10; ++i) {
    ex.post([&] {
      {
        std::scoped_lock lk(mu);
        ids.insert(std::this_thread::get_id());
      }
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(ex.concurrency(), 1u);
}

TEST(InlineExecutor, RunsSynchronously) {
  InlineExecutor ex;
  bool ran = false;
  ex.post([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(ex.owns_current_thread());
  EXPECT_FALSE(ex.try_run_one());
  EXPECT_EQ(ex.pending(), 0u);
}

TEST(SimulatedDevice, CountsTransfersAndLaunches) {
  SimulatedDeviceExecutor::Config cfg;
  cfg.launch_latency = common::Micros{100};
  cfg.bandwidth_bytes_per_sec = 1e9;
  SimulatedDeviceExecutor dev("device:0", 0, cfg);
  EXPECT_EQ(dev.device_id(), 0);
  dev.transfer_to_device(1'000'000);
  dev.transfer_from_device(500);
  common::CountdownLatch latch(2);
  dev.post([&] { latch.count_down(); });
  dev.post([&] { latch.count_down(); });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_EQ(dev.bytes_to_device(), 1'000'000u);
  EXPECT_EQ(dev.bytes_from_device(), 500u);
  EXPECT_EQ(dev.kernels_launched(), 2u);
}

TEST(SimulatedDevice, TransferTakesModeledTime) {
  SimulatedDeviceExecutor::Config cfg;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 10KB == 10ms
  SimulatedDeviceExecutor dev("device:1", 1, cfg);
  const common::Stopwatch sw;
  dev.transfer_to_device(10'000);
  EXPECT_GE(sw.elapsed_ms(), 8.0);
}

}  // namespace
}  // namespace evmp::exec

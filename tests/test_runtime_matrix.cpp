// Property sweep: every scheduling mode against every executor kind that
// can back a virtual target, under burst submission. Asserts the three
// invariants that must hold for any (mode, backing) combination:
//   1. every block runs exactly once;
//   2. the join point (if the mode has one) observes all effects;
//   3. results equal the directives-disabled sequential execution.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"

namespace evmp {
namespace {

enum class Backing { kCentralPool, kStealingPool, kSerial, kEdt };

struct MatrixCase {
  Backing backing;
  Async mode;
};

std::string backing_name(Backing b) {
  switch (b) {
    case Backing::kCentralPool: return "central";
    case Backing::kStealingPool: return "stealing";
    case Backing::kSerial: return "serial";
    case Backing::kEdt: return "edt";
  }
  return "?";
}

class RuntimeMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("central", 3);
    rt_.create_stealing_worker("stealing", 3);
    serial_ = std::make_unique<exec::SerialExecutor>("serial");
    rt_.register_executor("serial", *serial_);
  }
  void TearDown() override {
    rt_.clear();
    serial_->shutdown();
  }

  std::string target_for(Backing b) { return backing_name(b); }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
  std::unique_ptr<exec::SerialExecutor> serial_;
};

TEST_P(RuntimeMatrix, BurstRunsEveryBlockExactlyOnce) {
  const auto& p = GetParam();
  const std::string tname = target_for(p.backing);
  constexpr int kBlocks = 64;
  std::vector<std::atomic<int>> hits(kBlocks);

  std::vector<exec::TaskHandle> handles;
  handles.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) {
    handles.push_back(rt_.invoke_target_block(
        tname, [&hits, i] { hits[static_cast<size_t>(i)].fetch_add(1); },
        p.mode, "matrix"));
  }
  // Join, whatever the mode requires.
  if (p.mode == Async::kNameAs) rt_.wait_tag("matrix");
  for (auto& h : handles) h.wait();

  for (int i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "block " << i;
  }
}

TEST_P(RuntimeMatrix, JoinObservesAllEffects) {
  const auto& p = GetParam();
  if (p.mode == Async::kNowait) {
    GTEST_SKIP() << "nowait has no join point by design";
  }
  const std::string tname = target_for(p.backing);
  long sum = 0;  // unsynchronised: the join must give happens-before
  for (int i = 1; i <= 20; ++i) {
    auto handle = rt_.invoke_target_block(
        tname, [&sum, i] { sum += i; }, p.mode, "join");
    if (p.mode == Async::kNameAs) {
      rt_.wait_tag("join");
    } else {
      handle.wait();
    }
  }
  EXPECT_EQ(sum, 210);
}

TEST_P(RuntimeMatrix, MatchesDisabledSequentialResult) {
  const auto& p = GetParam();
  const std::string tname = target_for(p.backing);
  auto program = [&](std::vector<int>& out) {
    for (int i = 0; i < 10; ++i) {
      auto handle = rt_.invoke_target_block(
          tname, [&out, i] { out.push_back(i * i); }, p.mode, "seq");
      // Serialise submissions so ordering is comparable.
      if (p.mode == Async::kNameAs) {
        rt_.wait_tag("seq");
      } else {
        handle.wait();
      }
    }
  };
  std::vector<int> parallel_result;
  program(parallel_result);
  rt_.set_enabled(false);
  std::vector<int> sequential_result;
  program(sequential_result);
  rt_.set_enabled(true);
  EXPECT_EQ(parallel_result, sequential_result);
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (Backing b : {Backing::kCentralPool, Backing::kStealingPool,
                    Backing::kSerial, Backing::kEdt}) {
    for (Async m :
         {Async::kDefault, Async::kNowait, Async::kNameAs, Async::kAwait}) {
      cases.push_back({b, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, RuntimeMatrix, ::testing::ValuesIn(matrix_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
      return backing_name(param_info.param.backing) + "_" +
             std::string(to_string(param_info.param.mode));
    });

}  // namespace
}  // namespace evmp

// Tests for the asynchronous-I/O extension (the paper's future-work item):
// simulated disk/network operations that occupy no thread while pending,
// and their integration with the runtime's logical barrier
// (Runtime::await_handle) and with executor-targeted continuations.

#include <gtest/gtest.h>

#include <atomic>

#include "asyncio/async_io.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"
#include "net/reactor.hpp"

namespace evmp::io {
namespace {

AsyncIoService::Config fast_config() {
  AsyncIoService::Config cfg;
  cfg.disk.base_latency = common::Micros{200};
  cfg.disk.bytes_per_sec = 1e9;
  cfg.network.base_latency = common::Millis{2};
  cfg.network.bytes_per_sec = 1e8;
  cfg.network.jitter_fraction = 0.0;
  return cfg;
}

TEST(AsyncIo, ReadCompletesWithContent) {
  AsyncIoService io(fast_config());
  auto op = io.read_file("alpha.bin", 4096);
  op.handle().wait();
  EXPECT_EQ(op.size(), 4096u);
  EXPECT_EQ(io.operations_completed(), 1u);
  EXPECT_EQ(io.bytes_transferred(), 4096u);
}

TEST(AsyncIo, ContentIsDeterministicPerName) {
  AsyncIoService io(fast_config());
  auto a1 = io.read_file("same", 256);
  auto a2 = io.read_file("same", 256);
  auto b = io.read_file("different", 256);
  a1.handle().wait();
  a2.handle().wait();
  b.handle().wait();
  EXPECT_EQ(a1.data(), a2.data());
  EXPECT_NE(a1.data(), b.data());
}

TEST(AsyncIo, SubmitReturnsBeforeCompletion) {
  auto cfg = fast_config();
  cfg.network.base_latency = common::Millis{30};
  AsyncIoService io(cfg);
  const common::Stopwatch sw;
  auto op = io.fetch_url("http://example/x", 1024);
  EXPECT_LT(sw.elapsed_ms(), 10.0);
  EXPECT_FALSE(op.handle().done());
  op.handle().wait();
  EXPECT_GE(sw.elapsed_ms(), 25.0);
}

TEST(AsyncIo, LatencyModelRespected) {
  auto cfg = fast_config();
  cfg.disk.base_latency = common::Millis{10};
  cfg.disk.bytes_per_sec = 1e6;  // 10KB == 10ms transfer
  AsyncIoService io(cfg);
  const common::Stopwatch sw;
  auto op = io.read_file("f", 10'000);
  op.handle().wait();
  EXPECT_GE(sw.elapsed_ms(), 18.0);  // ~10ms latency + ~10ms transfer
}

TEST(AsyncIo, OperationsRetireInDeadlineOrder) {
  auto cfg = fast_config();
  AsyncIoService io(cfg);
  // Larger read has a later deadline despite earlier submission order.
  auto slow = io.read_file("slow", 1'000'000);  // +1ms transfer
  auto fast = io.read_file("fast", 16);
  fast.handle().wait();
  EXPECT_FALSE(slow.handle().done());
  slow.handle().wait();
}

TEST(AsyncIo, WriteHasNoContent) {
  AsyncIoService io(fast_config());
  auto op = io.write_file("out.bin", 2048);
  op.handle().wait();
  EXPECT_EQ(op.size(), 0u);  // writes transfer out, nothing comes back
  EXPECT_EQ(io.bytes_transferred(), 2048u);
}

TEST(AsyncIo, ContinuationPostsToExecutor) {
  AsyncIoService io(fast_config());
  event::EventLoop edt("edt");
  edt.start();
  std::atomic<bool> on_edt{false};
  common::CountdownLatch done(1);
  io.fetch_url_then("http://example/img", 512, edt, [&] {
    on_edt.store(edt.is_dispatch_thread());
    done.count_down();
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  EXPECT_TRUE(on_edt.load());
}

TEST(AsyncIo, ShutdownFailsNewSubmissions) {
  AsyncIoService io(fast_config());
  io.shutdown();
  auto op = io.read_file("late", 64);
  EXPECT_TRUE(op.handle().done());
  EXPECT_THROW(op.handle().wait(), std::runtime_error);
}

TEST(AsyncIo, ShutdownRetiresInFlightOps) {
  auto cfg = fast_config();
  cfg.disk.base_latency = common::Millis{50};
  AsyncIoService io(cfg);
  auto op = io.read_file("pending", 128);
  io.shutdown();  // must not leave the waiter hanging
  EXPECT_TRUE(op.handle().wait_for(std::chrono::seconds{5}));
}

TEST(AsyncIo, ManyConcurrentOpsAllComplete) {
  AsyncIoService io(fast_config());
  std::vector<IoOperation> ops;
  ops.reserve(100);
  for (int i = 0; i < 100; ++i) {
    ops.push_back(io.read_file("f" + std::to_string(i), 64));
  }
  for (auto& op : ops) op.handle().wait();
  EXPECT_EQ(io.operations_completed(), 100u);
  EXPECT_EQ(io.in_flight(), 0u);
}

TEST(AsyncIo, AwaitHandlePumpsEdtWhileIoPending) {
  // The headline integration: an event handler awaits an I/O operation
  // with the logical barrier; the EDT dispatches other events meanwhile
  // and no worker thread is occupied by the pending I/O.
  auto cfg = fast_config();
  cfg.network.base_latency = common::Millis{30};
  AsyncIoService io(cfg);
  event::EventLoop edt("edt");
  edt.start();
  Runtime rt;
  rt.register_edt("edt", edt);

  std::atomic<int> other_events{0};
  std::atomic<bool> data_ready_at_continuation{false};
  common::CountdownLatch done(1);

  edt.post([&] {
    auto op = io.fetch_url("http://example/big", 2048);
    rt.await_handle(op.handle());  // logical barrier on the EDT
    data_ready_at_continuation.store(op.size() == 2048);
    done.count_down();
  });
  for (int i = 0; i < 6; ++i) {
    edt.post([&] { other_events.fetch_add(1); });
  }
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  EXPECT_TRUE(data_ready_at_continuation.load());
  EXPECT_EQ(other_events.load(), 6);  // pumped during the await
  EXPECT_GE(edt.max_nesting(), 2);
}

TEST(AsyncIo, AwaitHandleOnForeignThreadJustBlocks) {
  AsyncIoService io(fast_config());
  Runtime rt;
  auto op = io.read_file("plain", 32);
  rt.await_handle(op.handle());
  EXPECT_TRUE(op.handle().done());
}

TEST(AsyncIo, JitterStaysWithinBounds) {
  auto cfg = fast_config();
  cfg.network.base_latency = common::Millis{10};
  cfg.network.bytes_per_sec = 1e12;  // latency dominated
  cfg.network.jitter_fraction = 0.3;
  AsyncIoService io(cfg);
  for (int i = 0; i < 5; ++i) {
    const common::Stopwatch sw;
    auto op = io.fetch_url("u", 16);
    op.handle().wait();
    const double ms = sw.elapsed_ms();
    EXPECT_GE(ms, 6.0);
    EXPECT_LE(ms, 40.0);
  }
}

TEST(AsyncIo, ReactorTimerWheelDrivesCompletions) {
  // attach_reactor: the completion thread stops running its own timed
  // waits and sleeps until the single reactor wheel timer wakes it —
  // operations must still retire on time, and the wakeup counter proves
  // the timing came off the wheel.
  net::Reactor reactor("t.io");
  reactor.start();
  auto cfg = fast_config();
  cfg.disk.base_latency = common::Millis{5};
  AsyncIoService io(cfg);
  io.attach_reactor(reactor);
  auto a = io.read_file("wheel-a", 128);
  auto b = io.read_file("wheel-b", 64);
  a.handle().wait();
  b.handle().wait();
  EXPECT_EQ(a.size(), 128u);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(io.operations_completed(), 2u);
  EXPECT_GE(io.reactor_wakeups(), 1u);
  io.shutdown();  // cancels the armed timer, drains the reactor queue
  reactor.stop();
  EXPECT_GE(reactor.stats().timers_scheduled, 1u);
}

TEST(AsyncIo, ReactorEarlierDeadlineRearmsTheTimer) {
  // A later-armed operation with an earlier deadline must replace the
  // pending wheel timer, not wait behind it.
  net::Reactor reactor("t.io2");
  reactor.start();
  auto cfg = fast_config();
  cfg.disk.base_latency = common::Millis{50};
  cfg.network.base_latency = common::Millis{5};
  cfg.network.bytes_per_sec = 1e12;
  cfg.network.jitter_fraction = 0.0;
  AsyncIoService io(cfg);
  io.attach_reactor(reactor);
  const common::Stopwatch sw;
  auto slow = io.read_file("slow", 16);
  auto fast = io.fetch_url("fast", 16);
  fast.handle().wait();
  const double fast_ms = sw.elapsed_ms();
  EXPECT_LT(fast_ms, 40.0) << "network op must not wait out the disk timer";
  EXPECT_FALSE(slow.handle().done());
  slow.handle().wait();
  io.shutdown();
  reactor.stop();
}

}  // namespace
}  // namespace evmp::io

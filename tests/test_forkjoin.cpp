// Unit + property tests for the fork-join runtime: Team, barrier, critical,
// schedules and reductions. Parameterized sweeps assert the worksharing
// partition property (every index exactly once) for every schedule/chunk/
// team-size combination.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "forkjoin/parallel_for.hpp"
#include "forkjoin/team.hpp"
#include "forkjoin/team_pool.hpp"

namespace evmp::fj {
namespace {

TEST(Team, AllMembersRun) {
  Team team(4);
  std::vector<std::atomic<int>> hits(4);
  team.parallel([&](int tid, int nth) {
    EXPECT_EQ(nth, 4);
    hits[static_cast<size_t>(tid)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, MasterIsTheCallingThread) {
  Team team(3);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> master_is_caller{false};
  team.parallel([&](int tid, int) {
    if (tid == 0) {
      master_is_caller.store(std::this_thread::get_id() == caller);
    }
  });
  // Fork-join: the encountering thread participates as thread 0.
  EXPECT_TRUE(master_is_caller.load());
}

TEST(Team, SingleThreadTeamRunsInline) {
  Team team(1);
  const auto caller = std::this_thread::get_id();
  bool inline_run = false;
  team.parallel([&](int tid, int nth) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(nth, 1);
    inline_run = std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(inline_run);
}

TEST(Team, ReusableAcrossRegions) {
  Team team(3);
  std::atomic<int> total{0};
  for (int r = 0; r < 20; ++r) {
    team.parallel([&](int, int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 60);
  EXPECT_EQ(team.regions(), 20u);
}

TEST(Team, ExceptionRethrownAtJoin) {
  Team team(3);
  EXPECT_THROW(team.parallel([](int tid, int) {
    if (tid == 1) throw std::runtime_error("member failure");
  }),
               std::runtime_error);
  // The team survives and remains usable.
  std::atomic<int> count{0};
  team.parallel([&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(Team, ExceptionOnSingleThreadTeam) {
  Team team(1);
  EXPECT_THROW(
      team.parallel([](int, int) { throw std::logic_error("solo"); }),
      std::logic_error);
}

TEST(Team, BarrierSynchronisesPhases) {
  Team team(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> order_violated{false};
  for (int r = 0; r < 10; ++r) {
    phase1.store(0);
    team.parallel([&](int, int nth) {
      phase1.fetch_add(1);
      team.barrier();
      // After the barrier every member must observe all phase-1 arrivals.
      if (phase1.load() != nth) order_violated.store(true);
    });
  }
  EXPECT_FALSE(order_violated.load());
}

TEST(Team, RepeatedBarriersDoNotDeadlock) {
  Team team(3);
  std::atomic<int> count{0};
  team.parallel([&](int, int) {
    for (int i = 0; i < 50; ++i) {
      team.barrier();
      count.fetch_add(1);
    }
  });
  EXPECT_EQ(count.load(), 150);
}

TEST(Team, CriticalIsMutuallyExclusive) {
  Team team(4);
  int unprotected = 0;  // only touched inside critical
  team.parallel([&](int, int) {
    for (int i = 0; i < 1000; ++i) {
      team.critical([&] { ++unprotected; });
    }
  });
  EXPECT_EQ(unprotected, 4000);
}

TEST(Team, IntrospectionInsideRegion) {
  EXPECT_EQ(thread_num(), 0);
  EXPECT_EQ(num_threads(), 1);
  EXPECT_FALSE(in_parallel());
  Team team(3);
  std::vector<std::atomic<int>> seen(3);
  team.parallel([&](int tid, int nth) {
    EXPECT_TRUE(in_parallel());
    EXPECT_EQ(thread_num(), tid);
    EXPECT_EQ(num_threads(), nth);
    seen[static_cast<size_t>(thread_num())].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_FALSE(in_parallel());
  EXPECT_EQ(num_threads(), 1);
}

TEST(Team, IntrospectionRestoredAfterNestedTeam) {
  Team outer(2);
  outer.parallel([&](int tid, int) {
    if (tid == 0) {
      Team inner(3);
      inner.parallel([&](int itid, int inth) {
        EXPECT_EQ(thread_num(), itid);
        EXPECT_EQ(num_threads(), inth);
      });
      // Back in the outer region: context restored.
      EXPECT_EQ(thread_num(), 0);
      EXPECT_EQ(num_threads(), 2);
    }
  });
}

TEST(Team, HelperThreadCounterGrows) {
  const auto before = total_helper_threads_created();
  { Team team(5); }
  EXPECT_EQ(total_helper_threads_created(), before + 4);
}

TEST(ParallelFor, ComputesEveryIndex) {
  Team team(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(team, 0, 1000, [&](long i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  Team team(2);
  std::atomic<int> calls{0};
  parallel_for(team, 5, 5, [&](long) { calls.fetch_add(1); });
  parallel_for(team, 7, 3, [&](long) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelReduce, SumMatchesSequential) {
  Team team(3);
  const long n = 10'000;
  const auto sum = parallel_reduce(
      team, 0, n, 0L, [](long a, long b) { return a + b; },
      [](long i) { return i; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, MaxReduction) {
  Team team(4);
  const auto max = parallel_reduce(
      team, 0, 1000, -1L, [](long a, long b) { return a > b ? a : b; },
      [](long i) { return (i * 37) % 1000; });
  EXPECT_EQ(max, 999);
}

TEST(ParallelReduce, WorksUnderDynamicSchedule) {
  Team team(3);
  const auto sum = parallel_reduce(
      team, 0, 1234, 0L, [](long a, long b) { return a + b; },
      [](long i) { return i; }, Schedule::kDynamic, 7);
  EXPECT_EQ(sum, 1234L * 1233 / 2);
}

// ---- partition property sweep -------------------------------------------

struct ScheduleCase {
  Schedule sched;
  long chunk;
  int team_size;
  long range;
};

class SchedulePartition : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(SchedulePartition, EveryIndexExactlyOnce) {
  const auto& p = GetParam();
  Team team(p.team_size);
  std::vector<std::atomic<int>> hits(static_cast<size_t>(p.range));
  parallel_ranges(
      team, 0, p.range,
      [&](int tid, long lo, long hi) {
        EXPECT_GE(tid, 0);
        EXPECT_LT(tid, p.team_size);
        EXPECT_LT(lo, hi);
        for (long i = lo; i < hi; ++i) {
          hits[static_cast<size_t>(i)].fetch_add(1);
        }
      },
      p.sched, p.chunk);
  for (long i = 0; i < p.range; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

std::string case_name(const ::testing::TestParamInfo<ScheduleCase>& info) {
  const auto& p = info.param;
  return std::string(to_string(p.sched)) + "_c" + std::to_string(p.chunk) +
         "_t" + std::to_string(p.team_size) + "_n" + std::to_string(p.range);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulePartition,
    ::testing::Values(
        ScheduleCase{Schedule::kStatic, 0, 1, 100},
        ScheduleCase{Schedule::kStatic, 0, 4, 100},
        ScheduleCase{Schedule::kStatic, 0, 4, 3},   // fewer items than team
        ScheduleCase{Schedule::kStatic, 7, 4, 100},
        ScheduleCase{Schedule::kStatic, 1, 3, 10},
        ScheduleCase{Schedule::kDynamic, 0, 4, 100},
        ScheduleCase{Schedule::kDynamic, 5, 4, 103},
        ScheduleCase{Schedule::kDynamic, 64, 2, 100},  // chunk > range
        ScheduleCase{Schedule::kGuided, 0, 4, 100},
        ScheduleCase{Schedule::kGuided, 8, 3, 1000},
        ScheduleCase{Schedule::kGuided, 1, 2, 7},
        ScheduleCase{Schedule::kGuided, 16, 4, 17},   // chunk ~ range
        ScheduleCase{Schedule::kGuided, 64, 2, 10},   // chunk > range
        ScheduleCase{Schedule::kGuided, 0, 8, 10000}),
    case_name);

TEST(ParallelRanges, GuidedClaimsNeverExceedBounds) {
  // Regression: the guided schedule used to fetch_add each exiting thread's
  // chunk past `hi`, overshooting the shared counter on every loop. With
  // the CAS-clamped claim every assigned range must sit inside [lo, hi)
  // and cover the range exactly — even when run back-to-back many times
  // (the creep-toward-overflow scenario).
  Team team(4);
  for (int round = 0; round < 50; ++round) {
    constexpr long kLo = 0;
    constexpr long kHi = 497;
    std::atomic<long> covered{0};
    std::atomic<long> max_hi{kLo};
    parallel_ranges(
        team, kLo, kHi,
        [&](int, long lo, long hi) {
          EXPECT_GE(lo, kLo);
          EXPECT_LE(hi, kHi);
          EXPECT_LT(lo, hi);
          covered.fetch_add(hi - lo);
          long seen = max_hi.load();
          while (hi > seen && !max_hi.compare_exchange_weak(seen, hi)) {
          }
        },
        Schedule::kGuided, 3);
    EXPECT_EQ(covered.load(), kHi - kLo);  // exact partition, no overshoot
    EXPECT_EQ(max_hi.load(), kHi);
  }
}

TEST(ParallelReduce, WideTeamFallsBackToHeapSlots) {
  // Teams wider than the 16 inline SBO slots take the vector path; the
  // result must be identical.
  Team team(18);
  const auto sum = parallel_reduce(
      team, 0, 5000, 0L, [](long a, long b) { return a + b; },
      [](long i) { return i; }, Schedule::kDynamic, 16);
  EXPECT_EQ(sum, 5000L * 4999 / 2);
}

// ---- TeamPool -------------------------------------------------------------

TEST(TeamPool, LeaseReusesReturnedTeams) {
  TeamPool pool;
  const auto created_before = pool.teams_created();
  {
    auto lease = pool.lease(3);
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->num_threads(), 3);
    std::atomic<int> ran{0};
    lease->parallel([&](int, int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 3);
  }  // team returns to the pool here
  EXPECT_EQ(pool.cached(), 1u);
  {
    auto lease = pool.lease(3);
    EXPECT_EQ(pool.cached(), 0u);  // cache hit, not a new team
  }
  EXPECT_EQ(pool.teams_created(), created_before + 1);
  EXPECT_EQ(pool.leases_granted(), 2u);
}

TEST(TeamPool, DistinctWidthsGetDistinctTeams) {
  TeamPool pool;
  auto a = pool.lease(2);
  auto b = pool.lease(4);
  EXPECT_EQ(a->num_threads(), 2);
  EXPECT_EQ(b->num_threads(), 4);
  EXPECT_EQ(pool.teams_created(), 2u);
}

TEST(TeamPool, ConcurrentLeasesGetExclusiveTeams) {
  // Two threads leasing the same width concurrently must never share a
  // team (Team is not reentrant); the pool grows to the peak concurrency.
  TeamPool pool;
  std::atomic<int> total{0};
  std::vector<std::thread> users;
  users.reserve(4);
  for (int u = 0; u < 4; ++u) {
    users.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto lease = pool.lease(2);
        lease->parallel([&](int, int) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(total.load(), 4 * 25 * 2);
  EXPECT_LE(pool.teams_created(), 4u);  // at most one per concurrent user
  EXPECT_GE(pool.teams_created(), 1u);
}

TEST(TeamPool, PooledRegionsKeepHelperCreationFlat) {
  // The Figure 9 fix, asserted: N pooled regions create helpers once; N
  // fresh teams would create helpers N times.
  TeamPool pool;
  const auto helpers_before = total_helper_threads_created();
  for (int i = 0; i < 100; ++i) {
    auto lease = pool.lease(3);
    lease->parallel([](int, int) {});
  }
  EXPECT_EQ(total_helper_threads_created() - helpers_before, 2u);
  EXPECT_EQ(pool.teams_created(), 1u);
}

TEST(TeamPool, ClearDropsIdleTeams) {
  TeamPool pool;
  { auto lease = pool.lease(2); }
  EXPECT_EQ(pool.cached(), 1u);
  pool.clear();
  EXPECT_EQ(pool.cached(), 0u);
}

TEST(TeamPool, InstanceIsProcessWide) {
  auto& a = TeamPool::instance();
  auto& b = TeamPool::instance();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace evmp::fj

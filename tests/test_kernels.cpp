// Unit + property tests for the Java Grande kernel ports: IDEA primitives,
// per-kernel validation, sequential/parallel result equality across
// schedules and team sizes, the simulated work model, and the kernel pool.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "forkjoin/team.hpp"
#include "kernels/crypt.hpp"
#include "kernels/kernel.hpp"
#include "kernels/kernel_pool.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/raytracer.hpp"
#include "kernels/series.hpp"
#include "kernels/sor.hpp"
#include "kernels/sparsematmult.hpp"

namespace evmp::kernels {
namespace {

// ---- IDEA primitives ------------------------------------------------------

TEST(IdeaPrimitives, MulAgreesWithDefinition) {
  // mul(a,b) = a*b mod 2^16+1 with 0 encoding 2^16.
  EXPECT_EQ(CryptKernel::mul(1, 1), 1u);
  EXPECT_EQ(CryptKernel::mul(2, 3), 6u);
  // 0 == 2^16 == -1 (mod 65537): (-1)*(-1) = 1.
  EXPECT_EQ(CryptKernel::mul(0, 0), 1u);
  // (-1)*k = 65537-k.
  EXPECT_EQ(CryptKernel::mul(0, 5), 65532u);
}

TEST(IdeaPrimitives, MulInverseRoundTrips) {
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint16_t>(rng.next_below(0x10000));
    const std::uint16_t inv = CryptKernel::mul_inv(x);
    EXPECT_EQ(CryptKernel::mul(x, inv), 1u) << "x=" << x;
  }
  EXPECT_EQ(CryptKernel::mul_inv(0), 0u);  // -1 is self-inverse
  EXPECT_EQ(CryptKernel::mul_inv(1), 1u);
}

TEST(IdeaPrimitives, AddInverse) {
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint16_t>(rng.next_below(0x10000));
    EXPECT_EQ(static_cast<std::uint16_t>(x + CryptKernel::add_inv(x)), 0u);
  }
}

TEST(IdeaPrimitives, BlockRoundTripsForRandomKeys) {
  common::Xoshiro256 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint16_t, 8> userkey{};
    for (auto& k : userkey) {
      k = static_cast<std::uint16_t>(rng.next_below(0x10000));
    }
    const auto z = CryptKernel::encrypt_key(userkey);
    const auto dk = CryptKernel::decrypt_key(z);
    std::uint8_t plain[8];
    std::uint8_t crypt[8];
    std::uint8_t back[8];
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next_below(256));
    CryptKernel::cipher_block(plain, crypt, z);
    CryptKernel::cipher_block(crypt, back, dk);
    EXPECT_TRUE(std::equal(std::begin(plain), std::end(plain),
                           std::begin(back)))
        << "trial " << trial;
  }
}

TEST(IdeaPrimitives, CipherChangesData) {
  std::array<std::uint16_t, 8> userkey{1, 2, 3, 4, 5, 6, 7, 8};
  const auto z = CryptKernel::encrypt_key(userkey);
  std::uint8_t plain[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  std::uint8_t crypt[8];
  CryptKernel::cipher_block(plain, crypt, z);
  EXPECT_FALSE(std::equal(std::begin(plain), std::end(plain),
                          std::begin(crypt)));
}

TEST(IdeaPrimitives, KeyScheduleIsDeterministic) {
  std::array<std::uint16_t, 8> userkey{10, 20, 30, 40, 50, 60, 70, 80};
  EXPECT_EQ(CryptKernel::encrypt_key(userkey),
            CryptKernel::encrypt_key(userkey));
}

// ---- per-kernel behaviour -------------------------------------------------

TEST(Crypt, SizeRoundsUpToBlocks) {
  CryptKernel k(13);  // -> 16 bytes -> 2 blocks -> 1 unit
  EXPECT_EQ(k.units(), 1);
}

TEST(Crypt, ValidateFailsOnWrongChecksum) {
  CryptKernel k(SizeClass::kTiny);
  k.prepare();
  const auto sum = k.run_sequential();
  EXPECT_TRUE(k.validate(sum));
  EXPECT_FALSE(k.validate(sum - 1));
}

TEST(Series, LeadingCoefficientsMatchReference) {
  SeriesKernel k(4);
  k.prepare();
  const auto sum = k.run_sequential();
  EXPECT_TRUE(k.validate(sum));
  EXPECT_NEAR(k.a()[0], 2.8819207855, 1e-9);
  EXPECT_NEAR(k.a()[1], 1.1340408915, 1e-9);
  EXPECT_NEAR(k.b()[1], -1.8820818874, 1e-9);
}

TEST(Series, MinimumTwoCoefficients) {
  SeriesKernel k(0);
  EXPECT_GE(k.units(), 2);
}

TEST(MonteCarlo, DeterministicPerPath) {
  MonteCarloKernel a(SizeClass::kTiny);
  MonteCarloKernel b(SizeClass::kTiny);
  a.prepare();
  b.prepare();
  a.run_sequential();
  b.run_sequential();
  EXPECT_EQ(a.final_prices(), b.final_prices());
}

TEST(MonteCarlo, MeanNearAnalyticExpectation) {
  MonteCarloKernel k(4096, MonteCarloKernel::Params{});
  k.prepare();
  const auto sum = k.run_sequential();
  EXPECT_TRUE(k.validate(sum));
  // E[S_T] = S0 * exp(mu*T); loose band for 4096 samples.
  EXPECT_NEAR(k.mean_final_price(), 100.0 * std::exp(0.05), 3.0);
}

TEST(MonteCarlo, PathsArePositivePrices) {
  MonteCarloKernel k(SizeClass::kTiny);
  k.prepare();
  k.run_sequential();
  for (double p : k.final_prices()) EXPECT_GT(p, 0.0);
}

TEST(RayTracer, RendersNonTrivialImage) {
  RayTracerKernel k(SizeClass::kTiny);
  k.prepare();
  const auto sum = k.run_sequential();
  EXPECT_TRUE(k.validate(sum));
  EXPECT_EQ(k.framebuffer().size(), 32u * 32u);
  std::set<std::uint32_t> distinct(k.framebuffer().begin(),
                                   k.framebuffer().end());
  EXPECT_GT(distinct.size(), 10u);  // shading varies across the image
}

TEST(RayTracer, DeterministicRender) {
  RayTracerKernel a(24, 24);
  RayTracerKernel b(24, 24);
  a.prepare();
  b.prepare();
  EXPECT_EQ(a.run_sequential(), b.run_sequential());
  EXPECT_EQ(a.framebuffer(), b.framebuffer());
}

TEST(RayTracer, CustomDimensions) {
  RayTracerKernel k(17, 9);
  k.prepare();
  EXPECT_EQ(k.units(), 9);
  k.run_sequential();
  EXPECT_EQ(k.framebuffer().size(), 17u * 9u);
}

TEST(Sor, SequentialMatchesPhaseParallelBitExact) {
  SorKernel seq(20, 3);
  SorKernel par(20, 3);
  seq.prepare();
  par.prepare();
  const auto s = seq.run_sequential();
  fj::Team team(4);
  const auto p = par.run_parallel(team, fj::Schedule::kDynamic, 1);
  EXPECT_EQ(s, p);
  EXPECT_DOUBLE_EQ(seq.grid_sum(), par.grid_sum());
  EXPECT_TRUE(seq.validate(s));
  EXPECT_TRUE(par.validate(p));
}

TEST(Sor, RelaxationChangesTheGrid) {
  SorKernel k(16, 1);
  k.prepare();
  const double before = k.grid_sum();
  k.run_sequential();
  EXPECT_NE(k.grid_sum(), before);
  EXPECT_TRUE(std::isfinite(k.grid_sum()));
}

TEST(Sor, UnitCountCoversPhasesAndIterations) {
  SorKernel k(10, 3);
  // 8 interior rows x 2 colours x 3 iterations.
  EXPECT_EQ(k.units(), 8L * 2 * 3);
}

TEST(SparseMatmult, ValidatesAndIsDeterministic) {
  SparseMatmultKernel a(512, 8, 4);
  SparseMatmultKernel b(512, 8, 4);
  a.prepare();
  b.prepare();
  EXPECT_TRUE(a.validate(a.run_sequential()));
  b.run_sequential();
  EXPECT_EQ(a.result(), b.result());
  EXPECT_GT(a.nonzeros(), 0);
}

TEST(SparseMatmult, ParallelEqualsSequentialUnderIrregularRows) {
  SparseMatmultKernel k(777, 12, 3);
  k.prepare();
  const auto seq = k.run_sequential();
  const auto y_seq = k.result();
  fj::Team team(3);
  const auto par = k.run_parallel(team, fj::Schedule::kGuided, 4);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(k.result(), y_seq);
}

// ---- factory --------------------------------------------------------------

TEST(Factory, MakesAllPaperKernels) {
  for (const auto& name : kernel_names()) {
    auto k = make_kernel(name, SizeClass::kTiny);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->name(), name);
    k->prepare();
    EXPECT_TRUE(k->validate(k->run_sequential())) << name;
  }
}

TEST(Factory, ExtendedKernelsIncludePaperSet) {
  const auto& extended = extended_kernel_names();
  for (const auto& name : kernel_names()) {
    EXPECT_NE(std::find(extended.begin(), extended.end(), name),
              extended.end());
  }
  for (const auto& name : extended) {
    auto k = make_kernel(name, SizeClass::kTiny);
    k->prepare();
    EXPECT_TRUE(k->validate(k->run_sequential())) << name;
  }
}

TEST(Factory, RejectsUnknownKernel) {
  EXPECT_THROW(make_kernel("fft", SizeClass::kTiny), std::invalid_argument);
}

// ---- parallel == sequential property sweep --------------------------------

struct KernelCase {
  std::string kernel;
  fj::Schedule sched;
  long chunk;
  int team;
};

class KernelParallelEquality : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelParallelEquality, ChecksumsMatchSequential) {
  const auto& p = GetParam();
  auto k = make_kernel(p.kernel, SizeClass::kTiny);
  k->prepare();
  const auto seq = k->run_sequential();
  EXPECT_TRUE(k->validate(seq));
  fj::Team team(p.team);
  for (int round = 0; round < 2; ++round) {
    const auto par = k->run_parallel(team, p.sched, p.chunk);
    EXPECT_EQ(par, seq);
    EXPECT_TRUE(k->validate(par));
  }
}

std::string kernel_case_name(
    const ::testing::TestParamInfo<KernelCase>& info) {
  const auto& p = info.param;
  return p.kernel + "_" + to_string(p.sched) + "_c" +
         std::to_string(p.chunk) + "_t" + std::to_string(p.team);
}

std::vector<KernelCase> all_kernel_cases() {
  std::vector<KernelCase> cases;
  for (const auto& k : extended_kernel_names()) {
    cases.push_back({k, fj::Schedule::kStatic, 0, 3});
    cases.push_back({k, fj::Schedule::kDynamic, 1, 4});
    cases.push_back({k, fj::Schedule::kGuided, 2, 2});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelParallelEquality,
                         ::testing::ValuesIn(all_kernel_cases()),
                         kernel_case_name);

// ---- work model -----------------------------------------------------------

TEST(WorkModel, SimulatedStretchesDuration) {
  CryptKernel k(SizeClass::kTiny);
  k.prepare();
  const common::Stopwatch real_sw;
  k.run_sequential();
  const double real_ms = real_sw.elapsed_ms();

  k.set_work_model(WorkModel::kSimulated, common::Micros{500});
  const common::Stopwatch sim_sw;
  const auto sum = k.run_sequential();
  const double sim_ms = sim_sw.elapsed_ms();

  // kTiny crypt has 4 units -> >= 2ms simulated.
  EXPECT_GE(sim_ms, 1.8);
  EXPECT_GT(sim_ms, real_ms);
  EXPECT_TRUE(k.validate(sum));  // the real computation still ran
}

TEST(WorkModel, SimulatedParallelRunsOverlap) {
  // Under the simulated model a 3-wide team should finish the sleep-bound
  // kernel in roughly 1/3 the time even on one CPU.
  SeriesKernel k(12);
  k.prepare();
  k.set_work_model(WorkModel::kSimulated, common::Millis{4});
  const common::Stopwatch seq_sw;
  k.run_sequential();
  const double seq_ms = seq_sw.elapsed_ms();
  fj::Team team(3);
  const common::Stopwatch par_sw;
  k.run_parallel(team);
  const double par_ms = par_sw.elapsed_ms();
  EXPECT_GE(seq_ms, 45.0);
  EXPECT_LT(par_ms, seq_ms * 0.65);
}

TEST(WorkModel, DefaultsToReal) {
  CryptKernel k(SizeClass::kTiny);
  EXPECT_EQ(k.work_model(), WorkModel::kReal);
}

// ---- kernel pool ----------------------------------------------------------

TEST(Pool, ReusesReleasedInstances) {
  KernelPool pool("crypt", SizeClass::kTiny);
  Kernel* first = nullptr;
  {
    auto lease = pool.acquire();
    first = lease.get();
  }
  auto lease = pool.acquire();
  EXPECT_EQ(lease.get(), first);
  EXPECT_EQ(pool.created(), 1u);
}

TEST(Pool, GrowsUnderConcurrentLeases) {
  KernelPool pool("series", SizeClass::kTiny);
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.created(), 2u);
}

TEST(Pool, LeasedKernelsArePrepared) {
  KernelPool pool("montecarlo", SizeClass::kTiny);
  auto k = pool.acquire();
  EXPECT_TRUE(k->validate(k->run_sequential()));
}

TEST(Pool, LeaseOutlivesPool) {
  // Regression: a completion callback may drop the last lease after the
  // pool is gone (late SwingWorker closure destruction on a shared pool
  // thread). The deleter co-owns the free list, so this must be safe.
  std::shared_ptr<Kernel> lease;
  {
    KernelPool pool("crypt", SizeClass::kTiny);
    lease = pool.acquire();
  }
  EXPECT_TRUE(lease->validate(lease->run_sequential()));
  lease.reset();  // returns to the orphaned (and then freed) state
}

TEST(Pool, LeaseReleasedConcurrentlyWithPoolDestruction) {
  for (int round = 0; round < 50; ++round) {
    std::jthread dropper;
    {
      KernelPool pool("series", SizeClass::kTiny);
      auto lease = pool.acquire();
      dropper = std::jthread([l = std::move(lease)]() mutable { l.reset(); });
    }  // pool destruction races the dropper
  }
}

TEST(Pool, FactoryFormAppliesCustomConfig) {
  KernelPool pool([] {
    auto k = std::make_unique<CryptKernel>(std::size_t{1024});
    k->prepare();
    return std::unique_ptr<Kernel>(std::move(k));
  });
  auto k = pool.acquire();
  EXPECT_EQ(k->name(), "crypt");
  EXPECT_EQ(k->units(), 2);  // 1024B = 128 blocks = 2 units
}

}  // namespace
}  // namespace evmp::kernels

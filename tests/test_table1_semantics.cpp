// Table I as an automated test: the observable semantics of the four
// scheduling-property-clauses, asserted with coarse timing bounds (the
// bench_table1_modes binary prints the same observations as a table).

#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "event/event_loop.hpp"

namespace evmp {
namespace {

struct ModeObservation {
  double encounter_block_ms = 0.0;
  bool continued_before_finish = false;
  std::uint64_t pumped = 0;
};

class Table1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("worker", 2);
  }
  void TearDown() override { rt_.clear(); }

  /// Observe one 40ms block under `mode`, encountered on the EDT with 5
  /// background events queued.
  ModeObservation observe(Async mode) {
    ModeObservation obs;
    common::CountdownLatch done(1);
    edt_.post([&] {
      std::atomic<std::uint64_t> pumped{0};
      for (int i = 0; i < 5; ++i) {
        edt_.post([&pumped] { pumped.fetch_add(1); });
      }
      std::atomic<bool> finished{false};
      const common::Stopwatch sw;
      auto handle = rt_.invoke_target_block(
          "worker",
          [&finished] {
            common::precise_sleep(common::Millis{40});
            finished.store(true);
          },
          mode, "t1");
      obs.encounter_block_ms = sw.elapsed_ms();
      obs.continued_before_finish = !finished.load();
      obs.pumped = pumped.load();
      if (mode == Async::kNameAs) rt_.wait_tag("t1");
      handle.wait();
      done.count_down();
    });
    done.wait();
    edt_.wait_until_idle();
    return obs;
  }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
};

TEST_F(Table1Test, DefaultWaitsAndPumpsNothing) {
  const auto obs = observe(Async::kDefault);
  EXPECT_GE(obs.encounter_block_ms, 38.0);
  EXPECT_FALSE(obs.continued_before_finish);
  EXPECT_EQ(obs.pumped, 0u);  // plain wait: the queue starves
}

TEST_F(Table1Test, NowaitContinuesImmediately) {
  const auto obs = observe(Async::kNowait);
  EXPECT_LT(obs.encounter_block_ms, 20.0);
  EXPECT_TRUE(obs.continued_before_finish);
}

TEST_F(Table1Test, NameAsContinuesImmediately) {
  const auto obs = observe(Async::kNameAs);
  EXPECT_LT(obs.encounter_block_ms, 20.0);
  EXPECT_TRUE(obs.continued_before_finish);
}

TEST_F(Table1Test, AwaitWaitsButPumpsTheQueue) {
  const auto obs = observe(Async::kAwait);
  EXPECT_GE(obs.encounter_block_ms, 38.0);   // continuation after the block
  EXPECT_FALSE(obs.continued_before_finish);
  EXPECT_EQ(obs.pumped, 5u);  // the logical barrier processed other events
}

}  // namespace
}  // namespace evmp

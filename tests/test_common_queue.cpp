// Unit tests for common/queue (MpmcQueue) and common/sync primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/sync.hpp"

namespace evmp::common {
namespace {

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, PushFrontJumpsTheLine) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push_front(0);
  EXPECT_EQ(*q.try_pop(), 0);
  EXPECT_EQ(*q.try_pop(), 1);
}

TEST(MpmcQueue, PopBlocksUntilPush) {
  MpmcQueue<int> q;
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    q.push(42);
  });
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q;
  std::atomic<int> woke{0};
  {
    std::vector<std::jthread> consumers;
    for (int i = 0; i < 3; ++i) {
      consumers.emplace_back([&] {
        auto v = q.pop();
        EXPECT_FALSE(v.has_value());
        woke.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.close();
  }
  EXPECT_EQ(woke.load(), 3);
}

TEST(MpmcQueue, CloseDrainsRemainingItems) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // refused
  EXPECT_EQ(*q.pop(), 1);   // still poppable
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, PopForTimesOut) {
  MpmcQueue<int> q;
  const auto v = q.pop_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(v.has_value());
}

TEST(MpmcQueue, PopForReturnsItemWithinTimeout) {
  MpmcQueue<int> q;
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.push(7);
  });
  const auto v = q.pop_for(std::chrono::seconds{5});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(MpmcQueue, StressEveryItemDeliveredOnce) {
  MpmcQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  std::mutex seen_mu;
  std::multiset<int> seen;
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          std::scoped_lock lk(seen_mu);
          seen.insert(*v);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
          for (int i = 0; i < kPerProducer; ++i) {
            q.push(p * kPerProducer + i);
          }
        });
      }
    }
    q.close();
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Every value exactly once.
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(seen.count(p * kPerProducer), 1u);
    EXPECT_EQ(seen.count(p * kPerProducer + kPerProducer - 1), 1u);
  }
}

TEST(CountdownLatch, OpensAtZero) {
  CountdownLatch latch(2);
  EXPECT_EQ(latch.pending(), 2u);
  latch.count_down();
  EXPECT_FALSE(latch.wait_for(std::chrono::milliseconds{1}));
  latch.count_down();
  latch.wait();  // returns immediately
  EXPECT_EQ(latch.pending(), 0u);
}

TEST(CountdownLatch, ExtraCountDownIsHarmless) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.count_down();  // no underflow
  EXPECT_TRUE(latch.wait_for(std::chrono::milliseconds{1}));
}

TEST(CountdownLatch, CrossThreadRelease) {
  CountdownLatch latch(3);
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < 3; ++i) {
      workers.emplace_back([&latch] { latch.count_down(); });
    }
  }
  EXPECT_TRUE(latch.wait_for(std::chrono::seconds{5}));
}

TEST(CountdownLatch, ResetRearms) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.wait();
  latch.reset(1);
  EXPECT_FALSE(latch.wait_for(std::chrono::milliseconds{1}));
}

TEST(ManualResetEvent, SetReleasesWaiters) {
  ManualResetEvent ev;
  EXPECT_FALSE(ev.is_set());
  std::jthread setter([&ev] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    ev.set();
  });
  ev.wait();
  EXPECT_TRUE(ev.is_set());
}

TEST(ManualResetEvent, ResetBlocksAgain) {
  ManualResetEvent ev;
  ev.set();
  ev.wait();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

}  // namespace
}  // namespace evmp::common

// Unit tests for common/queue (MpmcQueue), common/sharded_queue
// (ShardedMpmcQueue) and common/sync primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/sharded_queue.hpp"
#include "common/sync.hpp"

namespace evmp::common {
namespace {

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, PushFrontJumpsTheLine) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.push_front(0);
  EXPECT_EQ(*q.try_pop(), 0);
  EXPECT_EQ(*q.try_pop(), 1);
}

TEST(MpmcQueue, PopBlocksUntilPush) {
  MpmcQueue<int> q;
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    q.push(42);
  });
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  MpmcQueue<int> q;
  std::atomic<int> woke{0};
  {
    std::vector<std::jthread> consumers;
    for (int i = 0; i < 3; ++i) {
      consumers.emplace_back([&] {
        auto v = q.pop();
        EXPECT_FALSE(v.has_value());
        woke.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.close();
  }
  EXPECT_EQ(woke.load(), 3);
}

TEST(MpmcQueue, CloseDrainsRemainingItems) {
  MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // refused
  EXPECT_EQ(*q.pop(), 1);   // still poppable
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, PopForTimesOut) {
  MpmcQueue<int> q;
  const auto v = q.pop_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(v.has_value());
}

TEST(MpmcQueue, PopForReturnsItemWithinTimeout) {
  MpmcQueue<int> q;
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.push(7);
  });
  const auto v = q.pop_for(std::chrono::seconds{5});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(MpmcQueue, StressEveryItemDeliveredOnce) {
  MpmcQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  std::mutex seen_mu;
  std::multiset<int> seen;
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          std::scoped_lock lk(seen_mu);
          seen.insert(*v);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
          for (int i = 0; i < kPerProducer; ++i) {
            q.push(p * kPerProducer + i);
          }
        });
      }
    }
    q.close();
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Every value exactly once.
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(seen.count(p * kPerProducer), 1u);
    EXPECT_EQ(seen.count(p * kPerProducer + kPerProducer - 1), 1u);
  }
}

// --- ShardedMpmcQueue ------------------------------------------------------

TEST(ShardedMpmcQueue, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedMpmcQueue<int>(1).shard_count(), 1u);
  EXPECT_EQ(ShardedMpmcQueue<int>(3).shard_count(), 4u);
  EXPECT_EQ(ShardedMpmcQueue<int>(8).shard_count(), 8u);
}

TEST(ShardedMpmcQueue, SingleProducerFifoOrder) {
  // One producer always lands in its home shard, so a lone consumer sees
  // strict FIFO — the per-shard (hence per-producer) ordering guarantee.
  ShardedMpmcQueue<int> q(8);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 100; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(ShardedMpmcQueue, PerShardFifoWithExplicitShards) {
  ShardedMpmcQueue<int> q(4);
  // Interleave pushes into two shards; each shard must stay FIFO.
  q.push_to(0, 1);
  q.push_to(2, 100);
  q.push_to(0, 2);
  q.push_to(2, 200);
  std::vector<int> shard0, shard2;
  for (int i = 0; i < 4; ++i) {
    auto v = q.try_pop(0);
    ASSERT_TRUE(v.has_value());
    (*v < 100 ? shard0 : shard2).push_back(*v);
  }
  EXPECT_EQ(shard0, (std::vector<int>{1, 2}));
  EXPECT_EQ(shard2, (std::vector<int>{100, 200}));
}

TEST(ShardedMpmcQueue, PopPullsFromSiblingShards) {
  ShardedMpmcQueue<int> q(4);
  q.push_to(3, 7);  // consumer's home shard 0 is empty
  auto v = q.pop(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_GE(q.stats().steals, 1u);
}

TEST(ShardedMpmcQueue, BatchEquivalentToIndividualPushes) {
  // push_batch must deliver exactly the items N pushes would, in the same
  // (single-producer) order.
  ShardedMpmcQueue<int> q(4);
  std::vector<int> batch{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(q.push_batch(batch), 8u);
  EXPECT_EQ(q.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  const auto s = q.stats();
  EXPECT_EQ(s.batch_pushes, 1u);
  EXPECT_EQ(s.batch_items, 8u);
  EXPECT_EQ(s.pops, 8u);
}

TEST(ShardedMpmcQueue, BatchOfMoveOnlyPayload) {
  ShardedMpmcQueue<std::unique_ptr<int>> q(2);
  std::vector<std::unique_ptr<int>> batch;
  batch.push_back(std::make_unique<int>(1));
  batch.push_back(std::make_unique<int>(2));
  EXPECT_EQ(q.push_batch(batch), 2u);
  EXPECT_EQ(**q.pop(), 1);
  EXPECT_EQ(**q.pop(), 2);
}

TEST(ShardedMpmcQueue, CloseRefusesPushAndWholeBatches) {
  ShardedMpmcQueue<int> q(4);
  q.push(1);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(2));
  std::vector<int> batch{3, 4, 5};
  // close-while-batching contract: the batch is refused atomically — no
  // partial admission.
  EXPECT_EQ(q.push_batch(batch), 0u);
  EXPECT_EQ(*q.pop(), 1);  // pre-close item still drains
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.size(), 0u);
}

TEST(ShardedMpmcQueue, CloseWakesBlockedConsumers) {
  ShardedMpmcQueue<int> q(4);
  std::atomic<int> woke{0};
  {
    std::vector<std::jthread> consumers;
    for (int i = 0; i < 3; ++i) {
      consumers.emplace_back([&] {
        auto v = q.pop();
        EXPECT_FALSE(v.has_value());
        woke.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.close();
  }
  EXPECT_EQ(woke.load(), 3);
}

TEST(ShardedMpmcQueue, PopBlocksUntilPush) {
  ShardedMpmcQueue<int> q(4);
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    q.push(42);
  });
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(ShardedMpmcQueue, PopForTimesOutAndDelivers) {
  ShardedMpmcQueue<int> q(2);
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds{5}).has_value());
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    q.push(7);
  });
  const auto v = q.pop_for(std::chrono::seconds{5});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(ShardedMpmcQueue, StressEveryItemDeliveredOnce) {
  // Multi-producer multi-consumer, mixed single and batched pushes, with a
  // concurrent close after all producers joined: every item delivered
  // exactly once, none stranded behind the shutdown.
  ShardedMpmcQueue<int> q(4);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 4000;
  std::mutex seen_mu;
  std::multiset<int> seen;
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          std::scoped_lock lk(seen_mu);
          seen.insert(*v);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
          std::vector<int> batch;
          for (int i = 0; i < kPerProducer; ++i) {
            const int value = p * kPerProducer + i;
            if (p % 2 == 0) {
              q.push(value);
            } else {
              batch.push_back(value);
              if (batch.size() == 16) {
                q.push_batch(batch);
                batch.clear();
              }
            }
          }
          if (!batch.empty()) q.push_batch(batch);
        });
      }
    }
    q.close();
  }
  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    ASSERT_EQ(seen.count(v), 1u) << "value " << v;
  }
  const auto s = q.stats();
  EXPECT_EQ(s.pops, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GT(s.batch_pushes, 0u);
}

TEST(CountdownLatch, OpensAtZero) {
  CountdownLatch latch(2);
  EXPECT_EQ(latch.pending(), 2u);
  latch.count_down();
  EXPECT_FALSE(latch.wait_for(std::chrono::milliseconds{1}));
  latch.count_down();
  latch.wait();  // returns immediately
  EXPECT_EQ(latch.pending(), 0u);
}

TEST(CountdownLatch, ExtraCountDownIsHarmless) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.count_down();  // no underflow
  EXPECT_TRUE(latch.wait_for(std::chrono::milliseconds{1}));
}

TEST(CountdownLatch, CrossThreadRelease) {
  CountdownLatch latch(3);
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < 3; ++i) {
      workers.emplace_back([&latch] { latch.count_down(); });
    }
  }
  EXPECT_TRUE(latch.wait_for(std::chrono::seconds{5}));
}

TEST(CountdownLatch, ResetRearms) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.wait();
  latch.reset(1);
  EXPECT_FALSE(latch.wait_for(std::chrono::milliseconds{1}));
}

TEST(ManualResetEvent, SetReleasesWaiters) {
  ManualResetEvent ev;
  EXPECT_FALSE(ev.is_set());
  std::jthread setter([&ev] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    ev.set();
  });
  ev.wait();
  EXPECT_TRUE(ev.is_set());
}

TEST(ManualResetEvent, ResetBlocksAgain) {
  ManualResetEvent ev;
  ev.set();
  ev.wait();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

}  // namespace
}  // namespace evmp::common

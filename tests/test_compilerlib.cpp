// Tests for the evmpcc source-to-source translator: directive parsing
// (Figure 5 grammar), code-aware scanning, block extraction, code
// generation, and full-source translation including nesting.

#include <gtest/gtest.h>

#include "compilerlib/directive.hpp"
#include "compilerlib/function_scanner.hpp"
#include "compilerlib/source_scanner.hpp"
#include "compilerlib/translator.hpp"

namespace evmp::compiler {
namespace {

// ---- directive parser -------------------------------------------------------

TEST(DirectiveParser, TargetVirtualAwait) {
  const auto d = parse_directive("target virtual(worker) await", 3);
  EXPECT_EQ(d.kind, Directive::Kind::kTarget);
  ASSERT_TRUE(d.virtual_name.has_value());
  EXPECT_EQ(*d.virtual_name, "worker");
  EXPECT_EQ(d.mode, Async::kAwait);
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.target_name(), "worker");
}

TEST(DirectiveParser, TargetDeviceDefaultMode) {
  const auto d = parse_directive("target device(2)", 1);
  ASSERT_TRUE(d.device_id.has_value());
  EXPECT_EQ(*d.device_id, 2);
  EXPECT_EQ(d.mode, Async::kDefault);
  EXPECT_EQ(d.target_name(), "device:2");
  EXPECT_TRUE(d.is_device());
}

TEST(DirectiveParser, NameAsCarriesTag) {
  const auto d = parse_directive("target virtual(w) name_as(dl)", 1);
  EXPECT_EQ(d.mode, Async::kNameAs);
  EXPECT_EQ(d.name_tag, "dl");
}

TEST(DirectiveParser, NowaitClause) {
  const auto d = parse_directive("target virtual(w) nowait", 1);
  EXPECT_EQ(d.mode, Async::kNowait);
}

TEST(DirectiveParser, NoTargetPropertyMeansDefaultTarget) {
  const auto d = parse_directive("target nowait", 1);
  EXPECT_FALSE(d.virtual_name.has_value());
  EXPECT_FALSE(d.device_id.has_value());
  EXPECT_TRUE(d.target_name().empty());
}

TEST(DirectiveParser, IfClauseKeepsExpressionText) {
  const auto d =
      parse_directive("target virtual(w) await if(n > compute(3, x))", 1);
  EXPECT_EQ(d.if_condition, "n > compute(3, x)");
}

TEST(DirectiveParser, FirstprivateList) {
  const auto d = parse_directive("target virtual(w) firstprivate(a, b, c)", 1);
  EXPECT_EQ(d.firstprivate, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DirectiveParser, DefaultSharedAndNone) {
  EXPECT_FALSE(parse_directive("target virtual(w) default(shared)", 1)
                   .default_none);
  EXPECT_TRUE(parse_directive("target virtual(w) default(none)", 1)
                  .default_none);
  EXPECT_THROW(parse_directive("target virtual(w) default(bogus)", 1),
               TranslateError);
}

TEST(DirectiveParser, MapClauses) {
  const auto d = parse_directive(
      "target device(0) map(to: a, b) map(from: c) map(tofrom: d)", 1);
  EXPECT_EQ(d.map_to, (std::vector<std::string>{"a", "b", "d"}));
  EXPECT_EQ(d.map_from, (std::vector<std::string>{"c", "d"}));
}

TEST(DirectiveParser, WaitDirective) {
  const auto d = parse_directive("wait(downloads)", 9);
  EXPECT_EQ(d.kind, Directive::Kind::kWait);
  EXPECT_EQ(d.wait_tag, "downloads");
}

TEST(DirectiveParser, CommaSeparatedClauses) {
  const auto d = parse_directive("target virtual(w), nowait", 1);
  EXPECT_EQ(d.mode, Async::kNowait);
}

struct BadDirective {
  std::string text;
  std::string why;
};

class DirectiveParserErrors : public ::testing::TestWithParam<BadDirective> {};

TEST_P(DirectiveParserErrors, Rejects) {
  EXPECT_THROW(parse_directive(GetParam().text, 5), TranslateError)
      << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Bad, DirectiveParserErrors,
    ::testing::Values(
        BadDirective{"task untied", "unknown directive"},
        BadDirective{"target virtual", "virtual without argument"},
        BadDirective{"target virtual()", "empty virtual name"},
        BadDirective{"target device(x)", "non-integer device"},
        BadDirective{"target virtual(a) device(1)",
                     "duplicate target property"},
        BadDirective{"target nowait await", "duplicate scheduling"},
        BadDirective{"target name_as", "name_as without tag"},
        BadDirective{"target frobnicate", "unknown clause"},
        BadDirective{"wait", "wait without tag"},
        BadDirective{"target virtual(w) if()", "empty if"},
        BadDirective{"target virtual(w) map(a)", "map without type"},
        BadDirective{"target virtual(w) map(sideways: a)",
                     "bad map type"},
        BadDirective{"target virtual(w await", "unbalanced paren"}));

TEST(DirectiveParserErrors, ErrorCarriesLineNumber) {
  try {
    parse_directive("target bogus", 17);
    FAIL() << "expected TranslateError";
  } catch (const TranslateError& e) {
    EXPECT_EQ(e.line(), 17);
    EXPECT_NE(std::string(e.what()).find("17"), std::string::npos);
  }
}

TranslateOptions no_include() {
  TranslateOptions o;
  o.add_include = false;
  return o;
}

// ---- traditional directives (parallel / parallel for) ----------------------

TEST(DirectiveParser, PlainParallel) {
  const auto d = parse_directive("parallel", 1);
  EXPECT_EQ(d.kind, Directive::Kind::kParallel);
  EXPECT_TRUE(d.num_threads.empty());
}

TEST(DirectiveParser, ParallelWithClauses) {
  const auto d = parse_directive(
      "parallel num_threads(2*k) firstprivate(a) private(b, c) if(go)", 1);
  EXPECT_EQ(d.kind, Directive::Kind::kParallel);
  EXPECT_EQ(d.num_threads, "2*k");
  EXPECT_EQ(d.firstprivate, (std::vector<std::string>{"a"}));
  EXPECT_EQ(d.privates, (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(d.if_condition, "go");
}

TEST(DirectiveParser, ParallelForWithScheduleAndReductions) {
  const auto d = parse_directive(
      "parallel for schedule(guided, 16) reduction(+: s, t) "
      "reduction(max: m)",
      1);
  EXPECT_EQ(d.kind, Directive::Kind::kParallelFor);
  EXPECT_EQ(d.schedule_kind, "guided");
  EXPECT_EQ(d.schedule_chunk, "16");
  ASSERT_EQ(d.reductions.size(), 3u);
  EXPECT_EQ(d.reductions[0].op, "+");
  EXPECT_EQ(d.reductions[0].var, "s");
  EXPECT_EQ(d.reductions[1].var, "t");
  EXPECT_EQ(d.reductions[2].op, "max");
}

TEST(DirectiveParser, ParallelErrors) {
  EXPECT_THROW(parse_directive("parallel schedule(static)", 1),
               TranslateError);  // schedule needs 'for'
  EXPECT_THROW(parse_directive("parallel for schedule(chaotic)", 1),
               TranslateError);
  EXPECT_THROW(parse_directive("parallel for reduction(avg: x)", 1),
               TranslateError);
  EXPECT_THROW(parse_directive("parallel num_threads()", 1), TranslateError);
  EXPECT_THROW(parse_directive("parallel for reduction(+)", 1),
               TranslateError);
}

TEST(DirectiveParser, RejectsDuplicateClauses) {
  // Target directive: one of each property clause, at most.
  EXPECT_THROW(parse_directive("target virtual(a) virtual(b)", 1),
               TranslateError);
  EXPECT_THROW(parse_directive("target virtual(w) nowait await", 1),
               TranslateError);
  EXPECT_THROW(parse_directive("target virtual(w) if(a) if(b)", 1),
               TranslateError);
  EXPECT_THROW(
      parse_directive("target virtual(w) default(none) default(shared)", 1),
      TranslateError);
  // Parallel / parallel-for.
  EXPECT_THROW(parse_directive("parallel num_threads(2) num_threads(4)", 1),
               TranslateError);
  EXPECT_THROW(
      parse_directive("parallel for schedule(static) schedule(dynamic)", 1),
      TranslateError);
  EXPECT_THROW(parse_directive("parallel if(a) if(b)", 1), TranslateError);
  EXPECT_THROW(
      parse_directive("parallel default(shared) default(none)", 1),
      TranslateError);
  // The error names the clause.
  try {
    (void)parse_directive("parallel num_threads(2) num_threads(4)", 7);
    FAIL() << "expected TranslateError";
  } catch (const TranslateError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate num_threads"),
              std::string::npos)
        << e.what();
  }
}

TEST(ForHeaderParser, CanonicalForms) {
  const auto h = parse_for_header("int i = 0; i < n; ++i", 1);
  EXPECT_EQ(h.type, "int");
  EXPECT_EQ(h.var, "i");
  EXPECT_EQ(h.init, "0");
  EXPECT_EQ(h.bound, "n");

  const auto h2 =
      parse_for_header("std::size_t idx = base(); idx <= last; idx++", 1);
  EXPECT_EQ(h2.type, "std::size_t");
  EXPECT_EQ(h2.var, "idx");
  EXPECT_EQ(h2.init, "base()");
  EXPECT_EQ(h2.bound, "(last) + 1");

  const auto h3 = parse_for_header("long j = a; j < b; j += 1", 1);
  EXPECT_EQ(h3.var, "j");
  const auto h4 = parse_for_header("long j = a; j < b; j = j + 1", 1);
  EXPECT_EQ(h4.var, "j");
}

TEST(ForHeaderParser, RejectsNonCanonicalLoops) {
  EXPECT_THROW(parse_for_header("int i = 0; i < n", 1), TranslateError);
  EXPECT_THROW(parse_for_header("i; i < n; ++i", 1), TranslateError);
  EXPECT_THROW(parse_for_header("int i = 0; i > n; --i", 1), TranslateError);
  EXPECT_THROW(parse_for_header("int i = 0; j < n; ++i", 1), TranslateError);
  EXPECT_THROW(parse_for_header("int i = 0; i < n; i += 2", 1),
               TranslateError);
}

TEST(Translator, ParallelForBecomesWorksharing) {
  const auto r = translate_source(
      "#pragma omp parallel for schedule(dynamic, 2)\n"
      "for (int i = 0; i < n; ++i) { a[i] = i; }\n",
      no_include());
  EXPECT_EQ(r.directives_rewritten, 1);
  EXPECT_NE(r.output.find("default_parallel_for"), std::string::npos);
  EXPECT_NE(r.output.find("Schedule::kDynamic"), std::string::npos);
  EXPECT_NE(r.output.find("int i = static_cast<int>"), std::string::npos);
}

TEST(Translator, ParallelForWithNumThreadsLeasesPooledTeam) {
  const auto r = translate_source(
      "#pragma omp parallel for num_threads(4)\n"
      "for (long i = 0; i < 10; ++i) f(i);\n",
      no_include());
  EXPECT_NE(r.output.find("::evmp::fj::TeamPool::instance().lease"),
            std::string::npos);
  EXPECT_NE(r.output.find("parallel_for(*__evmp_team_0"), std::string::npos);
}

TEST(Translator, NumThreadsAdaptiveLeasesFromGovernor) {
  const auto r = translate_source(
      "#pragma omp parallel for num_threads(adaptive)\n"
      "for (long i = 0; i < 10; ++i) f(i);\n",
      no_include());
  EXPECT_NE(r.output.find("::evmp::fj::TeamPool::instance().lease_adaptive(0)"),
            std::string::npos);
  EXPECT_NE(r.output.find("parallel_for(*__evmp_team_0"), std::string::npos);
}

TEST(Translator, AdaptiveParallelRegionUsesGovernor) {
  const auto r = translate_source(
      "//#omp parallel num_threads( adaptive )\n{ g(); }\n", no_include());
  EXPECT_NE(r.output.find("lease_adaptive(0)"), std::string::npos);
  EXPECT_NE(r.output.find("->parallel(__evmp_region_0)"), std::string::npos);
}

TEST(Translator, AdaptiveReductionSizesPartialsFromLeasedTeam) {
  // The governor picks the width at lease time, so the lease must precede
  // the partial vectors and size them from the leased team.
  const auto r = translate_source(
      "#pragma omp parallel for num_threads(adaptive) reduction(+: sum)\n"
      "for (int i = 0; i < n; ++i) sum += i;\n",
      no_include());
  const auto lease_at = r.output.find("lease_adaptive(0)");
  const auto partials_at = r.output.find("__evmp_red_sum_0(");
  ASSERT_NE(lease_at, std::string::npos);
  ASSERT_NE(partials_at, std::string::npos);
  EXPECT_LT(lease_at, partials_at);
  EXPECT_NE(r.output.find("__evmp_team_0->num_threads()"), std::string::npos);
}

TEST(Translator, ReductionGeneratesPartialsAndCombine) {
  const auto r = translate_source(
      "#pragma omp parallel for reduction(+: sum)\n"
      "for (int i = 0; i < n; ++i) sum += i;\n",
      no_include());
  EXPECT_NE(r.output.find("__evmp_red_sum_0"), std::string::npos);
  EXPECT_NE(r.output.find("ident_plus"), std::string::npos);
  EXPECT_NE(r.output.find("sum = sum + __evmp_p_0.value;"),
            std::string::npos);
}

TEST(Translator, PragmaLineContinuation) {
  const auto r = translate_source(
      "#pragma omp parallel for \\\n    reduction(+: s)\n"
      "for (int i = 0; i < n; ++i) s += i;\n",
      no_include());
  EXPECT_EQ(r.directives_rewritten, 1);
  EXPECT_NE(r.output.find("__evmp_red_s_0"), std::string::npos);
}

TEST(Translator, ParallelRegionUsesTeam) {
  const auto r = translate_source(
      "//#omp parallel num_threads(2)\n{ g(); }\n", no_include());
  EXPECT_NE(r.output.find("::evmp::fj::TeamPool::instance().lease"),
            std::string::npos);
  EXPECT_NE(r.output.find("->parallel(__evmp_region_0)"), std::string::npos);
}

TEST(Translator, ParallelForMissingLoopIsAnError) {
  EXPECT_THROW(
      translate_source("#pragma omp parallel for\nint x = 1;\n"),
      TranslateError);
}

TEST(Translator, NestedTargetInsideParallelFor) {
  const auto r = translate_source(
      "#pragma omp parallel for\n"
      "for (int i = 0; i < n; ++i) {\n"
      "  //#omp target virtual(edt) nowait\n"
      "  { update(i); }\n"
      "}\n",
      no_include());
  EXPECT_EQ(r.directives_rewritten, 2);
  EXPECT_NE(r.output.find("invoke_target_block(\"edt\""), std::string::npos);
}

// ---- source scanner ---------------------------------------------------------

TEST(Scanner, FindsJavaStyleDirective) {
  SourceScanner s("int x;\n//#omp target virtual(w) nowait\n{ x = 1; }\n");
  const auto m = s.find_directive(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->line, 2);
  EXPECT_EQ(m->text, " target virtual(w) nowait");
}

TEST(Scanner, FindsPragmaDirective) {
  SourceScanner s("#pragma omp target virtual(w) await\n{ }\n");
  const auto m = s.find_directive(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->line, 1);
  EXPECT_EQ(m->text, " target virtual(w) await");
}

TEST(Scanner, IgnoresDirectiveLookalikesInStrings) {
  SourceScanner s(
      "const char* s = \"//#omp target virtual(w)\";\n"
      "const char* p = \"#pragma omp target\";\n");
  EXPECT_FALSE(s.find_directive(0).has_value());
}

TEST(Scanner, IgnoresPragmaInBlockComment) {
  SourceScanner s("/* #pragma omp target virtual(w) */ int x;\n");
  EXPECT_FALSE(s.find_directive(0).has_value());
}

TEST(Scanner, OrdinaryCommentIsNotADirective) {
  SourceScanner s("// ompX and omphalos are not directives\nint x;\n");
  EXPECT_FALSE(s.find_directive(0).has_value());
}

TEST(Scanner, ExtractsBracedBlock) {
  const std::string src = "  { a(); { nested(); } b(); }\nrest";
  SourceScanner s(src);
  const auto b = s.extract_block(0);
  EXPECT_TRUE(b.braced);
  EXPECT_EQ(src.substr(b.begin, b.end - b.begin),
            "{ a(); { nested(); } b(); }");
}

TEST(Scanner, ExtractsSingleStatement) {
  const std::string src = "  download(a, \";\", b);\nnext();";
  SourceScanner s(src);
  const auto b = s.extract_block(0);
  EXPECT_FALSE(b.braced);
  EXPECT_EQ(src.substr(b.begin, b.end - b.begin),
            "download(a, \";\", b);");
}

TEST(Scanner, BracesInsideStringsDoNotConfuseExtraction) {
  const std::string src = "{ log(\"{{{\"); }";
  SourceScanner s(src);
  const auto b = s.extract_block(0);
  EXPECT_EQ(b.end, src.size());
}

TEST(Scanner, BracesInsideCommentsDoNotConfuseExtraction) {
  const std::string src = "{ a(); /* } */ b(); }";
  SourceScanner s(src);
  const auto b = s.extract_block(0);
  EXPECT_EQ(b.end, src.size());
}

TEST(Scanner, RawStringsAreSkipped) {
  const std::string src = "{ auto s = R\"(} //#omp target)\"; f(); }";
  SourceScanner s(src);
  const auto b = s.extract_block(0);
  EXPECT_EQ(b.end, src.size());
  EXPECT_FALSE(s.find_directive(0).has_value());
}

TEST(Scanner, RawStringsWithCustomDelimiterHideDirectives) {
  const std::string src =
      "auto s = R\"ev()\" //#omp target virtual(w)\n)ev\";\n"
      "auto t = R\"x(#pragma omp target virtual(w)\n{ })x\";\n";
  SourceScanner s(src);
  EXPECT_FALSE(s.find_directive(0).has_value());
}

TEST(Scanner, PragmaLineContinuationJoinsAndParses) {
  SourceScanner s(
      "#pragma omp target \\\n"
      "    virtual(worker) \\\n"
      "    name_as(batch)\n"
      "{ }\n");
  const auto m = s.find_directive(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->line, 1);
  // The joined clause text must parse as one directive.
  const auto d = parse_directive(m->text, m->line);
  EXPECT_EQ(d.target_name(), "worker");
  EXPECT_EQ(d.name_tag, "batch");
  // The match must cover all three physical lines, so translation resumes
  // after the continuation, at the structured block.
  EXPECT_EQ(s.line_of(m->end), 3);
}

TEST(Scanner, DirectiveOnLastLineWithoutNewline) {
  SourceScanner java("f();\n//#omp wait(x)");
  const auto jm = java.find_directive(0);
  ASSERT_TRUE(jm.has_value());
  EXPECT_EQ(jm->line, 2);
  EXPECT_EQ(jm->text, " wait(x)");

  SourceScanner pragma("f();\n#pragma omp target virtual(w) nowait");
  const auto pm = pragma.find_directive(0);
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(pm->line, 2);
  EXPECT_EQ(pm->text, " target virtual(w) nowait");
}

TEST(Scanner, UnbalancedBlockThrows) {
  SourceScanner s("{ a();");
  EXPECT_THROW((void)s.extract_block(0), TranslateError);
}

TEST(Scanner, MissingBlockThrows) {
  SourceScanner s("   \n  ");
  EXPECT_THROW((void)s.extract_block(0), TranslateError);
}

TEST(Scanner, DigitSeparatorIsNotCharLiteral) {
  SourceScanner s("{ long n = 1'000'000; }");
  const auto b = s.extract_block(0);
  EXPECT_EQ(b.end, s.source().size());
}

// ---- translation ------------------------------------------------------------

TEST(Translator, RewritesSimpleNowait) {
  const auto r = translate_source(
      "//#omp target virtual(worker) nowait\n{ work(); }\n", no_include());
  EXPECT_EQ(r.directives_rewritten, 1);
  EXPECT_NE(r.output.find("__evmp_region_0"), std::string::npos);
  EXPECT_NE(r.output.find("invoke_target_block(\"worker\""),
            std::string::npos);
  EXPECT_NE(r.output.find("Async::kNowait"), std::string::npos);
  EXPECT_NE(r.output.find("work();"), std::string::npos);
  // The directive comment is gone.
  EXPECT_EQ(r.output.find("//#omp"), std::string::npos);
}

TEST(Translator, NestedDirectivesTransformDepthFirst) {
  const std::string src =
      "//#omp target virtual(worker) await\n"
      "{\n"
      "  s1();\n"
      "  //#omp target virtual(edt) nowait\n"
      "  { s2(); }\n"
      "  s3();\n"
      "}\n";
  const auto r = translate_source(src, no_include());
  EXPECT_EQ(r.directives_rewritten, 2);
  const auto outer = r.output.find("invoke_target_block(\"worker\"");
  const auto inner = r.output.find("invoke_target_block(\"edt\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  EXPECT_LT(inner, outer);  // inner call sits inside the outer region body
  EXPECT_NE(r.output.find("__evmp_region_1"), std::string::npos);
}

TEST(Translator, WaitDirectiveBecomesWaitTag) {
  const auto r = translate_source("//#omp wait(dl)\n", no_include());
  EXPECT_EQ(r.directives_rewritten, 1);
  EXPECT_NE(r.output.find("wait_tag(\"dl\")"), std::string::npos);
}

TEST(Translator, NameAsPassesTag) {
  const auto r = translate_source(
      "//#omp target virtual(w) name_as(batch)\nf();\n", no_include());
  EXPECT_NE(r.output.find("Async::kNameAs, \"batch\""), std::string::npos);
}

TEST(Translator, IfClauseFallsBackToInlineCall) {
  const auto r = translate_source(
      "//#omp target virtual(w) nowait if(cond)\n{ f(); }\n", no_include());
  EXPECT_NE(r.output.find("if (cond)"), std::string::npos);
  EXPECT_NE(r.output.find("else { __evmp_region_0(); }"), std::string::npos);
}

TEST(Translator, FirstprivateBecomesValueCapture) {
  const auto r = translate_source(
      "//#omp target virtual(w) nowait firstprivate(x, y)\n{ g(x, y); }\n",
      no_include());
  EXPECT_NE(r.output.find("[&, x, y]"), std::string::npos);
}

TEST(Translator, DefaultNoneDropsReferenceCapture) {
  const auto r = translate_source(
      "//#omp target virtual(w) nowait default(none) firstprivate(x)\n"
      "{ g(x); }\n",
      no_include());
  EXPECT_NE(r.output.find("[x]()"), std::string::npos);
}

TEST(Translator, DeviceTargetEmitsTransfers) {
  const auto r = translate_source(
      "#pragma omp target device(0) map(to: in) map(from: out)\n"
      "{ k(in, out); }\n",
      no_include());
  EXPECT_NE(r.output.find("device_transfer_to(\"device:0\", sizeof(in))"),
            std::string::npos);
  EXPECT_NE(r.output.find("device_transfer_from(\"device:0\", sizeof(out))"),
            std::string::npos);
  EXPECT_NE(r.output.find("invoke_target_block(\"device:0\""),
            std::string::npos);
}

TEST(Translator, NoTargetPropertyUsesDefaultTarget) {
  const auto r =
      translate_source("//#omp target nowait\n{ f(); }\n", no_include());
  EXPECT_NE(r.output.find("invoke_default("), std::string::npos);
}

TEST(Translator, SingleStatementBlock) {
  const auto r = translate_source(
      "//#omp target virtual(w) await\ndownload(i);\n", no_include());
  EXPECT_NE(r.output.find("{ download(i); }"), std::string::npos);
}

TEST(Translator, UntouchedSourcePassesThroughVerbatim) {
  const std::string src = "int main() { return 0; } // no directives\n";
  const auto r = translate_source(src, no_include());
  EXPECT_EQ(r.output, src);
  EXPECT_EQ(r.directives_rewritten, 0);
}

TEST(Translator, IncludeAddedOnlyWhenRewriting) {
  const auto untouched = translate_source("int x;\n");
  EXPECT_EQ(untouched.output.find("#include"), std::string::npos);
  const auto rewritten =
      translate_source("//#omp target virtual(w) nowait\n{ f(); }\n");
  EXPECT_EQ(rewritten.output.rfind("#include \"core/evmp.hpp\"", 0), 0u);
}

TEST(Translator, CustomRuntimeExpression) {
  TranslateOptions opt;
  opt.add_include = false;
  opt.runtime_expr = "my_rt";
  const auto r = translate_source(
      "//#omp target virtual(w) nowait\n{ f(); }\n", opt);
  EXPECT_NE(r.output.find("my_rt.invoke_target_block"), std::string::npos);
}

TEST(Translator, NestedLineNumbersAreAbsolute) {
  const std::string src =
      "a();\n"
      "//#omp target virtual(w) nowait\n"
      "{\n"
      "  //#omp target virtual(edt) nowait\n"
      "  { b(); }\n"
      "}\n";
  const auto r = translate_source(src, no_include());
  EXPECT_NE(r.output.find("evmpcc line 2"), std::string::npos);
  EXPECT_NE(r.output.find("evmpcc line 4"), std::string::npos);
}

TEST(Translator, MalformedDirectiveReportsSourceLine) {
  try {
    translate_source("x();\n//#omp target bogus\n{ }\n");
    FAIL() << "expected TranslateError";
  } catch (const TranslateError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Translator, MissingBlockIsAnError) {
  EXPECT_THROW(translate_source("//#omp target virtual(w) nowait\n"),
               TranslateError);
}

// generate_invocation is exercised directly for precise shape assertions.
TEST(Codegen, AwaitInvocationShape) {
  Directive d;
  d.virtual_name = "worker";
  d.mode = Async::kAwait;
  d.line = 12;
  const auto code =
      generate_invocation(d, " body(); ", true, 7, TranslateOptions{});
  EXPECT_NE(code.find("__evmp_region_7"), std::string::npos);
  EXPECT_NE(code.find("[&]()"), std::string::npos);
  EXPECT_NE(code.find("Async::kAwait"), std::string::npos);
  EXPECT_NE(code.find("body();"), std::string::npos);
}

// ---- function scanner (shared by the analyzer and --annotate-sites) --------

TEST(FunctionScanner, FindsDefinitionsAndParameters) {
  SourceScanner s(
      "int add(int a, int b) { return a + b; }\n"
      "void submit(evmp::Runtime& rt, int& slot) {\n"
      "  rt.post(slot);\n"
      "}\n"
      "int main() { return 0; }\n");
  const auto fns = scan_functions(s);
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_EQ(fns[0].name, "add");
  EXPECT_EQ(fns[0].line, 1);
  ASSERT_EQ(fns[1].params.size(), 2u);
  EXPECT_EQ(fns[1].params[0].name, "rt");
  EXPECT_TRUE(fns[1].params[0].by_ref);
  EXPECT_EQ(fns[1].params[1].name, "slot");
  EXPECT_TRUE(fns[1].params[1].by_ref);
  EXPECT_EQ(fns[2].name, "main");
  // Position attribution: the body of submit encloses rt.post's offset.
  const std::size_t pos = s.source().find("rt.post");
  EXPECT_EQ(function_at(fns, pos), 1);
}

TEST(FunctionScanner, ControlFlowKeywordsAreNotDefinitions) {
  SourceScanner s(
      "void f(int n) {\n"
      "  if (n > 0) { g(); }\n"
      "  while (n < 9) { ++n; }\n"
      "  switch (n) { default: break; }\n"
      "}\n");
  const auto fns = scan_functions(s);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "f");
}

TEST(FunctionScanner, ScanCallsSkipsQualifiedAndMemberCalls) {
  SourceScanner s(
      "void f() {\n"
      "  helper(x);\n"
      "  obj.method(1);\n"
      "  ns::qualified(2);\n"
      "  ptr->deref(3);\n"
      "}\n");
  const auto calls = scan_calls(s, 0, s.source().size());
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].callee, "helper");
  EXPECT_EQ(calls[0].line, 2);
  ASSERT_EQ(calls[0].args.size(), 1u);
  EXPECT_EQ(calls[0].args[0], "x");
}

// ---- --annotate-sites -------------------------------------------------------

TEST(Translator, AnnotateSitesIsOffByDefault) {
  const auto r = translate_source(
      "void f() {\n//#omp target virtual(worker) nowait\n{ work(); }\n}\n",
      no_include());
  EXPECT_EQ(r.output.find("ScopedDispatchSite"), std::string::npos);
}

TEST(Translator, AnnotateSitesNamesTheEnclosingFunction) {
  TranslateOptions o = no_include();
  o.annotate_sites = true;
  const auto r = translate_source(
      "void on_click() {\n"
      "//#omp target virtual(worker) nowait\n{ work(); }\n"
      "//#omp wait(batch)\n"
      "}\n",
      o);
  EXPECT_NE(
      r.output.find(
          "::evmp::analysis::ScopedDispatchSite __evmp_site_0(\"on_click\")"),
      std::string::npos)
      << r.output;
  // The wait rewrite is wrapped in its own braced site scope.
  EXPECT_NE(r.output.find("ScopedDispatchSite __evmp_site(\"on_click\"); "
                          "::evmp::rt().wait_tag(\"batch\");"),
            std::string::npos)
      << r.output;
  // The helper header rides along with the runtime include suppressed.
  EXPECT_EQ(r.output.rfind("#include \"analysis/dispatch_site.hpp\"", 0), 0u)
      << r.output;
}

TEST(Translator, AnnotateSitesFallsBackToFileScope) {
  TranslateOptions o = no_include();
  o.annotate_sites = true;
  const auto r = translate_source(
      "//#omp target virtual(worker) nowait\n{ work(); }\n", o);
  EXPECT_NE(r.output.find("__evmp_site_0(\"<file scope>\")"),
            std::string::npos)
      << r.output;
}

TEST(Translator, AnnotateSitesCoversNestedRegionsWithTheOuterFrame) {
  TranslateOptions o = no_include();
  o.annotate_sites = true;
  const auto r = translate_source(
      "void handler() {\n"
      "//#omp target virtual(worker) await\n"
      "{\n"
      "  //#omp target virtual(edt) nowait\n"
      "  { notify(); }\n"
      "}\n"
      "}\n",
      o);
  EXPECT_NE(r.output.find("__evmp_site_0(\"handler\")"), std::string::npos);
  EXPECT_NE(r.output.find("__evmp_site_1(\"handler\")"), std::string::npos)
      << r.output;
}

}  // namespace
}  // namespace evmp::compiler

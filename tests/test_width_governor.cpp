// Tests for the elastic team-width machinery: WidthGovernor decisions over
// injected signals (deterministic), live lease accounting and decay, and
// TeamPool's adaptive leasing, width-bucketed cache, trim and statistics.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "forkjoin/team_pool.hpp"
#include "forkjoin/width_governor.hpp"

namespace evmp::fj {
namespace {

WidthSignals signals(int active, int queue, int cores) {
  WidthSignals s;
  s.active_leases = active;
  s.queue_depth = queue;
  s.cores = cores;
  return s;
}

// --- decide() over injected signals ---------------------------------------

TEST(WidthGovernor, LoneRegionGetsFullHint) {
  WidthGovernor gov;
  EXPECT_EQ(gov.decide(8, signals(0, 0, 16)), 8);
}

TEST(WidthGovernor, SaturatedLoadClampsToOne) {
  // Fifty concurrent Figure 9 requests on 16 cores: width collapses to 1.
  WidthGovernor gov;
  EXPECT_EQ(gov.decide(8, signals(50, 0, 16)), 1);
}

TEST(WidthGovernor, MidLoadScalesProportionally) {
  WidthGovernor gov;
  // demand = 7 running + the requester = 8; share = 2*16/8 = 4.
  EXPECT_EQ(gov.decide(8, signals(7, 0, 16)), 4);
}

TEST(WidthGovernor, QueueDepthAddsDemand) {
  WidthGovernor gov;
  // demand = 7 + 1 + 8 queued = 16; share = 2*16/16 = 2.
  EXPECT_EQ(gov.decide(8, signals(7, 8, 16)), 2);
}

TEST(WidthGovernor, NonPositiveHintMeansCoreBudget) {
  WidthGovernor gov;
  EXPECT_EQ(gov.decide(0, signals(0, 0, 16)), 16);
  EXPECT_EQ(gov.decide(-1, signals(0, 0, 16)), 16);
}

TEST(WidthGovernor, WidthNeverBelowOne) {
  WidthGovernor gov;
  EXPECT_EQ(gov.decide(1, signals(1000, 1000, 1)), 1);
  EXPECT_EQ(gov.decide(0, signals(1000, 0, 1)), 1);
}

TEST(WidthGovernor, SixteenConcurrentOnSixteenCoresKeepHeadroom) {
  // The kOversubscription=2 headroom: demand == cores still grants 2-wide
  // teams instead of collapsing to sequential.
  WidthGovernor gov;
  EXPECT_EQ(gov.decide(8, signals(15, 0, 16)), 2);
}

TEST(WidthGovernor, HistogramsRecordRequestedAndGranted) {
  WidthGovernor gov;
  gov.decide(8, signals(0, 0, 16));   // requested 8, granted 8
  gov.decide(8, signals(50, 0, 16));  // requested 8, granted 1
  const auto requested = gov.requested_histogram();
  const auto granted = gov.granted_histogram();
  // bucket 3 holds widths 5-8; bucket 0 holds width 1.
  EXPECT_EQ(requested[3], 2u);
  EXPECT_EQ(granted[3], 1u);
  EXPECT_EQ(granted[0], 1u);
}

TEST(WidthGovernor, SetCoresOverridesBudget) {
  WidthGovernor gov;
  gov.set_cores(4);
  EXPECT_EQ(gov.cores(), 4);
  EXPECT_EQ(gov.decide(8, signals(0, 0, 0)), 8);  // 2*4 >= 8
  EXPECT_EQ(gov.decide(8, signals(7, 0, 0)), 1);  // 2*4/8 = 1
  gov.set_cores(0);
  EXPECT_GE(gov.cores(), 1);  // back to hardware_concurrency
}

// --- live lease accounting and decay --------------------------------------

TEST(WidthGovernor, LeaseAccountingTracksActiveAndHighWater) {
  WidthGovernor gov;
  EXPECT_EQ(gov.active(), 0);
  gov.on_lease();
  gov.on_lease();
  EXPECT_EQ(gov.active(), 2);
  EXPECT_EQ(gov.high_water(), 2);
  gov.on_release();
  EXPECT_EQ(gov.active(), 1);
  EXPECT_EQ(gov.high_water(), 2);  // monotone
  gov.on_release();
}

TEST(WidthGovernor, DecayDueEveryPeriod) {
  WidthGovernor gov;
  for (std::uint32_t i = 1; i < WidthGovernor::kDecayPeriod; ++i) {
    EXPECT_FALSE(gov.decay_due()) << "call " << i;
  }
  EXPECT_TRUE(gov.decay_due());
  EXPECT_FALSE(gov.decay_due());  // counter reset
}

TEST(WidthGovernor, BurstEstimateDecaysToOneNotZero) {
  WidthGovernor gov;
  for (int i = 0; i < 10; ++i) gov.on_lease();
  for (int i = 0; i < 10; ++i) gov.on_release();
  EXPECT_EQ(gov.decayed_high_water(), 10);
  // Halves toward current activity (0), rounding up: 10→5→3→2→1→1. The
  // floor never reaches 0 — a live adaptive load keeps one warm team.
  std::size_t prev = 10;
  for (int i = 0; i < 8; ++i) {
    const std::size_t floor = gov.decay();
    EXPECT_LE(floor, prev);
    EXPECT_GE(floor, 1u);
    prev = floor;
  }
  EXPECT_EQ(prev, 1u);
}

TEST(WidthGovernor, SustainedLoadKeepsEstimate) {
  WidthGovernor gov;
  for (int i = 0; i < 6; ++i) gov.on_lease();
  EXPECT_EQ(gov.decay(), 6u);  // current activity holds the floor up
  EXPECT_EQ(gov.decay(), 6u);
  for (int i = 0; i < 6; ++i) gov.on_release();
}

// --- TeamPool adaptive leasing --------------------------------------------

TEST(TeamPoolAdaptive, LoneAdaptiveLeaseGetsFullHint) {
  TeamPool pool;
  pool.governor().set_cores(16);
  auto lease = pool.lease_adaptive(8);
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->num_threads(), 8);
}

TEST(TeamPoolAdaptive, ConcurrentLoadNarrowsAdaptiveLeases) {
  TeamPool pool;
  pool.governor().set_cores(4);
  // Seven regions already running on 4 cores: demand 8, share 2*4/8 = 1.
  std::vector<TeamPool::Lease> running;
  running.reserve(7);
  for (int i = 0; i < 7; ++i) running.push_back(pool.lease(1));
  auto narrow = pool.lease_adaptive(8);
  EXPECT_EQ(narrow->num_threads(), 1);
}

TEST(TeamPoolAdaptive, HintZeroMeansCoreBudget) {
  TeamPool pool;
  pool.governor().set_cores(3);
  auto lease = pool.lease_adaptive(0);
  EXPECT_EQ(lease->num_threads(), 3);
}

TEST(TeamPoolAdaptive, AdaptiveLeasesReuseCachedTeams) {
  TeamPool pool;
  pool.governor().set_cores(16);
  for (int i = 0; i < 200; ++i) {
    auto lease = pool.lease_adaptive(4);
    EXPECT_EQ(lease->num_threads(), 4);
  }
  // Sequential adaptive load: one team, reused; the decay/trim cycles
  // (every kDecayPeriod leases) must not evict the warm team.
  EXPECT_EQ(pool.teams_created(), 1u);
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(TeamPoolAdaptive, AdaptiveWidthIsRunnable) {
  TeamPool pool;
  pool.governor().set_cores(8);
  auto lease = pool.lease_adaptive(4);
  std::atomic<int> ran{0};
  lease->parallel([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), lease->num_threads());
}

// --- trim / idle accounting / stats ---------------------------------------

TEST(TeamPoolTrim, TrimsDownToFloor) {
  TeamPool pool;
  { auto a = pool.lease(2); auto b = pool.lease(3); auto c = pool.lease(4); }
  EXPECT_EQ(pool.idle_count(), 3u);
  pool.trim(1);
  EXPECT_EQ(pool.idle_count(), 1u);
  pool.trim(0);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(TeamPoolTrim, TrimIsNoopAtOrBelowFloor) {
  TeamPool pool;
  { auto a = pool.lease(2); }
  const auto created = pool.teams_created();
  pool.trim(1);
  pool.trim(5);
  EXPECT_EQ(pool.idle_count(), 1u);
  // The kept team is still a cache hit.
  { auto again = pool.lease(2); }
  EXPECT_EQ(pool.teams_created(), created);
}

TEST(TeamPoolTrim, WidestTeamsDropFirst) {
  TeamPool pool;
  { auto narrow = pool.lease(2); auto wide = pool.lease(8); }
  EXPECT_EQ(pool.idle_count(), 2u);
  pool.trim(1);  // the width-8 team pins more helpers: it goes first
  EXPECT_EQ(pool.idle_count(), 1u);
  const auto created = pool.teams_created();
  { auto narrow = pool.lease(2); }
  EXPECT_EQ(pool.teams_created(), created);  // width 2 survived
  { auto wide = pool.lease(8); }
  EXPECT_EQ(pool.teams_created(), created + 1);  // width 8 was trimmed
}

TEST(TeamPoolTrim, LeasedTeamsAreUnaffected) {
  TeamPool pool;
  auto held = pool.lease(3);
  pool.trim(0);
  EXPECT_EQ(pool.active_leases(), 1);
  std::atomic<int> ran{0};
  held->parallel([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(TeamPoolStats, ActiveAndHighWaterTrackLeases) {
  TeamPool pool;
  EXPECT_EQ(pool.active_leases(), 0);
  {
    auto a = pool.lease(2);
    auto b = pool.lease(2);
    EXPECT_EQ(pool.active_leases(), 2);
    EXPECT_EQ(pool.leased_high_water(), 2);
  }
  EXPECT_EQ(pool.active_leases(), 0);
  EXPECT_EQ(pool.leased_high_water(), 2);  // monotone
}

TEST(TeamPoolStats, SequentialLeasesNeverContend) {
  TeamPool pool;
  for (int i = 0; i < 50; ++i) { auto lease = pool.lease(2); }
  EXPECT_EQ(pool.lease_contentions(), 0u);
}

TEST(TeamPoolStats, OverflowWidthsMatchExactly) {
  // Widths beyond the direct-mapped buckets share the overflow bucket but
  // must still lease by exact width.
  TeamPool pool;
  { auto a = pool.lease(70); auto b = pool.lease(80); }
  EXPECT_EQ(pool.idle_count(), 2u);
  {
    auto b = pool.lease(80);
    EXPECT_EQ(b->num_threads(), 80);
  }
  EXPECT_EQ(pool.teams_created(), 2u);  // both leases were cache hits
}

TEST(TeamPoolStats, ConcurrentAdaptiveLeasesStayExclusive) {
  TeamPool pool;
  pool.governor().set_cores(4);
  std::atomic<int> total{0};
  std::vector<std::thread> users;
  users.reserve(4);
  for (int u = 0; u < 4; ++u) {
    users.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto lease = pool.lease_adaptive(4);
        const int width = lease->num_threads();
        EXPECT_GE(width, 1);
        EXPECT_LE(width, 4);
        std::atomic<int> ran{0};
        lease->parallel([&](int, int) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), width);
        total.fetch_add(1);
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(total.load(), 200);
  EXPECT_EQ(pool.active_leases(), 0);
  EXPECT_LE(pool.leased_high_water(), 4);
}

}  // namespace
}  // namespace evmp::fj

# CLI contract test for evmpcc, run as a CTest script:
#   cmake -DEVMPCC=<binary> -DFIXTURES=<dir> -DWORKDIR=<dir> -P this_file
#
# Exit-code contract (documented in tools/evmpcc_main.cpp):
#   0 success, 1 file I/O error, 2 usage error, 3 translate error,
#   4 analysis gate failure.

function(run_evmpcc expect_code)
  execute_process(
    COMMAND ${EVMPCC} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "evmpcc ${ARGN}: expected exit ${expect_code}, "
                        "got ${code}\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(out "${out}" PARENT_SCOPE)
  set(err "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains haystack needle context)
  if(NOT "${${haystack}}" MATCHES "${needle}")
    message(FATAL_ERROR "${context}: expected match for '${needle}' in:\n"
                        "${${haystack}}")
  endif()
endfunction()

# --version reports the tool and exits 0.
run_evmpcc(0 --version)
expect_contains(out "evmpcc" "--version")

# --help goes to stdout and exits 0.
run_evmpcc(0 --help)
expect_contains(out "usage:" "--help")

# No input file is a usage error.
run_evmpcc(2)

# Dangling option arguments are explicit usage errors.
run_evmpcc(2 -o)
expect_contains(err "requires an argument" "-o without value")
run_evmpcc(2 --runtime)
expect_contains(err "requires an argument" "--runtime without value")

# Unknown flags are usage errors.
run_evmpcc(2 --frobnicate ${FIXTURES}/clean_pipeline.cpp)

# A malformed directive is a translate error (exit 3) without --analyze...
run_evmpcc(3 ${FIXTURES}/p1_malformed.cpp -o ${WORKDIR}/p1_out.cpp)
expect_contains(err "line 4" "translate error line anchor")

# ...and an analysis gate failure (exit 4) with it.
run_evmpcc(4 --analyze-only ${FIXTURES}/p1_malformed.cpp)
expect_contains(err "P1" "p1 analyze")

# The clean fixture passes the strictest gate.
run_evmpcc(0 --analyze-only --Werror ${FIXTURES}/clean_pipeline.cpp)

# Errors always gate; warnings gate only under --Werror.
run_evmpcc(4 --analyze-only ${FIXTURES}/e1_self_blocking.cpp)
expect_contains(err "error\\[E1\\]" "e1 analyze")
run_evmpcc(0 --analyze-only ${FIXTURES}/w2_loop_capture.cpp)
expect_contains(err "warning\\[W2\\]" "w2 analyze")
run_evmpcc(4 --analyze-only --Werror ${FIXTURES}/w2_loop_capture.cpp)
expect_contains(err "--Werror" "w2 Werror gate message")

# Data races: definite races are errors (always gate), heuristic-grade
# races are warnings (gate only under --Werror).
run_evmpcc(4 --analyze-only ${FIXTURES}/e4_write_write.cpp)
expect_contains(err "error\\[E4\\]" "e4 analyze")
expect_contains(err "data race" "e4 message")
run_evmpcc(0 --analyze-only ${FIXTURES}/w3_conditional.cpp)
expect_contains(err "warning\\[W3\\]" "w3 analyze")
run_evmpcc(4 --analyze-only --Werror ${FIXTURES}/w3_conditional.cpp)

# wait(tag) joins order the pipeline: no race diagnostics.
run_evmpcc(0 --analyze-only --Werror ${FIXTURES}/clean_joined_pipeline.cpp)

# evmp-lint-ignore suppresses an acknowledged finding; --no-ignores audits
# past the suppression comments.
run_evmpcc(0 --analyze-only --Werror ${FIXTURES}/clean_suppressed_e4.cpp)
run_evmpcc(4 --analyze-only --Werror --no-ignores
           ${FIXTURES}/clean_suppressed_e4.cpp)
expect_contains(err "error\\[E4\\]" "no-ignores audit")

# JSON diagnostics go to stdout with the documented schema.
run_evmpcc(4 --analyze-only --diag-format=json ${FIXTURES}/e1_self_blocking.cpp)
expect_contains(out "\"rule\": \"E1\"" "json rule")
expect_contains(out "\"severity\": \"error\"" "json severity")
expect_contains(out "\"line\": 9" "json line")
expect_contains(out "\"errors\": 1" "json error count")

# --analyze (without -only) still translates when the gate passes.
run_evmpcc(0 --analyze --Werror ${FIXTURES}/clean_pipeline.cpp
           -o ${WORKDIR}/clean_out.cpp)
if(NOT EXISTS ${WORKDIR}/clean_out.cpp)
  message(FATAL_ERROR "--analyze did not produce the translated output")
endif()

# Use-after-scope: E5 is an error (gates without --Werror); W4 is the
# conditional-escape warning (gates only under --Werror).
run_evmpcc(4 --analyze-only ${FIXTURES}/e5_use_after_scope.cpp)
expect_contains(err "error\\[E5\\]" "e5 analyze")
expect_contains(err "use after scope" "e5 message")
run_evmpcc(0 --analyze-only ${FIXTURES}/w4_conditional_escape.cpp)
expect_contains(err "warning\\[W4\\]" "w4 analyze")
run_evmpcc(4 --analyze-only --Werror ${FIXTURES}/w4_conditional_escape.cpp)

# The interprocedural clean fixture passes the strictest gate: the escape
# through the helper is joined by wait(batch) while the storage is live.
run_evmpcc(0 --analyze-only --Werror ${FIXTURES}/clean_interprocedural.cpp)

# Multi-TU linking: each half of the producer/consumer pair warns W1 when
# linted alone, the linked pair is clean.
run_evmpcc(4 --analyze-only --Werror ${FIXTURES}/multi_tu_producer.cpp)
expect_contains(err "warning\\[W1\\]" "producer alone")
run_evmpcc(4 --analyze-only --Werror ${FIXTURES}/multi_tu_consumer.cpp)
expect_contains(err "warning\\[W1\\]" "consumer alone")
run_evmpcc(0 --analyze-only --Werror ${FIXTURES}/multi_tu_producer.cpp
           ${FIXTURES}/multi_tu_consumer.cpp)

# Several inputs without --analyze-only cannot be translated.
run_evmpcc(2 ${FIXTURES}/multi_tu_producer.cpp
           ${FIXTURES}/multi_tu_consumer.cpp)
expect_contains(err "require --analyze-only" "multi-input usage error")

# --analyze-project links every TU under the directory: the corpus holds
# known-bad fixtures, so the gate fails — with findings from several files.
run_evmpcc(4 --analyze-project ${FIXTURES})
expect_contains(err "e1_self_blocking.cpp" "project lint names files")
expect_contains(err "error\\[E5\\]" "project lint reaches e5")

# SARIF diagnostics go to stdout with the 2.1.0 schema.
run_evmpcc(4 --analyze-only --diag-format=sarif
           ${FIXTURES}/e1_self_blocking.cpp)
expect_contains(out "\"version\": \"2.1.0\"" "sarif version")
expect_contains(out "\"ruleId\": \"E1\"" "sarif ruleId")
expect_contains(out "\"name\": \"evmpcc\"" "sarif driver")
run_evmpcc(2 --diag-format=yaml ${FIXTURES}/clean_pipeline.cpp)

# --annotate-sites wraps generated dispatches in ScopedDispatchSite frames;
# the default translation stays free of them.
run_evmpcc(0 --annotate-sites ${FIXTURES}/e1_self_blocking.cpp
           -o ${WORKDIR}/annotated_out.cpp)
file(READ ${WORKDIR}/annotated_out.cpp annotated)
expect_contains(annotated "ScopedDispatchSite" "annotate-sites emits frames")
run_evmpcc(0 ${FIXTURES}/e1_self_blocking.cpp -o ${WORKDIR}/plain_out.cpp)
file(READ ${WORKDIR}/plain_out.cpp plain)
if("${plain}" MATCHES "ScopedDispatchSite")
  message(FATAL_ERROR "plain translation must not emit dispatch sites")
endif()

message(STATUS "evmpcc CLI contract: all checks passed")

// Tests for the manual-concurrency baselines (SwingWorker, ExecutorService,
// thread-per-request) and the unified approach driver of §V.A.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/approaches.hpp"
#include "baselines/executor_service.hpp"
#include "baselines/swing_worker.hpp"
#include "baselines/thread_per_request.hpp"
#include "common/sync.hpp"
#include "event/load.hpp"

namespace evmp::baselines {
namespace {

// ---- SwingWorker ----------------------------------------------------------

class SwingWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override { edt_.start(); }
  event::EventLoop edt_{"edt"};
};

class RecordingWorker final : public SwingWorker<int, int> {
 public:
  RecordingWorker(event::EventLoop& edt, common::CountdownLatch& done)
      : SwingWorker(edt), done_(done) {}

  std::atomic<bool> background_off_edt{false};
  std::atomic<bool> process_on_edt{false};
  std::atomic<bool> done_on_edt{false};
  std::atomic<int> processed_chunks{0};

 protected:
  int do_in_background() override {
    background_off_edt.store(!edt().is_dispatch_thread());
    publish(10);
    publish(20);  // likely coalesced with the previous one
    common::precise_sleep(common::Millis{5});
    publish(30);
    return 42;
  }
  void process(const std::vector<int>& chunks) override {
    process_on_edt.store(edt().is_dispatch_thread());
    processed_chunks.fetch_add(static_cast<int>(chunks.size()));
  }
  void done() override {
    done_on_edt.store(edt().is_dispatch_thread());
    done_.count_down();
  }

 private:
  common::CountdownLatch& done_;
};

TEST_F(SwingWorkerTest, LifecycleThreadsAreCorrect) {
  common::CountdownLatch latch(1);
  auto worker = std::make_shared<RecordingWorker>(edt_, latch);
  worker->execute();
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  edt_.wait_until_idle();
  EXPECT_TRUE(worker->background_off_edt.load());
  EXPECT_TRUE(worker->process_on_edt.load());
  EXPECT_TRUE(worker->done_on_edt.load());
  EXPECT_TRUE(worker->is_done());
  EXPECT_EQ(worker->get(), 42);
}

TEST_F(SwingWorkerTest, PublishCoalesces) {
  common::CountdownLatch latch(1);
  auto worker = std::make_shared<RecordingWorker>(edt_, latch);
  worker->execute();
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  edt_.wait_until_idle();
  // All three published chunks arrive, in at most three process() calls.
  EXPECT_EQ(worker->processed_chunks.load(), 3);
}

class ThrowingWorker final : public SwingWorker<int, int> {
 public:
  using SwingWorker::SwingWorker;
  std::atomic<bool> done_ran{false};

 protected:
  int do_in_background() override { throw std::runtime_error("bg failure"); }
  void done() override { done_ran.store(true); }
};

TEST_F(SwingWorkerTest, GetRethrowsBackgroundException) {
  auto worker = std::make_shared<ThrowingWorker>(edt_);
  worker->execute();
  EXPECT_THROW(worker->get(), std::runtime_error);
  // get() returns as soon as the exception is stored — possibly before the
  // background thread posted done(); poll for it instead of assuming the
  // EDT queue already holds it.
  for (int i = 0; i < 2000 && !worker->done_ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  EXPECT_TRUE(worker->done_ran.load());  // done() still runs, as in Swing
}

TEST(SwingWorkerPool, IsCappedAtTenThreads) {
  EXPECT_EQ(swing_worker_pool().concurrency(), kSwingWorkerPoolThreads);
}

// ---- ExecutorService ------------------------------------------------------

TEST(ExecutorServiceTest, SubmitReturnsFutureResult) {
  ExecutorService es(2);
  auto f = es.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
  es.shutdown();
}

TEST(ExecutorServiceTest, FuturePropagatesException) {
  ExecutorService es(1);
  auto f = es.submit([]() -> int { throw std::logic_error("task failed"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ExecutorServiceTest, ExecuteFireAndForget) {
  ExecutorService es(2);
  std::atomic<int> count{0};
  common::CountdownLatch latch(10);
  for (int i = 0; i < 10; ++i) {
    es.execute([&] {
      count.fetch_add(1);
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(count.load(), 10);
}

TEST(ExecutorServiceTest, ShutdownDrains) {
  std::atomic<int> count{0};
  ExecutorService es(1);
  for (int i = 0; i < 20; ++i) {
    es.execute([&] { count.fetch_add(1); });
  }
  es.shutdown();
  EXPECT_EQ(count.load(), 20);
}

// ---- ThreadPerRequest -----------------------------------------------------

TEST(ThreadPerRequestTest, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPerRequest tpr;
    for (int i = 0; i < 25; ++i) {
      tpr.launch([&] { count.fetch_add(1); });
    }
    tpr.join_all();
  }
  EXPECT_EQ(count.load(), 25);
}

TEST(ThreadPerRequestTest, CountsLaunchesAndPeak) {
  ThreadPerRequest tpr;
  common::ManualResetEvent release;
  common::CountdownLatch started(3);
  for (int i = 0; i < 3; ++i) {
    tpr.launch([&] {
      started.count_down();
      release.wait();
    });
  }
  ASSERT_TRUE(started.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(tpr.launched(), 3u);
  EXPECT_GE(tpr.peak_live(), 3u);
  release.set();
  tpr.join_all();
}

TEST(ThreadPerRequestTest, ReapJoinsOnlyFinished) {
  ThreadPerRequest tpr;
  common::ManualResetEvent release;
  common::CountdownLatch fast_done(1);
  tpr.launch([&] { release.wait(); });  // slow
  tpr.launch([&] { fast_done.count_down(); });
  ASSERT_TRUE(fast_done.wait_for(std::chrono::seconds{10}));
  // Give the fast thread a moment to set its finished flag after counting.
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_EQ(tpr.reap(), 1u);
  release.set();
  tpr.join_all();
  EXPECT_EQ(tpr.reap(), 0u);
}

// ---- approach driver sweep -------------------------------------------------

/// Full §V.A environment; each approach must handle a burst of events with
/// zero GUI-confinement violations and all completions signalled.
class ApproachTest : public ::testing::TestWithParam<Approach> {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("worker", 3);
    gui_ = std::make_unique<event::Gui>(edt_, event::ConfinementPolicy::kCount);
    status_ = &gui_->add_label("status");
    progress_ = &gui_->add_progress_bar("progress");
    kernels_ = std::make_unique<kernels::KernelPool>(
        "crypt", kernels::SizeClass::kTiny);
    executor_service_ = std::make_unique<ExecutorService>(3);
    thread_per_request_ = std::make_unique<ThreadPerRequest>();
    // The sync-parallel team is owned by the EDT's usage pattern: create it
    // from the EDT so thread 0 is the EDT.
    sync_team_ = std::make_unique<fj::Team>(4);
    env_ = std::make_unique<GuiBenchEnv>(GuiBenchEnv{
        edt_, rt_, *status_, *progress_, *kernels_,
        executor_service_.get(), thread_per_request_.get(), sync_team_.get(),
        4, &sink_});
  }

  void TearDown() override {
    thread_per_request_->join_all();
    executor_service_->shutdown();
    rt_.clear();
  }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
  std::unique_ptr<event::Gui> gui_;
  event::Label* status_ = nullptr;
  event::ProgressBar* progress_ = nullptr;
  std::unique_ptr<kernels::KernelPool> kernels_;
  std::unique_ptr<ExecutorService> executor_service_;
  std::unique_ptr<ThreadPerRequest> thread_per_request_;
  std::unique_ptr<fj::Team> sync_team_;
  std::atomic<std::uint64_t> sink_{0};
  std::unique_ptr<GuiBenchEnv> env_;
};

TEST_P(ApproachTest, HandlesBurstCompletelyAndConfined) {
  const Approach approach = GetParam();
  event::OpenLoopDriver::Options opt;
  opt.count = 12;
  opt.rate_hz = 300.0;
  const auto result = event::OpenLoopDriver::run(
      edt_, opt,
      [&](std::size_t index, const event::CompletionToken& token) {
        handle_event(approach, *env_, index, token);
      });
  EXPECT_TRUE(result.all_completed) << to_string(approach);
  EXPECT_EQ(result.completed, 12u);
  edt_.wait_until_idle();
  EXPECT_EQ(gui_->violations(), 0u) << to_string(approach);
  // Every request ran both kernel halves: checksum sink advanced.
  EXPECT_GT(sink_.load(), 0u);
  // S4 ran per request.
  EXPECT_GE(status_->updates(), 12u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, ApproachTest,
    ::testing::ValuesIn(all_approaches()),
    [](const ::testing::TestParamInfo<Approach>& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(ApproachChurn, RepeatedRoundsSurviveTeardownRaces) {
  // Regression for two teardown races: (1) cv notify-after-unlock vs
  // EventLoop destruction, (2) kernel-lease release on a lagging shared
  // SwingWorker pool thread after the round's KernelPool died. Rapid
  // create/run/destroy cycles across approaches exercise both windows.
  for (int round = 0; round < 6; ++round) {
    event::EventLoop edt("edt");
    edt.start();
    Runtime rt;
    rt.register_edt("edt", edt);
    rt.create_worker("worker", 2);
    event::Gui gui(edt, event::ConfinementPolicy::kCount);
    auto& status = gui.add_label("s");
    auto& progress = gui.add_progress_bar("p");
    kernels::KernelPool pool("crypt", kernels::SizeClass::kTiny);
    ExecutorService es(2);
    ThreadPerRequest tpr;
    fj::Team team(2);
    std::atomic<std::uint64_t> sink{0};
    GuiBenchEnv env{edt, rt, status, progress, pool,
                    &es, &tpr, &team, 2, &sink};

    const Approach approach =
        all_approaches()[static_cast<std::size_t>(round) %
                         all_approaches().size()];
    event::OpenLoopDriver::Options opt;
    opt.count = 5;
    opt.rate_hz = 2000.0;
    const auto result = event::OpenLoopDriver::run(
        edt, opt, [&](std::size_t i, const event::CompletionToken& token) {
          handle_event(approach, env, i, token);
        });
    EXPECT_TRUE(result.all_completed) << to_string(approach);
    edt.wait_until_idle();
    tpr.join_all();
    es.shutdown();
    rt.clear();
    // Immediate destruction here is the race window under test.
  }
}

TEST(ApproachNames, RoundTrip) {
  for (Approach a : all_approaches()) {
    const auto parsed = parse_approach(to_string(a));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(parse_approach("nonsense").has_value());
}

}  // namespace
}  // namespace evmp::baselines

// Tests for the work-stealing executor and its use as a virtual target.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "executor/work_stealing_executor.hpp"

namespace evmp::exec {
namespace {

TEST(WorkStealing, PostBatchRunsAllTasks) {
  WorkStealingExecutor pool("ws", 3);
  std::atomic<int> count{0};
  common::CountdownLatch latch(100);
  std::vector<Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&] {
      count.fetch_add(1);
      latch.count_down();
    });
  }
  pool.post_batch(tasks);
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.batch_posts(), 1u);
}

TEST(WorkStealing, PostBatchAfterShutdownIsDropped) {
  WorkStealingExecutor pool("ws", 1);
  pool.shutdown();
  std::atomic<bool> ran{false};
  std::vector<Task> tasks;
  tasks.emplace_back([&] { ran.store(true); });
  pool.post_batch(tasks);
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(ran.load());
}

TEST(WorkStealing, RunsAllTasks) {
  WorkStealingExecutor pool("ws", 3);
  std::atomic<int> count{0};
  common::CountdownLatch latch(200);
  for (int i = 0; i < 200; ++i) {
    pool.post([&] {
      count.fetch_add(1);
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.concurrency(), 3u);
}

TEST(WorkStealing, MemberThreadsAreOwned) {
  WorkStealingExecutor pool("ws", 2);
  std::atomic<bool> member{false};
  common::CountdownLatch latch(1);
  pool.post([&] {
    member.store(pool.owns_current_thread());
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  EXPECT_TRUE(member.load());
  EXPECT_FALSE(pool.owns_current_thread());
}

TEST(WorkStealing, RecursiveSpawnDoesNotDeadlock) {
  // Tasks that spawn subtasks and wait for them via try_run_one (helping):
  // the pattern nested target blocks produce.
  WorkStealingExecutor pool("ws", 2);
  std::atomic<int> leaves{0};
  common::CountdownLatch latch(4);
  for (int i = 0; i < 4; ++i) {
    pool.post([&] {
      CompletionRef state = CompletionState::make();
      pool.post([&, state] {
        leaves.fetch_add(1);
        state->set_done();
      });
      while (!state->done()) {
        if (!pool.try_run_one()) std::this_thread::yield();
      }
      latch.count_down();
    });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(leaves.load(), 4);
}

TEST(WorkStealing, StealsWhenOneWorkerIsBusy) {
  WorkStealingExecutor pool("ws", 2);
  common::ManualResetEvent release;
  common::CountdownLatch started(1);
  common::CountdownLatch spawned_done(8);
  // Occupy one worker, then have it self-post (LIFO-local) tasks the other
  // worker must steal.
  pool.post([&] {
    started.count_down();
    for (int i = 0; i < 8; ++i) {
      pool.post([&] { spawned_done.count_down(); });
    }
    release.wait();
  });
  ASSERT_TRUE(started.wait_for(std::chrono::seconds{5}));
  ASSERT_TRUE(spawned_done.wait_for(std::chrono::seconds{10}));
  EXPECT_GE(pool.steals(), 1u);
  release.set();
}

TEST(WorkStealing, ForeignTryRunOneHelps) {
  WorkStealingExecutor pool("ws", 1);
  common::ManualResetEvent release;
  common::CountdownLatch started(1);
  pool.post([&] {
    started.count_down();
    release.wait();
  });
  ASSERT_TRUE(started.wait_for(std::chrono::seconds{5}));
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true); });
  EXPECT_TRUE(pool.try_run_one());  // foreign thread steals the queued task
  EXPECT_TRUE(ran.load());
  release.set();
}

TEST(WorkStealing, ShutdownDrainsAllQueues) {
  std::atomic<int> count{0};
  {
    WorkStealingExecutor pool("ws", 3);
    for (int i = 0; i < 100; ++i) {
      pool.post([&] { count.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealing, PostAfterShutdownIsDropped) {
  WorkStealingExecutor pool("ws", 1);
  pool.shutdown();
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  EXPECT_FALSE(ran.load());
}

TEST(WorkStealing, WorksAsVirtualTarget) {
  Runtime rt;
  auto& pool = rt.create_stealing_worker("ws-worker", 2);
  std::atomic<bool> on_pool{false};
  rt.target("ws-worker").run([&] { on_pool.store(pool.owns_current_thread()); });
  EXPECT_TRUE(on_pool.load());

  // await on a member thread uses stealing to make progress.
  std::atomic<int> done{0};
  common::CountdownLatch latch(1);
  rt.target("ws-worker").nowait([&] {
    rt.target("ws-worker").await([&] { done.fetch_add(1); });
    done.fetch_add(1);
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(done.load(), 2);
  rt.clear();
}

TEST(WorkStealing, CountersAccount) {
  WorkStealingExecutor pool("ws", 2);
  common::CountdownLatch latch(50);
  for (int i = 0; i < 50; ++i) {
    pool.post([&] { latch.count_down(); });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(), 50u);
  // Foreign posts arrive via the injection queue; worker-local spawn would
  // show up as local pops or steals. Every executed task is attributed to
  // exactly one source.
  EXPECT_EQ(pool.local_pops() + pool.steals() + pool.injection_pops(), 50u);
}

TEST(WorkStealing, WorkerSelfPostsUseOwnDeque) {
  // A task that spawns children from a worker thread must push them to its
  // own Chase–Lev deque (local pops / steals), not the injection queue.
  WorkStealingExecutor pool("ws", 2);
  common::CountdownLatch latch(9);
  pool.post([&] {
    for (int i = 0; i < 8; ++i) {
      pool.post([&] { latch.count_down(); });
    }
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  pool.shutdown();
  EXPECT_EQ(pool.tasks_executed(), 9u);
  EXPECT_EQ(pool.injection_pops(), 1u);  // only the foreign seeding post
  EXPECT_EQ(pool.local_pops() + pool.steals(), 8u);
}

}  // namespace
}  // namespace evmp::exec

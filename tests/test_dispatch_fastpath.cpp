// Tests for the zero-allocation dispatch fast path: pooled completion
// states (recycling, reuse after exception, no recycle under a live
// waiter), the lock-free tag groups under producer stress, the RingBuffer
// run-queue storage, and the non-template wait_for hot path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/object_pool.hpp"
#include "common/ring_buffer.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/tag_group.hpp"
#include "executor/completion.hpp"
#include "executor/thread_pool_executor.hpp"

namespace evmp {
namespace {

using exec::CompletionRef;
using exec::CompletionState;

// --- completion-state pooling -------------------------------------------

TEST(CompletionPool, StateIsRecycledAfterLastRefDrops) {
  CompletionState* first;
  {
    CompletionRef ref = CompletionState::make();
    first = ref.get();
    ref->set_done();
  }
  // The thread-local cache is LIFO, so the very next acquire on this
  // thread returns the state we just released — re-armed to pending.
  CompletionRef again = CompletionState::make();
  EXPECT_EQ(again.get(), first);
  EXPECT_FALSE(again->done());
  EXPECT_FALSE(again->failed());
}

TEST(CompletionPool, ReuseAfterExceptionIsClean) {
  CompletionState* first;
  {
    CompletionRef ref = CompletionState::make();
    first = ref.get();
    ref->set_exception(std::make_exception_ptr(std::runtime_error("boom")));
    EXPECT_THROW(ref->wait(), std::runtime_error);
  }
  // Recycled state must not resurrect the old exception.
  CompletionRef again = CompletionState::make();
  ASSERT_EQ(again.get(), first);
  EXPECT_FALSE(again->failed());
  again->set_done();
  again->wait();  // must not throw
}

TEST(CompletionPool, NoRecycleWhileWaiterHoldsRef) {
  CompletionRef producer = CompletionState::make();
  CompletionState* raw = producer.get();
  CompletionRef waiter = producer;  // second reference
  producer->set_done();
  producer.reset();  // runner dropped its ref; waiter still live
  // The state must NOT be back in the pool yet: a fresh make() on this
  // thread must hand out a different object.
  CompletionRef fresh = CompletionState::make();
  EXPECT_NE(fresh.get(), raw);
  waiter->wait();
  waiter.reset();  // now the last ref drops and it recycles
  CompletionRef reused = CompletionState::make();
  EXPECT_EQ(reused.get(), raw);
}

TEST(CompletionPool, CrossThreadLifecycleStress) {
  // Producer/consumer churn exercising pooled acquire/release from two
  // threads — the pattern TSan/ASan legs verify for the recycle protocol.
  constexpr int kRounds = 2000;
  for (int i = 0; i < kRounds; ++i) {
    CompletionRef ref = CompletionState::make();
    std::jthread t([ref]() mutable {
      ref->set_done();
      ref.reset();  // runner-side drop may be the last ref
    });
    ref->wait();
    ref.reset();
  }
  const auto stats = common::ObjectPool<CompletionState>::stats();
  // The pool must have bounded the population far below the round count.
  EXPECT_LT(stats.allocated, static_cast<std::size_t>(kRounds) / 4);
}

TEST(CompletionState, WaitForShimAcceptsArbitraryDurations) {
  CompletionState s;
  // Template shim: seconds-typed and float-typed durations forward to the
  // nanoseconds hot path.
  EXPECT_FALSE(s.wait_for(std::chrono::duration<double>(0.002)));
  EXPECT_FALSE(s.wait_for(std::chrono::milliseconds{1}));
  s.set_done();
  EXPECT_TRUE(s.wait_for(std::chrono::seconds{1}));
}

TEST(CompletionState, AtomicWaitWakesCrossThread) {
  CompletionState s;
  std::jthread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    s.set_done();
  });
  s.wait();  // parks on the futex past the spin window
  EXPECT_TRUE(s.done());
}

// --- tag groups under stress --------------------------------------------

TEST(TagGroupStress, SixteenProducersOneTag) {
  Runtime rt;
  rt.create_worker("worker", 2);
  constexpr int kProducers = 16;
  constexpr int kPerProducer = 50;
  std::atomic<int> done{0};
  {
    std::vector<std::jthread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          rt.invoke_target_block(
              "worker", [&] { done.fetch_add(1, std::memory_order_relaxed); },
              Async::kNameAs, "stress-tag");
        }
        rt.wait_tag("stress-tag");
      });
    }
  }
  // Every producer joined the same tag; all blocks must have run.
  rt.wait_tag("stress-tag");
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
  rt.clear();
}

TEST(TagGroupStress, ExceptionSurfacesThroughWaitTag) {
  Runtime rt;
  rt.create_worker("worker", 1);
  common::ManualResetEvent release;
  rt.invoke_target_block(
      "worker",
      [&] {
        release.wait();
        throw std::runtime_error("tagged failure");
      },
      Async::kNameAs, "failing-tag");
  release.set();
  EXPECT_THROW(rt.wait_tag("failing-tag"), std::runtime_error);
  // The error is consumed: the next wait on the (now idle) tag succeeds.
  rt.wait_tag("failing-tag");
  rt.clear();
}

TEST(TagRegistry, ShardedRegistryCountsCreations) {
  TagRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  for (int i = 0; i < 64; ++i) {
    reg.group("tag-" + std::to_string(i));
  }
  reg.group("tag-0");  // existing: no new creation
  EXPECT_EQ(reg.size(), 64u);
  EXPECT_EQ(reg.created(), 64u);
}

TEST(TagRegistry, ConcurrentDistinctTagsDoNotLoseGroups) {
  TagRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kTagsPerThread = 64;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kTagsPerThread; ++i) {
          TagGroup& g =
              reg.group("t" + std::to_string(t) + "-" + std::to_string(i));
          g.enter();
          g.leave(nullptr);
        }
      });
    }
  }
  EXPECT_EQ(reg.size(),
            static_cast<std::size_t>(kThreads) * kTagsPerThread);
}

// --- RingBuffer ----------------------------------------------------------

TEST(RingBuffer, FifoAcrossGrowth) {
  common::RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rb.pop_front(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DequeSemanticsBothEnds) {
  common::RingBuffer<int> rb;
  rb.push_back(2);
  rb.push_front(1);
  rb.push_back(3);
  EXPECT_EQ(rb.pop_back(), 3);
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 2);
}

TEST(RingBuffer, WrapAroundKeepsOrder) {
  common::RingBuffer<int> rb;
  // Force head to travel past the physical end repeatedly.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) rb.push_back(round * 10 + i);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(rb.pop_front(), round * 10 + i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, CapacityRetainedAfterDrain) {
  common::RingBuffer<int> rb;
  for (int i = 0; i < 1000; ++i) rb.push_back(i);
  const std::size_t high_water = rb.capacity();
  while (!rb.empty()) rb.pop_front();
  EXPECT_EQ(rb.capacity(), high_water);  // grow-only by design
  rb.reserve(2048);
  EXPECT_GE(rb.capacity(), 2048u);
}

TEST(RingBuffer, HoldsMoveOnlyElements) {
  common::RingBuffer<std::unique_ptr<int>> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(std::make_unique<int>(i));
  common::RingBuffer<std::unique_ptr<int>> other = std::move(rb);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(*other.pop_front(), i);
}

TEST(RingBuffer, ClearDestroysElements) {
  auto live = std::make_shared<int>(0);
  common::RingBuffer<std::shared_ptr<int>> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(live);
  EXPECT_EQ(live.use_count(), 11);
  rb.clear();
  EXPECT_EQ(live.use_count(), 1);
}

// --- runtime stats on the new path ---------------------------------------

TEST(DispatchStats, CountersAdvanceWithoutStatsLock) {
  Runtime rt;
  rt.create_worker("worker", 1);
  rt.reset_stats();
  rt.invoke_target_block("worker", [] {}, Async::kDefault);
  rt.invoke_target_block("worker", [] {}, Async::kAwait);
  auto h = rt.invoke_target_block("worker", [] {}, Async::kNowait);
  h.wait();
  const RuntimeStats s = rt.stats();
  EXPECT_EQ(s.posted, 3u);
  EXPECT_EQ(s.default_waits, 1u);
  EXPECT_EQ(s.awaits, 1u);
  rt.clear();
}

}  // namespace
}  // namespace evmp

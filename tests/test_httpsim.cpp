// Tests for the simulated HTTP encryption service of §V.B: service handler
// correctness, the Jetty and Pyjama connectors, and the closed-loop virtual
// user swarm.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/sync.hpp"
#include "httpsim/connector.hpp"
#include "httpsim/encryption_service.hpp"
#include "httpsim/virtual_users.hpp"

namespace evmp::http {
namespace {

EncryptionService::Config tiny_config(int parallel_width = 1) {
  EncryptionService::Config cfg;
  cfg.payload_bytes = 1024;
  cfg.parallel_width = parallel_width;
  return cfg;
}

Request make_request(std::uint64_t id, std::size_t payload = 1024) {
  Request r;
  r.id = id;
  r.payload.assign(payload, static_cast<std::uint8_t>(id & 0xff));
  r.arrived = common::now();
  return r;
}

TEST(EncryptionService, ProducesDeterministicResponses) {
  EncryptionService svc(tiny_config());
  auto handler = svc.handler();
  const auto r1 = handler(make_request(1));
  const auto r2 = handler(make_request(1));
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.id, 1u);
  EXPECT_EQ(svc.requests_served(), 2u);
}

TEST(EncryptionService, ResponseDependsOnPayload) {
  EncryptionService svc(tiny_config());
  auto handler = svc.handler();
  const auto a = handler(make_request(1));
  const auto b = handler(make_request(2));  // different payload bytes
  EXPECT_NE(a.checksum, b.checksum);
}

TEST(EncryptionService, ParallelHandlerMatchesSequential) {
  EncryptionService seq_svc(tiny_config(1));
  EncryptionService par_svc(tiny_config(3));
  const auto seq = seq_svc.handler()(make_request(5));
  const auto par = par_svc.handler()(make_request(5));
  // Same crypt checksum regardless of the per-request team.
  EXPECT_EQ(seq.checksum, par.checksum);
}

TEST(EncryptionService, HandlerIsConcurrencySafe) {
  EncryptionService svc(tiny_config());
  auto handler = svc.handler();
  std::atomic<int> mismatches{0};
  const auto expected = handler(make_request(9)).checksum;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          if (handler(make_request(9)).checksum != expected) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(svc.requests_served(), 41u);
}

TEST(JettyConnector, CompletesAllRequests) {
  EncryptionService svc(tiny_config());
  JettyConnector connector(3, svc.handler());
  EXPECT_EQ(connector.workers(), 3u);
  EXPECT_EQ(connector.name(), "jetty");
  std::atomic<int> responses{0};
  common::CountdownLatch latch(20);
  for (int i = 0; i < 20; ++i) {
    connector.submit(make_request(static_cast<std::uint64_t>(i)),
                     [&](const Response& r) {
                       if (r.ok) responses.fetch_add(1);
                       latch.count_down();
                     });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{30}));
  EXPECT_EQ(responses.load(), 20);
}

TEST(PyjamaConnector, CompletesAllRequests) {
  EncryptionService svc(tiny_config());
  PyjamaConnector connector(3, svc.handler());
  EXPECT_EQ(connector.workers(), 3u);
  EXPECT_EQ(connector.name(), "pyjama");
  std::atomic<int> responses{0};
  common::CountdownLatch latch(20);
  for (int i = 0; i < 20; ++i) {
    connector.submit(make_request(static_cast<std::uint64_t>(i)),
                     [&](const Response& r) {
                       if (r.ok) responses.fetch_add(1);
                       latch.count_down();
                     });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{30}));
  EXPECT_EQ(responses.load(), 20);
}

TEST(PyjamaConnector, DispatcherOnlyDispatches) {
  // The dispatcher (server EDT) must spend almost no time per request: the
  // handler runs on the worker target.
  EncryptionService::Config cfg;
  cfg.payload_bytes = 64 * 1024;  // handler visibly slower than dispatch
  EncryptionService svc(cfg);
  PyjamaConnector connector(2, svc.handler());
  common::CountdownLatch latch(8);
  for (int i = 0; i < 8; ++i) {
    connector.submit(make_request(static_cast<std::uint64_t>(i), 64 * 1024),
                     [&](const Response&) { latch.count_down(); });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{60}));
  EXPECT_EQ(connector.dispatcher().dispatched(), 8u);
  // Dispatcher busy time is a small fraction of the total handler work.
  const double dispatcher_ms =
      common::to_ms(connector.dispatcher().busy_time());
  EXPECT_LT(dispatcher_ms, 100.0);
}

TEST(PyjamaConnector, HandlerRunsOffDispatcherThread) {
  std::atomic<bool> off_dispatcher{false};
  // A probing "service" that inspects its thread.
  PyjamaConnector* connector_ptr = nullptr;
  PyjamaConnector connector(2, [&](const Request& r) {
    off_dispatcher.store(
        !connector_ptr->dispatcher().owns_current_thread());
    return Response{r.id, 0, true};
  });
  connector_ptr = &connector;
  common::CountdownLatch latch(1);
  connector.submit(make_request(1), [&](const Response&) {
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{10}));
  EXPECT_TRUE(off_dispatcher.load());
}

TEST(VirtualUsers, ClosedLoopCompletesEveryRequest) {
  EncryptionService svc(tiny_config());
  JettyConnector connector(4, svc.handler());
  VirtualUserOptions opt;
  opt.users = 10;
  opt.requests_per_user = 5;
  opt.payload_bytes = 512;
  const auto result = run_virtual_users(connector, opt);
  EXPECT_EQ(result.completed, 50u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_rps, 0.0);
  EXPECT_EQ(result.latency_ms.count(), 50u);
  EXPECT_GT(result.latency_ms.mean(), 0.0);
}

TEST(VirtualUsers, PyjamaConnectorUnderSwarm) {
  EncryptionService svc(tiny_config());
  PyjamaConnector connector(4, svc.handler());
  VirtualUserOptions opt;
  opt.users = 8;
  opt.requests_per_user = 4;
  const auto result = run_virtual_users(connector, opt);
  EXPECT_EQ(result.completed, 32u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(JettyConnector, SubmitBatchCompletesAllRequests) {
  EncryptionService svc(tiny_config());
  JettyConnector connector(3, svc.handler());
  std::atomic<int> responses{0};
  common::CountdownLatch latch(16);
  std::vector<Request> burst;
  for (int i = 0; i < 16; ++i) {
    burst.push_back(make_request(static_cast<std::uint64_t>(i)));
  }
  connector.submit_batch(std::move(burst), [&](const Response& r) {
    if (r.ok) responses.fetch_add(1);
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{30}));
  EXPECT_EQ(responses.load(), 16);
}

TEST(PyjamaConnector, SubmitBatchCompletesAllRequests) {
  EncryptionService svc(tiny_config());
  PyjamaConnector connector(3, svc.handler());
  std::atomic<int> responses{0};
  common::CountdownLatch latch(16);
  std::vector<Request> burst;
  for (int i = 0; i < 16; ++i) {
    burst.push_back(make_request(static_cast<std::uint64_t>(i)));
  }
  connector.submit_batch(std::move(burst), [&](const Response& r) {
    if (r.ok) responses.fetch_add(1);
    latch.count_down();
  });
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{30}));
  EXPECT_EQ(responses.load(), 16);
  // The counter increments after the dispatch handler returns, which can
  // trail the last response slightly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (connector.dispatcher().dispatched() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  EXPECT_EQ(connector.dispatcher().dispatched(), 1u);  // one dispatch/burst
}

TEST(VirtualUsers, BurstPipelinesThroughBothConnectors) {
  EncryptionService svc(tiny_config());
  VirtualUserOptions opt;
  opt.users = 4;
  opt.requests_per_user = 8;
  opt.burst = 4;  // two bursts of four per user
  {
    JettyConnector connector(3, svc.handler());
    const auto result = run_virtual_users(connector, opt);
    EXPECT_EQ(result.completed, 32u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.latency_ms.count(), 32u);
  }
  {
    PyjamaConnector connector(3, svc.handler());
    const auto result = run_virtual_users(connector, opt);
    EXPECT_EQ(result.completed, 32u);
    EXPECT_EQ(result.failed, 0u);
  }
}

TEST(VirtualUsers, BurstLargerThanRemainingRequestsIsClamped) {
  EncryptionService svc(tiny_config());
  JettyConnector connector(2, svc.handler());
  VirtualUserOptions opt;
  opt.users = 2;
  opt.requests_per_user = 5;
  opt.burst = 3;  // 3 + 2 per user
  const auto result = run_virtual_users(connector, opt);
  EXPECT_EQ(result.completed, 10u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(VirtualUsers, ThroughputAccountingIsConsistent) {
  EncryptionService svc(tiny_config());
  JettyConnector connector(2, svc.handler());
  VirtualUserOptions opt;
  opt.users = 4;
  opt.requests_per_user = 3;
  const auto result = run_virtual_users(connector, opt);
  EXPECT_NEAR(result.throughput_rps,
              static_cast<double>(result.completed) / result.wall_seconds,
              1e-9);
}

}  // namespace
}  // namespace evmp::http

// Unit tests for the simulated GUI toolkit and its EDT thread confinement.

#include <gtest/gtest.h>

#include <atomic>

#include "event/event_loop.hpp"
#include "event/gui.hpp"

namespace evmp::event {
namespace {

class GuiTest : public ::testing::Test {
 protected:
  void SetUp() override { loop_.start(); }

  EventLoop loop_{"edt"};
};

TEST_F(GuiTest, LabelUpdatesOnEdt) {
  Gui gui(loop_);
  auto& label = gui.add_label("status");
  loop_.invoke_and_wait([&] { label.set_text("hello"); });
  std::string text;
  loop_.invoke_and_wait([&] { text = label.text(); });
  EXPECT_EQ(text, "hello");
  EXPECT_EQ(label.updates(), 1u);
  EXPECT_EQ(gui.violations(), 0u);
}

TEST_F(GuiTest, OffEdtAccessThrowsUnderThrowPolicy) {
  Gui gui(loop_, ConfinementPolicy::kThrow);
  auto& label = gui.add_label("status");
  EXPECT_THROW(label.set_text("bad"), ThreadConfinementError);
  EXPECT_EQ(gui.violations(), 1u);
}

TEST_F(GuiTest, OffEdtAccessCountedUnderCountPolicy) {
  Gui gui(loop_, ConfinementPolicy::kCount);
  auto& bar = gui.add_progress_bar("p");
  EXPECT_NO_THROW(bar.set_value(10));
  EXPECT_NO_THROW(bar.set_value(20));
  EXPECT_EQ(gui.violations(), 2u);
}

TEST_F(GuiTest, ProgressBarStoresValue) {
  Gui gui(loop_);
  auto& bar = gui.add_progress_bar("p");
  loop_.invoke_and_wait([&] { bar.set_value(73); });
  int value = 0;
  loop_.invoke_and_wait([&] { value = bar.value(); });
  EXPECT_EQ(value, 73);
  EXPECT_EQ(bar.updates(), 1u);
}

TEST_F(GuiTest, ImageViewRecordsChecksum) {
  Gui gui(loop_);
  auto& view = gui.add_image_view("img");
  Image img;
  img.width = 2;
  img.height = 1;
  img.pixels = {0xff0000u, 0x00ff00u};
  const auto expected = img.checksum();
  loop_.invoke_and_wait([&] { view.display(img); });
  std::uint64_t shown = 0;
  loop_.invoke_and_wait([&] { shown = view.displayed_checksum(); });
  EXPECT_EQ(shown, expected);
  EXPECT_EQ(view.images_shown(), 1u);
}

TEST_F(GuiTest, ImageChecksumDependsOnContent) {
  Image a{1, 1, {1u}};
  Image b{1, 1, {2u}};
  Image c{1, 1, {1u}};
  EXPECT_NE(a.checksum(), b.checksum());
  EXPECT_EQ(a.checksum(), c.checksum());
}

TEST_F(GuiTest, ButtonClickRunsHandlerOnEdt) {
  Gui gui(loop_);
  auto& button = gui.add_button("go");
  std::atomic<bool> handled_on_edt{false};
  loop_.invoke_and_wait([&] {
    button.on_click([&] { handled_on_edt.store(loop_.is_dispatch_thread()); });
  });
  button.click();  // clicks may come from any thread
  loop_.wait_until_idle();
  EXPECT_TRUE(handled_on_edt.load());
  EXPECT_EQ(button.clicks(), 1u);
}

TEST_F(GuiTest, ButtonWithoutHandlerIsSafe) {
  Gui gui(loop_);
  auto& button = gui.add_button("noop");
  button.click();
  loop_.wait_until_idle();
  EXPECT_EQ(button.clicks(), 1u);
}

TEST_F(GuiTest, ClickFromEdtAlsoQueues) {
  Gui gui(loop_);
  auto& button = gui.add_button("go");
  std::atomic<int> runs{0};
  loop_.invoke_and_wait([&] {
    button.on_click([&] { runs.fetch_add(1); });
    button.click();  // enqueued, runs after this handler returns
    EXPECT_EQ(runs.load(), 0);
  });
  loop_.wait_until_idle();
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(GuiTest, ViolationMessageNamesWidgetAndOperation) {
  Gui gui(loop_, ConfinementPolicy::kThrow);
  auto& label = gui.add_label("title");
  try {
    label.set_text("x");
    FAIL() << "expected ThreadConfinementError";
  } catch (const ThreadConfinementError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("title"), std::string::npos);
    EXPECT_NE(what.find("set_text"), std::string::npos);
  }
}

}  // namespace
}  // namespace evmp::event

// Unit tests for common/stats, common/table, common/rng, common/env,
// common/cli and common/clock.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace evmp::common {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MeanMinMax) {
  OnlineStats s;
  for (double x : {4.0, 1.0, 7.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, VarianceMatchesTwoPass) {
  OnlineStats s;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double mean = 0.0;
  for (double x : xs) {
    s.add(x);
    mean += x;
  }
  mean /= 8.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 7.0;  // sample variance
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  OnlineStats b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(PercentileSampler, ExactQuartiles) {
  PercentileSampler p;
  for (int i = 1; i <= 101; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 101.0);
  EXPECT_NEAR(p.percentile(0.25), 26.0, 1e-9);
}

TEST(PercentileSampler, InterpolatesBetweenRanks) {
  PercentileSampler p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.median(), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.75), 7.5);
}

TEST(PercentileSampler, MergePreservesSamples) {
  PercentileSampler a;
  PercentileSampler b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(PercentileSampler, AddAfterQueryResorts) {
  PercentileSampler p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
  p.add(1.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, PercentileWithinRelativeError) {
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) {
    h.record(1'000'000);  // 1ms
  }
  const auto p50 = static_cast<double>(h.percentile(0.5));
  EXPECT_NEAR(p50, 1e6, 1e6 * 0.13);  // <= 12.5% bucket error + rounding
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1e6);
}

TEST(LatencyHistogram, OrderedPercentiles) {
  LatencyHistogram h;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    h.record(rng.next_below(50'000'000));
  }
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), h.percentile(1.0));
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.record(static_cast<std::uint64_t>(t + 1) * 1000u);
        }
      });
    }
  }
  EXPECT_EQ(h.total_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, BucketRelativeErrorAcrossMagnitudes) {
  // The HDR-style layout promises <= 12.5% relative error per bucket at
  // every magnitude, from single nanoseconds to ~18 minutes.
  for (const std::uint64_t v :
       {1ull, 3ull, 100ull, 999ull, 12'345ull, 1'000'000ull,
        123'456'789ull, 1ull << 40}) {
    LatencyHistogram h;
    h.record(v);
    const auto p = static_cast<double>(h.percentile(1.0));
    const auto want = static_cast<double>(v);
    EXPECT_NEAR(p, want, want * 0.125 + 1.0) << "value " << v;
  }
}

TEST(LatencyHistogram, SnapshotMatchesLiveHistogram) {
  LatencyHistogram h;
  Xoshiro256 rng(21);
  for (int i = 0; i < 4000; ++i) h.record(rng.next_below(10'000'000));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.total_count(), h.total_count());
  EXPECT_DOUBLE_EQ(snap.mean_ns(), h.mean_ns());
  // The live histogram reports bucket midpoints while the snapshot
  // interpolates, so the two agree only to within one bucket's width.
  for (double q : {0.5, 0.9, 0.99, 1.0}) {
    const auto live = static_cast<double>(h.percentile(q));
    const auto interp = static_cast<double>(snap.percentile(q));
    EXPECT_NEAR(interp, live, live * 0.13 + 1.0) << "q " << q;
  }
}

TEST(LatencyHistogram, SnapshotMergeIsExactAndAssociative) {
  // Bucket-wise merge is lossless: (a+b)+c and a+(b+c) agree with the
  // histogram that saw every sample directly, at every quantile.
  LatencyHistogram all;
  LatencyHistogram parts[3];
  Xoshiro256 rng(33);
  for (int i = 0; i < 9000; ++i) {
    const std::uint64_t v = rng.next_below(100'000'000);
    all.record(v);
    parts[i % 3].record(v);
  }
  HistogramSnapshot left = parts[0].snapshot();   // (a + b) + c
  left.merge(parts[1].snapshot());
  left.merge(parts[2].snapshot());
  HistogramSnapshot bc = parts[1].snapshot();     // a + (b + c)
  bc.merge(parts[2].snapshot());
  HistogramSnapshot right = parts[0].snapshot();
  right.merge(bc);
  const HistogramSnapshot direct = all.snapshot();
  EXPECT_EQ(left.total_count(), direct.total_count());
  EXPECT_EQ(right.total_count(), direct.total_count());
  EXPECT_DOUBLE_EQ(left.mean_ns(), direct.mean_ns());
  EXPECT_DOUBLE_EQ(right.mean_ns(), direct.mean_ns());
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(left.percentile(q), direct.percentile(q)) << "q " << q;
    EXPECT_EQ(right.percentile(q), direct.percentile(q)) << "q " << q;
  }
  const LatencyQuantiles lq = left.quantiles();
  EXPECT_EQ(lq.p50, direct.percentile(0.5));
  EXPECT_EQ(lq.p999, direct.percentile(0.999));
}

TEST(LatencyHistogram, SnapshotQuantilesInterpolateWithinBucket) {
  // All mass in one bucket: quantiles must move monotonically across the
  // bucket's width instead of snapping to its midpoint.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1'000'000);
  const HistogramSnapshot snap = h.snapshot();
  const std::uint64_t p10 = snap.percentile(0.10);
  const std::uint64_t p90 = snap.percentile(0.90);
  EXPECT_LE(p10, p90);
  EXPECT_LT(p90 - p10, static_cast<std::uint64_t>(1e6 * 0.13))
      << "interpolation must stay inside one bucket's width";
  // And an empty snapshot reports zeros rather than garbage.
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.total_count(), 0u);
  EXPECT_EQ(empty.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordersMergeToExactTotal) {
  // Stress the wait-free record path: racing writers into one shared
  // histogram plus per-thread histograms merged after the fact must both
  // account for every sample.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  LatencyHistogram shared;
  std::vector<LatencyHistogram> locals(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&shared, &locals, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t v = rng.next_below(1'000'000) + 1;
          shared.record(v);
          locals[static_cast<std::size_t>(t)].record(v);
        }
      });
    }
  }
  HistogramSnapshot merged = locals[0].snapshot();
  for (int t = 1; t < kThreads; ++t) merged.merge(locals[t].snapshot());
  const std::uint64_t want =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(shared.total_count(), want);
  EXPECT_EQ(merged.total_count(), want);
  EXPECT_EQ(merged.percentile(0.5), shared.snapshot().percentile(0.5));
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

TEST(TextTable, AlignsAndPrints) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.50"});
  t.add_row({"b", "20.25"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not crash; row padded to 3 cells
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(13);
  OnlineStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng(17);
  OnlineStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.next_exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.2);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Clock, PreciseSleepIsAccurate) {
  const Stopwatch sw;
  precise_sleep(Millis{20});
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 19.0);
  EXPECT_LT(ms, 60.0);  // generous: single-core CI container
}

TEST(Clock, PreciseSleepZeroReturnsImmediately) {
  const Stopwatch sw;
  precise_sleep(Nanos{0});
  precise_sleep(Nanos{-5});
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(Clock, BusySpinBurnsAtLeastRequested) {
  const Stopwatch sw;
  (void)busy_spin(Millis{5});
  EXPECT_GE(sw.elapsed_ms(), 4.5);
}

TEST(Env, ParsesLongAndBool) {
  ::setenv("EVMP_TEST_LONG", "123", 1);
  ::setenv("EVMP_TEST_BOOL_T", "yes", 1);
  ::setenv("EVMP_TEST_BOOL_F", "OFF", 1);
  ::setenv("EVMP_TEST_BAD", "12x", 1);
  EXPECT_EQ(env_long("EVMP_TEST_LONG"), 123);
  EXPECT_EQ(env_bool("EVMP_TEST_BOOL_T"), true);
  EXPECT_EQ(env_bool("EVMP_TEST_BOOL_F"), false);
  EXPECT_FALSE(env_long("EVMP_TEST_BAD").has_value());
  EXPECT_FALSE(env_long("EVMP_TEST_UNSET_NEVER").has_value());
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Greedy binding: positional args go before bare boolean flags.
  const char* argv[] = {"prog",       "--count=5", "--rate", "2.5",
                        "positional", "--verbose", "--list=1,2,3"};
  CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_long("count", 0), 5);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  const auto list = args.get_long_list("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 3);
}

TEST(Cli, FallbacksWhenAbsentOrMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get_long("n", 7), 7);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  const auto list = args.get_long_list("missing", {4, 5});
  ASSERT_EQ(list.size(), 2u);
}

}  // namespace
}  // namespace evmp::common

// The analysis subsystem: the evmpcc static directive lint (DirectiveGraph
// + rule passes E1-E4/W1-W3/P1, the MHP relation, text/JSON renderers),
// the EVMP_VERIFY runtime wait-for-graph verifier (cycle detection,
// saturation semantics, abort-on-deadlock instead of a silent hang), and
// the EVMP_RACECHECK vector-clock race verifier.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/call_graph.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/directive_graph.hpp"
#include "analysis/dispatch_site.hpp"
#include "analysis/function_summary.hpp"
#include "analysis/mhp.hpp"
#include "analysis/race_check.hpp"
#include "analysis/wait_graph.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/shared.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EVMP_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define EVMP_TSAN 1
#endif

namespace {

using evmp::analysis::Diagnostic;
using evmp::analysis::DirectiveGraph;
using evmp::analysis::Severity;
using evmp::analysis::WaitGraph;

std::vector<Diagnostic> run(std::string_view source) {
  return evmp::analysis::analyze_source(source);
}

std::vector<Diagnostic> run_no_ignores(std::string_view source) {
  evmp::analysis::AnalyzeOptions options;
  options.honor_ignores = false;
  return evmp::analysis::analyze_source(source, options);
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- DirectiveGraph structure --------------------------------------------

TEST(DirectiveGraph, TracksLexicalNesting) {
  const DirectiveGraph graph(R"(
//#omp target virtual(outer) nowait
{
  int x = 0;
  //#omp target virtual(inner) nowait
  { x++; }
  //#omp wait(t)
}
//#omp target virtual(sibling) nowait
{ }
)");
  ASSERT_EQ(graph.nodes().size(), 4u);
  EXPECT_EQ(graph.nodes()[0].parent, -1);
  EXPECT_EQ(graph.nodes()[1].parent, 0);  // inner is inside outer
  EXPECT_EQ(graph.nodes()[2].parent, 0);  // the wait too
  EXPECT_EQ(graph.nodes()[3].parent, -1);  // sibling closed outer's block
  EXPECT_EQ(graph.enclosing_target(1), 0);
  EXPECT_EQ(graph.enclosing_target(3), -1);
}

TEST(DirectiveGraph, ParallelRegionResetsTargetContext) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker) nowait
{
  #pragma omp parallel for
  for (int i = 0; i < 4; ++i) {
    //#omp target virtual(worker)
    { work(i); }
  }
}
)");
  ASSERT_EQ(graph.nodes().size(), 3u);
  EXPECT_EQ(graph.nodes()[2].parent, 1);       // nested in the parallel-for
  EXPECT_EQ(graph.enclosing_target(2), -1);    // ...whose team is not `worker`
  // Consequently no E1: the dispatching thread is a team thread, not a
  // worker-pool thread.
  EXPECT_EQ(find_rule(evmp::analysis::analyze(graph), "E1"), nullptr);
}

// --- E1 / E2 --------------------------------------------------------------

TEST(AnalyzeRules, E1FiresOnSelfBlockingDispatch) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{
  //#omp target virtual(worker)
  { busy(); }
}
)");
  const Diagnostic* d = find_rule(diags, "E1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 4);
}

TEST(AnalyzeRules, E1SilentForAwaitAndNowait) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{
  //#omp target virtual(worker) await
  { pumped(); }
  //#omp target virtual(worker) nowait
  { fire_and_forget(); }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeRules, E2FiresOnBlockingDispatchFromEdt) {
  const auto diags = run(R"(
//#omp target virtual(edt) nowait
{
  //#omp target virtual(worker)
  { long_work(); }
}
)");
  const Diagnostic* d = find_rule(diags, "E2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 4);
  EXPECT_EQ(find_rule(diags, "E1"), nullptr);
}

TEST(AnalyzeRules, E2SilentForAwaitFromEdt) {
  const auto diags = run(R"(
//#omp target virtual(edt) nowait
{
  //#omp target virtual(worker) await
  { long_work(); }
}
)");
  EXPECT_TRUE(diags.empty());
}

// --- E3 --------------------------------------------------------------------

TEST(AnalyzeRules, E3FiresOnDispatchCycle) {
  const auto diags = run(R"(
//#omp target virtual(alpha) nowait
{
  //#omp target virtual(beta)
  { }
}
//#omp target virtual(beta) nowait
{
  //#omp target virtual(alpha)
  { }
}
)");
  const Diagnostic* d = find_rule(diags, "E3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("alpha"), std::string::npos);
  EXPECT_NE(d->message.find("beta"), std::string::npos);
  EXPECT_NE(d->message.find("->"), std::string::npos);
}

TEST(AnalyzeRules, E3FiresOnWaitJoinCycle) {
  // io blocks on worker via a default dispatch; worker blocks on io via
  // the wait(batch) join of an io-producing name_as.
  const auto diags = run(R"(
//#omp target virtual(io) nowait
{
  //#omp target virtual(worker)
  { }
}
//#omp target virtual(worker) nowait
{
  //#omp wait(batch)
}
//#omp target virtual(io) name_as(batch)
{ }
)");
  const Diagnostic* d = find_rule(diags, "E3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("wait(batch)"), std::string::npos);
  EXPECT_EQ(find_rule(diags, "W1"), nullptr);  // the tag pair is matched
}

TEST(AnalyzeRules, E3SilentWithoutACycle) {
  const auto diags = run(R"(
//#omp target virtual(alpha) nowait
{
  //#omp target virtual(beta)
  { }
}
)");
  EXPECT_EQ(find_rule(diags, "E3"), nullptr);
}

// --- W1 --------------------------------------------------------------------

TEST(AnalyzeRules, W1FiresOnBothUnmatchedDirections) {
  const auto diags = run(R"(
//#omp target virtual(worker) name_as(produced)
{ }
//#omp wait(consumed)
)");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "W1");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].rule, "W1");
  EXPECT_EQ(diags[1].line, 4);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(AnalyzeRules, W1SilentWhenTagsPair) {
  const auto diags = run(R"(
//#omp target virtual(worker) name_as(batch)
{ }
//#omp wait(batch)
)");
  EXPECT_TRUE(diags.empty());
}

// --- W2 --------------------------------------------------------------------

TEST(AnalyzeRules, W2FiresOnLoopVariableCapture) {
  const auto diags = run(R"(
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait
  { use(job); }
}
)");
  const Diagnostic* d = find_rule(diags, "W2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("'job'"), std::string::npos);
}

TEST(AnalyzeRules, W2HandlesRangeForVariables) {
  const auto diags = run(R"(
for (const auto& item : items) {
  //#omp target virtual(worker) nowait
  { use(item); }
}
)");
  ASSERT_NE(find_rule(diags, "W2"), nullptr);
}

TEST(AnalyzeRules, W2SilentWithFirstprivate) {
  const auto diags = run(R"(
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait firstprivate(job)
  { use(job); }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeRules, W2SilentOutsideLoopsAndForUnusedVariables) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{ use(42); }
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait
  { use(jobless); }
}
)");
  EXPECT_TRUE(diags.empty());
}

// --- the MHP relation ------------------------------------------------------

TEST(MhpRelation, ContainmentOrdersRegions) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker) nowait
{
  //#omp target virtual(io) nowait
  { }
}
)");
  const evmp::analysis::MhpRelation mhp(graph);
  EXPECT_TRUE(mhp.is_ancestor(0, 1));
  EXPECT_FALSE(mhp.may_happen_in_parallel(0, 1));
}

TEST(MhpRelation, BlockingDispatchOrdersSuccessorsButNowaitDoesNot) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker)
{ }
//#omp target virtual(io) nowait
{ }
//#omp target virtual(edt) nowait
{ }
)");
  const evmp::analysis::MhpRelation mhp(graph);
  // The default-mode region completes at its dispatch site.
  EXPECT_FALSE(mhp.may_happen_in_parallel(0, 1));
  EXPECT_FALSE(mhp.may_happen_in_parallel(0, 2));
  // The two nowait regions have no join: MHP (symmetrically).
  EXPECT_TRUE(mhp.may_happen_in_parallel(1, 2));
  EXPECT_TRUE(mhp.may_happen_in_parallel(2, 1));
}

TEST(MhpRelation, WaitTagJoinOrdersProducer) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker) name_as(t)
{ }
//#omp target virtual(io) nowait
{ }
//#omp wait(t)
//#omp target virtual(edt) nowait
{ }
)");
  const evmp::analysis::MhpRelation mhp(graph);
  // Back-to-back //-directive lines must all be found (the newline that
  // ends a line comment is itself classified as comment; find_directive
  // compensates — this graph silently loses node 3 otherwise).
  ASSERT_EQ(graph.nodes().size(), 4u);
  // Node 0 (name_as) is joined by the wait before node 3 dispatches...
  EXPECT_FALSE(mhp.may_happen_in_parallel(0, 3));
  // ...but the wait orders nothing about the untagged nowait region.
  EXPECT_TRUE(mhp.may_happen_in_parallel(1, 3));
  // Before the wait, producer and plain nowait still overlap.
  EXPECT_TRUE(mhp.may_happen_in_parallel(0, 1));
}

TEST(MhpRelation, OrderingIsTransitiveThroughAwaitParents) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker) await
{
  //#omp target virtual(io) name_as(batch)
  { }
  //#omp wait(batch)
}
//#omp target virtual(edt) nowait
{ }
)");
  const evmp::analysis::MhpRelation mhp(graph);
  // The name_as block (node 1) joins at the wait (node 2) *inside* the
  // await parent (node 0), which itself completes before node 3's
  // dispatch: the ordering must chain through both edges.
  EXPECT_FALSE(mhp.may_happen_in_parallel(1, 3));
  EXPECT_FALSE(mhp.may_happen_in_parallel(0, 3));
}

// --- E4 / W3 ---------------------------------------------------------------

TEST(AnalyzeRules, E4FiresOnUnorderedWriteWrite) {
  const auto diags = run(R"(
void f(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait
  { total = n; }
  //#omp target virtual(logger) nowait
  { total = 2 * n; }
}
)");
  const Diagnostic* d = find_rule(diags, "E4");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 6);  // anchored at the later region
  EXPECT_NE(d->message.find("'total'"), std::string::npos);
}

TEST(AnalyzeRules, E4FiresOnUnorderedReadWrite) {
  const auto diags = run(R"(
void f(int n) {
  int result = 0;
  //#omp target virtual(worker) nowait
  { result = n; }
  //#omp target virtual(edt) nowait
  { consume(result); }
}
)");
  const Diagnostic* d = find_rule(diags, "E4");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'result'"), std::string::npos);
}

TEST(AnalyzeRules, E4SilentWhenJoinedByWaitTag) {
  const auto diags = run(R"(
void f(int n) {
  int staged = 0;
  //#omp target virtual(worker) name_as(stage)
  { staged = n; }
  //#omp wait(stage)
  //#omp target virtual(logger) nowait
  { consume(staged); }
}
)");
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(AnalyzeRules, E4SilentWhenProducerBlocks) {
  const auto diags = run(R"(
void f(int n) {
  int staged = 0;
  //#omp target virtual(worker)
  { staged = n; }
  //#omp target virtual(logger) nowait
  { consume(staged); }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeRules, E4SilentWithFirstprivateAndForEdtPairs) {
  // firstprivate removes the capture; two edt regions serialize on the
  // one event-dispatch loop.
  const auto diags = run(R"(
void f(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait firstprivate(total)
  { consume(total); }
  //#omp target virtual(worker) nowait
  { local_use(n); }
  //#omp target virtual(edt) nowait
  { total = 1; }
  //#omp target virtual(edt) nowait
  { total = 2; }
}
)");
  EXPECT_EQ(find_rule(diags, "E4"), nullptr);
  EXPECT_EQ(find_rule(diags, "W3"), nullptr);
}

TEST(AnalyzeRules, W3OnConditionalWrite) {
  const auto diags = run(R"(
void f(int n) {
  int hits = 0;
  //#omp target virtual(worker) nowait
  {
    if (n > 0) { hits = n; }
  }
  //#omp target virtual(logger) nowait
  { consume(hits); }
}
)");
  EXPECT_EQ(find_rule(diags, "E4"), nullptr);
  const Diagnostic* d = find_rule(diags, "W3");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 8);
  EXPECT_NE(d->message.find("EVMP_RACECHECK"), std::string::npos);
}

TEST(AnalyzeRules, W3OnIndirectMemberAccess) {
  const auto diags = run(R"(
void f() {
  std::vector<int> box;
  //#omp target virtual(worker) nowait
  { box.push_back(1); }
  //#omp target virtual(logger) nowait
  { box.push_back(2); }
}
)");
  EXPECT_EQ(find_rule(diags, "E4"), nullptr);
  const Diagnostic* d = find_rule(diags, "W3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'box'"), std::string::npos);
}

TEST(AnalyzeRules, E4LocalDeclarationsAreNotCaptures) {
  const auto diags = run(R"(
void f(int n) {
  //#omp target virtual(worker) nowait
  {
    int total = n;
    total += 1;
    consume(total);
  }
  //#omp target virtual(logger) nowait
  {
    int total = 2 * n;
    consume(total);
  }
}
)");
  EXPECT_TRUE(diags.empty());
}

// --- the per-TU call graph -------------------------------------------------

TEST(CallGraphUnit, AttributesCallsToFunctionsAndRegions) {
  const DirectiveGraph graph(R"(
void helper() { leaf(); }
void handler() {
  //#omp target virtual(worker) nowait
  {
    helper();
  }
}
)");
  const evmp::analysis::CallGraph cg(graph);
  ASSERT_EQ(cg.functions().size(), 2u);
  EXPECT_EQ(cg.functions()[0].name, "helper");
  EXPECT_EQ(cg.functions()[1].name, "handler");
  bool saw_helper_call = false;
  for (const evmp::analysis::AttributedCall& call : cg.calls()) {
    if (call.site.callee != "helper") continue;
    saw_helper_call = true;
    EXPECT_EQ(call.caller, 1);  // attributed to handler
    EXPECT_EQ(cg.context_target(call.site.pos), "worker");
  }
  EXPECT_TRUE(saw_helper_call);
}

// --- interprocedural E1/E2/E3 (function summaries) ------------------------

TEST(Interprocedural, E1FiresThroughHelperCallWithPath) {
  const auto diags = run(R"(
void helper() {
  //#omp target virtual(worker)
  { busy(); }
}
void handler() {
  //#omp target virtual(worker) nowait
  {
    helper();
  }
}
)");
  const Diagnostic* d = find_rule(diags, "E1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 9);  // anchored at the call site, not the dispatch
  EXPECT_NE(d->message.find("handler -> helper"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("dispatch at line 3"), std::string::npos);
}

TEST(Interprocedural, E2FiresThroughTwoLevelChain) {
  const auto diags = run(R"(
void leaf() {
  //#omp target virtual(worker)
  { long_work(); }
}
void mid() { leaf(); }
void on_event() {
  //#omp target virtual(edt) nowait
  {
    mid();
  }
}
)");
  const Diagnostic* d = find_rule(diags, "E2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 10);
  EXPECT_NE(d->message.find("mid"), std::string::npos);
  EXPECT_NE(d->message.find("leaf"), std::string::npos);
}

TEST(Interprocedural, SilentWhenTheCalleeDispatchIsNonBlocking) {
  const auto diags = run(R"(
void helper() {
  //#omp target virtual(worker) nowait
  { fine(); }
}
void handler() {
  //#omp target virtual(worker) nowait
  {
    helper();
  }
}
)");
  EXPECT_EQ(find_rule(diags, "E1"), nullptr);
  EXPECT_EQ(find_rule(diags, "E2"), nullptr);
}

TEST(Interprocedural, E3CycleThroughCallMediatedEdge) {
  const auto diags = run(R"(
void poke_alpha() {
  //#omp target virtual(alpha)
  { }
}
//#omp target virtual(alpha) nowait
{
  //#omp target virtual(beta)
  { }
}
//#omp target virtual(beta) nowait
{
  poke_alpha();
}
)");
  const Diagnostic* d = find_rule(diags, "E3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("via call to poke_alpha"), std::string::npos)
      << d->message;
}

TEST(Interprocedural, RecursionDoesNotDivergeAndStillReports) {
  // Mutually recursive helpers form one SCC; the blocking dispatch must
  // still surface at the region's call site without looping forever.
  const auto diags = run(R"(
void ping(int n) {
  if (n > 0) pong(n - 1);
  //#omp target virtual(worker)
  { step(); }
}
void pong(int n) {
  if (n > 0) ping(n - 1);
}
void handler() {
  //#omp target virtual(worker) nowait
  {
    pong(3);
  }
}
)");
  const Diagnostic* d = find_rule(diags, "E1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 13);
}

// --- E5 / W4: capture lifetimes -------------------------------------------

TEST(CaptureLifetime, E5FiresOnInnerBlockNowaitCapture) {
  const auto diags = run(R"(
void f() {
  {
    int data = 0;
    //#omp target virtual(worker) nowait
    { data = 1; }
  }
  more();
}
)");
  const Diagnostic* d = find_rule(diags, "E5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 5);
  EXPECT_NE(d->message.find("'data'"), std::string::npos);
  EXPECT_NE(d->message.find("use after scope"), std::string::npos);
}

TEST(CaptureLifetime, E5SilentWhenJoinedInsideTheBlock) {
  const auto diags = run(R"(
void f() {
  {
    int data = 0;
    //#omp target virtual(worker) name_as(t)
    { data = 1; }
    //#omp wait(t)
  }
}
)");
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(CaptureLifetime, E5SilentWhenFencedByBlockingDispatchToSameTarget) {
  // The serial executor drains its FIFO: a later await dispatch to the
  // same target joins the pending nowait block before the storage dies.
  const auto diags = run(R"(
void f() {
  {
    int data = 0;
    //#omp target virtual(worker) nowait
    { data = 1; }
    //#omp target virtual(worker) await
    { flush(); }
  }
}
)");
  EXPECT_EQ(find_rule(diags, "E5"), nullptr);
}

TEST(CaptureLifetime, FrameLocalFiresOnlyWithAKnownCaller) {
  // Without a caller the frame may well be main's: analysis horizon.
  const std::string_view body = R"(
void fire() {
  int payload = 0;
  //#omp target virtual(worker) nowait
  { payload = 1; }
}
)";
  EXPECT_TRUE(run(body).empty());
  const std::string with_caller =
      std::string(body) + "void drive() { fire(); }\n";
  const auto diags = run(with_caller);
  const Diagnostic* d = find_rule(diags, "E5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 4);
  EXPECT_NE(d->message.find("frame of 'fire'"), std::string::npos);
  EXPECT_NE(d->message.find("called from"), std::string::npos);
}

TEST(CaptureLifetime, FirstprivateCaptureDoesNotEscape) {
  const auto diags = run(R"(
void f() {
  {
    int data = 0;
    //#omp target virtual(worker) nowait firstprivate(data)
    { consume(data); }
  }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(CaptureLifetime, W4OnConditionalDispatch) {
  const auto diags = run(R"(
void f(bool hot) {
  {
    int staged = 0;
    if (hot) {
      //#omp target virtual(worker) nowait
      { staged = 1; }
    }
  }
}
)");
  EXPECT_EQ(find_rule(diags, "E5"), nullptr);
  const Diagnostic* d = find_rule(diags, "W4");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 6);
  EXPECT_NE(d->message.find("possible use after scope"), std::string::npos);
}

TEST(CaptureLifetime, ByRefArgumentEscapeReportsAtTheCallSite) {
  const auto diags = run(R"(
void submit(int& slot) {
  //#omp target virtual(worker) nowait
  { slot += 1; }
}
void drive() {
  {
    int slot = 0;
    submit(slot);
  }
}
)");
  const Diagnostic* d = find_rule(diags, "E5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 9);
  EXPECT_NE(d->message.find("drive -> submit"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("pass it by value"), std::string::npos);
}

// --- multi-TU linked analysis ---------------------------------------------

TEST(MultiTu, LinkedTagsPairAcrossUnits) {
  const std::vector<evmp::analysis::SourceUnit> units{
      {"producer.cpp",
       "void p() {\n//#omp target virtual(render) name_as(frames)\n"
       "{ go(); }\n}\n"},
      {"consumer.cpp", "void c() {\n//#omp wait(frames)\n}\n"}};
  EXPECT_TRUE(evmp::analysis::analyze_program(units).empty());

  // Either unit alone is a W1; the consumer-side message says so in
  // single-TU wording.
  const auto alone = evmp::analysis::analyze_program({units.back()});
  const Diagnostic* d = find_rule(alone, "W1");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("in this translation unit"), std::string::npos)
      << d->message;
}

TEST(MultiTu, UnmatchedTagsCarryTheAnchoringFileAndLinkedWording) {
  const std::vector<evmp::analysis::SourceUnit> units{
      {"producer.cpp",
       "void p() {\n//#omp target virtual(render) name_as(orphan)\n"
       "{ go(); }\n}\n"},
      {"consumer.cpp", "void c() {\n//#omp wait(missing)\n}\n"}};
  const auto diags = evmp::analysis::analyze_program(units);
  ASSERT_EQ(diags.size(), 2u);
  // Sorted by file: consumer.cpp first.
  EXPECT_EQ(diags[0].file, "consumer.cpp");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].file, "producer.cpp");
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_NE(diags[0].message.find("anywhere in the linked program"),
            std::string::npos);
  const std::string text = evmp::analysis::render_text(diags, "a.cpp");
  EXPECT_NE(text.find("consumer.cpp:2: warning[W1]"), std::string::npos)
      << text;
}

TEST(MultiTu, BlockingHelperDefinedInAnotherUnit) {
  const std::vector<evmp::analysis::SourceUnit> units{
      {"helper.cpp",
       "void helper() {\n//#omp target virtual(worker)\n{ busy(); }\n}\n"},
      {"handler.cpp",
       "void handler() {\n//#omp target virtual(worker) nowait\n{\n"
       "helper();\n}\n}\n"}};
  const auto diags = evmp::analysis::analyze_program(units);
  const Diagnostic* d = find_rule(diags, "E1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->file, "handler.cpp");
  EXPECT_EQ(d->line, 4);
  EXPECT_NE(d->message.find("dispatch at helper.cpp:2"), std::string::npos)
      << d->message;
}

TEST(MultiTu, UnparseableUnitIsAPerFileP1) {
  const std::vector<evmp::analysis::SourceUnit> units{
      {"good.cpp", "void ok() { }\n"},
      {"bad.cpp", "//#omp target bogus(\n{ }\n"}};
  const auto diags = evmp::analysis::analyze_program(units);
  const Diagnostic* d = find_rule(diags, "P1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->file, "bad.cpp");
}

// --- evmp-lint-ignore suppressions -----------------------------------------

TEST(AnalyzeRules, LintIgnoreCommaListCoversE5AndW4) {
  const std::string_view source = R"(
void f() {
  {
    int data = 0;
    // evmp-lint-ignore(E5,W4)
    //#omp target virtual(worker) nowait
    { data = 1; }
  }
}
)";
  EXPECT_TRUE(run(source).empty());
  // --no-ignores audits past the comma list.
  EXPECT_NE(find_rule(run_no_ignores(source), "E5"), nullptr);
}

TEST(AnalyzeRules, LintIgnoreIsPerFileInLinkedMode) {
  // The suppression in one TU must not leak into another TU's findings
  // on the same line number.
  const std::vector<evmp::analysis::SourceUnit> units{
      {"suppressed.cpp",
       "void p() {\n// evmp-lint-ignore(W1)\n"
       "//#omp target virtual(render) name_as(orphan)\n{ go(); }\n}\n"},
      {"loud.cpp",
       "void q() {\n// not a marker\n//#omp wait(missing)\n}\n"}};
  const auto diags = evmp::analysis::analyze_program(units);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "W1");
  EXPECT_EQ(diags[0].file, "loud.cpp");
}


TEST(AnalyzeRules, LintIgnoreSuppressesOnLineAbove) {
  const std::string_view source = R"(
void f(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait
  { total = n; }
  // evmp-lint-ignore(E4)
  //#omp target virtual(logger) nowait
  { total = 2 * n; }
}
)";
  EXPECT_TRUE(run(source).empty());
  // --no-ignores audits past the comment.
  EXPECT_NE(find_rule(run_no_ignores(source), "E4"), nullptr);
}

TEST(AnalyzeRules, LintIgnoreIsRuleSpecific) {
  // The marker names W9, so the E4 finding survives.
  const auto diags = run(R"(
void f(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait
  { total = n; }
  // evmp-lint-ignore(W9)
  //#omp target virtual(logger) nowait
  { total = 2 * n; }
}
)");
  EXPECT_NE(find_rule(diags, "E4"), nullptr);
}

TEST(AnalyzeRules, LintIgnoreBareMarkerAndStarSuppressEverything) {
  const auto diags = run(R"(
// evmp-lint-ignore
//#omp wait(consumed)
// evmp-lint-ignore(*)
//#omp target virtual(worker) name_as(produced)
{ }
)");
  EXPECT_TRUE(diags.empty());  // both W1 findings suppressed
}

// --- P1 --------------------------------------------------------------------

TEST(AnalyzeRules, P1FiresOnUnparseableDirective) {
  const auto diags = run(R"(
//#omp target bogus(
{ }
)");
  const Diagnostic* d = find_rule(diags, "P1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

TEST(AnalyzeRules, P1FiresOnDuplicateClauses) {
  EXPECT_NE(find_rule(run("//#omp target virtual(w) if(a) if(b)\n{ }\n"),
                      "P1"),
            nullptr);
  EXPECT_NE(find_rule(run("//#omp target virtual(w) nowait await\n{ }\n"),
                      "P1"),
            nullptr);
}

// --- renderers -------------------------------------------------------------

TEST(Diagnostics, TextRendererUsesCompilerShape) {
  const auto diags = run("//#omp target virtual(edt) nowait\n{\n"
                         "//#omp target virtual(w)\n{ }\n}\n");
  const std::string text = evmp::analysis::render_text(diags, "gui.cpp");
  EXPECT_EQ(text.rfind("gui.cpp:3: error[E2]: ", 0), 0u) << text;
}

TEST(Diagnostics, JsonRendererEmptyCase) {
  EXPECT_EQ(evmp::analysis::render_json({}, "a.cpp"),
            "{\n  \"file\": \"a.cpp\",\n  \"diagnostics\": [],\n"
            "  \"errors\": 0,\n  \"warnings\": 0\n}\n");
}

TEST(Diagnostics, JsonRendererSchemaAndEscaping) {
  std::vector<Diagnostic> diags{
      {"E1", Severity::kError, 7, "a \"quoted\"\nmessage"},
      {"W2", Severity::kWarning, 9, "plain"}};
  const std::string json =
      evmp::analysis::render_json(diags, "dir\\file.cpp");
  EXPECT_NE(json.find("\"file\": \"dir\\\\file.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"E1\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
}

TEST(Diagnostics, JsonRendererEscapesControlShorthands) {
  std::vector<Diagnostic> diags{
      {"E4", Severity::kError, 1, std::string("a\bb\fc\x01" "d")}};
  const std::string json = evmp::analysis::render_json(diags, "a.cpp");
  EXPECT_NE(json.find("a\\bb\\fc\\u0001d"), std::string::npos) << json;
}

// --- the checked-in fixture corpus ----------------------------------------

TEST(AnalysisFixtures, CorpusMatchesExpectedDiagnostics) {
  struct Case {
    const char* file;
    std::vector<std::pair<std::string, int>> expected;  // (rule, line)
  };
  const Case cases[] = {
      {"e1_self_blocking.cpp", {{"E1", 9}}},
      {"e2_edt_blocking.cpp", {{"E2", 8}}},
      {"e3_blocking_cycle.cpp", {{"E3", 8}}},
      {"w1_unmatched_tags.cpp", {{"W1", 6}, {"W1", 10}}},
      {"w2_loop_capture.cpp", {{"W2", 7}}},
      {"p1_malformed.cpp", {{"P1", 4}}},
      {"clean_pipeline.cpp", {}},
      {"e4_write_write.cpp", {{"E4", 11}}},
      {"e4_read_write.cpp", {{"E4", 11}}},
      {"w3_conditional.cpp", {{"W3", 13}}},
      {"clean_joined_pipeline.cpp", {}},
      {"clean_suppressed_e4.cpp", {}},
      {"e5_use_after_scope.cpp", {{"E5", 17}, {"E5", 24}}},
      {"w4_conditional_escape.cpp", {{"W4", 9}}},
      {"clean_interprocedural.cpp", {}},
      {"multi_tu_producer.cpp", {{"W1", 7}}},
      {"multi_tu_consumer.cpp", {{"W1", 7}}},
  };
  for (const Case& c : cases) {
    const std::string source =
        read_file(std::string(EVMP_ANALYSIS_FIXTURE_DIR) + "/" + c.file);
    const auto diags = run(source);
    std::vector<std::pair<std::string, int>> got;
    got.reserve(diags.size());
    for (const Diagnostic& d : diags) got.emplace_back(d.rule, d.line);
    EXPECT_EQ(got, c.expected) << c.file;
  }
}

TEST(AnalysisFixtures, ExamplesAnalyzeClean) {
  const char* examples[] = {
      "async_download.cpp",  "dashboard_annotated.cpp",
      "http_encrypt_service.cpp", "image_pipeline.cpp",
      "quickstart.cpp",      "translator_demo.cpp"};
  for (const char* name : examples) {
    const std::string source =
        read_file(std::string(EVMP_EXAMPLES_DIR) + "/" + name);
    EXPECT_TRUE(run(source).empty()) << name;
  }
}

TEST(AnalysisFixtures, MultiTuPairIsCleanWhenLinked) {
  std::vector<evmp::analysis::SourceUnit> units;
  for (const char* name :
       {"multi_tu_producer.cpp", "multi_tu_consumer.cpp"}) {
    units.push_back(
        {name,
         read_file(std::string(EVMP_ANALYSIS_FIXTURE_DIR) + "/" + name)});
  }
  const auto diags = evmp::analysis::analyze_program(units);
  EXPECT_TRUE(diags.empty()) << evmp::analysis::render_text(diags, "pair");
}

// --- SARIF renderer --------------------------------------------------------

TEST(Diagnostics, SarifRendererSchemaRulesAndLocations) {
  std::vector<Diagnostic> diags{
      {"E5", Severity::kError, 12, "use after scope: variable 'x'"},
      {"W4", Severity::kWarning, 3, "possible use after scope", "other.cpp"}};
  const std::string sarif = evmp::analysis::render_sarif(diags, "main.cpp");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"evmpcc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"E5\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  // The first finding falls back to the render file; the second carries
  // its own anchoring TU.
  EXPECT_NE(sarif.find("\"uri\": \"main.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"other.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  // Rule metadata is emitted once per distinct rule, sorted: E5 first.
  const std::size_t e5_meta = sarif.find("{\"id\": \"E5\"");
  const std::size_t w4_meta = sarif.find("{\"id\": \"W4\"");
  ASSERT_NE(e5_meta, std::string::npos);
  ASSERT_NE(w4_meta, std::string::npos);
  EXPECT_LT(e5_meta, w4_meta);
}

TEST(Diagnostics, SarifRendererEmptyCaseIsValid) {
  const std::string sarif = evmp::analysis::render_sarif({}, "a.cpp");
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos) << sarif;
}

// --- dispatch-site call chains (runtime verifier metadata) -----------------

TEST(DispatchSite, StackComposesAndUnwinds) {
  EXPECT_FALSE(evmp::analysis::has_dispatch_site());
  EXPECT_EQ(evmp::analysis::dispatch_site_path(), "");
  {
    evmp::analysis::ScopedDispatchSite outer("on_click");
    EXPECT_TRUE(evmp::analysis::has_dispatch_site());
    {
      evmp::analysis::ScopedDispatchSite inner("submit_jobs");
      EXPECT_EQ(evmp::analysis::dispatch_site_path(),
                "on_click -> submit_jobs");
    }
    EXPECT_EQ(evmp::analysis::dispatch_site_path(), "on_click");
  }
  EXPECT_FALSE(evmp::analysis::has_dispatch_site());
}

TEST(DispatchSite, OverflowIsCountedNotCrashed) {
  std::vector<std::unique_ptr<evmp::analysis::ScopedDispatchSite>> frames;
  frames.reserve(20);
  for (int i = 0; i < 20; ++i) {
    frames.push_back(
        std::make_unique<evmp::analysis::ScopedDispatchSite>("deep"));
  }
  const std::string path = evmp::analysis::dispatch_site_path();
  EXPECT_NE(path.find("deep"), std::string::npos);
  EXPECT_NE(path.find("..."), std::string::npos) << path;
  frames.clear();
  EXPECT_FALSE(evmp::analysis::has_dispatch_site());
}

// --- WaitGraph (unit, no threads) -----------------------------------------

TEST(WaitGraphUnit, DetectsTwoNodeCycleWhenSaturated) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  graph.add_wait({"alpha", 1}, "beta", 1, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
  graph.add_wait({"beta", 1}, "alpha", 1, "default-mode dispatch", true);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("deadlock detected"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("pending="), std::string::npos);
}

TEST(WaitGraphUnit, UnsaturatedPoolIsNotADeadlock) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  graph.add_wait({"pool", 2}, "serial", 0, "default-mode dispatch", true);
  graph.add_wait({"serial", 1}, "pool", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());  // pool still has a free thread
  graph.add_wait({"pool", 2}, "serial", 0, "default-mode dispatch", true);
  EXPECT_FALSE(report.empty());  // now the pool is saturated: deadlock
}

TEST(WaitGraphUnit, SoftAwaitEdgesNeverSaturate) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  // The EDT awaits (pumping, soft) while the worker hard-blocks on it:
  // no deadlock — the pump can still drain the EDT queue.
  graph.add_wait({"edt", 1}, "worker", 0, "await logical barrier", false);
  graph.add_wait({"worker", 1}, "edt", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
}

TEST(WaitGraphUnit, RemovedEdgesStopCounting) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  const auto id =
      graph.add_wait({"alpha", 1}, "beta", 0, "default-mode dispatch", true);
  graph.remove_wait(id);
  graph.add_wait({"beta", 1}, "alpha", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
  EXPECT_NE(graph.describe().find("'beta'"), std::string::npos);
}

TEST(WaitGraphUnit, ExternalWaitersCannotDeadlock) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  // concurrency 0 marks a non-executor waiter: it never saturates, so a
  // main thread blocking on a busy pool is never itself a cycle member.
  graph.add_wait({"external:1", 0}, "pool", 4, "default-mode dispatch", true);
  graph.add_wait({"pool", 1}, "tag:batch", 2, "wait(name-tag)", true);
  EXPECT_TRUE(report.empty());
}

TEST(WaitGraphUnit, EdgesCarryTheActiveDispatchSite) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  {
    evmp::analysis::ScopedDispatchSite site("on_click");
    graph.add_wait({"alpha", 1}, "beta", 1, "default-mode dispatch", true);
  }
  EXPECT_NE(graph.describe().find("[at on_click]"), std::string::npos)
      << graph.describe();
  graph.add_wait({"beta", 1}, "alpha", 1, "default-mode dispatch", true);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("[at on_click]"), std::string::npos) << report;
}

TEST(WaitGraphUnit, GlobalIsDisabledWithoutEnv) {
  ::unsetenv("EVMP_VERIFY");
  EXPECT_EQ(WaitGraph::global(), nullptr);
}

// --- EVMP_RACECHECK (vector-clock race verifier) ---------------------------

TEST(RaceCheckUnit, GlobalIsDisabledWithoutEnv) {
  ::unsetenv("EVMP_RACECHECK");
  EXPECT_EQ(evmp::analysis::RaceCheck::active(), nullptr);
}

TEST(RaceCheckUnit, DetectsUnjoinedCrossThreadWrites) {
  evmp::analysis::RaceCheck rc;
  std::string report;
  rc.set_failure_handler([&](const std::string& r) {
    if (report.empty()) report = r;
  });
  evmp::analysis::RaceCheck::ScopedInstall install(&rc);

  evmp::Runtime runtime;
  runtime.create_worker("worker", 2);
  evmp::shared<int> counter("counter");
  // The events sequence the two accesses in wall-clock time so the test
  // is deterministic; they are NOT dispatch edges, so RaceCheck still
  // (correctly) sees the writes as unordered.
  evmp::common::ManualResetEvent first_wrote;
  evmp::common::ManualResetEvent release_first;
  auto h1 = runtime.invoke_target_block(
      "worker",
      [&] {
        counter.write() = 1;
        first_wrote.set();
        release_first.wait();
      },
      evmp::Async::kNowait);
  auto h2 = runtime.invoke_target_block(
      "worker",
      [&] {
        first_wrote.wait();
        counter.write() = 2;
        release_first.set();
      },
      evmp::Async::kNowait);
  h1.wait();
  h2.wait();
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("data race"), std::string::npos);
  EXPECT_NE(report.find("'counter'"), std::string::npos);
  EXPECT_NE(report.find("worker"), std::string::npos) << report;
}

TEST(RaceCheckUnit, ReportChainsCarryDispatchSites) {
  evmp::analysis::RaceCheck rc;
  std::string report;
  rc.set_failure_handler([&](const std::string& r) {
    if (report.empty()) report = r;
  });
  evmp::analysis::RaceCheck::ScopedInstall install(&rc);

  evmp::Runtime runtime;
  runtime.create_worker("worker", 2);
  evmp::shared<int> counter("counter");
  evmp::common::ManualResetEvent first_wrote;
  evmp::common::ManualResetEvent release_first;
  evmp::exec::TaskHandle h1;
  evmp::exec::TaskHandle h2;
  {
    evmp::analysis::ScopedDispatchSite site("submit_jobs");
    h1 = runtime.invoke_target_block(
        "worker",
        [&] {
          counter.write() = 1;
          first_wrote.set();
          release_first.wait();
        },
        evmp::Async::kNowait);
    h2 = runtime.invoke_target_block(
        "worker",
        [&] {
          first_wrote.wait();
          counter.write() = 2;
          release_first.set();
        },
        evmp::Async::kNowait);
  }
  h1.wait();
  h2.wait();
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("[at submit_jobs]"), std::string::npos) << report;
}

TEST(RaceCheckUnit, WaitTagJoinOrdersAccesses) {
  evmp::analysis::RaceCheck rc;
  std::string report;
  rc.set_failure_handler([&](const std::string& r) {
    if (report.empty()) report = r;
  });
  evmp::analysis::RaceCheck::ScopedInstall install(&rc);

  evmp::Runtime runtime;
  runtime.create_worker("worker", 2);
  evmp::shared<int> value("value");
  runtime.invoke_target_block(
      "worker", [&] { value.write() = 41; }, evmp::Async::kNameAs, "stage");
  runtime.wait_tag("stage");  // joins the producer's clock
  runtime.invoke_target_block(
      "worker", [&] { value.write() += 1; }, evmp::Async::kDefault);
  // kDefault joined the block on return, so this read is ordered too.
  EXPECT_EQ(value.read(), 42);
  EXPECT_TRUE(report.empty()) << report;
}

// --- EVMP_VERIFY end-to-end (death tests) ---------------------------------

#if !defined(EVMP_TSAN)

TEST(WaitGraphDeathTest, AbortsOnTwoExecutorBlockingCycle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // alpha's only thread blocks on beta while beta's only thread blocks on
  // alpha; with EVMP_VERIFY=1 the second edge insertion must detect the
  // cycle and abort with the full chain instead of hanging.
  EXPECT_DEATH(
      {
        ::setenv("EVMP_VERIFY", "1", 1);
        evmp::Runtime runtime;
        runtime.create_worker("alpha", 1);
        runtime.create_worker("beta", 1);
        runtime.invoke_target_block(
            "alpha",
            [&runtime] {
              runtime.invoke_target_block(
                  "beta",
                  [&runtime] {
                    runtime.invoke_target_block("alpha", [] {},
                                                evmp::Async::kDefault);
                  },
                  evmp::Async::kDefault);
            },
            evmp::Async::kNowait);
        std::this_thread::sleep_for(std::chrono::seconds(30));
      },
      "deadlock detected.*alpha.*beta");
}

TEST(WaitGraphDeathTest, TimeoutAbortsAStalledDefaultWait) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ::setenv("EVMP_VERIFY", "1", 1);
        ::setenv("EVMP_VERIFY_TIMEOUT_MS", "200", 1);
        evmp::Runtime runtime;
        runtime.create_worker("slow", 1);
        runtime.invoke_target_block(
            "slow",
            [] { std::this_thread::sleep_for(std::chrono::seconds(30)); },
            evmp::Async::kDefault);
      },
      "wait timeout after 200 ms.*slow");
}

TEST(RaceCheckDeathTest, AbortsOnRacyNowaitHandlers) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two nowait handlers write the same evmp::shared<int> with no wait(tag)
  // or blocking dispatch between them: with EVMP_RACECHECK=1 the second
  // write must abort with the dispatch-chain report.
  EXPECT_DEATH(
      {
        ::setenv("EVMP_RACECHECK", "1", 1);
        evmp::Runtime runtime;
        runtime.create_worker("worker", 2);
        evmp::shared<int> counter("counter");
        evmp::common::ManualResetEvent first_wrote;
        evmp::common::ManualResetEvent hold;
        runtime.invoke_target_block(
            "worker",
            [&] {
              counter.write() = 1;
              first_wrote.set();
              hold.wait();
            },
            evmp::Async::kNowait);
        runtime.invoke_target_block(
            "worker",
            [&] {
              first_wrote.wait();
              counter.write() = 2;  // unordered with the first write: abort
            },
            evmp::Async::kNowait);
        std::this_thread::sleep_for(std::chrono::seconds(30));
      },
      "data race on shared variable 'counter'.*worker");
}

#endif  // !EVMP_TSAN

}  // namespace

// The analysis subsystem: the evmpcc static directive lint (DirectiveGraph
// + rule passes E1-E3/W1-W2/P1, text/JSON renderers) and the EVMP_VERIFY
// runtime wait-for-graph verifier (cycle detection, saturation semantics,
// abort-on-deadlock instead of a silent hang).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/directive_graph.hpp"
#include "analysis/wait_graph.hpp"
#include "core/runtime.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EVMP_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define EVMP_TSAN 1
#endif

namespace {

using evmp::analysis::Diagnostic;
using evmp::analysis::DirectiveGraph;
using evmp::analysis::Severity;
using evmp::analysis::WaitGraph;

std::vector<Diagnostic> run(std::string_view source) {
  return evmp::analysis::analyze_source(source);
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- DirectiveGraph structure --------------------------------------------

TEST(DirectiveGraph, TracksLexicalNesting) {
  const DirectiveGraph graph(R"(
//#omp target virtual(outer) nowait
{
  int x = 0;
  //#omp target virtual(inner) nowait
  { x++; }
  //#omp wait(t)
}
//#omp target virtual(sibling) nowait
{ }
)");
  ASSERT_EQ(graph.nodes().size(), 4u);
  EXPECT_EQ(graph.nodes()[0].parent, -1);
  EXPECT_EQ(graph.nodes()[1].parent, 0);  // inner is inside outer
  EXPECT_EQ(graph.nodes()[2].parent, 0);  // the wait too
  EXPECT_EQ(graph.nodes()[3].parent, -1);  // sibling closed outer's block
  EXPECT_EQ(graph.enclosing_target(1), 0);
  EXPECT_EQ(graph.enclosing_target(3), -1);
}

TEST(DirectiveGraph, ParallelRegionResetsTargetContext) {
  const DirectiveGraph graph(R"(
//#omp target virtual(worker) nowait
{
  #pragma omp parallel for
  for (int i = 0; i < 4; ++i) {
    //#omp target virtual(worker)
    { work(i); }
  }
}
)");
  ASSERT_EQ(graph.nodes().size(), 3u);
  EXPECT_EQ(graph.nodes()[2].parent, 1);       // nested in the parallel-for
  EXPECT_EQ(graph.enclosing_target(2), -1);    // ...whose team is not `worker`
  // Consequently no E1: the dispatching thread is a team thread, not a
  // worker-pool thread.
  EXPECT_EQ(find_rule(evmp::analysis::analyze(graph), "E1"), nullptr);
}

// --- E1 / E2 --------------------------------------------------------------

TEST(AnalyzeRules, E1FiresOnSelfBlockingDispatch) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{
  //#omp target virtual(worker)
  { busy(); }
}
)");
  const Diagnostic* d = find_rule(diags, "E1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 4);
}

TEST(AnalyzeRules, E1SilentForAwaitAndNowait) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{
  //#omp target virtual(worker) await
  { pumped(); }
  //#omp target virtual(worker) nowait
  { fire_and_forget(); }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeRules, E2FiresOnBlockingDispatchFromEdt) {
  const auto diags = run(R"(
//#omp target virtual(edt) nowait
{
  //#omp target virtual(worker)
  { long_work(); }
}
)");
  const Diagnostic* d = find_rule(diags, "E2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 4);
  EXPECT_EQ(find_rule(diags, "E1"), nullptr);
}

TEST(AnalyzeRules, E2SilentForAwaitFromEdt) {
  const auto diags = run(R"(
//#omp target virtual(edt) nowait
{
  //#omp target virtual(worker) await
  { long_work(); }
}
)");
  EXPECT_TRUE(diags.empty());
}

// --- E3 --------------------------------------------------------------------

TEST(AnalyzeRules, E3FiresOnDispatchCycle) {
  const auto diags = run(R"(
//#omp target virtual(alpha) nowait
{
  //#omp target virtual(beta)
  { }
}
//#omp target virtual(beta) nowait
{
  //#omp target virtual(alpha)
  { }
}
)");
  const Diagnostic* d = find_rule(diags, "E3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("alpha"), std::string::npos);
  EXPECT_NE(d->message.find("beta"), std::string::npos);
  EXPECT_NE(d->message.find("->"), std::string::npos);
}

TEST(AnalyzeRules, E3FiresOnWaitJoinCycle) {
  // io blocks on worker via a default dispatch; worker blocks on io via
  // the wait(batch) join of an io-producing name_as.
  const auto diags = run(R"(
//#omp target virtual(io) nowait
{
  //#omp target virtual(worker)
  { }
}
//#omp target virtual(worker) nowait
{
  //#omp wait(batch)
}
//#omp target virtual(io) name_as(batch)
{ }
)");
  const Diagnostic* d = find_rule(diags, "E3");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("wait(batch)"), std::string::npos);
  EXPECT_EQ(find_rule(diags, "W1"), nullptr);  // the tag pair is matched
}

TEST(AnalyzeRules, E3SilentWithoutACycle) {
  const auto diags = run(R"(
//#omp target virtual(alpha) nowait
{
  //#omp target virtual(beta)
  { }
}
)");
  EXPECT_EQ(find_rule(diags, "E3"), nullptr);
}

// --- W1 --------------------------------------------------------------------

TEST(AnalyzeRules, W1FiresOnBothUnmatchedDirections) {
  const auto diags = run(R"(
//#omp target virtual(worker) name_as(produced)
{ }
//#omp wait(consumed)
)");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "W1");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].rule, "W1");
  EXPECT_EQ(diags[1].line, 4);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(AnalyzeRules, W1SilentWhenTagsPair) {
  const auto diags = run(R"(
//#omp target virtual(worker) name_as(batch)
{ }
//#omp wait(batch)
)");
  EXPECT_TRUE(diags.empty());
}

// --- W2 --------------------------------------------------------------------

TEST(AnalyzeRules, W2FiresOnLoopVariableCapture) {
  const auto diags = run(R"(
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait
  { use(job); }
}
)");
  const Diagnostic* d = find_rule(diags, "W2");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("'job'"), std::string::npos);
}

TEST(AnalyzeRules, W2HandlesRangeForVariables) {
  const auto diags = run(R"(
for (const auto& item : items) {
  //#omp target virtual(worker) nowait
  { use(item); }
}
)");
  ASSERT_NE(find_rule(diags, "W2"), nullptr);
}

TEST(AnalyzeRules, W2SilentWithFirstprivate) {
  const auto diags = run(R"(
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait firstprivate(job)
  { use(job); }
}
)");
  EXPECT_TRUE(diags.empty());
}

TEST(AnalyzeRules, W2SilentOutsideLoopsAndForUnusedVariables) {
  const auto diags = run(R"(
//#omp target virtual(worker) nowait
{ use(42); }
for (int job = 0; job < n; ++job) {
  //#omp target virtual(worker) nowait
  { use(jobless); }
}
)");
  EXPECT_TRUE(diags.empty());
}

// --- P1 --------------------------------------------------------------------

TEST(AnalyzeRules, P1FiresOnUnparseableDirective) {
  const auto diags = run(R"(
//#omp target bogus(
{ }
)");
  const Diagnostic* d = find_rule(diags, "P1");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 2);
}

TEST(AnalyzeRules, P1FiresOnDuplicateClauses) {
  EXPECT_NE(find_rule(run("//#omp target virtual(w) if(a) if(b)\n{ }\n"),
                      "P1"),
            nullptr);
  EXPECT_NE(find_rule(run("//#omp target virtual(w) nowait await\n{ }\n"),
                      "P1"),
            nullptr);
}

// --- renderers -------------------------------------------------------------

TEST(Diagnostics, TextRendererUsesCompilerShape) {
  const auto diags = run("//#omp target virtual(edt) nowait\n{\n"
                         "//#omp target virtual(w)\n{ }\n}\n");
  const std::string text = evmp::analysis::render_text(diags, "gui.cpp");
  EXPECT_EQ(text.rfind("gui.cpp:3: error[E2]: ", 0), 0u) << text;
}

TEST(Diagnostics, JsonRendererEmptyCase) {
  EXPECT_EQ(evmp::analysis::render_json({}, "a.cpp"),
            "{\n  \"file\": \"a.cpp\",\n  \"diagnostics\": [],\n"
            "  \"errors\": 0,\n  \"warnings\": 0\n}\n");
}

TEST(Diagnostics, JsonRendererSchemaAndEscaping) {
  std::vector<Diagnostic> diags{
      {"E1", Severity::kError, 7, "a \"quoted\"\nmessage"},
      {"W2", Severity::kWarning, 9, "plain"}};
  const std::string json =
      evmp::analysis::render_json(diags, "dir\\file.cpp");
  EXPECT_NE(json.find("\"file\": \"dir\\\\file.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"E1\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
}

// --- the checked-in fixture corpus ----------------------------------------

TEST(AnalysisFixtures, CorpusMatchesExpectedDiagnostics) {
  struct Case {
    const char* file;
    std::vector<std::pair<std::string, int>> expected;  // (rule, line)
  };
  const Case cases[] = {
      {"e1_self_blocking.cpp", {{"E1", 9}}},
      {"e2_edt_blocking.cpp", {{"E2", 8}}},
      {"e3_blocking_cycle.cpp", {{"E3", 8}}},
      {"w1_unmatched_tags.cpp", {{"W1", 6}, {"W1", 10}}},
      {"w2_loop_capture.cpp", {{"W2", 7}}},
      {"p1_malformed.cpp", {{"P1", 4}}},
      {"clean_pipeline.cpp", {}},
  };
  for (const Case& c : cases) {
    const std::string source =
        read_file(std::string(EVMP_ANALYSIS_FIXTURE_DIR) + "/" + c.file);
    const auto diags = run(source);
    std::vector<std::pair<std::string, int>> got;
    got.reserve(diags.size());
    for (const Diagnostic& d : diags) got.emplace_back(d.rule, d.line);
    EXPECT_EQ(got, c.expected) << c.file;
  }
}

TEST(AnalysisFixtures, ExamplesAnalyzeClean) {
  const char* examples[] = {
      "async_download.cpp",  "dashboard_annotated.cpp",
      "http_encrypt_service.cpp", "image_pipeline.cpp",
      "quickstart.cpp",      "translator_demo.cpp"};
  for (const char* name : examples) {
    const std::string source =
        read_file(std::string(EVMP_EXAMPLES_DIR) + "/" + name);
    EXPECT_TRUE(run(source).empty()) << name;
  }
}

// --- WaitGraph (unit, no threads) -----------------------------------------

TEST(WaitGraphUnit, DetectsTwoNodeCycleWhenSaturated) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  graph.add_wait({"alpha", 1}, "beta", 1, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
  graph.add_wait({"beta", 1}, "alpha", 1, "default-mode dispatch", true);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("deadlock detected"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("pending="), std::string::npos);
}

TEST(WaitGraphUnit, UnsaturatedPoolIsNotADeadlock) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  graph.add_wait({"pool", 2}, "serial", 0, "default-mode dispatch", true);
  graph.add_wait({"serial", 1}, "pool", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());  // pool still has a free thread
  graph.add_wait({"pool", 2}, "serial", 0, "default-mode dispatch", true);
  EXPECT_FALSE(report.empty());  // now the pool is saturated: deadlock
}

TEST(WaitGraphUnit, SoftAwaitEdgesNeverSaturate) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  // The EDT awaits (pumping, soft) while the worker hard-blocks on it:
  // no deadlock — the pump can still drain the EDT queue.
  graph.add_wait({"edt", 1}, "worker", 0, "await logical barrier", false);
  graph.add_wait({"worker", 1}, "edt", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
}

TEST(WaitGraphUnit, RemovedEdgesStopCounting) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  const auto id =
      graph.add_wait({"alpha", 1}, "beta", 0, "default-mode dispatch", true);
  graph.remove_wait(id);
  graph.add_wait({"beta", 1}, "alpha", 0, "default-mode dispatch", true);
  EXPECT_TRUE(report.empty());
  EXPECT_NE(graph.describe().find("'beta'"), std::string::npos);
}

TEST(WaitGraphUnit, ExternalWaitersCannotDeadlock) {
  WaitGraph graph;
  std::string report;
  graph.set_failure_handler([&](const std::string& r) { report = r; });
  // concurrency 0 marks a non-executor waiter: it never saturates, so a
  // main thread blocking on a busy pool is never itself a cycle member.
  graph.add_wait({"external:1", 0}, "pool", 4, "default-mode dispatch", true);
  graph.add_wait({"pool", 1}, "tag:batch", 2, "wait(name-tag)", true);
  EXPECT_TRUE(report.empty());
}

TEST(WaitGraphUnit, GlobalIsDisabledWithoutEnv) {
  ::unsetenv("EVMP_VERIFY");
  EXPECT_EQ(WaitGraph::global(), nullptr);
}

// --- EVMP_VERIFY end-to-end (death tests) ---------------------------------

#if !defined(EVMP_TSAN)

TEST(WaitGraphDeathTest, AbortsOnTwoExecutorBlockingCycle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // alpha's only thread blocks on beta while beta's only thread blocks on
  // alpha; with EVMP_VERIFY=1 the second edge insertion must detect the
  // cycle and abort with the full chain instead of hanging.
  EXPECT_DEATH(
      {
        ::setenv("EVMP_VERIFY", "1", 1);
        evmp::Runtime runtime;
        runtime.create_worker("alpha", 1);
        runtime.create_worker("beta", 1);
        runtime.invoke_target_block(
            "alpha",
            [&runtime] {
              runtime.invoke_target_block(
                  "beta",
                  [&runtime] {
                    runtime.invoke_target_block("alpha", [] {},
                                                evmp::Async::kDefault);
                  },
                  evmp::Async::kDefault);
            },
            evmp::Async::kNowait);
        std::this_thread::sleep_for(std::chrono::seconds(30));
      },
      "deadlock detected.*alpha.*beta");
}

TEST(WaitGraphDeathTest, TimeoutAbortsAStalledDefaultWait) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ::setenv("EVMP_VERIFY", "1", 1);
        ::setenv("EVMP_VERIFY_TIMEOUT_MS", "200", 1);
        evmp::Runtime runtime;
        runtime.create_worker("slow", 1);
        runtime.invoke_target_block(
            "slow",
            [] { std::this_thread::sleep_for(std::chrono::seconds(30)); },
            evmp::Async::kDefault);
      },
      "wait timeout after 200 ms.*slow");
}

#endif  // !EVMP_TSAN

}  // namespace

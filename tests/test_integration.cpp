// Integration tests spanning the whole stack: the Figure 6 GUI scenario
// with real kernels, mixed-mode stress under load with a responsiveness
// probe, and execution of evmpcc-generated code (translated at build time
// from tests/fixtures/pipeline_annotated.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "baselines/approaches.hpp"
#include "common/sync.hpp"
#include "core/evmp.hpp"
#include "event/load.hpp"
#include "kernels/kernel_pool.hpp"

namespace evmp_fixture {
// Compiled from evmpcc output (see tests/CMakeLists.txt).
std::vector<std::string> run_pipeline(evmp::Runtime& rt, bool offload);
double run_traditional(int n);
long run_adaptive(int n);
}  // namespace evmp_fixture

namespace evmp {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("worker", 3);
    rt_.create_worker("io", 2);
  }
  void TearDown() override { rt_.clear(); }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
};

TEST_F(IntegrationTest, Figure6ImageAppEndToEnd) {
  event::Gui gui(edt_, event::ConfinementPolicy::kCount);
  auto& msg = gui.add_label("msg");
  auto& view = gui.add_image_view("img");
  auto& button = gui.add_button("go");

  common::CountdownLatch finished(1);
  std::atomic<std::uint64_t> expected_checksum{0};

  edt_.invoke_and_wait([&] {
    button.on_click([&] {
      msg.set_text("Started EDT handling");
      const int hscode = 1234;
      // //#omp target virtual(worker) nowait
      rt_.target("worker").nowait([&, hscode] {
        // downloadAndCompute: synthesise an image from the "download".
        event::Image img;
        img.width = 16;
        img.height = 16;
        img.pixels.resize(16 * 16);
        common::Xoshiro256 rng(static_cast<std::uint64_t>(hscode));
        for (auto& p : img.pixels) {
          p = static_cast<std::uint32_t>(rng.next());
        }
        expected_checksum.store(img.checksum());
        // //#omp target virtual(edt)   (display, then finish message)
        rt_.target("edt").run([&] { view.display(img); });
        rt_.target("edt").nowait([&] {
          msg.set_text("Finished!");
          finished.count_down();
        });
      });
    });
  });

  button.click();
  ASSERT_TRUE(finished.wait_for(std::chrono::seconds{30}));
  edt_.wait_until_idle();

  EXPECT_EQ(gui.violations(), 0u);
  std::uint64_t shown = 0;
  std::string final_msg;
  edt_.invoke_and_wait([&] {
    shown = view.displayed_checksum();
    final_msg = msg.text();
  });
  EXPECT_EQ(shown, expected_checksum.load());
  EXPECT_EQ(final_msg, "Finished!");
}

TEST_F(IntegrationTest, MixedModeStressKeepsEdtResponsive) {
  kernels::KernelPool pool("montecarlo", kernels::SizeClass::kTiny);
  event::ResponseProbe probe(edt_, common::Millis{2});
  probe.start();

  event::OpenLoopDriver::Options opt;
  opt.count = 40;
  opt.rate_hz = 400.0;
  const auto result = event::OpenLoopDriver::run(
      edt_, opt, [&](std::size_t i, const event::CompletionToken& token) {
        auto k = pool.acquire();
        switch (i % 3) {
          case 0:
            rt_.target("worker").nowait([k, token] {
              k->run_sequential();
              token.complete();
            });
            break;
          case 1: {
            rt_.target("worker").name_as("stress", [k] {
              k->run_sequential();
            });
            // Completion rides on a second tagged block.
            rt_.target("worker").name_as("stress", [token] {
              token.complete();
            });
            break;
          }
          default:
            rt_.target("worker").await([k] { k->run_sequential(); });
            token.complete();
            break;
        }
      });
  rt_.wait_tag("stress");
  probe.stop();
  edt_.wait_until_idle();

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.completed, 40u);
  // The EDT stayed responsive: median probe latency well under the
  // per-event kernel time.
  EXPECT_LT(probe.latencies().percentile(0.5), 20'000'000u);  // < 20ms
}

TEST_F(IntegrationTest, TranslatedPipelineRunsCorrectly) {
  const auto log = evmp_fixture::run_pipeline(rt_, /*offload=*/true);
  edt_.wait_until_idle();
  ASSERT_GE(log.size(), 5u);
  EXPECT_EQ(log.front(), "start");
  // Both tagged batches ran before S3's sum check.
  EXPECT_NE(std::find(log.begin(), log.end(), "batch-a"), log.end());
  EXPECT_NE(std::find(log.begin(), log.end(), "batch-b"), log.end());
  EXPECT_NE(std::find(log.begin(), log.end(), "sum-ok"), log.end());
  EXPECT_NE(std::find(log.begin(), log.end(), "double-ok"), log.end());
  EXPECT_EQ(std::find(log.begin(), log.end(), "sum-bad"), log.end());
}

TEST_F(IntegrationTest, TranslatedPipelineIfClauseFalseIsSequential) {
  // offload=false: the if-clause forces inline execution; results identical.
  const auto log = evmp_fixture::run_pipeline(rt_, /*offload=*/false);
  edt_.wait_until_idle();
  EXPECT_NE(std::find(log.begin(), log.end(), "sum-ok"), log.end());
  EXPECT_NE(std::find(log.begin(), log.end(), "double-ok"), log.end());
}

TEST(TranslatedTraditional, ParallelForWithReductionsComputesExactly) {
  // run_traditional is evmpcc output for `#pragma omp parallel for` with
  // schedule/num_threads/firstprivate and +/max reductions, plus a
  // `#pragma omp parallel` region. data[i] == i, so:
  //   sum = n(n-1)/2, largest = n-1, hits = #(v>1) = n-2, members = 4.
  const int n = 100;
  const double expected = 4950.0 + 99.0 + 98.0 + 4000.0;
  EXPECT_DOUBLE_EQ(evmp_fixture::run_traditional(n), expected);
}

TEST(TranslatedTraditional, AdaptiveWidthComputesExactly) {
  // num_threads(adaptive): the WidthGovernor picks the team width, so the
  // reduction must partition the range exactly regardless of the width
  // granted under the test machine's load.
  EXPECT_EQ(evmp_fixture::run_adaptive(1000), 1000L);
  EXPECT_EQ(evmp_fixture::run_adaptive(1), 1L);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(evmp_fixture::run_adaptive(257), 257L);
  }
}

TEST(TranslatedTraditional, StableAcrossRepeats) {
  const double first = evmp_fixture::run_traditional(64);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(evmp_fixture::run_traditional(64), first);
  }
}

TEST_F(IntegrationTest, ManyConcurrentAwaitsOnWorkers) {
  // Awaiting blocks issued from pool threads must help each other along
  // rather than deadlocking the pool (logical barrier on workers).
  std::atomic<int> completed{0};
  common::CountdownLatch done(8);
  for (int i = 0; i < 8; ++i) {
    rt_.target("worker").nowait([&] {
      rt_.target("io").await(
          [] { common::precise_sleep(common::Millis{5}); });
      completed.fetch_add(1);
      done.count_down();
    });
  }
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{30}));
  EXPECT_EQ(completed.load(), 8);
}

TEST_F(IntegrationTest, RuntimeSurvivesTargetChurn) {
  for (int round = 0; round < 10; ++round) {
    const std::string name = "ephemeral" + std::to_string(round);
    rt_.create_worker(name, 1);
    std::atomic<bool> ran{false};
    rt_.target(name).run([&] { ran.store(true); });
    EXPECT_TRUE(ran.load());
    rt_.unregister(name);
    EXPECT_FALSE(rt_.has_target(name));
  }
}

}  // namespace
}  // namespace evmp

// Tests for src/net: the HTTP/1.1 wire layer, the epoll reactor (posted
// tasks, timer wheel, shutdown), the loopback server (echo and handler
// modes, EOF/partial-write/keep-alive paths, idle timeouts, graceful
// stop) and the watermark admission machinery end to end, plus the
// bounded injection queue and try_post at the unit level.

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_queue.hpp"
#include "core/runtime.hpp"
#include "executor/thread_pool_executor.hpp"
#include "net/http.hpp"
#include "net/reactor.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace evmp::net {
namespace {

std::span<const std::uint8_t> as_bytes_view(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// --- blocking-style client helpers (poll + nonblocking fd) ---------------

void send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      ASSERT_GT(::poll(&p, 1, 5000), 0) << "send_all timed out";
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    FAIL() << "send failed: errno " << errno;
  }
}

/// One response with its body copied out of the stream buffer.
struct OwnedResponse {
  int status = 0;
  std::uint64_t id = 0;
  std::uint64_t checksum = 0;
  std::vector<std::uint8_t> body;
};

/// Read until `want` complete HTTP responses arrived (or EOF/timeout).
/// Returns false on EOF or timeout before `want`.
bool read_responses(int fd, std::size_t want, std::vector<OwnedResponse>* out,
                    int timeout_ms = 10000) {
  std::vector<std::uint8_t> buf;
  std::size_t off = 0;
  while (out->size() < want) {
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      for (;;) {
        HttpResponse resp;
        std::size_t consumed = 0;
        const ParseStatus st = parse_http_response(
            std::span<const std::uint8_t>(buf).subspan(off), &consumed,
            &resp);
        if (st != ParseStatus::kOk) break;
        off += consumed;
        out->push_back(OwnedResponse{resp.status, resp.id, resp.checksum,
                                     {resp.body.begin(), resp.body.end()}});
      }
      continue;
    }
    if (n == 0) return out->size() >= want;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) return false;  // timeout
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Wait (polling) until read() returns EOF on `fd`.
bool read_eof(int fd) {
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) return true;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (n < 0 && errno != EINTR) return false;
  }
  return false;
}

Fd connect_ready(std::uint16_t port) {
  Fd fd = connect_tcp_loopback(port);
  EXPECT_TRUE(fd.valid());
  pollfd p{fd.get(), POLLOUT, 0};
  EXPECT_GT(::poll(&p, 1, 5000), 0);
  int err = -1;
  socklen_t len = sizeof(err);
  ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
  EXPECT_EQ(err, 0);
  return fd;
}

// --- HTTP wire units ------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  encode_http_request(wire, 42, payload);
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(wire, &consumed, &req), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/encrypt");
  EXPECT_EQ(req.id, 42u);
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(std::equal(req.body.begin(), req.body.end(), payload.begin(),
                         payload.end()));
}

TEST(Http, ResponseRoundTrip) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> body{9, 8, 7};
  encode_http_response(wire, kStatusOk, 7, 0xDEADBEEFull, body);
  HttpResponse resp;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_response(wire, &consumed, &resp), ParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(resp.status, kStatusOk);
  EXPECT_EQ(resp.id, 7u);
  EXPECT_EQ(resp.checksum, 0xDEADBEEFull);
  EXPECT_TRUE(std::equal(resp.body.begin(), resp.body.end(), body.begin(),
                         body.end()));
}

TEST(Http, ShedResponseHasRetryAfterAndNoBody) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> ignored{1, 2, 3};
  encode_http_response(wire, kStatusShed, 11, 99, ignored);
  const std::string text(wire.begin(), wire.end());
  EXPECT_NE(text.find("503"), std::string::npos);
  EXPECT_NE(text.find("Retry-After: 0"), std::string::npos);
  HttpResponse resp;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_response(wire, &consumed, &resp), ParseStatus::kOk);
  EXPECT_EQ(resp.status, kStatusShed);
  EXPECT_EQ(resp.id, 11u);
  EXPECT_TRUE(resp.body.empty());
}

TEST(Http, NeedMoreOnEveryPrefix) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{9, 8, 7};
  encode_http_request(wire, 7, payload);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    HttpRequest req;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_http_request(
                  std::span<const std::uint8_t>(wire.data(), cut), &consumed,
                  &req),
              ParseStatus::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(Http, PipelinedRequestsParseSequentially) {
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> a{1};
  const std::vector<std::uint8_t> b{2, 2};
  encode_http_request(wire, 1, a);
  encode_http_request(wire, 2, b);
  HttpRequest req;
  std::size_t consumed = 0;
  ASSERT_EQ(parse_http_request(wire, &consumed, &req), ParseStatus::kOk);
  EXPECT_EQ(req.id, 1u);
  EXPECT_EQ(req.body.size(), 1u);
  const std::size_t first = consumed;
  ASSERT_EQ(parse_http_request(
                std::span<const std::uint8_t>(wire).subspan(first), &consumed,
                &req),
            ParseStatus::kOk);
  EXPECT_EQ(req.id, 2u);
  EXPECT_EQ(req.body.size(), 2u);
  EXPECT_EQ(first + consumed, wire.size());
}

TEST(Http, KeepAliveDefaultsFollowVersion) {
  const auto parse = [](std::string_view text) {
    HttpRequest req;
    std::size_t consumed = 0;
    EXPECT_EQ(parse_http_request(as_bytes_view(text), &consumed, &req),
              ParseStatus::kOk);
    return req.keep_alive;
  };
  EXPECT_TRUE(parse("POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_FALSE(parse(
      "POST / HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_FALSE(parse("POST / HTTP/1.0\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_TRUE(parse("POST / HTTP/1.0\r\nConnection: keep-alive\r\n"
                    "Content-Length: 0\r\n\r\n"));
}

TEST(Http, MalformedInputIsError) {
  HttpRequest req;
  std::size_t consumed = 0;
  // Not an HTTP version at all.
  EXPECT_EQ(parse_http_request(as_bytes_view("POST / FTP/9.9\r\n\r\n"),
                               &consumed, &req),
            ParseStatus::kError);
  // Unparseable Content-Length.
  EXPECT_EQ(parse_http_request(
                as_bytes_view(
                    "POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n"),
                &consumed, &req),
            ParseStatus::kError);
  // A header block that exceeds the cap without terminating is an error,
  // not an invitation to buffer forever.
  std::string huge = "POST / HTTP/1.1\r\nX-Filler: ";
  huge.append(kMaxHeaderBytes, 'a');
  EXPECT_EQ(parse_http_request(as_bytes_view(huge), &consumed, &req),
            ParseStatus::kError);
}

// --- reactor --------------------------------------------------------------

TEST(Reactor, RunsPostedTasksOnItsOwnThread) {
  Reactor reactor("t.reactor");
  reactor.start();
  std::atomic<bool> ran{false};
  std::atomic<bool> owned{false};
  reactor.post(exec::Task([&] {
    owned.store(reactor.owns_current_thread());
    ran.store(true);
  }));
  for (int i = 0; i < 1000 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(owned.load());
  reactor.stop();
  EXPECT_GE(reactor.stats().tasks_run, 1u);
}

TEST(Reactor, StopIsIdempotentAndRefusesLatePosts) {
  Reactor reactor("t.reactor2");
  reactor.start();
  reactor.stop();
  reactor.stop();
  EXPECT_FALSE(reactor.try_post(exec::Task([] { FAIL() << "ran late"; })));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(Reactor, TimerFiresOnceAfterDelay) {
  Reactor reactor("t.timer");
  reactor.start();
  std::atomic<int> fired{0};
  reactor.add_timer(std::chrono::milliseconds{5},
                    exec::Task([&] { fired.fetch_add(1); }));
  for (int i = 0; i < 1000 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), 1);  // one-shot
  reactor.stop();
  const ReactorStats s = reactor.stats();
  EXPECT_GE(s.timers_scheduled, 1u);
  EXPECT_GE(s.timers_fired, 1u);
}

TEST(Reactor, CancelledTimerNeverFires) {
  Reactor reactor("t.cancel");
  reactor.start();
  std::atomic<bool> fired{false};
  const TimerId id = reactor.add_timer(std::chrono::milliseconds{30},
                                       exec::Task([&] { fired.store(true); }));
  reactor.cancel_timer(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(fired.load());
  reactor.stop();
  EXPECT_EQ(reactor.stats().timers_cancelled, 1u);
}

TEST(Reactor, TimerCallbackMayRearmItself) {
  Reactor reactor("t.rearm");
  reactor.start();
  std::atomic<int> ticks{0};
  std::function<void()> tick = [&] {
    if (ticks.fetch_add(1) + 1 < 3) {
      reactor.add_timer(std::chrono::milliseconds{2}, exec::Task(tick));
    }
  };
  reactor.add_timer(std::chrono::milliseconds{2}, exec::Task(tick));
  for (int i = 0; i < 1000 && ticks.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ticks.load(), 3);
  reactor.stop();
}

// --- server ---------------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void start(Server::Config cfg) {
    rt_.create_worker("worker", 2);
    server_ = std::make_unique<Server>(rt_, std::move(cfg));
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  Runtime rt_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, EchoRoundTrip) {
  start({});
  Fd fd = connect_ready(server_->port());
  const std::vector<std::uint8_t> payload{'h', 'e', 'l', 'l', 'o'};
  std::vector<std::uint8_t> wire;
  encode_http_request(wire, 1, payload);
  send_all(fd.get(), wire);
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].id, 1u);
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_EQ(responses[0].checksum, fnv1a(payload));
  EXPECT_EQ(responses[0].body, payload);
}

TEST_F(NetServerTest, PipelinedRequestsAnsweredExactlyOnce) {
  start({});
  Fd fd = connect_ready(server_->port());
  constexpr int kCount = 32;
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < kCount; ++i) {
    const std::vector<std::uint8_t> payload(17 + i, std::uint8_t(i));
    encode_http_request(wire, static_cast<std::uint64_t>(i + 1), payload);
  }
  send_all(fd.get(), wire);
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), kCount, &responses));
  std::vector<bool> seen(kCount, false);
  for (const OwnedResponse& r : responses) {
    ASSERT_GE(r.id, 1u);
    ASSERT_LE(r.id, static_cast<std::uint64_t>(kCount));
    const std::size_t idx = r.id - 1;
    EXPECT_FALSE(seen[idx]) << "duplicate response " << r.id;
    seen[idx] = true;
    EXPECT_EQ(r.status, kStatusOk);
    const std::vector<std::uint8_t> payload(17 + idx, std::uint8_t(idx));
    EXPECT_EQ(r.checksum, fnv1a(payload));
  }
}

TEST_F(NetServerTest, LargePayloadExercisesPartialIo) {
  // 4 MiB body: far beyond one socket buffer, so the server's read loop
  // sees many partial reads and its echo response hits EAGAIN and the
  // EPOLLOUT re-arm path while we deliberately read slowly.
  start({});
  Fd fd = connect_ready(server_->port());
  std::vector<std::uint8_t> payload(4u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::vector<std::uint8_t> wire;
  encode_http_request(wire, 99, payload);
  send_all(fd.get(), wire);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].id, 99u);
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_EQ(responses[0].checksum, fnv1a(payload));
  EXPECT_EQ(responses[0].body.size(), payload.size());
}

TEST_F(NetServerTest, EofAfterRequestStillGetsResponseThenClose) {
  // A client that sends one request and shuts down its write side must
  // still receive the response, after which the server closes the
  // connection (flush-then-close on peer EOF).
  start({});
  Fd fd = connect_ready(server_->port());
  const std::vector<std::uint8_t> payload{1, 2, 3};
  std::vector<std::uint8_t> wire;
  encode_http_request(wire, 5, payload);
  send_all(fd.get(), wire);
  ASSERT_EQ(::shutdown(fd.get(), SHUT_WR), 0);
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_TRUE(read_eof(fd.get()));
}

TEST_F(NetServerTest, ConnectionCloseIsHonored) {
  start({});
  Fd fd = connect_ready(server_->port());
  const std::string req =
      "POST /encrypt HTTP/1.1\r\nX-Request-Id: 3\r\nConnection: close\r\n"
      "Content-Length: 2\r\n\r\nok";
  send_all(fd.get(), as_bytes_view(req));
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].id, 3u);
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_TRUE(read_eof(fd.get()));
}

TEST_F(NetServerTest, ImmediateEofClosesWithoutRequests) {
  start({});
  const std::uint64_t accepted_before = server_->stats().connections_accepted;
  {
    Fd fd = connect_ready(server_->port());
    // Close with no bytes sent.
  }
  for (int i = 0; i < 500; ++i) {
    const ServerStats s = server_->stats();
    if (s.connections_closed > 0 && s.connections_accepted > accepted_before) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const ServerStats s = server_->stats();
  EXPECT_GE(s.connections_accepted, accepted_before + 1);
  EXPECT_GE(s.connections_closed, 1u);
  EXPECT_EQ(s.requests_received, 0u);
}

TEST_F(NetServerTest, MalformedRequestClosesConnection) {
  start({});
  Fd fd = connect_ready(server_->port());
  send_all(fd.get(), as_bytes_view("POST / FTP/9.9\r\n\r\n"));
  EXPECT_TRUE(read_eof(fd.get()));
  EXPECT_EQ(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, IdleTimeoutClosesQuietConnection) {
  Server::Config cfg;
  cfg.idle_timeout = std::chrono::milliseconds{50};
  start(std::move(cfg));
  Fd fd = connect_ready(server_->port());
  EXPECT_TRUE(read_eof(fd.get()));
  EXPECT_GE(server_->stats().idle_closed, 1u);
}

TEST_F(NetServerTest, WatermarkHysteresisSheds503) {
  // high=1 with a slow handler: a pipelined burst arrives as one readable
  // batch; the first request is admitted and crosses the high watermark,
  // so every further request parsed in the same batch is shed with a 503
  // while the accept gate closes. Deterministic because admission and
  // parsing both run on the reactor thread.
  Server::Config cfg;
  cfg.mode = Server::Mode::kHandler;
  cfg.high_watermark = 1;
  cfg.low_watermark = 0;
  cfg.handler = [](const http::Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    http::Response resp;
    resp.id = req.id;
    resp.checksum = 0;
    resp.ok = true;
    return resp;
  };
  start(std::move(cfg));
  Fd fd = connect_ready(server_->port());
  constexpr int kBurst = 16;
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{0xAA, 0xBB};
  for (int i = 0; i < kBurst; ++i) {
    encode_http_request(wire, static_cast<std::uint64_t>(i + 1), payload);
  }
  send_all(fd.get(), wire);
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), kBurst, &responses));
  int ok = 0;
  int shed = 0;
  for (const OwnedResponse& r : responses) {
    if (r.status == kStatusOk) ++ok;
    if (r.status == kStatusShed) ++shed;
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, kBurst - 1);
  const ServerStats s = server_->stats();
  EXPECT_EQ(s.requests_received, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(s.requests_admitted, 1u);
  EXPECT_EQ(s.requests_shed, static_cast<std::uint64_t>(kBurst - 1));
  EXPECT_EQ(s.responses_sent, 1u);  // shed 503s bypass the worker path
  EXPECT_EQ(s.shed_entries, 1u);
  EXPECT_GE(s.accept_gate_closes, 1u);
}

TEST_F(NetServerTest, ShedStateRecoversBelowLowWatermark) {
  // After the slow burst drains, inflight falls to the low watermark, the
  // gate reopens, and a fresh request is admitted again.
  Server::Config cfg;
  cfg.mode = Server::Mode::kHandler;
  cfg.high_watermark = 1;
  cfg.low_watermark = 0;
  cfg.handler = [](const http::Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    http::Response resp;
    resp.id = req.id;
    resp.checksum = 0;
    resp.ok = true;
    return resp;
  };
  start(std::move(cfg));
  Fd fd = connect_ready(server_->port());
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{1};
  encode_http_request(wire, 1, payload);
  encode_http_request(wire, 2, payload);  // shed while #1 is in flight
  send_all(fd.get(), wire);
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 2, &responses));
  // Wait out the drain so the hysteresis flips back to ADMIT.
  for (int i = 0; i < 500 && server_->stats().responses_sent < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  wire.clear();
  encode_http_request(wire, 3, payload);
  send_all(fd.get(), wire);
  responses.clear();
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].id, 3u);
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_EQ(server_->stats().requests_admitted, 2u);
}

TEST_F(NetServerTest, GracefulStopDrainsInflightResponses) {
  Server::Config cfg;
  cfg.mode = Server::Mode::kHandler;
  cfg.handler = [](const http::Request& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    http::Response resp;
    resp.id = req.id;
    resp.checksum = 0;
    resp.ok = true;
    return resp;
  };
  start(std::move(cfg));
  Fd fd = connect_ready(server_->port());
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint8_t> payload{4, 5, 6};
  encode_http_request(wire, 77, payload);
  send_all(fd.get(), wire);
  // Deterministic handoff: stop() only after the request is in flight.
  for (int i = 0; i < 2000 && server_->stats().requests_admitted == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server_->stats().requests_admitted, 1u);
  server_->stop();  // waits on the drain tag, then flushes and closes
  std::vector<OwnedResponse> responses;
  ASSERT_TRUE(read_responses(fd.get(), 1, &responses));
  EXPECT_EQ(responses[0].id, 77u);
  EXPECT_EQ(responses[0].status, kStatusOk);
  EXPECT_TRUE(read_eof(fd.get()));
  EXPECT_EQ(server_->stats().responses_sent, 1u);
}

// --- bounded injection queue (unit) --------------------------------------

TEST(BoundedQueue, TryPushRejectsExactlyTheOverflow) {
  common::ShardedMpmcQueue<int> queue;
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kAttempts = 20;
  queue.set_capacity(kCap);
  EXPECT_EQ(queue.capacity(), kCap);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kAttempts; ++i) {
    if (queue.try_push(static_cast<int>(i))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // No consumer ran: exactly kCap accepted, the rest refused, no deadlock.
  EXPECT_EQ(accepted, kCap);
  EXPECT_EQ(rejected, kAttempts - kCap);
  EXPECT_EQ(queue.size(), kCap);
  EXPECT_EQ(queue.stats().rejections, kAttempts - kCap);
  // Draining frees capacity for try_push again.
  std::size_t popped = 0;
  while (queue.try_pop()) ++popped;
  EXPECT_EQ(popped, kCap);
  EXPECT_TRUE(queue.try_push(1));
}

TEST(BoundedQueue, PlainPushIgnoresCapacity) {
  // post()'s must-succeed contract: the bound applies to try_push only,
  // so completion-carrying dispatches can never be refused.
  common::ShardedMpmcQueue<int> queue;
  queue.set_capacity(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.push(i));
  }
  EXPECT_EQ(queue.size(), 10u);
  EXPECT_EQ(queue.stats().rejections, 0u);
}

TEST(BoundedQueue, TryPushRefusedAfterClose) {
  common::ShardedMpmcQueue<int> queue;
  queue.set_capacity(4);
  EXPECT_TRUE(queue.try_push(1));
  queue.close();
  EXPECT_FALSE(queue.try_push(2));
  EXPECT_TRUE(queue.try_pop().has_value());  // pending stays poppable
}

TEST(BoundedExecutor, TryPostShedsWhenFullThenRecovers) {
  exec::ThreadPoolExecutor pool("bounded", 2);
  constexpr std::size_t kCap = 4;
  pool.set_queue_capacity(kCap);
  EXPECT_EQ(pool.queue_capacity(), kCap);

  // Gate both workers so the queue depth is fully under our control.
  std::atomic<bool> release{false};
  std::atomic<int> gated{0};
  for (int i = 0; i < 2; ++i) {
    pool.post(exec::Task([&] {
      gated.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    }));
  }
  while (gated.load() < 2) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::size_t accepted = 0;
  std::size_t refused = 0;
  constexpr std::size_t kAttempts = 12;
  for (std::size_t i = 0; i < kAttempts; ++i) {
    if (pool.try_post(exec::Task([&] { ran.fetch_add(1); }))) {
      ++accepted;
    } else {
      ++refused;
    }
  }
  EXPECT_EQ(accepted, kCap);
  EXPECT_EQ(refused, kAttempts - kCap);

  release.store(true);
  pool.shutdown();
  // Every accepted task ran; every refused task was destroyed, not run.
  EXPECT_EQ(ran.load(), static_cast<int>(accepted));
  EXPECT_EQ(pool.queue_stats().rejections, kAttempts - kCap);
}

}  // namespace
}  // namespace evmp::net

// Tests for the execution tracer and its event-loop/executor hooks.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "common/tracing.hpp"
#include "event/event_loop.hpp"
#include "executor/thread_pool_executor.hpp"

namespace evmp::common {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().enable(true);
  }
  void TearDown() override {
    Tracer::instance().enable(false);
    Tracer::instance().clear();
  }
};

TEST_F(TracingTest, RecordsManualSpans) {
  const auto t0 = now();
  Tracer::instance().record("alpha", "test", t0, t0 + Millis{3});
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "alpha");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_NEAR(static_cast<double>(spans[0].duration_us), 3000.0, 100.0);
}

TEST_F(TracingTest, ScopedSpanMeasuresItsScope) {
  {
    ScopedSpan span("scoped", "test");
    precise_sleep(Millis{5});
  }
  const auto spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].duration_us, 4500);
}

TEST_F(TracingTest, DisabledRecordsNothing) {
  Tracer::instance().enable(false);
  Tracer::instance().record("ghost", "test", now(), now());
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TracingTest, CapacityDropsAndCounts) {
  Tracer::instance().set_capacity(2);
  const auto t0 = now();
  for (int i = 0; i < 5; ++i) {
    Tracer::instance().record("x", "test", t0, t0);
  }
  EXPECT_EQ(Tracer::instance().size(), 2u);
  EXPECT_EQ(Tracer::instance().dropped(), 3u);
  Tracer::instance().set_capacity(1u << 20);
}

TEST_F(TracingTest, EventLoopDispatchIsTraced) {
  event::EventLoop loop("edt");
  loop.start();
  loop.invoke_and_wait([] { precise_sleep(Millis{2}); });
  loop.wait_until_idle();
  bool found = false;
  for (const auto& s : Tracer::instance().snapshot()) {
    if (s.name == "edt.dispatch" && s.category == "event") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TracingTest, ExecutorTasksAreTraced) {
  exec::ThreadPoolExecutor pool("traced-pool", 2);
  CountdownLatch latch(3);
  for (int i = 0; i < 3; ++i) {
    pool.post([&] { latch.count_down(); });
  }
  ASSERT_TRUE(latch.wait_for(std::chrono::seconds{5}));
  pool.shutdown();
  int pool_spans = 0;
  for (const auto& s : Tracer::instance().snapshot()) {
    if (s.name == "traced-pool") ++pool_spans;
  }
  EXPECT_EQ(pool_spans, 3);
}

TEST_F(TracingTest, ChromeTraceExportIsWellFormedJson) {
  const auto t0 = now();
  Tracer::instance().record("needs \"escaping\"\\", "cat", t0,
                            t0 + Micros{10});
  const std::string path = "/tmp/evmp_trace_test.json";
  ASSERT_TRUE(Tracer::instance().write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\"\\\\"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TracingTest, ThreadIdsAreStablePerThread) {
  const auto id1 = Tracer::instance().current_thread_id();
  const auto id2 = Tracer::instance().current_thread_id();
  EXPECT_EQ(id1, id2);
  std::uint32_t other = 0;
  std::jthread t([&] { other = Tracer::instance().current_thread_id(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, id1);
}

}  // namespace
}  // namespace evmp::common

// Fixture: E4 — two unordered nowait regions both write the same
// by-reference capture; the MHP race rule must flag the pair.
#include <cstdio>

void unsynchronized(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait
  {
    total = n;
  }
  //#omp target virtual(logger) nowait
  {
    total = 2 * n;
  }
  std::printf("%d\n", total);
}

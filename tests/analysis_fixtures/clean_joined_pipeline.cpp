// Fixture: clean — concurrent stages whose shared capture is ordered
// by a name_as producer and its wait(tag) join; no race diagnostics.
#include <cstdio>

void joined(int n) {
  int staged = 0;
  //#omp target virtual(worker) name_as(stage)
  {
    staged = 3 * n;
  }
  //#omp wait(stage)
  //#omp target virtual(logger) nowait
  {
    std::printf("staged %d\n", staged);
  }
}

// Fixture: clean via suppression — an acknowledged E4 race silenced
// with evmp-lint-ignore on the line above the racy region; the CI
// audit mode (--no-ignores) still sees it.
#include <cstdio>

void acknowledged(int n) {
  int total = 0;
  //#omp target virtual(worker) nowait
  {
    total = n;
  }
  // evmp-lint-ignore(E4)
  //#omp target virtual(logger) nowait
  {
    total = 2 * n;
  }
  std::printf("%d\n", total);
}

// Fixture: E3 — cyclic blocking chain between two serial virtual
// targets: alpha blocks on beta while beta blocks on alpha.
#include <cstdio>

void cross_block() {
  //#omp target virtual(alpha) nowait
  {
    //#omp target virtual(beta)
    {
      std::printf("alpha waits for beta\n");
    }
  }
  //#omp target virtual(beta) nowait
  {
    //#omp target virtual(alpha)
    {
      std::printf("beta waits for alpha\n");
    }
  }
}

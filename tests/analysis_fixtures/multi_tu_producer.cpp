// Fixture: multi-TU producer — name_as(frames) whose wait(frames)
// consumer lives in multi_tu_consumer.cpp. Linted alone this TU raises
// W1 (tag never joined); linked with the consumer the pair is clean.
#include <cstdio>

void render_frames() {
  //#omp target virtual(render) name_as(frames)
  {
    std::printf("frame produced\n");
  }
}

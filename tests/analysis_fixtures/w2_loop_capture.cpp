// Fixture: W2 — the loop control variable is captured by reference by
// an asynchronous region that can outlive the iteration.
#include <cstdio>

void fan_out(int n) {
  for (int job = 0; job < n; ++job) {
    //#omp target virtual(worker) nowait
    {
      std::printf("job %d\n", job);
    }
  }
}

// Fixture: W1 — a name_as tag that is never joined, and a wait() with
// no producer anywhere in the translation unit.
#include <cstdio>

void tags() {
  //#omp target virtual(worker) name_as(produced)
  {
    std::printf("tagged block nobody joins\n");
  }
  //#omp wait(consumed)
}

// Fixture: clean — await barriers, matched name_as/wait tags, and
// firstprivate loop captures; the lint must stay silent here.
#include <cstdio>

void good(int n) {
  for (int job = 0; job < n; ++job) {
    //#omp target virtual(worker) name_as(jobs) firstprivate(job)
    {
      std::printf("job %d\n", job);
    }
  }
  //#omp wait(jobs)
  //#omp target virtual(edt) await
  {
    std::printf("publish\n");
  }
}

// Fixture: W3 — the write is under a condition, so the race is
// heuristic-grade: warning, not error (gates only under --Werror).
#include <cstdio>

void maybe_racy(int n) {
  int hits = 0;
  //#omp target virtual(worker) nowait
  {
    if (n > 0) {
      hits = n;
    }
  }
  //#omp target virtual(logger) nowait
  {
    std::printf("hits %d\n", hits);
  }
}

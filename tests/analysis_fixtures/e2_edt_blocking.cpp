// Fixture: E2 — blocking default-mode dispatch from the edt region
// freezes the event-dispatch thread (paper Figure 1).
#include <cstdio>

void on_click() {
  //#omp target virtual(edt) nowait
  {
    //#omp target virtual(worker)
    {
      std::printf("long work while the EDT blocks\n");
    }
  }
}

// Fixture: clean — a by-ref escape through a helper function that the
// caller joins with wait(tag) while the storage is live. Exercises the
// interprocedural summary machinery without tripping E5/W1/W4.
#include <cstdio>

void produce(int& value) {
  //#omp target virtual(worker) name_as(batch)
  {
    value = 42;
  }
}

void drive() {
  int value = 0;
  produce(value);
  //#omp wait(batch)
  std::printf("value %d\n", value);
}

int main() {
  drive();
  return 0;
}

// Fixture: P1 — a directive the parser rejects (duplicate
// scheduling-property clauses); also exercises translate exit code 3.
void bad() {
  //#omp target virtual(worker) nowait await
  {
  }
}

// Fixture: multi-TU consumer — wait(frames) whose name_as(frames)
// producer lives in multi_tu_producer.cpp. Linted alone this TU raises
// W1 (no producer in sight); linked with the producer the pair is clean.
#include <cstdio>

void consume_frames() {
  //#omp wait(frames)
  std::printf("frames joined\n");
}

// Fixture: E5 — by-ref captured storage dies while the nowait dispatch
// that captured it may still be pending: once through a helper function
// (the escape surfaces at the call site), once directly from a frame
// that returns.
#include <cstdio>

void submit_job(int& slot) {
  //#omp target virtual(worker) nowait
  {
    slot += 1;
  }
}

void drive() {
  {
    int slot = 7;
    submit_job(slot);
  }
  std::printf("slot's block is gone, the worker may still write it\n");
}

void fire_and_return() {
  int payload = 99;
  //#omp target virtual(worker) nowait
  {
    std::printf("payload %d\n", payload);
  }
}

int main() {
  drive();
  fire_and_return();
  return 0;
}

// Fixture: W4 — the escaping dispatch sits under a condition, so the
// use-after-scope is possible but not certain: warning, not error.
#include <cstdio>

void maybe_stage(bool hot) {
  {
    int staged = 0;
    if (hot) {
      //#omp target virtual(worker) nowait
      {
        staged = 1;
      }
    }
  }
  std::printf("staged's block is gone\n");
}

// Fixture: E4 — a nowait producer writes a capture that a concurrent
// edt region reads; no wait(tag) or blocking dispatch orders them.
#include <cstdio>

void torn_read(int n) {
  int result = 0;
  //#omp target virtual(worker) nowait
  {
    result = 7 * n;
  }
  //#omp target virtual(edt) nowait
  {
    std::printf("result %d\n", result);
  }
}

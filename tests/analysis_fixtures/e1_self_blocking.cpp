// Fixture: E1 — blocking default-mode dispatch from a region already
// running on the same serial executor (self-deadlock when busy).
#include <cstdio>

void pipeline() {
  //#omp target virtual(worker) nowait
  {
    std::printf("outer block on worker\n");
    //#omp target virtual(worker)
    {
      std::printf("inner blocking dispatch\n");
    }
  }
}

// Unit tests for the EventMP runtime: Algorithm 1 (membership fast-path,
// async posting, the four scheduling modes), the virtual-target registry
// (Table II), name-tag groups, ICVs and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"

namespace evmp {
namespace {

/// Fixture with a private Runtime, an EDT and a worker target — the setup
/// the paper's Table II functions produce.
class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edt_.start();
    rt_.register_edt("edt", edt_);
    rt_.create_worker("worker", 2);
    rt_.set_default_target("worker");
  }

  void TearDown() override {
    rt_.clear();  // join workers before the loop dies
  }

  Runtime rt_;
  event::EventLoop edt_{"edt"};
};

TEST_F(RuntimeTest, RegistryResolvesAndReports) {
  EXPECT_TRUE(rt_.has_target("edt"));
  EXPECT_TRUE(rt_.has_target("worker"));
  EXPECT_FALSE(rt_.has_target("nope"));
  EXPECT_EQ(rt_.resolve("worker").concurrency(), 2u);
  EXPECT_EQ(&rt_.resolve("edt"), &edt_);
  EXPECT_THROW(rt_.resolve("nope"), TargetNotFound);
}

TEST_F(RuntimeTest, UnregisterRemovesTarget) {
  rt_.create_worker("tmp", 1);
  EXPECT_TRUE(rt_.has_target("tmp"));
  rt_.unregister("tmp");
  EXPECT_FALSE(rt_.has_target("tmp"));
  rt_.unregister("tmp");  // idempotent
}

TEST_F(RuntimeTest, DefaultModeBlocksUntilCompletion) {
  std::atomic<bool> ran{false};
  auto handle = rt_.invoke_target_block(
      "worker",
      [&] {
        common::precise_sleep(common::Millis{10});
        ran.store(true);
      },
      Async::kDefault);
  // Algorithm 1 line 17: the encountering thread waited.
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(handle.done());
}

TEST_F(RuntimeTest, NowaitReturnsImmediately) {
  common::ManualResetEvent release;
  std::atomic<bool> ran{false};
  const common::Stopwatch sw;
  auto handle = rt_.invoke_target_block(
      "worker",
      [&] {
        release.wait();
        ran.store(true);
      },
      Async::kNowait);
  // Lines 10-11: returned before the block finished.
  EXPECT_LT(sw.elapsed_ms(), 50.0);
  EXPECT_FALSE(ran.load());
  release.set();
  handle.wait();
  EXPECT_TRUE(ran.load());
}

TEST_F(RuntimeTest, MembershipFastPathRunsInline) {
  // Lines 6-7: a block targeted at the executor the thread already belongs
  // to executes synchronously; the directive is "simply ignored".
  std::atomic<bool> inline_on_worker{false};
  rt_.invoke_target_block(
      "worker",
      [&] {
        const auto worker_thread = std::this_thread::get_id();
        rt_.invoke_target_block(
            "worker",
            [&, worker_thread] {
              inline_on_worker.store(std::this_thread::get_id() ==
                                     worker_thread);
            },
            Async::kNowait);  // even nowait runs inline on membership
      },
      Async::kDefault);
  EXPECT_TRUE(inline_on_worker.load());
  EXPECT_GE(rt_.stats().inline_fast_path, 1u);
}

TEST_F(RuntimeTest, EdtTargetFromEdtRunsInline) {
  std::atomic<int> order{0};
  edt_.invoke_and_wait([&] {
    rt_.invoke_target_block(
        "edt", [&] { order.store(1); }, Async::kNowait);
    // Inline execution means it already happened.
    EXPECT_EQ(order.load(), 1);
  });
}

TEST_F(RuntimeTest, NameAsJoinsAllTaggedBlocks) {
  std::atomic<int> done{0};
  for (int i = 0; i < 5; ++i) {
    rt_.invoke_target_block(
        "worker",
        [&] {
          common::precise_sleep(common::Millis{5});
          done.fetch_add(1);
        },
        Async::kNameAs, "batch");
  }
  rt_.wait_tag("batch");
  // "the encountering thread suspends until all the name-tag ... instances
  // finish" (§III-C).
  EXPECT_EQ(done.load(), 5);
}

TEST_F(RuntimeTest, WaitTagOnUnknownTagReturnsImmediately) {
  const common::Stopwatch sw;
  rt_.wait_tag("never-used");
  EXPECT_LT(sw.elapsed_ms(), 10.0);
}

TEST_F(RuntimeTest, WaitTagCanBeReusedAcrossBatches) {
  std::atomic<int> done{0};
  rt_.invoke_target_block(
      "worker", [&] { done.fetch_add(1); }, Async::kNameAs, "t");
  rt_.wait_tag("t");
  EXPECT_EQ(done.load(), 1);
  rt_.invoke_target_block(
      "worker", [&] { done.fetch_add(1); }, Async::kNameAs, "t");
  rt_.wait_tag("t");
  EXPECT_EQ(done.load(), 2);
}

TEST_F(RuntimeTest, AwaitBlocksCallerButPumpsEdtEvents) {
  std::atomic<int> other_events{0};
  std::atomic<bool> await_returned_after_block{false};
  common::CountdownLatch finished(1);

  edt_.post([&] {
    // Handler A: awaits a worker block. While waiting, the EDT must keep
    // dispatching the events posted below (Algorithm 1 lines 13-16).
    std::atomic<bool> block_done{false};
    rt_.invoke_target_block(
        "worker",
        [&] {
          common::precise_sleep(common::Millis{30});
          block_done.store(true);
        },
        Async::kAwait);
    await_returned_after_block.store(block_done.load());
    finished.count_down();
  });
  for (int i = 0; i < 10; ++i) {
    edt_.post([&] { other_events.fetch_add(1); });
  }
  ASSERT_TRUE(finished.wait_for(std::chrono::seconds{10}));
  EXPECT_TRUE(await_returned_after_block.load());
  // The logical barrier processed the other handlers during the wait.
  EXPECT_EQ(other_events.load(), 10);
  EXPECT_GE(edt_.max_nesting(), 2);
  EXPECT_GE(rt_.stats().await_pumped, 1u);
}

TEST_F(RuntimeTest, AwaitOnWorkerStealsOtherPoolTasks) {
  std::atomic<int> stolen_during_await{0};
  common::CountdownLatch done(1);
  auto& lone = rt_.create_worker("lone", 1);
  rt_.invoke_target_block(
      "lone",
      [&] {
        // Queue extra tasks behind this one on the same single-thread pool
        // (posting directly bypasses the membership fast-path); the await
        // below must pick them up while waiting for "worker".
        std::atomic<int> stolen{0};
        for (int i = 0; i < 3; ++i) {
          lone.post([&] { stolen.fetch_add(1); });
        }
        rt_.invoke_target_block(
            "worker", [] { common::precise_sleep(common::Millis{30}); },
            Async::kAwait);
        stolen_during_await.store(stolen.load());
        done.count_down();
      },
      Async::kNowait);
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  // The single "lone" thread was inside the awaiting block the whole time,
  // so only the logical barrier can have run the queued tasks.
  EXPECT_EQ(stolen_during_await.load(), 3);
}

TEST_F(RuntimeTest, AwaitFromForeignThreadJustWaits) {
  std::atomic<bool> ran{false};
  rt_.invoke_target_block(
      "worker",
      [&] {
        common::precise_sleep(common::Millis{10});
        ran.store(true);
      },
      Async::kAwait);
  EXPECT_TRUE(ran.load());
}

TEST_F(RuntimeTest, DisabledRuntimeRunsBlocksInline) {
  rt_.set_enabled(false);
  const auto caller = std::this_thread::get_id();
  std::thread::id observed;
  auto handle = rt_.invoke_target_block(
      "worker", [&] { observed = std::this_thread::get_id(); },
      Async::kNowait);
  rt_.set_enabled(true);
  // "unsupported compilers ... safely ignore the directives": pure
  // sequential execution, already complete.
  EXPECT_EQ(observed, caller);
  EXPECT_FALSE(handle.valid());
  EXPECT_TRUE(handle.done());
}

TEST_F(RuntimeTest, DefaultTargetIcv) {
  EXPECT_EQ(rt_.default_target(), "worker");
  std::atomic<bool> on_worker{false};
  rt_.invoke_default(
      [&] { on_worker.store(rt_.resolve("worker").owns_current_thread()); },
      Async::kDefault);
  EXPECT_TRUE(on_worker.load());
  rt_.set_default_target("edt");
  std::atomic<bool> on_edt{false};
  rt_.invoke_default([&] { on_edt.store(edt_.is_dispatch_thread()); },
                     Async::kDefault);
  EXPECT_TRUE(on_edt.load());
}

TEST_F(RuntimeTest, DefaultModeRethrowsBlockException) {
  EXPECT_THROW(rt_.invoke_target_block(
                   "worker", [] { throw std::runtime_error("bad block"); },
                   Async::kDefault),
               std::runtime_error);
}

TEST_F(RuntimeTest, AwaitRethrowsBlockException) {
  EXPECT_THROW(rt_.invoke_target_block(
                   "worker", [] { throw std::logic_error("await bad"); },
                   Async::kAwait),
               std::logic_error);
}

TEST_F(RuntimeTest, WaitTagRethrowsFirstGroupError) {
  rt_.invoke_target_block(
      "worker", [] { throw std::runtime_error("tagged failure"); },
      Async::kNameAs, "errs");
  rt_.invoke_target_block(
      "worker", [] {}, Async::kNameAs, "errs");
  EXPECT_THROW(rt_.wait_tag("errs"), std::runtime_error);
  // The error is consumed; the tag is reusable afterwards.
  rt_.invoke_target_block("worker", [] {}, Async::kNameAs, "errs");
  EXPECT_NO_THROW(rt_.wait_tag("errs"));
}

TEST_F(RuntimeTest, NowaitExceptionGoesToHook) {
  static std::atomic<int> hits{0};
  auto prev = exec::unhandled_exception_hook();
  exec::set_unhandled_exception_hook(
      [](std::string_view, std::exception_ptr) { hits.fetch_add(1); });
  auto handle = rt_.invoke_target_block(
      "worker", [] { throw std::runtime_error("nowait bug"); },
      Async::kNowait);
  while (!handle.done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  exec::set_unhandled_exception_hook(prev);
  EXPECT_EQ(hits.load(), 1);
  EXPECT_TRUE(handle.failed());
}

TEST_F(RuntimeTest, StatsCountModes) {
  rt_.reset_stats();
  rt_.invoke_target_block("worker", [] {}, Async::kDefault);
  rt_.invoke_target_block("worker", [] {}, Async::kAwait);
  auto handle = rt_.invoke_target_block("worker", [] {}, Async::kNowait);
  handle.wait();
  const auto stats = rt_.stats();
  EXPECT_EQ(stats.posted, 3u);
  EXPECT_EQ(stats.default_waits, 1u);
  EXPECT_EQ(stats.awaits, 1u);
}

TEST_F(RuntimeTest, BatchNowaitRunsEveryBlock) {
  rt_.reset_stats();
  std::atomic<int> done{0};
  std::vector<exec::Task> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.emplace_back([&] { done.fetch_add(1); });
  }
  auto handles =
      rt_.invoke_target_batch("worker", std::move(blocks), Async::kNowait);
  ASSERT_EQ(handles.size(), 8u);
  for (auto& handle : handles) {
    ASSERT_TRUE(handle.valid());
    handle.wait();
  }
  EXPECT_EQ(done.load(), 8);
  const auto stats = rt_.stats();
  EXPECT_EQ(stats.posted, 8u);
  EXPECT_EQ(stats.batch_posts, 1u);
}

TEST_F(RuntimeTest, BatchNameAsJoinsViaWaitTag) {
  std::atomic<int> done{0};
  std::vector<exec::Task> blocks;
  for (int i = 0; i < 6; ++i) {
    blocks.emplace_back([&] {
      common::precise_sleep(common::Millis{2});
      done.fetch_add(1);
    });
  }
  rt_.invoke_target_batch("worker", std::move(blocks), Async::kNameAs,
                          "burst");
  rt_.wait_tag("burst");
  // Same join guarantee as N individual name_as posts (§III-C).
  EXPECT_EQ(done.load(), 6);
}

TEST_F(RuntimeTest, BatchAwaitBlocksUntilAllFinish) {
  std::atomic<int> done{0};
  std::vector<exec::Task> blocks;
  for (int i = 0; i < 4; ++i) {
    blocks.emplace_back([&] {
      common::precise_sleep(common::Millis{2});
      done.fetch_add(1);
    });
  }
  rt_.invoke_target_batch("worker", std::move(blocks), Async::kAwait);
  EXPECT_EQ(done.load(), 4);
}

TEST_F(RuntimeTest, BatchFromMemberThreadRunsInline) {
  rt_.reset_stats();
  std::atomic<int> done{0};
  rt_.invoke_target_block(
      "worker",
      [&] {
        std::vector<exec::Task> blocks;
        const auto worker_thread = std::this_thread::get_id();
        for (int i = 0; i < 3; ++i) {
          blocks.emplace_back([&, worker_thread] {
            if (std::this_thread::get_id() == worker_thread) {
              done.fetch_add(1);
            }
          });
        }
        // Membership fast path applies to the whole batch.
        auto handles = rt_.invoke_target_batch("worker", std::move(blocks),
                                               Async::kNowait);
        EXPECT_TRUE(handles.empty());
      },
      Async::kDefault);
  EXPECT_EQ(done.load(), 3);
  EXPECT_GE(rt_.stats().inline_fast_path, 3u);
}

TEST_F(RuntimeTest, FluentBatchModes) {
  std::atomic<int> done{0};
  std::vector<exec::Task> blocks;
  for (int i = 0; i < 5; ++i) {
    blocks.emplace_back([&] { done.fetch_add(1); });
  }
  auto handles = rt_.target("worker").nowait_batch(std::move(blocks));
  for (auto& handle : handles) handle.wait();
  EXPECT_EQ(done.load(), 5);

  blocks.clear();
  for (int i = 0; i < 5; ++i) {
    blocks.emplace_back([&] { done.fetch_add(1); });
  }
  rt_.target("worker").name_as_batch("fb", std::move(blocks));
  rt_.wait_tag("fb");
  EXPECT_EQ(done.load(), 10);

  blocks.clear();
  for (int i = 0; i < 5; ++i) {
    blocks.emplace_back([&] { done.fetch_add(1); });
  }
  rt_.target("worker").await_batch(std::move(blocks));
  EXPECT_EQ(done.load(), 15);
}

TEST_F(RuntimeTest, FluentTargetRefModes) {
  std::atomic<int> value{0};
  rt_.target("worker").run([&] { value.store(1); });
  EXPECT_EQ(value.load(), 1);
  auto handle = rt_.target("worker").nowait([&] { value.store(2); });
  handle.wait();
  EXPECT_EQ(value.load(), 2);
  rt_.target("worker").name_as("f", [&] { value.store(3); });
  rt_.wait_tag("f");
  EXPECT_EQ(value.load(), 3);
  rt_.target("worker").await([&] { value.store(4); });
  EXPECT_EQ(value.load(), 4);
}

TEST_F(RuntimeTest, IfClauseFalseRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id observed;
  auto handle = rt_.target("worker").if_clause(false).nowait(
      [&] { observed = std::this_thread::get_id(); });
  EXPECT_EQ(observed, caller);
  EXPECT_FALSE(handle.valid());
}

TEST_F(RuntimeTest, IfClauseTrueDispatches) {
  std::atomic<bool> on_worker{false};
  rt_.target("worker").if_clause(true).run(
      [&] { on_worker.store(rt_.resolve("worker").owns_current_thread()); });
  EXPECT_TRUE(on_worker.load());
}

TEST_F(RuntimeTest, DeviceTargetRegistersAndRuns) {
  auto& dev = rt_.register_device(0);
  EXPECT_TRUE(rt_.has_target("device:0"));
  std::atomic<bool> on_device{false};
  rt_.invoke_target_block(
      "device:0", [&] { on_device.store(dev.owns_current_thread()); },
      Async::kDefault);
  EXPECT_TRUE(on_device.load());
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST_F(RuntimeTest, NestedEdtUpdateFromWorkerBlock) {
  // The Figure 6 pattern: worker block posts GUI work back to the EDT.
  std::atomic<bool> gui_on_edt{false};
  common::CountdownLatch done(1);
  rt_.target("worker").nowait([&] {
    rt_.target("edt").nowait([&] {
      gui_on_edt.store(edt_.is_dispatch_thread());
      done.count_down();
    });
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  EXPECT_TRUE(gui_on_edt.load());
}

TEST_F(RuntimeTest, DeviceTransferHelpersAccountOnDevices) {
  auto& dev = rt_.register_device(3);
  // Helpers route through the *global* runtime; register there too.
  rt().register_executor("device:3", dev);
  device_transfer_to("device:3", 1000);
  device_transfer_from("device:3", 500);
  EXPECT_EQ(dev.bytes_to_device(), 1000u);
  EXPECT_EQ(dev.bytes_from_device(), 500u);
  rt().unregister("device:3");
}

TEST_F(RuntimeTest, DeviceTransferIsNoopForVirtualTargets) {
  // Virtual targets share the host memory (§III-B): map clauses copy
  // nothing.
  rt().register_executor("not-a-device", rt_.resolve("worker"));
  EXPECT_NO_THROW(device_transfer_to("not-a-device", 4096));
  EXPECT_NO_THROW(device_transfer_from("not-a-device", 4096));
  rt().unregister("not-a-device");
}

TEST_F(RuntimeTest, StealingWorkerRunsFigure6Flow) {
  rt_.create_stealing_worker("ws", 2);
  std::atomic<int> order{0};
  common::CountdownLatch done(1);
  edt_.post([&] {
    rt_.target("ws").nowait([&] {
      order.fetch_add(1);  // S1/S3
      rt_.target("edt").nowait([&] {
        order.fetch_add(10);  // S4 on the EDT
        done.count_down();
      });
    });
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds{10}));
  EXPECT_EQ(order.load(), 11);
}

TEST_F(RuntimeTest, AwaitHandleCompletedHandleReturnsImmediately) {
  const common::Stopwatch sw;
  rt_.await_handle(exec::TaskHandle{});  // empty == done
  auto handle = rt_.invoke_target_block("worker", [] {}, Async::kNowait);
  handle.wait();
  rt_.await_handle(handle);
  EXPECT_LT(sw.elapsed_ms(), 50.0);
}

TEST_F(RuntimeTest, AwaitHandleRethrows) {
  auto handle = rt_.invoke_target_block(
      "worker", [] { throw std::runtime_error("late failure"); },
      Async::kNameAs, "ah");
  EXPECT_THROW(
      {
        rt_.await_handle(handle);
      },
      std::runtime_error);
  // Clear the tag group's stored copy of the error too.
  EXPECT_THROW(rt_.wait_tag("ah"), std::runtime_error);
}

TEST(RuntimeStandalone, GlobalRuntimeIsSingleton) {
  EXPECT_EQ(&rt(), &rt());
}

TEST(RuntimeStandalone, RegisterExecutorNonOwning) {
  Runtime runtime;
  exec::ThreadPoolExecutor pool("ext", 1);
  runtime.register_executor("ext", pool);
  std::atomic<bool> ran{false};
  runtime.invoke_target_block("ext", [&] { ran.store(true); },
                              Async::kDefault);
  EXPECT_TRUE(ran.load());
  runtime.clear();
  // The pool is still alive: it was not owned by the runtime.
  common::CountdownLatch latch(1);
  pool.post([&] { latch.count_down(); });
  EXPECT_TRUE(latch.wait_for(std::chrono::seconds{5}));
}

}  // namespace
}  // namespace evmp

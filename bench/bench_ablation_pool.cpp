// AB2 — ablation: central-queue worker pool (the paper's executor model)
// vs the work-stealing pool, as the backing of a worker virtual target.
// A third column runs the same workloads on the mutex-per-deque
// LockedWorkStealingExecutor, isolating what the lock-free Chase–Lev
// rewrite buys over plain stealing (see also bench_steal_throughput for
// the executor-level microbenchmark).
//
// Two workloads:
//  * fan-out: many independent fine-grained nowait blocks from one
//    producer (the GUI/event pattern);
//  * spawn-tree: blocks recursively spawning sub-blocks and awaiting them
//    (nested target blocks), where helping/stealing matters.

#include <atomic>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/sync.hpp"
#include "common/table.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"

namespace {

using evmp::Runtime;

double run_fanout(Runtime& rt, const char* target, int tasks, int spin_us) {
  evmp::common::CountdownLatch latch(static_cast<std::size_t>(tasks));
  const evmp::common::Stopwatch sw;
  for (int i = 0; i < tasks; ++i) {
    rt.target(target).nowait([&latch, spin_us] {
      evmp::common::busy_spin(evmp::common::Micros{spin_us});
      latch.count_down();
    });
  }
  latch.wait();
  return sw.elapsed_ms();
}

double run_spawn_tree(Runtime& rt, const std::string& target, int roots,
                      int depth, int spin_us) {
  evmp::common::CountdownLatch latch(static_cast<std::size_t>(roots));
  const evmp::common::Stopwatch sw;
  // Each root awaits a chain of nested blocks of the given depth.
  std::function<void(int)> spawn = [&](int remaining) {
    evmp::common::busy_spin(evmp::common::Micros{spin_us});
    if (remaining > 0) {
      rt.target(std::string(target)).await([&, remaining] {
        spawn(remaining - 1);
      });
    }
  };
  for (int r = 0; r < roots; ++r) {
    rt.target(std::string(target)).nowait([&, depth] {
      spawn(depth);
      latch.count_down();
    });
  }
  latch.wait();
  return sw.elapsed_ms();
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const int threads = static_cast<int>(args.get_long("threads", 4));
  const int tasks = static_cast<int>(args.get_long("tasks", 2000));
  const int spin_us = static_cast<int>(args.get_long("spin-us", 20));
  const int roots = static_cast<int>(args.get_long("roots", 64));
  const int depth = static_cast<int>(args.get_long("depth", 6));

  Runtime rt;
  rt.create_worker("central", threads);
  auto& locked = rt.create_locked_stealing_worker("locked", threads);
  auto& stealing = rt.create_stealing_worker("stealing", threads);
  (void)locked;

  std::printf("AB2: central queue vs locked stealing vs lock-free stealing "
              "as the worker target (%d threads)\n", threads);

  evmp::common::TextTable table;
  table.set_header({"workload", "central queue(ms)", "locked steal(ms)",
                    "chase-lev(ms)", "steals", "local pops"});

  // Warm up all three pools.
  run_fanout(rt, "central", 64, 1);
  run_fanout(rt, "locked", 64, 1);
  run_fanout(rt, "stealing", 64, 1);

  {
    const double central = run_fanout(rt, "central", tasks, spin_us);
    const double locked_ms = run_fanout(rt, "locked", tasks, spin_us);
    const auto steals_before = stealing.steals();
    const double steal = run_fanout(rt, "stealing", tasks, spin_us);
    table.add_row({"fan-out " + std::to_string(tasks) + " x " +
                       std::to_string(spin_us) + "us",
                   evmp::common::fmt(central, 1),
                   evmp::common::fmt(locked_ms, 1),
                   evmp::common::fmt(steal, 1),
                   std::to_string(stealing.steals() - steals_before),
                   std::to_string(stealing.local_pops())});
  }
  {
    const double central = run_spawn_tree(rt, "central", roots, depth, spin_us);
    const double locked_ms =
        run_spawn_tree(rt, "locked", roots, depth, spin_us);
    const auto steals_before = stealing.steals();
    const double steal =
        run_spawn_tree(rt, "stealing", roots, depth, spin_us);
    table.add_row({"spawn-tree " + std::to_string(roots) + " x depth " +
                       std::to_string(depth),
                   evmp::common::fmt(central, 1),
                   evmp::common::fmt(locked_ms, 1),
                   evmp::common::fmt(steal, 1),
                   std::to_string(stealing.steals() - steals_before),
                   std::to_string(stealing.local_pops())});
  }
  table.print(std::cout);
  std::printf("\nExpected on multi-core hosts: comparable on coarse "
              "fan-out; stealing ahead on the spawn-tree (nested blocks pop "
              "locally, idle workers steal whole subtrees; the central "
              "queue serialises every hop), and chase-lev ahead of locked "
              "stealing as threads grow (no mutex round trip per pop, "
              "parked idlers instead of a polling CV). On a single-CPU "
              "container all are time-slice bound and land together — the "
              "structural difference shows in the counters.\n");
  rt.clear();
  return 0;
}

// FIG7 — reproduces the paper's Figure 7 (§V.A): average event response
// time under request loads of 10..100 requests/sec, for each Java Grande
// kernel and each event-handling approach.
//
// Paper expectation: the sequential version's response time grows rapidly
// with load (events queue behind the busy EDT); SwingWorker,
// ExecutorService and Pyjama offload and stay close together and far below
// sequential, with Pyjama "equal and often superior" to the manual
// baselines; synchronous-parallel improves on sequential (shorter handler)
// but still occupies the EDT per event.
//
// Flags: --kernels=crypt,raytracer,montecarlo,series --loads=10,25,50,75,100
//        --events=N (per round; scaled with load by default) --real
//        --handler-ms=16 --workers=3 --full --csv=DIR

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gui_bench.hpp"

namespace {

using evmp::baselines::Approach;
using evmp::baselines::to_string;

std::vector<std::string> split_names(const std::string& csv,
                                     std::vector<std::string> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  auto base = evmp::bench::config_from_cli(args);
  const bool full = args.get_bool("full", false);

  const auto kernels = split_names(
      args.get("kernels", ""), {"crypt", "raytracer", "montecarlo", "series"});
  const auto loads =
      args.get_long_list("loads", full ? std::vector<long>{10, 20, 30, 40, 50,
                                                           60, 70, 80, 90, 100}
                                       : std::vector<long>{10, 25, 50, 75,
                                                           100});
  const std::string csv_dir = args.get("csv", "");

  std::printf(
      "FIG7: average event response time (ms) vs request load (req/s)\n");
  evmp::bench::print_environment_banner(base);

  for (const auto& kernel : kernels) {
    evmp::common::TextTable table;
    std::vector<std::string> header{"load(req/s)"};
    for (Approach a : evmp::bench::figure7_approaches()) {
      header.emplace_back(to_string(a));
    }
    table.set_header(header);

    for (long load : loads) {
      auto config = base;
      config.kernel = kernel;
      config.rate_hz = static_cast<double>(load);
      if (!args.has("events")) {
        // Keep each round ~1 second of firing regardless of load.
        config.events = static_cast<std::size_t>(
            std::max<long>(8, full ? load * 3 : load));
      }
      std::vector<std::string> row{std::to_string(load)};
      for (Approach a : evmp::bench::figure7_approaches()) {
        const auto outcome = evmp::bench::run_gui_round(a, config);
        double mean = outcome.load.response_ms.mean();
        if (!outcome.load.all_completed) {
          std::fprintf(stderr, "# warning: %s/%s/load=%ld left %llu stragglers\n",
                       kernel.c_str(), std::string(to_string(a)).c_str(), load,
                       static_cast<unsigned long long>(
                           outcome.load.fired - outcome.load.completed));
        }
        if (outcome.gui_violations != 0) {
          std::fprintf(stderr, "# ERROR: GUI confinement violated (%llu)\n",
                       static_cast<unsigned long long>(outcome.gui_violations));
        }
        row.push_back(evmp::common::fmt(mean, 2));
      }
      table.add_row(row);
    }

    std::printf("\n## kernel: %s (avg response time, ms)\n", kernel.c_str());
    table.print(std::cout);
    if (!csv_dir.empty()) {
      evmp::common::write_csv(table, csv_dir + "/fig7_" + kernel + ".csv");
    }
  }
  return 0;
}

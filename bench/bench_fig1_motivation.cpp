// FIG1 — the paper's motivating timeline (Figure 1): two overlapping event
// requests handled (i) sequentially by the EDT and (ii) with task-offload
// to a thread-pool executor. Reports when each request starts handling and
// finishes, showing request 2's commencement delayed by request 1 under
// sequential dispatch and not under offloading.

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/sync.hpp"
#include "common/table.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"

namespace {

struct RequestTrace {
  double fired_ms = 0.0;
  double start_ms = 0.0;   // handler began on some thread
  double finish_ms = 0.0;  // handling logically complete
};

constexpr int kRequests = 3;

std::vector<RequestTrace> run_mode(bool offload, evmp::common::Millis work,
                                   evmp::common::Millis gap) {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::Runtime rt;
  rt.register_edt("edt", edt);
  rt.create_worker("worker", kRequests);

  std::vector<RequestTrace> traces(kRequests);
  evmp::common::CountdownLatch done(kRequests);
  const auto t0 = evmp::common::now();
  auto ms_since = [t0] {
    return evmp::common::to_ms(evmp::common::now() - t0);
  };

  for (int i = 0; i < kRequests; ++i) {
    evmp::common::precise_sleep(
        std::chrono::duration_cast<evmp::common::Nanos>(gap));
    traces[i].fired_ms = ms_since();
    edt.post([&, i] {
      auto body = [&, i] {
        traces[i].start_ms = ms_since();
        evmp::common::precise_sleep(
            std::chrono::duration_cast<evmp::common::Nanos>(work));
        traces[i].finish_ms = ms_since();
        done.count_down();
      };
      if (offload) {
        rt.target("worker").nowait(std::move(body));  // Figure 1(ii)
      } else {
        body();  // Figure 1(i): the EDT handles it inline
      }
    });
  }
  done.wait();
  edt.wait_until_idle();
  rt.clear();
  return traces;
}

void print_mode(const char* title, const std::vector<RequestTrace>& traces) {
  std::printf("\n## %s\n", title);
  evmp::common::TextTable table;
  table.set_header({"request", "fired(ms)", "handling starts(ms)",
                    "finishes(ms)", "start delay(ms)"});
  for (int i = 0; i < kRequests; ++i) {
    table.add_row({std::to_string(i + 1),
                   evmp::common::fmt(traces[i].fired_ms, 1),
                   evmp::common::fmt(traces[i].start_ms, 1),
                   evmp::common::fmt(traces[i].finish_ms, 1),
                   evmp::common::fmt(traces[i].start_ms - traces[i].fired_ms,
                                     1)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const evmp::common::Millis work{args.get_long("work-ms", 40)};
  const evmp::common::Millis gap{args.get_long("gap-ms", 10)};

  std::printf("FIG1: motivation — overlapping requests, %lldms handlers "
              "fired every %lldms\n",
              static_cast<long long>(work.count()),
              static_cast<long long>(gap.count()));
  print_mode("(i) single-threaded event processing (EDT handles inline)",
             run_mode(false, work, gap));
  print_mode("(ii) multi-threaded event processing (offloaded to executor)",
             run_mode(true, work, gap));
  std::printf("\nExpected shape: under (i) each request's start is delayed by "
              "its predecessors; under (ii) start delay stays near zero.\n");
  return 0;
}

// FIG8 — reproduces the paper's Figure 8 / §V.A responsiveness analysis:
// how responsive the EDT itself stays under load for each approach.
//
// A probe thread posts no-op events to the EDT every few milliseconds; the
// time each probe waits before being dispatched is the user-perceived UI
// latency. We also report the fraction of wall time the EDT spent inside
// handlers.
//
// Paper expectation: "the EDT in the synchronous parallel approach is
// actually unresponsive for a longer time compared to other approaches" —
// syncparallel (and worse, sequential) show high probe latency and EDT
// busy%, while every offloading approach (SwingWorker / ExecutorService /
// Pyjama / async-parallel) keeps both near zero.
//
// Flags: --kernel=crypt --load=50 --events=N --real --handler-ms=16 --csv=DIR

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gui_bench.hpp"

int main(int argc, char** argv) {
  using evmp::baselines::Approach;
  using evmp::baselines::to_string;

  const evmp::common::CliArgs args(argc, argv);
  auto config = evmp::bench::config_from_cli(args);
  config.kernel = args.get("kernel", "crypt");
  config.rate_hz = static_cast<double>(args.get_long("load", 50));
  if (!args.has("events")) {
    config.events = static_cast<std::size_t>(
        std::max<long>(16, static_cast<long>(config.rate_hz)));
  }
  config.probe_period = evmp::common::Millis{2};

  std::printf("FIG8: EDT responsiveness at %.0f req/s, kernel=%s\n",
              config.rate_hz, config.kernel.c_str());
  evmp::bench::print_environment_banner(config);

  evmp::common::TextTable table;
  table.set_header({"approach", "probe p50(ms)", "probe p99(ms)",
                    "edt busy(%)", "avg resp(ms)", "events on EDT"});
  for (Approach a : evmp::bench::figure7_approaches()) {
    const auto outcome = evmp::bench::run_gui_round(a, config);
    table.add_row({std::string(to_string(a)),
                   evmp::common::fmt(outcome.probe_p50_ms, 3),
                   evmp::common::fmt(outcome.probe_p99_ms, 3),
                   evmp::common::fmt(outcome.edt_busy_pct, 1),
                   evmp::common::fmt(outcome.load.response_ms.mean(), 2),
                   std::to_string(outcome.edt_events)});
  }
  table.print(std::cout);

  const std::string csv_dir = args.get("csv", "");
  if (!csv_dir.empty()) {
    evmp::common::write_csv(table, csv_dir + "/fig8_" + config.kernel + ".csv");
  }
  return 0;
}

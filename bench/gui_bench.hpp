#pragma once
// Shared harness for the §V.A GUI event-handling benchmarks (Figures 7-8):
// builds the full environment (EDT + GUI + runtime + baselines), fires an
// open-loop event load under a chosen approach, and reports response-time
// and EDT-responsiveness statistics.

#include <memory>
#include <string>
#include <vector>

#include "baselines/approaches.hpp"
#include "common/cli.hpp"
#include "event/load.hpp"
#include "kernels/kernel.hpp"

namespace evmp::bench {

/// One benchmark configuration.
struct GuiBenchConfig {
  std::string kernel = "crypt";
  kernels::SizeClass size = kernels::SizeClass::kTiny;
  kernels::WorkModel work_model = kernels::WorkModel::kSimulated;
  /// Target total duration of one handler's kernel under kSimulated
  /// (split across the kernel's units).
  common::Millis handler_ms{16};
  int worker_threads = 3;    ///< the "worker" virtual target's pool size
  int parallel_width = 4;    ///< team width (EDT/worker + 3), as in §V.A
  double rate_hz = 50.0;     ///< request load
  std::size_t events = 40;   ///< requests per round
  std::uint64_t seed = 42;
  /// Period of the EDT responsiveness probe; 0 disables it (Figure 7
  /// measures response time only).
  common::Millis probe_period{0};
};

/// Measured outcome of one round.
struct GuiBenchOutcome {
  event::LoadResult load;          ///< per-request response times
  double probe_p50_ms = 0.0;       ///< EDT probe latency median
  double probe_p99_ms = 0.0;
  double edt_busy_pct = 0.0;       ///< EDT busy time / wall time
  std::uint64_t gui_violations = 0;
  std::uint64_t edt_events = 0;    ///< events the EDT dispatched
};

/// Run one (approach, config) round to completion.
GuiBenchOutcome run_gui_round(baselines::Approach approach,
                              const GuiBenchConfig& config);

/// Approaches reported in Figure 7/8 order (the paper compares
/// sequential, SwingWorker, ExecutorService, Pyjama and sync-parallel;
/// async-parallel is the paper's "asynchronous parallel" refinement).
std::vector<baselines::Approach> figure7_approaches();

/// Print the hardware/work-model banner every figure bench emits so the
/// EXPERIMENTS.md context is always attached to the numbers.
void print_environment_banner(const GuiBenchConfig& config);

/// Parse the flags shared by the figure benches into a config.
GuiBenchConfig config_from_cli(const common::CliArgs& args);

}  // namespace evmp::bench

// OV1 — directive invocation overhead microbenchmarks (google-benchmark).
//
// §I of the paper argues that for event-driven applications "the
// introduction of additional overhead for the concurrency of shorter
// computational spurts needs to be less of a dilemma"; these benchmarks
// quantify what one directive costs: the membership fast-path (directive
// ignored), a cross-thread post + join, the await pump loop, and the
// name_as/wait pair, against a raw function call baseline.

#include <benchmark/benchmark.h>

#include <atomic>

#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"
#include "executor/thread_pool_executor.hpp"

namespace {

using evmp::Async;
using evmp::Runtime;

/// Shared fixture state: one runtime with a worker pool.
struct BenchRuntime {
  BenchRuntime() { rt.create_worker("worker", 2); }
  ~BenchRuntime() { rt.clear(); }
  Runtime rt;
};

BenchRuntime& bench_rt() {
  static BenchRuntime instance;
  return instance;
}

void BM_RawFunctionCall(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    sink.fetch_add(1, std::memory_order_relaxed);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_RawFunctionCall);

void BM_DirectiveDisabled(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  rt.set_enabled(false);
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNowait);
  }
  rt.set_enabled(true);
}
BENCHMARK(BM_DirectiveDisabled);

void BM_MembershipFastPath(benchmark::State& state) {
  // Executed from inside the worker target: the directive is "ignored".
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  // One outer submission per iteration would dominate, so each iteration
  // times a batch of 1000 inner fast-path invocations from a worker thread.
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker",
        [&] {
          for (int i = 0; i < 1000; ++i) {
            rt.invoke_target_block(
                "worker",
                [&] { sink.fetch_add(1, std::memory_order_relaxed); },
                Async::kNowait);
          }
        },
        Async::kDefault);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MembershipFastPath);

void BM_CrossThreadDefaultWait(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kDefault);
  }
}
BENCHMARK(BM_CrossThreadDefaultWait);

void BM_CrossThreadAwait(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kAwait);
  }
}
BENCHMARK(BM_CrossThreadAwait);

void BM_NameAsPlusWaitTag(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNameAs, "ov");
    rt.wait_tag("ov");
  }
}
BENCHMARK(BM_NameAsPlusWaitTag);

void BM_NowaitThroughput(benchmark::State& state) {
  // Submission cost only (join amortised once at the end).
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNameAs, "drain");
  }
  rt.wait_tag("drain");  // drain outside the measured loop
}
BENCHMARK(BM_NowaitThroughput);

void BM_EdtInvokeLater(benchmark::State& state) {
  evmp::event::EventLoop edt("edt");
  edt.start();
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    edt.post([&] { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  edt.wait_until_idle();
}
BENCHMARK(BM_EdtInvokeLater);

}  // namespace

BENCHMARK_MAIN();

// OV1 — directive invocation overhead microbenchmarks (google-benchmark).
//
// §I of the paper argues that for event-driven applications "the
// introduction of additional overhead for the concurrency of shorter
// computational spurts needs to be less of a dilemma"; these benchmarks
// quantify what one directive costs: the membership fast-path (directive
// ignored), a cross-thread post + join, the await pump loop, and the
// name_as/wait pair, against a raw function call baseline.
//
// Two additions back the zero-allocation dispatch claim (DESIGN.md §7):
//  * a counting operator-new interposer reports heap allocations per
//    iteration as a benchmark counter (submitter-thread allocations only —
//    the directive-encountering thread is the latency-critical one);
//  * with --alloc-check=<budgets.json>, after the benchmarks run, a paced
//    steady-state loop measures allocations per nowait dispatch and exits
//    nonzero when the measured rate exceeds the budget file's
//    "allocs_per_nowait_dispatch" — the CI perf-smoke gate.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"
#include "executor/thread_pool_executor.hpp"

// GCC pairs the replaced operator new (malloc-backed) with calls to the
// replaced sized/aligned deletes and flags them as mismatched even though
// every path ends in free(); silence that known false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// --- allocation-counting operator new/delete interposer -------------------
// Counts every heap allocation made by the *calling thread*. Replacing the
// global operator new is the standard-sanctioned interposition point; the
// counter is thread_local so worker-thread activity (which overlaps the
// timed region but is not on the dispatch critical path) never pollutes a
// measurement taken on the submitting thread.

namespace {
thread_local std::uint64_t t_alloc_count = 0;

std::uint64_t thread_allocs() noexcept { return t_alloc_count; }

void* counted_alloc(std::size_t size) noexcept {
  ++t_alloc_count;
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  ++t_alloc_count;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using evmp::Async;
using evmp::Runtime;

/// Shared fixture state: one runtime with a worker pool.
struct BenchRuntime {
  BenchRuntime() { rt.create_worker("worker", 2); }
  ~BenchRuntime() { rt.clear(); }
  Runtime rt;
};

BenchRuntime& bench_rt() {
  static BenchRuntime instance;
  return instance;
}

/// Report submitter-thread allocations per iteration for the timed loop.
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state)
      : state_(state), before_(thread_allocs()) {}
  ~AllocScope() {
    const auto delta = thread_allocs() - before_;
    state_.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(delta), benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  std::uint64_t before_;
};

void BM_RawFunctionCall(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    sink.fetch_add(1, std::memory_order_relaxed);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_RawFunctionCall);

void BM_DirectiveDisabled(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  rt.set_enabled(false);
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNowait);
  }
  rt.set_enabled(true);
}
BENCHMARK(BM_DirectiveDisabled);

void BM_MembershipFastPath(benchmark::State& state) {
  // Executed from inside the worker target: the directive is "ignored".
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  // One outer submission per iteration would dominate, so each iteration
  // times a batch of 1000 inner fast-path invocations from a worker thread.
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker",
        [&] {
          for (int i = 0; i < 1000; ++i) {
            rt.invoke_target_block(
                "worker",
                [&] { sink.fetch_add(1, std::memory_order_relaxed); },
                Async::kNowait);
          }
        },
        Async::kDefault);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MembershipFastPath);

void BM_CrossThreadDefaultWait(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kDefault);
  }
}
BENCHMARK(BM_CrossThreadDefaultWait);

void BM_CrossThreadAwait(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kAwait);
  }
}
BENCHMARK(BM_CrossThreadAwait);

void BM_NameAsPlusWaitTag(benchmark::State& state) {
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNameAs, "ov");
    rt.wait_tag("ov");
  }
}
BENCHMARK(BM_NameAsPlusWaitTag);

void BM_NowaitThroughput(benchmark::State& state) {
  // Submission cost only (join amortised once at the end).
  auto& rt = bench_rt().rt;
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    rt.invoke_target_block(
        "worker", [&] { sink.fetch_add(1, std::memory_order_relaxed); },
        Async::kNameAs, "drain");
  }
  rt.wait_tag("drain");  // drain outside the measured loop
}
BENCHMARK(BM_NowaitThroughput);

void BM_NowaitBurst(benchmark::State& state) {
  // Dispatch-rate sweep: a burst of N nowait blocks submitted per
  // iteration via invoke_target_batch (one shard lock + one wakeup per
  // burst), joined per iteration so queue depth stays bounded. items/s is
  // the sustained dispatch rate at that burst size.
  auto& rt = bench_rt().rt;
  const int n = static_cast<int>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    std::vector<evmp::exec::Task> blocks;
    blocks.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      blocks.emplace_back(
          [&] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.invoke_target_batch("worker", std::move(blocks), Async::kNameAs,
                           "burst");
    rt.wait_tag("burst");
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NowaitBurst)->RangeMultiplier(4)->Range(1, 256);

void BM_EdtInvokeLater(benchmark::State& state) {
  evmp::event::EventLoop edt("edt");
  edt.start();
  std::atomic<std::uint64_t> sink{0};
  AllocScope allocs(state);
  for (auto _ : state) {
    edt.post([&] { sink.fetch_add(1, std::memory_order_relaxed); });
  }
  edt.wait_until_idle();
}
BENCHMARK(BM_EdtInvokeLater);

// --- steady-state allocation self-check (--alloc-check) -------------------

/// Minimal key lookup in a flat JSON object: finds `"key" : <number>`.
/// Returns `fallback` when the file or key is missing (the check then
/// still runs against the default budget rather than silently passing).
double read_budget(const std::string& path, const char* key,
                   double fallback) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "alloc-check: cannot open %s; using budget %.3f\n",
                 path.c_str(), fallback);
    return fallback;
  }
  std::string text(1 << 16, '\0');
  const std::size_t got = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  text.resize(got);
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fallback;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

/// Measure steady-state allocations per nowait dispatch on the submitting
/// thread. Paced in rounds (dispatch a burst, then join) so queue depth,
/// ring-buffer capacity and completion-pool population stabilise during
/// warmup; the measured phase then repeats the identical pattern.
int run_alloc_check(const std::string& budget_path) {
  const double budget =
      read_budget(budget_path, "allocs_per_nowait_dispatch", 0.0);
  auto& rt = bench_rt().rt;

  constexpr int kPerRound = 64;
  constexpr int kWarmupRounds = 64;
  constexpr int kMeasuredRounds = 256;
  const auto round = [&rt] {
    for (int i = 0; i < kPerRound; ++i) {
      rt.invoke_target_block("worker", [] {}, Async::kNameAs, "alloc-check");
    }
    rt.wait_tag("alloc-check");
  };

  for (int i = 0; i < kWarmupRounds; ++i) round();

  const std::uint64_t before = thread_allocs();
  for (int i = 0; i < kMeasuredRounds; ++i) round();
  const std::uint64_t delta = thread_allocs() - before;

  const double per_dispatch =
      static_cast<double>(delta) /
      (static_cast<double>(kMeasuredRounds) * kPerRound);
  std::printf(
      "alloc-check: %llu submitter-thread allocations over %d dispatches "
      "=> %.4f allocs/dispatch (budget %.4f)\n",
      static_cast<unsigned long long>(delta), kMeasuredRounds * kPerRound,
      per_dispatch, budget);
  if (per_dispatch > budget) {
    std::fprintf(stderr,
                 "alloc-check FAILED: %.4f allocs/dispatch exceeds budget "
                 "%.4f\n",
                 per_dispatch, budget);
    return 1;
  }
  std::printf("alloc-check passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --alloc-check=<path> before benchmark::Initialize (it rejects
  // flags it does not know).
  std::string budget_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kFlag = "--alloc-check=";
    if (arg.substr(0, kFlag.size()) == kFlag) {
      budget_path = std::string(arg.substr(kFlag.size()));
    } else {
      args.push_back(argv[i]);
    }
  }
  int pruned_argc = static_cast<int>(args.size());
  benchmark::Initialize(&pruned_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(pruned_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!budget_path.empty()) return run_alloc_check(budget_path);
  return 0;
}

// KRN — kernel sanity benchmarks (google-benchmark): sequential vs
// fork-join execution of each Java Grande kernel under each schedule.
//
// §V.A relies on "the kernel can be parallelized by using traditional
// OpenMP directives"; on a multi-core host the parallel/real variants show
// the speedup, and under the simulated work model the sleep-overlap shows
// the same structure on this 1-CPU container.

#include <benchmark/benchmark.h>

#include "forkjoin/parallel_for.hpp"
#include "forkjoin/team.hpp"
#include "kernels/kernel.hpp"

namespace {

using evmp::fj::Schedule;
using evmp::kernels::Kernel;
using evmp::kernels::SizeClass;
using evmp::kernels::WorkModel;

const char* kKernelNames[] = {"crypt", "raytracer", "montecarlo", "series"};

void BM_KernelSequentialReal(benchmark::State& state) {
  auto kernel = evmp::kernels::make_kernel(
      kKernelNames[state.range(0)], SizeClass::kSmall);
  kernel->prepare();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->run_sequential());
  }
  state.SetLabel(std::string(kernel->name()));
}
BENCHMARK(BM_KernelSequentialReal)->DenseRange(0, 3);

void BM_KernelParallelReal(benchmark::State& state) {
  auto kernel = evmp::kernels::make_kernel(
      kKernelNames[state.range(0)], SizeClass::kSmall);
  kernel->prepare();
  evmp::fj::Team team(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->run_parallel(team));
  }
  state.SetLabel(std::string(kernel->name()) + "/t" +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_KernelParallelReal)
    ->ArgsProduct({{0, 1, 2, 3}, {2, 4}});

void BM_KernelSimulatedOverlap(benchmark::State& state) {
  // The simulated work model: per-unit sleep dominates; a team of N should
  // divide wall time by ~N even on one CPU.
  auto kernel = evmp::kernels::make_kernel(
      kKernelNames[state.range(0)], SizeClass::kTiny);
  kernel->set_work_model(
      WorkModel::kSimulated,
      evmp::common::Nanos{8'000'000 /
                          std::max<long>(1, [&] {
                            auto probe = evmp::kernels::make_kernel(
                                kKernelNames[state.range(0)],
                                SizeClass::kTiny);
                            return probe->units();
                          }())});
  kernel->prepare();
  evmp::fj::Team team(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    if (state.range(1) == 1) {
      benchmark::DoNotOptimize(kernel->run_sequential());
    } else {
      benchmark::DoNotOptimize(kernel->run_parallel(team));
    }
  }
  state.SetLabel(std::string(kernel->name()) + "/t" +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_KernelSimulatedOverlap)
    ->ArgsProduct({{0, 3}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleComparison(benchmark::State& state) {
  auto kernel =
      evmp::kernels::make_kernel("raytracer", SizeClass::kSmall);
  kernel->prepare();
  evmp::fj::Team team(4);
  const auto sched = static_cast<Schedule>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->run_parallel(team, sched, 1));
  }
  state.SetLabel(evmp::fj::to_string(sched));
}
BENCHMARK(BM_ScheduleComparison)->DenseRange(0, 2);

}  // namespace

BENCHMARK_MAIN();

// TAB1 — the paper's Table I: observable semantics of the four
// scheduling-property-clauses. For one 50ms target block per mode, reports
// how long the encountering thread was blocked at the directive, whether
// the statement after the directive ran before the block finished, and
// (for await on the EDT) how many other events were processed meanwhile.

#include <atomic>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/sync.hpp"
#include "common/table.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"

namespace {

struct ModeObservation {
  double encounter_block_ms = 0.0;  // time the encountering thread spent
  bool continued_before_finish = false;
  std::uint64_t pumped_events = 0;  // other handlers run during the wait
  double block_total_ms = 0.0;      // submit -> block completion
};

ModeObservation observe(evmp::Async mode, evmp::common::Millis work) {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::Runtime rt;
  rt.register_edt("edt", edt);
  rt.create_worker("worker", 2);

  ModeObservation obs;
  evmp::common::CountdownLatch done(1);

  edt.post([&] {
    // Queue background events the await logical barrier may pick up.
    std::atomic<std::uint64_t> pumped{0};
    for (int i = 0; i < 5; ++i) {
      edt.post([&pumped] { pumped.fetch_add(1); });
    }
    std::atomic<bool> finished{false};
    const evmp::common::Stopwatch submit;
    auto handle = rt.invoke_target_block(
        "worker",
        [&finished, work] {
          evmp::common::precise_sleep(
              std::chrono::duration_cast<evmp::common::Nanos>(work));
          finished.store(true);
        },
        mode, "tab1");
    obs.encounter_block_ms = submit.elapsed_ms();
    obs.continued_before_finish = !finished.load();
    obs.pumped_events = pumped.load();
    if (mode == evmp::Async::kNameAs) rt.wait_tag("tab1");
    handle.wait();
    obs.block_total_ms = submit.elapsed_ms();
    done.count_down();
  });
  done.wait();
  edt.wait_until_idle();
  rt.clear();
  return obs;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const evmp::common::Millis work{args.get_long("work-ms", 50)};

  std::printf("TAB1: scheduling-property-clause semantics "
              "(one %lldms target block per mode, encountered on the EDT)\n",
              static_cast<long long>(work.count()));

  evmp::common::TextTable table;
  table.set_header({"mode", "blocked at directive(ms)",
                    "continues before finish", "events pumped meanwhile",
                    "block done by(ms)"});
  struct Row {
    evmp::Async mode;
    const char* name;
  };
  for (const Row& r : {Row{evmp::Async::kDefault, "default (wait)"},
                       Row{evmp::Async::kNowait, "nowait"},
                       Row{evmp::Async::kNameAs, "name_as + wait(tag)"},
                       Row{evmp::Async::kAwait, "await"}}) {
    const auto obs = observe(r.mode, work);
    table.add_row({r.name, evmp::common::fmt(obs.encounter_block_ms, 1),
                   obs.continued_before_finish ? "yes" : "no",
                   std::to_string(obs.pumped_events),
                   evmp::common::fmt(obs.block_total_ms, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected (Table I): default blocks ~the full block time and pumps "
      "nothing; nowait/name_as return immediately; await occupies the "
      "encountering thread until the block ends but processes other events "
      "meanwhile.\n");
  return 0;
}

// FIG9 — reproduces the paper's Figure 9 (§V.B): throughput of the HTTP
// encryption service vs number of concurrent worker threads, for the Jetty
// fixed-pool connector and the Pyjama virtual-target connector, each with
// and without per-event parallelisation of the kernel.
//
// Paper expectation: "both Jetty and Pyjama have good scaling performance
// as the number of concurrency worker threads increases. When the
// parallelization of each event ... is used in combination with either
// Jetty or Pyjama, it initially results in dramatically better throughput.
// Yet, as the number of concurrency worker threads is increased, the
// throughput levels off ... because every parallelization computation
// spawns its own set of worker threads" — oversubscription.
//
// Flags: --threads=1,2,4,8,16,32 --users=50 --requests=2 --payload=4096
//        --width=3 (per-request team for +parallel) --real --handler-ms=20
//        --burst=N (pipelined requests per user round trip; batched
//        submission through the connectors) --full --csv=DIR
//
// --real-net switches to the real network front end (EXPERIMENTS.md §NET1):
// an open-loop offered-load sweep through net::LoadClient against the
// epoll-reactor net::Server running the same encryption handler, producing
// the latency-vs-offered-load curve past the saturation knee into
// <csv>/fig9_latency.csv. Knobs: --net-sweep=25,50,100,200,400 (offered
// rates, req/s) --net-conns=256 --net-duration=5 --net-high=512
// (shed high watermark; low = 3/4 of it).

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/tracing.hpp"
#include "forkjoin/team.hpp"
#include "forkjoin/team_pool.hpp"
#include "httpsim/connector.hpp"
#include "httpsim/encryption_service.hpp"
#include "httpsim/virtual_users.hpp"
#include "kernels/crypt.hpp"
#include "net/load_client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace {

using evmp::http::EncryptionService;
using evmp::http::HttpLoadResult;
using evmp::http::VirtualUserOptions;

struct Config {
  std::size_t payload = 4096;
  int parallel_width = 3;
  evmp::kernels::WorkModel model = evmp::kernels::WorkModel::kSimulated;
  evmp::common::Millis handler_ms{20};
  VirtualUserOptions users;
};

EncryptionService::Config service_config(const Config& cfg, bool parallel,
                                         bool pooled, bool adaptive = false) {
  EncryptionService::Config sc;
  sc.payload_bytes = cfg.payload;
  sc.parallel_width = parallel ? cfg.parallel_width : 1;
  sc.pooled_team = pooled;
  sc.adaptive_width = adaptive;
  sc.work_model = cfg.model;
  if (cfg.model == evmp::kernels::WorkModel::kSimulated) {
    // Split the handler's simulated duration across the crypt units.
    evmp::kernels::CryptKernel probe(cfg.payload);
    sc.per_unit = std::chrono::duration_cast<evmp::common::Nanos>(
                      cfg.handler_ms) /
                  std::max<long>(1, probe.units());
  }
  return sc;
}

HttpLoadResult run_one(const Config& cfg, bool pyjama, bool parallel,
                       int workers, bool pooled = false,
                       bool adaptive = false) {
  EncryptionService service(service_config(cfg, parallel, pooled, adaptive));
  if (pyjama) {
    evmp::http::PyjamaConnector connector(workers, service.handler());
    return evmp::http::run_virtual_users(connector, cfg.users);
  }
  evmp::http::JettyConnector connector(workers, service.handler());
  return evmp::http::run_virtual_users(connector, cfg.users);
}

/// --real-net: drive the epoll front end with the open-loop client and
/// write the offered-load vs latency curve. Returns the process exit code.
int run_real_net(const evmp::common::CliArgs& args, const Config& cfg) {
  const auto conns =
      static_cast<std::size_t>(args.get_long("net-conns", 256));
  const double duration = args.get_double("net-duration", 5.0);
  const auto threads = static_cast<int>(args.get_long("net-threads", 2));
  const auto high =
      static_cast<std::size_t>(args.get_long("net-high", 512));
  const auto sweep = args.get_long_list(
      "net-sweep", std::vector<long>{25, 50, 100, 200, 400});
  const std::string csv_dir = args.get("csv", "results");

  if (!evmp::net::raise_fd_limit(2 * conns + 512)) {
    std::fprintf(stderr, "FIG9: could not raise RLIMIT_NOFILE for %zu "
                         "connections\n", conns);
  }

  evmp::Runtime rt;
  rt.create_worker("worker", threads);
  EncryptionService service(service_config(cfg, /*parallel=*/false,
                                           /*pooled=*/false));
  evmp::net::Server::Config sc;
  sc.mode = evmp::net::Server::Mode::kHandler;
  sc.handler = service.handler();
  sc.high_watermark = high;
  sc.low_watermark = high * 3 / 4;
  evmp::net::Server server(rt, sc);
  server.start();

  evmp::net::LoadClient client(server.port(), conns, cfg.payload,
                               /*seed=*/42);
  const std::size_t up = client.connect_all();
  std::printf("FIG9 --real-net: %zu/%zu connections, %d worker threads, "
              "~%lldms handler, shed watermarks %zu/%zu\n",
              up, conns, threads,
              static_cast<long long>(cfg.handler_ms.count()), high,
              high * 3 / 4);
  if (up == 0) {
    std::fprintf(stderr, "FIG9: no connections established\n");
    return 2;
  }

  const std::string path = csv_dir + "/fig9_latency.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FIG9: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fprintf(f,
               "offered_hz,sent,ok,shed,errors,wall_s,p50_ns,p90_ns,p99_ns,"
               "p999_ns,max_ns,mean_ns\n");
  for (const long rate : sweep) {
    const evmp::net::RoundResult r = client.run_round(
        static_cast<double>(rate), duration, /*poisson=*/true,
        /*drain_timeout_s=*/15.0);
    const evmp::common::LatencyQuantiles q = r.latency.quantiles();
    std::printf("  offered=%5ld/s ok=%7llu shed=%6llu p50=%8.3fms "
                "p99=%8.3fms p999=%8.3fms%s\n",
                rate, static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.shed), q.p50 / 1e6,
                q.p99 / 1e6, q.p999 / 1e6,
                r.drained ? "" : "  [drain timeout]");
    std::fprintf(
        f, "%.0f,%llu,%llu,%llu,%llu,%.3f,%llu,%llu,%llu,%llu,%llu,%.0f\n",
        r.offered_hz, static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.errors), r.wall_seconds,
        static_cast<unsigned long long>(q.p50),
        static_cast<unsigned long long>(q.p90),
        static_cast<unsigned long long>(q.p99),
        static_cast<unsigned long long>(q.p999),
        static_cast<unsigned long long>(q.max), q.mean_ns);
  }
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const bool full = args.get_bool("full", false);

  Config cfg;
  cfg.payload = static_cast<std::size_t>(args.get_long("payload", 4096));
  cfg.parallel_width = static_cast<int>(args.get_long("width", 3));
  cfg.model = args.get_bool("real", false)
                  ? evmp::kernels::WorkModel::kReal
                  : evmp::kernels::WorkModel::kSimulated;
  cfg.handler_ms = evmp::common::Millis{args.get_long("handler-ms", 20)};
  cfg.users.users = static_cast<int>(args.get_long("users", full ? 100 : 50));
  cfg.users.requests_per_user =
      static_cast<int>(args.get_long("requests", full ? 5 : 2));
  cfg.users.payload_bytes = cfg.payload;
  cfg.users.burst = static_cast<int>(args.get_long("burst", 1));
  evmp::kernels::set_simulated_cores(
      static_cast<int>(args.get_long("sim-cores", 16)));
  if (cfg.model == evmp::kernels::WorkModel::kSimulated) {
    // The governor must budget against the simulated machine's cores, not
    // the container's, or adaptive widths would track the wrong host.
    evmp::fj::TeamPool::instance().governor().set_cores(
        evmp::kernels::simulated_cores());
  }

  if (args.get_bool("real-net", false)) return run_real_net(args, cfg);

  const auto thread_counts = args.get_long_list(
      "threads", full ? std::vector<long>{1, 2, 4, 8, 16, 24, 32}
                      : std::vector<long>{1, 2, 4, 8, 16});

  std::printf("FIG9: HTTP encryption service throughput (responses/sec)\n");
  std::printf("# %d virtual users x %d requests, payload %zuB, %s work "
              "(~%lldms/request sequential)\n",
              cfg.users.users, cfg.users.requests_per_user, cfg.payload,
              cfg.model == evmp::kernels::WorkModel::kReal ? "real"
                                                           : "simulated",
              static_cast<long long>(cfg.handler_ms.count()));
  if (cfg.model == evmp::kernels::WorkModel::kSimulated) {
    std::printf("# simulated machine: %d virtual cores (paper: 16-core "
                "Xeon); per-request +parallel team width %d\n",
                evmp::kernels::simulated_cores(), cfg.parallel_width);
  }

  evmp::common::TextTable table;
  table.set_header({"workers", "jetty", "pyjama", "jetty+parallel",
                    "pyjama+parallel", "pyjama+par(pooled)",
                    "pyjama+par(adaptive)", "p50 ms", "p99 ms", "p999 ms",
                    "teams spawned", "pooled helpers"});

  for (long workers : thread_counts) {
    const auto helper_threads_before =
        evmp::fj::total_helper_threads_created();
    std::vector<std::string> row{std::to_string(workers)};
    for (const bool parallel : {false, true}) {
      for (const bool pyjama : {false, true}) {
        const auto result =
            run_one(cfg, pyjama, parallel, static_cast<int>(workers));
        if (result.failed != 0) {
          std::fprintf(stderr, "# ERROR: %llu failed responses\n",
                       static_cast<unsigned long long>(result.failed));
        }
        row.push_back(evmp::common::fmt(result.throughput_rps, 1));
      }
    }
    const auto teams = (evmp::fj::total_helper_threads_created() -
                        helper_threads_before) /
                       static_cast<std::uint64_t>(
                           std::max(1, cfg.parallel_width - 1));
    // The pooled-team series: same per-request parallelisation, but the
    // handler leases a cached fj::Team instead of spawning one — helper
    // creation stays flat instead of growing with request count.
    const auto pooled_before = evmp::fj::total_helper_threads_created();
    const auto pooled = run_one(cfg, /*pyjama=*/true, /*parallel=*/true,
                                static_cast<int>(workers), /*pooled=*/true);
    if (pooled.failed != 0) {
      std::fprintf(stderr, "# ERROR: %llu failed pooled responses\n",
                   static_cast<unsigned long long>(pooled.failed));
    }
    row.push_back(evmp::common::fmt(pooled.throughput_rps, 1));
    // The adaptive series: the WidthGovernor sizes each request's team from
    // live load — full hint width on an idle machine, narrower (down to 1)
    // under the request storm, so it must not drop below the plain
    // connectors even at the highest worker counts.
    const auto adaptive =
        run_one(cfg, /*pyjama=*/true, /*parallel=*/true,
                static_cast<int>(workers), /*pooled=*/true,
                /*adaptive=*/true);
    if (adaptive.failed != 0) {
      std::fprintf(stderr, "# ERROR: %llu failed adaptive responses\n",
                   static_cast<unsigned long long>(adaptive.failed));
    }
    row.push_back(evmp::common::fmt(adaptive.throughput_rps, 1));
    // Round-trip latency quantiles of the adaptive series, from the
    // HDR-style histogram (not a mean): the tail is what the paper's
    // oversubscription mechanism actually moves.
    const evmp::common::LatencyQuantiles lq = adaptive.latency.quantiles();
    row.push_back(evmp::common::fmt(static_cast<double>(lq.p50) / 1e6, 2));
    row.push_back(evmp::common::fmt(static_cast<double>(lq.p99) / 1e6, 2));
    row.push_back(evmp::common::fmt(static_cast<double>(lq.p999) / 1e6, 2));
    row.push_back(std::to_string(teams));
    row.push_back(std::to_string(evmp::fj::total_helper_threads_created() -
                                 pooled_before));
    table.add_row(row);
  }
  table.print(std::cout);
  std::printf("# 'teams spawned': per-request fork-join teams created by the "
              "+parallel variants in this row (the paper's oversubscription "
              "mechanism). 'pooled helpers': helper threads created during "
              "the pooled-team run — grows only to the row's concurrency "
              "high-water mark (workers x (width-1) at most), not with the "
              "request count; that is the fix for that mechanism. "
              "'p50/p99/p999 ms': round-trip latency quantiles of the "
              "adaptive series from the log-bucketed latency histogram.\n");
  if (cfg.users.burst > 1) {
    std::printf("# burst=%d: each user pipelines %d requests per round trip; "
                "connectors admit each burst via batched submission.\n",
                cfg.users.burst, cfg.users.burst);
  }

  // Run-queue fan-in counters published by the executors of the final run
  // (worker pool shards, dispatcher batches) plus the team pool's width
  // decisions; see common::Tracer.
  evmp::fj::TeamPool::instance().publish_counters();
  std::printf("# executor counters (last run):\n");
  for (const auto& [counter, value] :
       evmp::common::Tracer::instance().counters()) {
    std::printf("#   %-32s %llu\n", counter.c_str(),
                static_cast<unsigned long long>(value));
  }

  const std::string csv_dir = args.get("csv", "");
  if (!csv_dir.empty()) {
    evmp::common::write_csv(table, csv_dir + "/fig9.csv");
  }
  return 0;
}

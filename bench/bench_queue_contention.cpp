// QUEUE — run-queue fan-in microbenchmark: MpmcQueue (one mutex+condvar for
// every producer and consumer) vs ShardedMpmcQueue (mutex-striped shards,
// producer-hashed push, consumer work-pull), and the additional win from
// batched submission (push_batch: one lock + one wakeup per burst).
//
// Each cell runs P producer threads pushing `items` no-op tokens at C
// consumer threads and reports million ops/sec (one op = one item through
// the queue). The sweep over shard counts shows the fan-in collapsing as
// stripes are added; the sharded queue's collision/steal counters quantify
// why. This is the executor-layer mechanism behind the Fig. 9 throughput
// curve: every ThreadPoolExecutor submission crosses exactly this path.
//
// Flags: --producers=1,2,4,8 --consumers=8 --shards=1,2,4,8 --items=200000
//        --batch=32 --csv=DIR

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/queue.hpp"
#include "common/sharded_queue.hpp"
#include "common/table.hpp"

namespace {

using evmp::common::MpmcQueue;
using evmp::common::ShardedMpmcQueue;

/// P producers push `per_producer` tokens each via `push`; `consumers`
/// threads drain `queue` until closed-and-empty. Returns Mops/s over the
/// full produce+drain interval.
template <class Queue, class Push>
double run_cell(Queue& queue, int producers, int consumers,
                long per_producer, Push push) {
  std::atomic<long> consumed{0};
  const auto start = evmp::common::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(consumers));
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&] {
        while (queue.pop().has_value()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    {
      std::vector<std::jthread> prod;
      prod.reserve(static_cast<std::size_t>(producers));
      for (int p = 0; p < producers; ++p) {
        prod.emplace_back([&] { push(per_producer); });
      }
    }  // join producers
    queue.close();
  }  // join consumers
  const double secs = evmp::common::to_sec(evmp::common::now() - start);
  return secs > 0.0 ? static_cast<double>(consumed.load()) / secs / 1e6
                    : 0.0;
}

double bench_mpmc(int producers, int consumers, long items) {
  MpmcQueue<int> queue;
  return run_cell(queue, producers, consumers, items / producers,
                  [&](long n) {
                    for (long i = 0; i < n; ++i) {
                      queue.push(static_cast<int>(i));
                    }
                  });
}

double bench_sharded(int producers, int consumers, long items,
                     std::size_t shards, long batch,
                     evmp::common::ShardedQueueStats* stats_out = nullptr) {
  ShardedMpmcQueue<int> queue(shards);
  const double mops = run_cell(
      queue, producers, consumers, items / producers, [&](long n) {
        if (batch <= 1) {
          for (long i = 0; i < n; ++i) queue.push(static_cast<int>(i));
          return;
        }
        std::vector<int> burst;
        for (long i = 0; i < n;) {
          const long m = std::min(batch, n - i);
          burst.clear();
          for (long b = 0; b < m; ++b) {
            burst.push_back(static_cast<int>(i + b));
          }
          queue.push_batch(burst);
          i += m;
        }
      });
  if (stats_out != nullptr) *stats_out = queue.stats();
  return mops;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const long items = args.get_long("items", 200'000);
  const long batch = args.get_long("batch", 32);
  const int consumers = static_cast<int>(args.get_long("consumers", 8));
  const auto producer_counts =
      args.get_long_list("producers", std::vector<long>{1, 2, 4, 8});
  const auto shard_counts =
      args.get_long_list("shards", std::vector<long>{1, 2, 4, 8});

  std::printf("QUEUE: run-queue fan-in, %ld items/cell, %d consumers, "
              "burst=%ld (Mops/s; one op = one item through the queue)\n",
              items, consumers, batch);

  evmp::common::TextTable table;
  std::vector<std::string> header{"producers", "mpmc"};
  for (long s : shard_counts) {
    header.push_back("sharded/" + std::to_string(s));
  }
  header.push_back("sharded/" + std::to_string(shard_counts.back()) +
                   "+batch");
  table.set_header(header);

  for (long producers : producer_counts) {
    const int p = static_cast<int>(producers);
    std::vector<std::string> row{std::to_string(producers)};
    row.push_back(evmp::common::fmt(bench_mpmc(p, consumers, items), 2));
    evmp::common::ShardedQueueStats last_stats;
    for (long s : shard_counts) {
      row.push_back(evmp::common::fmt(
          bench_sharded(p, consumers, items, static_cast<std::size_t>(s), 1,
                        &last_stats),
          2));
    }
    row.push_back(evmp::common::fmt(
        bench_sharded(p, consumers, items,
                      static_cast<std::size_t>(shard_counts.back()), batch),
        2));
    table.add_row(row);
    std::printf("# p=%ld sharded/%ld counters: collisions=%llu steals=%llu "
                "max_depth=%llu\n",
                producers, shard_counts.back(),
                static_cast<unsigned long long>(last_stats.collisions),
                static_cast<unsigned long long>(last_stats.steals),
                static_cast<unsigned long long>(last_stats.max_depth));
  }
  table.print(std::cout);
  std::printf("# mpmc = single mutex+condvar MpmcQueue; sharded/N = "
              "ShardedMpmcQueue with N stripes (per-item push); +batch = "
              "push_batch bursts of %ld under one lock+wakeup.\n",
              batch);

  const std::string csv_dir = args.get("csv", "");
  if (!csv_dir.empty()) {
    evmp::common::write_csv(table, csv_dir + "/queue_contention.csv");
  }
  return 0;
}

#include "gui_bench.hpp"

#include <cstdio>
#include <thread>

#include "baselines/executor_service.hpp"
#include "baselines/thread_per_request.hpp"
#include "core/runtime.hpp"
#include "event/gui.hpp"
#include "forkjoin/team.hpp"
#include "kernels/kernel_pool.hpp"

namespace evmp::bench {

namespace {

common::Nanos per_unit_for(const GuiBenchConfig& config) {
  // Split the handler's simulated duration evenly across kernel units.
  auto probe = kernels::make_kernel(config.kernel, config.size);
  const long units = probe->units();
  return std::chrono::duration_cast<common::Nanos>(config.handler_ms) /
         (units > 0 ? units : 1);
}

}  // namespace

std::vector<baselines::Approach> figure7_approaches() {
  using baselines::Approach;
  return {Approach::kSequential,      Approach::kSwingWorker,
          Approach::kExecutorService, Approach::kPyjama,
          Approach::kSyncParallel,    Approach::kAsyncParallel};
}

GuiBenchOutcome run_gui_round(baselines::Approach approach,
                              const GuiBenchConfig& config) {
  event::EventLoop edt("edt");
  edt.start();
  Runtime rt;
  rt.register_edt("edt", edt);
  rt.create_worker("worker", config.worker_threads);

  event::Gui gui(edt, event::ConfinementPolicy::kCount);
  auto& status = gui.add_label("status");
  auto& progress = gui.add_progress_bar("progress");

  kernels::KernelPool pool(config.kernel, config.size, config.work_model,
                           config.work_model == kernels::WorkModel::kSimulated
                               ? per_unit_for(config)
                               : common::Nanos{0});
  baselines::ExecutorService executor_service(
      static_cast<std::size_t>(config.worker_threads));
  baselines::ThreadPerRequest thread_per_request;
  fj::Team sync_team(config.parallel_width);
  std::atomic<std::uint64_t> sink{0};

  baselines::GuiBenchEnv env{edt,
                             rt,
                             status,
                             progress,
                             pool,
                             &executor_service,
                             &thread_per_request,
                             &sync_team,
                             config.parallel_width,
                             &sink};

  std::unique_ptr<event::ResponseProbe> probe;
  if (config.probe_period.count() > 0) {
    probe = std::make_unique<event::ResponseProbe>(
        edt, std::chrono::duration_cast<common::Nanos>(config.probe_period));
    probe->start();
  }

  event::OpenLoopDriver::Options opt;
  opt.count = config.events;
  opt.rate_hz = config.rate_hz;
  opt.seed = config.seed;
  opt.drain_timeout = common::Millis{120'000};

  const common::Stopwatch wall;
  GuiBenchOutcome outcome;
  outcome.load = event::OpenLoopDriver::run(
      edt, opt, [&](std::size_t index, const event::CompletionToken& token) {
        baselines::handle_event(approach, env, index, token);
      });
  const double wall_sec = wall.elapsed_sec();

  if (probe) {
    probe->stop();
    outcome.probe_p50_ms =
        static_cast<double>(probe->latencies().percentile(0.5)) / 1e6;
    outcome.probe_p99_ms =
        static_cast<double>(probe->latencies().percentile(0.99)) / 1e6;
  }
  edt.wait_until_idle();
  thread_per_request.join_all();
  executor_service.shutdown();
  rt.clear();

  outcome.edt_busy_pct =
      wall_sec > 0.0 ? 100.0 * common::to_sec(edt.busy_time()) / wall_sec
                     : 0.0;
  outcome.gui_violations = gui.violations();
  outcome.edt_events = edt.dispatched();
  return outcome;
}

void print_environment_banner(const GuiBenchConfig& config) {
  std::printf("# hardware: %u cpu(s); work model: %s",
              std::thread::hardware_concurrency(),
              config.work_model == kernels::WorkModel::kReal ? "real"
                                                             : "simulated");
  if (config.work_model == kernels::WorkModel::kSimulated) {
    std::printf(" (handler ~%lldms per event, %d virtual cores)",
                static_cast<long long>(config.handler_ms.count()),
                kernels::simulated_cores());
  }
  std::printf("\n# worker target: %d threads; parallel width: %d\n",
              config.worker_threads, config.parallel_width);
}

GuiBenchConfig config_from_cli(const common::CliArgs& args) {
  GuiBenchConfig config;
  config.kernel = args.get("kernel", config.kernel);
  config.work_model = args.get_bool("real", false)
                          ? kernels::WorkModel::kReal
                          : kernels::WorkModel::kSimulated;
  config.handler_ms =
      common::Millis{args.get_long("handler-ms", config.handler_ms.count())};
  config.worker_threads = static_cast<int>(
      args.get_long("workers", config.worker_threads));
  config.parallel_width = static_cast<int>(
      args.get_long("width", config.parallel_width));
  config.events = static_cast<std::size_t>(
      args.get_long("events", static_cast<long>(config.events)));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  if (args.has("sim-cores")) {
    kernels::set_simulated_cores(
        static_cast<int>(args.get_long("sim-cores", 16)));
  }
  const long size = args.get_long("size", 0);
  config.size = size <= 0 ? kernels::SizeClass::kTiny
                          : (size == 1 ? kernels::SizeClass::kSmall
                                       : kernels::SizeClass::kMedium);
  return config;
}

}  // namespace evmp::bench

// ST1 — steal throughput and fork-join region latency: the lock-free
// Chase–Lev WorkStealingExecutor against the mutex-per-deque
// LockedWorkStealingExecutor it replaced, plus pooled vs per-region
// fork-join teams (the Figure 9 oversubscription fix).
//
// Workloads:
//  * spawn-tree: each task posts two children down to a given depth — the
//    steal-heavy recursive pattern where deque contention dominates. On a
//    multi-core host the lock-free deque is expected to be >=2x the locked
//    baseline at 4+ threads; on a single-CPU container both are time-slice
//    bound and the difference shows in the counters instead.
//  * region latency: a trivial width-W parallel region per iteration,
//    once with a freshly constructed fj::Team per region (the paper's
//    per-event pathology) and once leasing from fj::TeamPool.
//
// With --alloc-check=<budgets.json>, a paced steady-state spawn-tree loop
// then measures process-wide heap allocations per executed task and exits
// nonzero when the rate exceeds the budget file's
// "allocs_per_steal_dispatch" — the CI perf-smoke gate for the
// zero-allocation steady-state claim (TaskNode recycling via ObjectPool,
// retained Chase–Lev buffers, ring-buffer injection shards).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/sync.hpp"
#include "common/table.hpp"
#include "executor/locked_work_stealing_executor.hpp"
#include "executor/work_stealing_executor.hpp"
#include "forkjoin/team.hpp"
#include "forkjoin/team_pool.hpp"

// GCC pairs the replaced operator new (malloc-backed) with calls to the
// replaced sized/aligned deletes and flags them as mismatched even though
// every path ends in free(); silence that known false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// --- allocation-counting operator new/delete interposer -------------------
// Unlike bench_overhead's submitter-thread counter, this one is
// process-wide: the steal path allocates (or must not) on worker threads,
// so every thread's allocations count against the budget.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t process_allocs() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

/// Post two children per task down to `depth`; leaves release the latch.
/// Works against any executor exposing post() — the two pools under test
/// share that interface.
template <class Pool>
void spawn_tree(Pool& pool, evmp::common::CountdownLatch& latch, int depth,
                int spin_us) {
  if (spin_us > 0) evmp::common::busy_spin(evmp::common::Micros{spin_us});
  if (depth == 0) {
    latch.count_down();
    return;
  }
  pool.post([&pool, &latch, depth, spin_us] {
    spawn_tree(pool, latch, depth - 1, spin_us);
  });
  pool.post([&pool, &latch, depth, spin_us] {
    spawn_tree(pool, latch, depth - 1, spin_us);
  });
}

/// Run `roots` spawn trees of the given depth; returns wall ms and (via
/// `tasks_out`) the number of tasks executed: roots * (2^(depth+1) - 1).
template <class Pool>
double run_tree(Pool& pool, int roots, int depth, int spin_us,
                std::uint64_t* tasks_out) {
  const auto leaves = static_cast<std::uint64_t>(roots) << depth;
  evmp::common::CountdownLatch latch(static_cast<std::size_t>(leaves));
  const evmp::common::Stopwatch sw;
  for (int r = 0; r < roots; ++r) {
    pool.post([&pool, &latch, depth, spin_us] {
      spawn_tree(pool, latch, depth, spin_us);
    });
  }
  latch.wait();
  const double ms = sw.elapsed_ms();
  if (tasks_out != nullptr) {
    *tasks_out = static_cast<std::uint64_t>(roots) * ((2ull << depth) - 1);
  }
  return ms;
}

double run_regions_fresh(int regions, int width) {
  const evmp::common::Stopwatch sw;
  for (int i = 0; i < regions; ++i) {
    evmp::fj::Team team(width);
    team.parallel([](int, int) {});
  }
  return sw.elapsed_ms();
}

double run_regions_pooled(int regions, int width) {
  const evmp::common::Stopwatch sw;
  for (int i = 0; i < regions; ++i) {
    auto team = evmp::fj::TeamPool::instance().lease(width);
    team->parallel([](int, int) {});
  }
  return sw.elapsed_ms();
}

// --- steady-state allocation self-check (--alloc-check) -------------------

/// Minimal key lookup in a flat JSON object: finds `"key" : <number>`.
/// Returns `fallback` when the file or key is missing (the check then
/// still runs against the default budget rather than silently passing).
double read_budget(const std::string& path, const char* key,
                   double fallback) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "alloc-check: cannot open %s; using budget %.3f\n",
                 path.c_str(), fallback);
    return fallback;
  }
  std::string text(1 << 16, '\0');
  const std::size_t got = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  text.resize(got);
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fallback;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

/// Measure steady-state allocations per adaptive TeamPool lease. After a
/// warm-up that parks a team and settles the governor's decay cycle, each
/// lease is a width decision (relaxed atomics), a bucket pop and a bucket
/// push — the heap is never touched (budget "allocs_per_adaptive_lease").
int run_adaptive_lease_alloc_check(const std::string& budget_path,
                                   int width) {
  const double budget =
      read_budget(budget_path, "allocs_per_adaptive_lease", 0.0);
  auto& pool = evmp::fj::TeamPool::instance();

  constexpr int kWarmupLeases = 256;   // > WidthGovernor::kDecayPeriod
  constexpr int kMeasuredLeases = 512;
  for (int i = 0; i < kWarmupLeases; ++i) {
    auto team = pool.lease_adaptive(width);
    team->parallel([](int, int) {});
  }

  const std::uint64_t before = process_allocs();
  for (int i = 0; i < kMeasuredLeases; ++i) {
    auto team = pool.lease_adaptive(width);
    team->parallel([](int, int) {});
  }
  const std::uint64_t delta = process_allocs() - before;

  const double per_lease =
      static_cast<double>(delta) / static_cast<double>(kMeasuredLeases);
  std::printf(
      "alloc-check: %llu process-wide allocations over %d adaptive leases "
      "=> %.5f allocs/lease (budget %.5f)\n",
      static_cast<unsigned long long>(delta), kMeasuredLeases, per_lease,
      budget);
  if (per_lease > budget) {
    std::fprintf(stderr,
                 "alloc-check FAILED: %.5f allocs/adaptive-lease exceeds "
                 "budget %.5f\n",
                 per_lease, budget);
    return 1;
  }
  std::printf("adaptive-lease alloc-check passed\n");
  return 0;
}

/// Measure steady-state allocations per executed task across the whole
/// process. Paced in identical rounds so the ObjectPool population, the
/// Chase–Lev buffers and the injection ring shards all reach their
/// high-water marks during warmup; the measured phase then repeats the
/// exact same pattern and should touch the heap zero times.
int run_alloc_check(const std::string& budget_path, int threads) {
  const double budget =
      read_budget(budget_path, "allocs_per_steal_dispatch", 0.0);
  evmp::exec::WorkStealingExecutor pool(
      "alloc-check", static_cast<std::size_t>(threads));

  constexpr int kRoots = 4;
  constexpr int kDepth = 8;  // 4 * (2^9 - 1) = 2044 tasks per round
  constexpr int kWarmupRounds = 32;
  constexpr int kMeasuredRounds = 64;
  std::uint64_t tasks_per_round = 0;
  for (int i = 0; i < kWarmupRounds; ++i) {
    run_tree(pool, kRoots, kDepth, 0, &tasks_per_round);
  }

  const std::uint64_t before = process_allocs();
  for (int i = 0; i < kMeasuredRounds; ++i) {
    run_tree(pool, kRoots, kDepth, 0, nullptr);
  }
  const std::uint64_t delta = process_allocs() - before;

  const double per_task =
      static_cast<double>(delta) /
      (static_cast<double>(tasks_per_round) * kMeasuredRounds);
  std::printf(
      "alloc-check: %llu process-wide allocations over %llu stealing "
      "dispatches => %.5f allocs/task (budget %.5f)\n",
      static_cast<unsigned long long>(delta),
      static_cast<unsigned long long>(tasks_per_round * kMeasuredRounds),
      per_task, budget);
  pool.shutdown();
  if (per_task > budget) {
    std::fprintf(stderr,
                 "alloc-check FAILED: %.5f allocs/task exceeds budget "
                 "%.5f\n",
                 per_task, budget);
    return 1;
  }
  std::printf("alloc-check passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const int threads = static_cast<int>(args.get_long("threads", 4));
  const int roots = static_cast<int>(args.get_long("roots", 64));
  const int depth = static_cast<int>(args.get_long("depth", 7));
  const int spin_us = static_cast<int>(args.get_long("spin-us", 0));
  const int regions = static_cast<int>(args.get_long("regions", 2000));
  const int width = static_cast<int>(args.get_long("width", 3));
  const std::string budget_path = args.get("alloc-check", "");

  std::printf("ST1: lock-free vs locked work stealing (%d threads), "
              "pooled vs fresh fork-join teams (width %d)\n",
              threads, width);

  evmp::common::TextTable table;
  table.set_header(
      {"workload", "variant", "ms", "Mtasks/s", "steals", "local pops"});

  std::uint64_t tasks = 0;
  {
    evmp::exec::LockedWorkStealingExecutor locked(
        "st1-locked", static_cast<std::size_t>(threads));
    run_tree(locked, 8, 4, spin_us, &tasks);  // warm-up
    const double ms = run_tree(locked, roots, depth, spin_us, &tasks);
    table.add_row({"spawn-tree " + std::to_string(roots) + " x depth " +
                       std::to_string(depth),
                   "locked", evmp::common::fmt(ms, 1),
                   evmp::common::fmt(static_cast<double>(tasks) / ms / 1e3, 2),
                   std::to_string(locked.steals()),
                   std::to_string(locked.local_pops())});
    locked.shutdown();
  }
  {
    evmp::exec::WorkStealingExecutor lockfree(
        "st1-lockfree", static_cast<std::size_t>(threads));
    run_tree(lockfree, 8, 4, spin_us, &tasks);  // warm-up
    const double ms = run_tree(lockfree, roots, depth, spin_us, &tasks);
    table.add_row({"spawn-tree " + std::to_string(roots) + " x depth " +
                       std::to_string(depth),
                   "chase-lev", evmp::common::fmt(ms, 1),
                   evmp::common::fmt(static_cast<double>(tasks) / ms / 1e3, 2),
                   std::to_string(lockfree.steals()) + " (" +
                       std::to_string(lockfree.near_steals()) + " near, " +
                       std::to_string(lockfree.far_steals()) + " far)",
                   std::to_string(lockfree.local_pops())});
    lockfree.shutdown();
  }
  {
    run_regions_fresh(64, width);  // warm-up
    const auto helpers_before = evmp::fj::total_helper_threads_created();
    const double ms = run_regions_fresh(regions, width);
    table.add_row({std::to_string(regions) + " parallel regions",
                   "fresh team",
                   evmp::common::fmt(ms, 1),
                   evmp::common::fmt(
                       static_cast<double>(regions) / ms / 1e3, 2),
                   "-",
                   std::to_string(evmp::fj::total_helper_threads_created() -
                                  helpers_before) +
                       " helpers spawned"});
  }
  {
    run_regions_pooled(64, width);  // warm-up (populates the pool)
    const auto helpers_before = evmp::fj::total_helper_threads_created();
    const double ms = run_regions_pooled(regions, width);
    table.add_row({std::to_string(regions) + " parallel regions",
                   "pooled team",
                   evmp::common::fmt(ms, 1),
                   evmp::common::fmt(
                       static_cast<double>(regions) / ms / 1e3, 2),
                   "-",
                   std::to_string(evmp::fj::total_helper_threads_created() -
                                  helpers_before) +
                       " helpers spawned"});
  }
  table.print(std::cout);
  std::printf("\nExpected on multi-core hosts: chase-lev >=2x the locked "
              "baseline on the spawn-tree at 4+ threads (no mutex on the "
              "owner's hot path, parked idlers instead of a polling CV), "
              "and pooled regions orders of magnitude more region "
              "throughput with zero helpers spawned in steady state. On a "
              "single-CPU container wall times converge; the counters "
              "still separate the designs.\n");

  if (!budget_path.empty()) {
    const int rc = run_alloc_check(budget_path, threads);
    if (rc != 0) return rc;
    return run_adaptive_lease_alloc_check(budget_path, width);
  }
  return 0;
}

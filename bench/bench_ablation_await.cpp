// AB1 — ablation of Algorithm 1's line 14-16 "logical barrier": what does
// the await clause's event pumping buy over a plain blocking wait?
//
// Scenario: the EDT handles a stream of events whose handlers await a
// worker-side block. With the logical barrier (await), the EDT keeps
// dispatching the other queued events while waiting; with a plain blocking
// wait (the `default` clause), every concurrent event stalls behind the
// first. We compare probe latency and total completion time.

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/clock.hpp"
#include "common/table.hpp"
#include "core/runtime.hpp"
#include "core/target.hpp"
#include "event/event_loop.hpp"
#include "event/load.hpp"

namespace {

struct AblationResult {
  double total_ms = 0.0;
  double avg_response_ms = 0.0;
  double probe_p50_ms = 0.0;
  double probe_p99_ms = 0.0;
  int max_nesting = 0;
};

AblationResult run_mode(evmp::Async mode, std::size_t events, double rate_hz,
                        evmp::common::Millis work) {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::Runtime rt;
  rt.register_edt("edt", edt);
  rt.create_worker("worker", 4);

  evmp::event::ResponseProbe probe(edt, evmp::common::Millis{2});
  probe.start();

  evmp::event::OpenLoopDriver::Options opt;
  opt.count = events;
  opt.rate_hz = rate_hz;
  opt.drain_timeout = evmp::common::Millis{120'000};

  const evmp::common::Stopwatch wall;
  const auto load = evmp::event::OpenLoopDriver::run(
      edt, opt,
      [&](std::size_t, const evmp::event::CompletionToken& token) {
        // Handler: offload to the worker, then continue with S4 on the EDT.
        rt.invoke_target_block(
            "worker",
            [work] {
              evmp::common::precise_sleep(
                  std::chrono::duration_cast<evmp::common::Nanos>(work));
            },
            mode);
        token.complete();  // S4 reached only after the join
      });
  AblationResult r;
  r.total_ms = wall.elapsed_ms();
  probe.stop();
  edt.wait_until_idle();
  r.avg_response_ms = load.response_ms.mean();
  r.probe_p50_ms = static_cast<double>(probe.latencies().percentile(0.5)) / 1e6;
  r.probe_p99_ms = static_cast<double>(probe.latencies().percentile(0.99)) / 1e6;
  r.max_nesting = edt.max_nesting();
  rt.clear();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const auto events = static_cast<std::size_t>(args.get_long("events", 20));
  const double rate = args.get_double("rate", 100.0);
  const evmp::common::Millis work{args.get_long("work-ms", 15)};

  std::printf("AB1: await logical barrier vs plain blocking wait "
              "(%zu events at %.0f req/s, %lldms worker block each)\n",
              events, rate, static_cast<long long>(work.count()));

  evmp::common::TextTable table;
  table.set_header({"join strategy", "total(ms)", "avg resp(ms)",
                    "probe p50(ms)", "probe p99(ms)", "max nesting"});
  const auto blocking = run_mode(evmp::Async::kDefault, events, rate, work);
  const auto awaiting = run_mode(evmp::Async::kAwait, events, rate, work);
  table.add_row({"default (blocking wait)", evmp::common::fmt(blocking.total_ms, 1),
                 evmp::common::fmt(blocking.avg_response_ms, 2),
                 evmp::common::fmt(blocking.probe_p50_ms, 3),
                 evmp::common::fmt(blocking.probe_p99_ms, 3),
                 std::to_string(blocking.max_nesting)});
  table.add_row({"await (logical barrier)", evmp::common::fmt(awaiting.total_ms, 1),
                 evmp::common::fmt(awaiting.avg_response_ms, 2),
                 evmp::common::fmt(awaiting.probe_p50_ms, 3),
                 evmp::common::fmt(awaiting.probe_p99_ms, 3),
                 std::to_string(awaiting.max_nesting)});
  table.print(std::cout);
  std::printf(
      "\nExpected: blocking waits starve the event loop (probe latency ~ "
      "block time) and serialise the batch; the logical barrier overlaps "
      "the waits (nesting > 1), keeps probes fast and finishes the batch "
      "sooner. Note the honest trade-off: nested dispatch completes LIFO, "
      "so an individual event's response time can stretch while the EDT "
      "stays live — the paper trades per-event latency for responsiveness.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/evmpcc.dir/evmpcc_main.cpp.o"
  "CMakeFiles/evmpcc.dir/evmpcc_main.cpp.o.d"
  "evmpcc"
  "evmpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for evmpcc.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_http_throughput.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig8_edt_responsiveness.
# This may be replaced when dependencies are built.

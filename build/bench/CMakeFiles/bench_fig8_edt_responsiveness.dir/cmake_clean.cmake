file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_edt_responsiveness.dir/bench_fig8_edt_responsiveness.cpp.o"
  "CMakeFiles/bench_fig8_edt_responsiveness.dir/bench_fig8_edt_responsiveness.cpp.o.d"
  "bench_fig8_edt_responsiveness"
  "bench_fig8_edt_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_edt_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

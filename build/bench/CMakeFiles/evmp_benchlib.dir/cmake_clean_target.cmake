file(REMOVE_RECURSE
  "libevmp_benchlib.a"
)

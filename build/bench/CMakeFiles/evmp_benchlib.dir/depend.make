# Empty dependencies file for evmp_benchlib.
# This may be replaced when dependencies are built.

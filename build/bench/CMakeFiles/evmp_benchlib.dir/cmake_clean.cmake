file(REMOVE_RECURSE
  "CMakeFiles/evmp_benchlib.dir/gui_bench.cpp.o"
  "CMakeFiles/evmp_benchlib.dir/gui_bench.cpp.o.d"
  "libevmp_benchlib.a"
  "libevmp_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

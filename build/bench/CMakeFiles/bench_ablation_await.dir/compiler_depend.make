# Empty compiler generated dependencies file for bench_ablation_await.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_await.dir/bench_ablation_await.cpp.o"
  "CMakeFiles/bench_ablation_await.dir/bench_ablation_await.cpp.o.d"
  "bench_ablation_await"
  "bench_ablation_await.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_await.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// dashboard_annotated — evmpcc INPUT. This example is built through the
// full toolchain: CMake runs `evmpcc` on this file and compiles the
// translated output into the `annotated_dashboard` binary, exactly how a
// Pyjama user's annotated Java is compiled (paper §IV).
//
// The app: a monitoring dashboard whose refresh handler aggregates three
// data feeds in parallel, computes statistics with a traditional
// `parallel for` reduction, and keeps the UI thread free the whole time.

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "core/evmp.hpp"

namespace {

/// Simulated feed fetch: deterministic values with a little modeled delay.
std::vector<double> fetch_feed(int feed, int samples) {
  evmp::common::precise_sleep(evmp::common::Millis{20});
  std::vector<double> data(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    data[static_cast<std::size_t>(i)] =
        static_cast<double>((feed * 31 + i * 7) % 100);
  }
  return data;
}

}  // namespace

int main() {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::rt().register_edt("edt", edt);
  evmp::rt().create_worker("worker", 3);

  evmp::event::Gui gui(edt);
  auto& status = gui.add_label("status");
  auto& gauge = gui.add_progress_bar("gauge");

  std::vector<std::vector<double>> feeds(3);
  std::atomic<int> feeds_ready{0};
  evmp::common::CountdownLatch refreshed(1);

  // The "refresh" event handler.
  edt.post([&] {
    status.set_text("refreshing...");

    // Fan out one fetch per feed; all three may run concurrently.
    // firstprivate(feed) matters: the block outlives the loop iteration,
    // so it must capture the *value* of feed, not a reference to a stack
    // slot that is gone by the time the worker runs (default(shared)
    // would dangle — the C++ face of the paper's data-context rules).
    for (int feed = 0; feed < 3; ++feed) {
      { /* evmpcc line 57 */
  auto __evmp_region_0 = [&, feed]() {
        feeds[static_cast<std::size_t>(feed)] = fetch_feed(feed, 4096);
        const int ready = feeds_ready.fetch_add(1) + 1;
        { /* evmpcc line 61 */
  auto __evmp_region_1 = [&, ready]() { gauge.set_value(ready * 30); };
  ::evmp::rt().invoke_target_block("edt", std::move(__evmp_region_1), ::evmp::Async::kNowait);
}
      };
  ::evmp::rt().invoke_target_block("worker", std::move(__evmp_region_0), ::evmp::Async::kNameAs, "feeds");
}
    }

    // Aggregate once every feed arrived, off the EDT, then report back.
    { /* evmpcc line 67 */
  auto __evmp_region_2 = [&]() {
      ::evmp::rt().wait_tag("feeds");
      double total = 0.0;
      double peak = 0.0;
      const int n = static_cast<int>(feeds[0].size());
      { /* evmpcc line 73: parallel for */
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
  const long __evmp_lo_3 = static_cast<long>(0);
  const long __evmp_hi_3 = static_cast<long>(n);
  std::vector<::evmp::fj::detail::Padded<std::decay_t<decltype(total)>>> __evmp_red_total_3(static_cast<std::size_t>(static_cast<int>(4)), ::evmp::fj::detail::Padded<std::decay_t<decltype(total)>>{::evmp::fj::detail::ident_plus<std::decay_t<decltype(total)>>()});
  std::vector<::evmp::fj::detail::Padded<std::decay_t<decltype(peak)>>> __evmp_red_peak_3(static_cast<std::size_t>(static_cast<int>(4)), ::evmp::fj::detail::Padded<std::decay_t<decltype(peak)>>{::evmp::fj::detail::ident_max<std::decay_t<decltype(peak)>>()});
  auto __evmp_ranges_3 = [&](int __evmp_tid_3, long __evmp_rlo_3, long __evmp_rhi_3) {
    auto& total = __evmp_red_total_3[static_cast<std::size_t>(__evmp_tid_3)].value;
    auto& peak = __evmp_red_peak_3[static_cast<std::size_t>(__evmp_tid_3)].value;
    for (long __evmp_i_3 = __evmp_rlo_3; __evmp_i_3 < __evmp_rhi_3; ++__evmp_i_3) {
    int i = static_cast<int>(__evmp_i_3);
    {
        for (const auto& feed : feeds) {
          const double v = feed[static_cast<std::size_t>(i)];
          total += v;
          if (v > peak) peak = v;
        }
      }
    }
  };
  { ::evmp::fj::Team __evmp_team_3(static_cast<int>(4)); ::evmp::fj::parallel_ranges(__evmp_team_3, __evmp_lo_3, __evmp_hi_3, __evmp_ranges_3, ::evmp::fj::Schedule::kStatic, 0); }
  for (const auto& __evmp_p_3 : __evmp_red_total_3) { total = total + __evmp_p_3.value; }
  for (const auto& __evmp_p_3 : __evmp_red_peak_3) { peak = (peak < __evmp_p_3.value) ? __evmp_p_3.value : peak; }
#pragma GCC diagnostic pop
}
      { /* evmpcc line 82 */
  auto __evmp_region_4 = [&, total, peak]() {
        gauge.set_value(100);
        status.set_text("total " + std::to_string(total) + ", peak " +
                        std::to_string(peak));
        std::printf("[edt] dashboard refreshed: total=%.0f peak=%.0f\n",
                    total, peak);
        refreshed.count_down();
      };
  ::evmp::rt().invoke_target_block("edt", std::move(__evmp_region_4), ::evmp::Async::kNowait);
}
    };
  ::evmp::rt().invoke_target_block("worker", std::move(__evmp_region_2), ::evmp::Async::kNowait);
}
    std::printf("[edt] refresh dispatched; UI thread already free\n");
  });

  refreshed.wait();
  edt.wait_until_idle();
  std::printf("violations=%llu (must be 0)\n",
              static_cast<unsigned long long>(gui.violations()));
  evmp::rt().clear();
  return gui.violations() == 0 ? 0 : 1;
}

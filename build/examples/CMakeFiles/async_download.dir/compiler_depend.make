# Empty compiler generated dependencies file for async_download.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/async_download.dir/async_download.cpp.o"
  "CMakeFiles/async_download.dir/async_download.cpp.o.d"
  "async_download"
  "async_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

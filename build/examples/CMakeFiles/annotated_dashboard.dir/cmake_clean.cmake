file(REMOVE_RECURSE
  "CMakeFiles/annotated_dashboard.dir/dashboard_translated.cpp.o"
  "CMakeFiles/annotated_dashboard.dir/dashboard_translated.cpp.o.d"
  "annotated_dashboard"
  "annotated_dashboard.pdb"
  "dashboard_translated.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotated_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for annotated_dashboard.
# This may be replaced when dependencies are built.

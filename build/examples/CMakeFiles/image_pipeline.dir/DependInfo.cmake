
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/image_pipeline.cpp" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o" "gcc" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/evmp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/httpsim/CMakeFiles/evmp_httpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/evmp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/compilerlib/CMakeFiles/evmp_compilerlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/evmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/evmp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/forkjoin/CMakeFiles/evmp_forkjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/asyncio/CMakeFiles/evmp_asyncio.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/evmp_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/http_encrypt_service.dir/http_encrypt_service.cpp.o"
  "CMakeFiles/http_encrypt_service.dir/http_encrypt_service.cpp.o.d"
  "http_encrypt_service"
  "http_encrypt_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_encrypt_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for http_encrypt_service.
# This may be replaced when dependencies are built.

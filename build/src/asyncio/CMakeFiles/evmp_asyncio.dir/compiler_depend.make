# Empty compiler generated dependencies file for evmp_asyncio.
# This may be replaced when dependencies are built.

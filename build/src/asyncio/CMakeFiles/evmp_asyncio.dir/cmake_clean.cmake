file(REMOVE_RECURSE
  "CMakeFiles/evmp_asyncio.dir/async_io.cpp.o"
  "CMakeFiles/evmp_asyncio.dir/async_io.cpp.o.d"
  "libevmp_asyncio.a"
  "libevmp_asyncio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_asyncio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libevmp_asyncio.a"
)

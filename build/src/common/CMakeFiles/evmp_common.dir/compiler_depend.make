# Empty compiler generated dependencies file for evmp_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/evmp_common.dir/cli.cpp.o"
  "CMakeFiles/evmp_common.dir/cli.cpp.o.d"
  "CMakeFiles/evmp_common.dir/clock.cpp.o"
  "CMakeFiles/evmp_common.dir/clock.cpp.o.d"
  "CMakeFiles/evmp_common.dir/env.cpp.o"
  "CMakeFiles/evmp_common.dir/env.cpp.o.d"
  "CMakeFiles/evmp_common.dir/logging.cpp.o"
  "CMakeFiles/evmp_common.dir/logging.cpp.o.d"
  "CMakeFiles/evmp_common.dir/rng.cpp.o"
  "CMakeFiles/evmp_common.dir/rng.cpp.o.d"
  "CMakeFiles/evmp_common.dir/stats.cpp.o"
  "CMakeFiles/evmp_common.dir/stats.cpp.o.d"
  "CMakeFiles/evmp_common.dir/table.cpp.o"
  "CMakeFiles/evmp_common.dir/table.cpp.o.d"
  "CMakeFiles/evmp_common.dir/tracing.cpp.o"
  "CMakeFiles/evmp_common.dir/tracing.cpp.o.d"
  "libevmp_common.a"
  "libevmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libevmp_common.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/httpsim/connector.cpp" "src/httpsim/CMakeFiles/evmp_httpsim.dir/connector.cpp.o" "gcc" "src/httpsim/CMakeFiles/evmp_httpsim.dir/connector.cpp.o.d"
  "/root/repo/src/httpsim/encryption_service.cpp" "src/httpsim/CMakeFiles/evmp_httpsim.dir/encryption_service.cpp.o" "gcc" "src/httpsim/CMakeFiles/evmp_httpsim.dir/encryption_service.cpp.o.d"
  "/root/repo/src/httpsim/virtual_users.cpp" "src/httpsim/CMakeFiles/evmp_httpsim.dir/virtual_users.cpp.o" "gcc" "src/httpsim/CMakeFiles/evmp_httpsim.dir/virtual_users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/evmp_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/evmp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/evmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/forkjoin/CMakeFiles/evmp_forkjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/evmp_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libevmp_httpsim.a"
)

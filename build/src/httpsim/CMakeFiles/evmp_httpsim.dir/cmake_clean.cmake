file(REMOVE_RECURSE
  "CMakeFiles/evmp_httpsim.dir/connector.cpp.o"
  "CMakeFiles/evmp_httpsim.dir/connector.cpp.o.d"
  "CMakeFiles/evmp_httpsim.dir/encryption_service.cpp.o"
  "CMakeFiles/evmp_httpsim.dir/encryption_service.cpp.o.d"
  "CMakeFiles/evmp_httpsim.dir/virtual_users.cpp.o"
  "CMakeFiles/evmp_httpsim.dir/virtual_users.cpp.o.d"
  "libevmp_httpsim.a"
  "libevmp_httpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_httpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for evmp_httpsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/evmp_forkjoin.dir/default_team.cpp.o"
  "CMakeFiles/evmp_forkjoin.dir/default_team.cpp.o.d"
  "CMakeFiles/evmp_forkjoin.dir/team.cpp.o"
  "CMakeFiles/evmp_forkjoin.dir/team.cpp.o.d"
  "libevmp_forkjoin.a"
  "libevmp_forkjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_forkjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libevmp_forkjoin.a"
)

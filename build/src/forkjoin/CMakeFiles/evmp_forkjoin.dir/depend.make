# Empty dependencies file for evmp_forkjoin.
# This may be replaced when dependencies are built.

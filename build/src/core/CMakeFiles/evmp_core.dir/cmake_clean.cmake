file(REMOVE_RECURSE
  "CMakeFiles/evmp_core.dir/runtime.cpp.o"
  "CMakeFiles/evmp_core.dir/runtime.cpp.o.d"
  "CMakeFiles/evmp_core.dir/tag_group.cpp.o"
  "CMakeFiles/evmp_core.dir/tag_group.cpp.o.d"
  "libevmp_core.a"
  "libevmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libevmp_core.a"
)

# Empty compiler generated dependencies file for evmp_core.
# This may be replaced when dependencies are built.

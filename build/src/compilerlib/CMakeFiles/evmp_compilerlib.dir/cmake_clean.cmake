file(REMOVE_RECURSE
  "CMakeFiles/evmp_compilerlib.dir/directive_parser.cpp.o"
  "CMakeFiles/evmp_compilerlib.dir/directive_parser.cpp.o.d"
  "CMakeFiles/evmp_compilerlib.dir/source_scanner.cpp.o"
  "CMakeFiles/evmp_compilerlib.dir/source_scanner.cpp.o.d"
  "CMakeFiles/evmp_compilerlib.dir/translator.cpp.o"
  "CMakeFiles/evmp_compilerlib.dir/translator.cpp.o.d"
  "libevmp_compilerlib.a"
  "libevmp_compilerlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_compilerlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libevmp_compilerlib.a"
)

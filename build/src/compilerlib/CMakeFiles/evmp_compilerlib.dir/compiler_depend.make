# Empty compiler generated dependencies file for evmp_compilerlib.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for evmp_baselines.
# This may be replaced when dependencies are built.

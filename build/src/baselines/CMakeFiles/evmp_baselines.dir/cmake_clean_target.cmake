file(REMOVE_RECURSE
  "libevmp_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/evmp_baselines.dir/approaches.cpp.o"
  "CMakeFiles/evmp_baselines.dir/approaches.cpp.o.d"
  "CMakeFiles/evmp_baselines.dir/swing_worker.cpp.o"
  "CMakeFiles/evmp_baselines.dir/swing_worker.cpp.o.d"
  "CMakeFiles/evmp_baselines.dir/thread_per_request.cpp.o"
  "CMakeFiles/evmp_baselines.dir/thread_per_request.cpp.o.d"
  "libevmp_baselines.a"
  "libevmp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/evmp_executor.dir/executor.cpp.o"
  "CMakeFiles/evmp_executor.dir/executor.cpp.o.d"
  "CMakeFiles/evmp_executor.dir/serial_executor.cpp.o"
  "CMakeFiles/evmp_executor.dir/serial_executor.cpp.o.d"
  "CMakeFiles/evmp_executor.dir/simulated_device.cpp.o"
  "CMakeFiles/evmp_executor.dir/simulated_device.cpp.o.d"
  "CMakeFiles/evmp_executor.dir/thread_pool_executor.cpp.o"
  "CMakeFiles/evmp_executor.dir/thread_pool_executor.cpp.o.d"
  "CMakeFiles/evmp_executor.dir/work_stealing_executor.cpp.o"
  "CMakeFiles/evmp_executor.dir/work_stealing_executor.cpp.o.d"
  "libevmp_executor.a"
  "libevmp_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for evmp_executor.
# This may be replaced when dependencies are built.

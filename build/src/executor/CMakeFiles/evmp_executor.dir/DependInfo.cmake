
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/executor/executor.cpp" "src/executor/CMakeFiles/evmp_executor.dir/executor.cpp.o" "gcc" "src/executor/CMakeFiles/evmp_executor.dir/executor.cpp.o.d"
  "/root/repo/src/executor/serial_executor.cpp" "src/executor/CMakeFiles/evmp_executor.dir/serial_executor.cpp.o" "gcc" "src/executor/CMakeFiles/evmp_executor.dir/serial_executor.cpp.o.d"
  "/root/repo/src/executor/simulated_device.cpp" "src/executor/CMakeFiles/evmp_executor.dir/simulated_device.cpp.o" "gcc" "src/executor/CMakeFiles/evmp_executor.dir/simulated_device.cpp.o.d"
  "/root/repo/src/executor/thread_pool_executor.cpp" "src/executor/CMakeFiles/evmp_executor.dir/thread_pool_executor.cpp.o" "gcc" "src/executor/CMakeFiles/evmp_executor.dir/thread_pool_executor.cpp.o.d"
  "/root/repo/src/executor/work_stealing_executor.cpp" "src/executor/CMakeFiles/evmp_executor.dir/work_stealing_executor.cpp.o" "gcc" "src/executor/CMakeFiles/evmp_executor.dir/work_stealing_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libevmp_executor.a"
)

# Empty dependencies file for evmp_kernels.
# This may be replaced when dependencies are built.

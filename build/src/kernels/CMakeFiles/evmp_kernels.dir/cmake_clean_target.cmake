file(REMOVE_RECURSE
  "libevmp_kernels.a"
)

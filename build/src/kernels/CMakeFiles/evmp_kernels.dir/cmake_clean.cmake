file(REMOVE_RECURSE
  "CMakeFiles/evmp_kernels.dir/crypt.cpp.o"
  "CMakeFiles/evmp_kernels.dir/crypt.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/kernel.cpp.o"
  "CMakeFiles/evmp_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/kernel_pool.cpp.o"
  "CMakeFiles/evmp_kernels.dir/kernel_pool.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/montecarlo.cpp.o"
  "CMakeFiles/evmp_kernels.dir/montecarlo.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/raytracer.cpp.o"
  "CMakeFiles/evmp_kernels.dir/raytracer.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/series.cpp.o"
  "CMakeFiles/evmp_kernels.dir/series.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/sor.cpp.o"
  "CMakeFiles/evmp_kernels.dir/sor.cpp.o.d"
  "CMakeFiles/evmp_kernels.dir/sparsematmult.cpp.o"
  "CMakeFiles/evmp_kernels.dir/sparsematmult.cpp.o.d"
  "libevmp_kernels.a"
  "libevmp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/crypt.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/crypt.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/crypt.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/kernel_pool.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/kernel_pool.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/kernel_pool.cpp.o.d"
  "/root/repo/src/kernels/montecarlo.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/montecarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/montecarlo.cpp.o.d"
  "/root/repo/src/kernels/raytracer.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/raytracer.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/raytracer.cpp.o.d"
  "/root/repo/src/kernels/series.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/series.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/series.cpp.o.d"
  "/root/repo/src/kernels/sor.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/sor.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/sor.cpp.o.d"
  "/root/repo/src/kernels/sparsematmult.cpp" "src/kernels/CMakeFiles/evmp_kernels.dir/sparsematmult.cpp.o" "gcc" "src/kernels/CMakeFiles/evmp_kernels.dir/sparsematmult.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/forkjoin/CMakeFiles/evmp_forkjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

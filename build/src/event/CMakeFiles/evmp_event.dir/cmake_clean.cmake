file(REMOVE_RECURSE
  "CMakeFiles/evmp_event.dir/event_loop.cpp.o"
  "CMakeFiles/evmp_event.dir/event_loop.cpp.o.d"
  "CMakeFiles/evmp_event.dir/gui.cpp.o"
  "CMakeFiles/evmp_event.dir/gui.cpp.o.d"
  "CMakeFiles/evmp_event.dir/load.cpp.o"
  "CMakeFiles/evmp_event.dir/load.cpp.o.d"
  "libevmp_event.a"
  "libevmp_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evmp_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

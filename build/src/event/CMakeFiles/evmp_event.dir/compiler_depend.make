# Empty compiler generated dependencies file for evmp_event.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libevmp_event.a"
)

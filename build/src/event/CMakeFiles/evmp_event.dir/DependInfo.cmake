
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/event_loop.cpp" "src/event/CMakeFiles/evmp_event.dir/event_loop.cpp.o" "gcc" "src/event/CMakeFiles/evmp_event.dir/event_loop.cpp.o.d"
  "/root/repo/src/event/gui.cpp" "src/event/CMakeFiles/evmp_event.dir/gui.cpp.o" "gcc" "src/event/CMakeFiles/evmp_event.dir/gui.cpp.o.d"
  "/root/repo/src/event/load.cpp" "src/event/CMakeFiles/evmp_event.dir/load.cpp.o" "gcc" "src/event/CMakeFiles/evmp_event.dir/load.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/evmp_executor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// evmpcc INPUT FIXTURE — this file is not compiled directly. The build
// translates it with the freshly built evmpcc (runtime expression "rt",
// see tests/CMakeLists.txt) and compiles the OUTPUT into test_integration,
// proving end-to-end that generated code is valid, correct C++.

#include <mutex>
#include <string>
#include <vector>

#include "core/evmp.hpp"

namespace evmp_fixture {

// The paper's §IV.A compilation example, extended with name_as/wait and an
// if-clause. Requires targets "worker" and "io" plus an "edt" loop.
std::vector<std::string> run_pipeline(evmp::Runtime& rt, bool offload) {
  std::vector<std::string> log;
  std::mutex mu;
  auto add = [&](const std::string& s) {
    std::scoped_lock lk(mu);
    log.push_back(s);
  };
  int value = 0;

  add("start");
  { /* evmpcc line 26 */
  auto __evmp_region_0 = [&]() {
    value += 1;  // S1
    { /* evmpcc line 29 */
  auto __evmp_region_1 = [&]() { add("batch-a"); };
  rt.invoke_target_block("io", std::move(__evmp_region_1), ::evmp::Async::kNameAs, "batch");
}
    { /* evmpcc line 31 */
  auto __evmp_region_2 = [&]() { add("batch-b"); };
  rt.invoke_target_block("io", std::move(__evmp_region_2), ::evmp::Async::kNameAs, "batch");
}
    rt.wait_tag("batch");
    value += 10;  // S3
    { /* evmpcc line 35 */
  auto __evmp_region_3 = [&, value]() { add("progress " + std::to_string(value)); };
  rt.invoke_target_block("edt", std::move(__evmp_region_3), ::evmp::Async::kNowait);
}
  };
  if (offload) { rt.invoke_target_block("worker", std::move(__evmp_region_0), ::evmp::Async::kAwait); } else { __evmp_region_0(); }
}
  add(value == 11 ? "sum-ok" : "sum-bad");

  int doubled = 0;
  { /* evmpcc line 41 */
  auto __evmp_region_4 = [&]() { doubled = value * 2; };
  rt.invoke_target_block("worker", std::move(__evmp_region_4), ::evmp::Async::kAwait);
}

  add(doubled == 22 ? "double-ok" : "double-bad");
  return log;
}

// Traditional OpenMP directives (the fork-join model the event extension
// coexists with), also rewritten by evmpcc: worksharing with reductions.
double run_traditional(int n) {
  std::vector<double> data(static_cast<std::size_t>(n));
  { /* evmpcc line 52: parallel for */
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
  const long __evmp_lo_5 = static_cast<long>(0);
  const long __evmp_hi_5 = static_cast<long>(n);
  auto __evmp_fp_n_5 = n;
  auto __evmp_loop_5 = [&](long __evmp_i_5) {
    int i = static_cast<int>(__evmp_i_5);
    std::decay_t<decltype(__evmp_fp_n_5)> n = __evmp_fp_n_5;
    {
    data[static_cast<std::size_t>(i)] = static_cast<double>(i % (n + 1));
  }
  };
  ::evmp::fj::default_parallel_for(__evmp_lo_5, __evmp_hi_5, __evmp_loop_5, ::evmp::fj::Schedule::kStatic, 0);
#pragma GCC diagnostic pop
}

  double sum = 0.0;
  double largest = -1.0;
  long hits = 0;
  { /* evmpcc line 60: parallel for */
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
  const long __evmp_lo_6 = static_cast<long>(0);
  const long __evmp_hi_6 = static_cast<long>(n);
  std::vector<::evmp::fj::detail::Padded<std::decay_t<decltype(sum)>>> __evmp_red_sum_6(static_cast<std::size_t>(static_cast<int>(3)), ::evmp::fj::detail::Padded<std::decay_t<decltype(sum)>>{::evmp::fj::detail::ident_plus<std::decay_t<decltype(sum)>>()});
  std::vector<::evmp::fj::detail::Padded<std::decay_t<decltype(largest)>>> __evmp_red_largest_6(static_cast<std::size_t>(static_cast<int>(3)), ::evmp::fj::detail::Padded<std::decay_t<decltype(largest)>>{::evmp::fj::detail::ident_max<std::decay_t<decltype(largest)>>()});
  std::vector<::evmp::fj::detail::Padded<std::decay_t<decltype(hits)>>> __evmp_red_hits_6(static_cast<std::size_t>(static_cast<int>(3)), ::evmp::fj::detail::Padded<std::decay_t<decltype(hits)>>{::evmp::fj::detail::ident_plus<std::decay_t<decltype(hits)>>()});
  auto __evmp_ranges_6 = [&](int __evmp_tid_6, long __evmp_rlo_6, long __evmp_rhi_6) {
    auto& sum = __evmp_red_sum_6[static_cast<std::size_t>(__evmp_tid_6)].value;
    auto& largest = __evmp_red_largest_6[static_cast<std::size_t>(__evmp_tid_6)].value;
    auto& hits = __evmp_red_hits_6[static_cast<std::size_t>(__evmp_tid_6)].value;
    for (long __evmp_i_6 = __evmp_rlo_6; __evmp_i_6 < __evmp_rhi_6; ++__evmp_i_6) {
    int i = static_cast<int>(__evmp_i_6);
    {
    const double v = data[static_cast<std::size_t>(i)];
    sum += v;
    if (v > largest) largest = v;
    if (v > 1.0) ++hits;
  }
    }
  };
  { ::evmp::fj::Team __evmp_team_6(static_cast<int>(3)); ::evmp::fj::parallel_ranges(__evmp_team_6, __evmp_lo_6, __evmp_hi_6, __evmp_ranges_6, ::evmp::fj::Schedule::kDynamic, static_cast<long>(8)); }
  for (const auto& __evmp_p_6 : __evmp_red_sum_6) { sum = sum + __evmp_p_6.value; }
  for (const auto& __evmp_p_6 : __evmp_red_largest_6) { largest = (largest < __evmp_p_6.value) ? __evmp_p_6.value : largest; }
  for (const auto& __evmp_p_6 : __evmp_red_hits_6) { hits = hits + __evmp_p_6.value; }
#pragma GCC diagnostic pop
}

  int members = 0;
  std::mutex members_mu;
  { /* evmpcc line 71: parallel */
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wshadow"
  auto __evmp_region_7 = [&](int, int) {
    {
    std::scoped_lock lk(members_mu);
    ++members;
  }
  };
  { ::evmp::fj::Team __evmp_team_7(static_cast<int>(4)); __evmp_team_7.parallel(__evmp_region_7); }
#pragma GCC diagnostic pop
}

  return sum + largest + static_cast<double>(hits) +
         1000.0 * static_cast<double>(members);
}

}  // namespace evmp_fixture

# Empty dependencies file for test_core_semantics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_semantics.dir/test_core_semantics.cpp.o"
  "CMakeFiles/test_core_semantics.dir/test_core_semantics.cpp.o.d"
  "test_core_semantics"
  "test_core_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

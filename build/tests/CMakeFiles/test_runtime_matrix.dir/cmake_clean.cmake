file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_matrix.dir/test_runtime_matrix.cpp.o"
  "CMakeFiles/test_runtime_matrix.dir/test_runtime_matrix.cpp.o.d"
  "test_runtime_matrix"
  "test_runtime_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_runtime_matrix.
# This may be replaced when dependencies are built.

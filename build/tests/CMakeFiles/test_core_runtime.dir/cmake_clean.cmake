file(REMOVE_RECURSE
  "CMakeFiles/test_core_runtime.dir/test_core_runtime.cpp.o"
  "CMakeFiles/test_core_runtime.dir/test_core_runtime.cpp.o.d"
  "test_core_runtime"
  "test_core_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_asyncio.
# This may be replaced when dependencies are built.

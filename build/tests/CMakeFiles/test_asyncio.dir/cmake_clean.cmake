file(REMOVE_RECURSE
  "CMakeFiles/test_asyncio.dir/test_asyncio.cpp.o"
  "CMakeFiles/test_asyncio.dir/test_asyncio.cpp.o.d"
  "test_asyncio"
  "test_asyncio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asyncio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_compilerlib.dir/test_compilerlib.cpp.o"
  "CMakeFiles/test_compilerlib.dir/test_compilerlib.cpp.o.d"
  "test_compilerlib"
  "test_compilerlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compilerlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

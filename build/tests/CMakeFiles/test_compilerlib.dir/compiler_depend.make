# Empty compiler generated dependencies file for test_compilerlib.
# This may be replaced when dependencies are built.

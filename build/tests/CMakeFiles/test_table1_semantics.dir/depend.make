# Empty dependencies file for test_table1_semantics.
# This may be replaced when dependencies are built.

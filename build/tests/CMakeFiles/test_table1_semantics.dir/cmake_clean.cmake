file(REMOVE_RECURSE
  "CMakeFiles/test_table1_semantics.dir/test_table1_semantics.cpp.o"
  "CMakeFiles/test_table1_semantics.dir/test_table1_semantics.cpp.o.d"
  "test_table1_semantics"
  "test_table1_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

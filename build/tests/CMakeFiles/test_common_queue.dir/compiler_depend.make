# Empty compiler generated dependencies file for test_common_queue.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_common_queue.dir/test_common_queue.cpp.o"
  "CMakeFiles/test_common_queue.dir/test_common_queue.cpp.o.d"
  "test_common_queue"
  "test_common_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_gui.dir/test_gui.cpp.o"
  "CMakeFiles/test_gui.dir/test_gui.cpp.o.d"
  "test_gui"
  "test_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

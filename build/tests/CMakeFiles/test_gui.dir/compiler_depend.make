# Empty compiler generated dependencies file for test_gui.
# This may be replaced when dependencies are built.

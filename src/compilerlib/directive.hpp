#pragma once
// AST of the extended target directive (paper Figure 5):
//
//   #pragma omp target [clause[,] clause ...]  structured-block
//     target-property-clause:   device(device-number) | virtual(name-tag)
//     scheduling-property-clause: nowait | name_as(name-tag) | await
//     data-handling-clause:     default(shared|none) | firstprivate(list)
//                               | map(to|from|tofrom: list)
//     if-clause:                if(expression)
//
// plus the standalone  #pragma omp wait(name-tag)  join directive.
// The Java spelling  //#omp ...  is accepted as well (§III-B).

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/async_mode.hpp"

namespace evmp::compiler {

/// Parse/translation failure, with 1-based source line attribution.
class TranslateError : public std::runtime_error {
 public:
  TranslateError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// A parsed directive.
struct Directive {
  enum class Kind {
    kTarget,       ///< the extended target directive (the paper's proposal)
    kWait,         ///< standalone wait(name-tag)
    kParallel,     ///< traditional #pragma omp parallel
    kParallelFor,  ///< traditional #pragma omp parallel for
  };

  Kind kind = Kind::kTarget;
  int line = 0;  ///< 1-based line of the directive in the original source

  // target-property-clause (at most one; neither means the default target)
  std::optional<std::string> virtual_name;
  std::optional<int> device_id;

  // scheduling-property-clause
  Async mode = Async::kDefault;
  std::string name_tag;  ///< for name_as(tag)

  // wait directive / clause
  std::string wait_tag;

  // if-clause (raw C++ expression text; empty = none)
  std::string if_condition;

  // data-handling-clause
  bool default_none = false;              ///< default(none) given
  std::vector<std::string> firstprivate;  ///< by-value captures
  std::vector<std::string> map_to;
  std::vector<std::string> map_from;

  // traditional-directive clauses (kParallel / kParallelFor)
  std::string schedule_kind;   ///< "static" | "dynamic" | "guided" ("" = static)
  std::string schedule_chunk;  ///< raw chunk expression ("" = default)
  std::string num_threads;     ///< raw expression ("" = the default team)
  std::vector<std::string> privates;  ///< private(list)
  struct Reduction {
    std::string op;   ///< +, -, *, min, max, &, |, ^, &&, ||
    std::string var;  ///< reduction variable name
  };
  std::vector<Reduction> reductions;  ///< reduction(op: list)

  /// Runtime target name this directive resolves to: the virtual name,
  /// "device:<n>", or empty (default target ICV).
  [[nodiscard]] std::string target_name() const {
    if (virtual_name) return *virtual_name;
    if (device_id) return "device:" + std::to_string(*device_id);
    return {};
  }

  [[nodiscard]] bool is_device() const noexcept {
    return device_id.has_value();
  }
};

/// Parse the directive text that follows the `#pragma omp` / `//#omp`
/// sentinel (e.g. "target virtual(worker) nowait"). Throws TranslateError.
Directive parse_directive(const std::string& text, int line);

}  // namespace evmp::compiler

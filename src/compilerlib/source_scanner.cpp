#include "compilerlib/source_scanner.hpp"

#include <algorithm>
#include <cctype>

#include "compilerlib/directive.hpp"

namespace evmp::compiler {

SourceScanner::SourceScanner(std::string_view source) : src_(source) {
  classes_.assign(src_.size(), CharClass::kCode);
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < src_.size(); ++i) {
    if (src_[i] == '\n') line_starts_.push_back(i + 1);
  }
  classify();
}

void SourceScanner::classify() {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src_.size(); ++i) {
    const char c = src_[i];
    const char next = i + 1 < src_.size() ? src_[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          classes_[i] = CharClass::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          classes_[i] = CharClass::kBlockComment;
        } else if (c == '"' &&
                   (i > 0 && (src_[i - 1] == 'R') &&
                    (i < 2 ||
                     (std::isalnum(static_cast<unsigned char>(src_[i - 2])) ==
                          0 &&
                      src_[i - 2] != '_')))) {
          // Raw string literal R"delim( ... )delim".
          state = State::kRawString;
          classes_[i] = CharClass::kString;
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < src_.size() && src_[j] != '(') {
            raw_delim.push_back(src_[j]);
            ++j;
          }
        } else if (c == '"') {
          state = State::kString;
          classes_[i] = CharClass::kString;
        } else if (c == '\'') {
          // Heuristic: treat as char literal only when it does not look
          // like a digit separator (e.g. 1'000'000).
          const bool digit_sep =
              i > 0 &&
              std::isdigit(static_cast<unsigned char>(src_[i - 1])) != 0 &&
              next != '\0' &&
              std::isdigit(static_cast<unsigned char>(next)) != 0;
          if (!digit_sep) {
            state = State::kChar;
            classes_[i] = CharClass::kString;
          }
        }
        break;
      case State::kLineComment:
        classes_[i] = CharClass::kLineComment;
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlockComment:
        classes_[i] = CharClass::kBlockComment;
        if (c == '/' && i > 0 && src_[i - 1] == '*') state = State::kCode;
        break;
      case State::kString:
        classes_[i] = CharClass::kString;
        if (c == '\\') {
          if (i + 1 < src_.size()) classes_[++i] = CharClass::kString;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        classes_[i] = CharClass::kString;
        if (c == '\\') {
          if (i + 1 < src_.size()) classes_[++i] = CharClass::kString;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        classes_[i] = CharClass::kString;
        if (c == ')') {
          const std::string closer = raw_delim + "\"";
          if (src_.substr(i + 1, closer.size()) == closer) {
            for (std::size_t j = 0; j < closer.size(); ++j) {
              classes_[i + 1 + j] = CharClass::kString;
            }
            i += closer.size();
            state = State::kCode;
          }
        }
        break;
      }
    }
  }
  // Newline terminating a line comment belongs to code again; the loop
  // above already flips state at '\n' but classifies that byte as comment.
  // Queries that need a comment *start* (find_directive) must therefore
  // also accept a position whose previous byte is '\n'.
}

int SourceScanner::line_of(std::size_t pos) const noexcept {
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), pos);
  return static_cast<int>(it - line_starts_.begin());
}

std::optional<SourceScanner::DirectiveMatch> SourceScanner::find_directive(
    std::size_t from) const {
  for (std::size_t i = from; i + 1 < src_.size(); ++i) {
    // Java-style //#omp inside a line comment. The '//' must *start*
    // the comment; note the newline that terminates a line comment is
    // itself classified kLineComment, so a directive on the line right
    // after another //-comment is still a comment start.
    if (src_[i] == '/' && src_[i + 1] == '/' &&
        classes_[i] == CharClass::kLineComment &&
        (i == 0 || src_[i - 1] == '\n' ||
         classes_[i - 1] != CharClass::kLineComment)) {
      std::size_t j = i + 2;
      if (j < src_.size() && src_[j] == '#') ++j;  // //#omp or //omp
      if (src_.substr(j, 3) == "omp" &&
          (j + 3 >= src_.size() ||
           std::isalnum(static_cast<unsigned char>(src_[j + 3])) == 0)) {
        std::size_t end = src_.find('\n', i);
        if (end == std::string_view::npos) end = src_.size();
        DirectiveMatch m;
        m.begin = i;
        m.end = end;
        m.text = std::string(src_.substr(j + 3, end - (j + 3)));
        m.line = line_of(i);
        return m;
      }
    }
    // C/C++ #pragma omp in code.
    if (src_[i] == '#' && classes_[i] == CharClass::kCode &&
        src_.substr(i, 7) == "#pragma") {
      std::size_t j = i + 7;
      while (j < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[j])) != 0 &&
             src_[j] != '\n') {
        ++j;
      }
      if (src_.substr(j, 3) == "omp" &&
          (j + 3 >= src_.size() ||
           std::isalnum(static_cast<unsigned char>(src_[j + 3])) == 0)) {
        // Collect the pragma text, honouring backslash-newline continuation.
        std::string text;
        std::size_t line_start = j + 3;
        std::size_t end;
        for (;;) {
          end = src_.find('\n', line_start);
          if (end == std::string_view::npos) end = src_.size();
          std::size_t content_end = end;
          while (content_end > line_start &&
                 std::isspace(static_cast<unsigned char>(
                     src_[content_end - 1])) != 0) {
            --content_end;
          }
          const bool continued =
              content_end > line_start && src_[content_end - 1] == '\\';
          text.append(src_.substr(line_start, (continued ? content_end - 1
                                                          : content_end) -
                                                  line_start));
          text.push_back(' ');
          if (!continued || end >= src_.size()) break;
          line_start = end + 1;
        }
        while (!text.empty() &&
               std::isspace(static_cast<unsigned char>(text.back())) != 0) {
          text.pop_back();
        }
        DirectiveMatch m;
        m.begin = i;
        m.end = end;
        m.text = std::move(text);
        m.line = line_of(i);
        return m;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> SourceScanner::next_code_char(
    std::size_t from) const noexcept {
  for (std::size_t i = from; i < src_.size(); ++i) {
    if (classes_[i] == CharClass::kCode &&
        std::isspace(static_cast<unsigned char>(src_[i])) == 0) {
      return i;
    }
  }
  return std::nullopt;
}

SourceScanner::Block SourceScanner::extract_block(std::size_t from) const {
  const auto start = next_code_char(from);
  if (!start) {
    throw TranslateError(line_of(from),
                         "directive is not followed by a structured block");
  }
  Block block;
  block.begin = *start;
  if (src_[*start] == '{') {
    block.braced = true;
    int depth = 0;
    for (std::size_t i = *start; i < src_.size(); ++i) {
      if (classes_[i] != CharClass::kCode) continue;
      if (src_[i] == '{') ++depth;
      if (src_[i] == '}') {
        --depth;
        if (depth == 0) {
          block.end = i + 1;
          return block;
        }
      }
    }
    throw TranslateError(line_of(*start),
                         "unbalanced '{' in structured block");
  }
  // Single statement: up to the first ';' at paren/brace depth 0.
  int depth = 0;
  for (std::size_t i = *start; i < src_.size(); ++i) {
    if (classes_[i] != CharClass::kCode) continue;
    const char c = src_[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ';' && depth == 0) {
      block.end = i + 1;
      return block;
    }
  }
  throw TranslateError(line_of(*start),
                       "statement after directive has no terminating ';'");
}

}  // namespace evmp::compiler

#pragma once
// Token-level detection of function definitions and call sites over a
// SourceScanner, shared by the interprocedural analyzer (call graph and
// effect summaries, DESIGN.md §12) and the translator's --annotate-sites
// mode (runtime dispatch-site frames).
//
// This is deliberately not a C++ frontend. A *definition* is an
// identifier token followed by a balanced parameter list and a `{` body
// (allowing const/noexcept/override/final/try suffixes, trailing return
// types, and constructor initializer lists); qualified definitions
// (`Foo::bar`) record the last name component. A *call site* is an
// identifier followed by `(` that is not a definition, not preceded by
// `.`/`->`/`::`/`~` (member, qualified, and destructor calls cannot be
// linked by bare name), and not on a preprocessor line. Lambdas are
// invisible on both sides: they have no name to link.
//
// The scan is resilient rather than precise — macro invocations with a
// trailing block (TEST(...) { ... }) parse as definitions of the macro
// name, which is harmless: nothing resolves a call to them. What matters
// downstream is that every *real* function around a directive is found,
// so effects can be attributed and propagated through calls.

#include <cstddef>
#include <string>
#include <vector>

#include "compilerlib/source_scanner.hpp"

namespace evmp::compiler {

/// One declared parameter of a scanned function definition.
struct FunctionParam {
  std::string name;     ///< empty for unnamed parameters
  bool by_ref = false;  ///< `&`, `*`, or array declarator: the callee can
                        ///< retain access to the caller's object
};

/// One function definition: `name(params) ... { body }`.
struct FunctionDef {
  std::string name;
  int line = 0;               ///< 1-based line of the name token
  std::size_t name_pos = 0;   ///< byte offset of the name token
  std::size_t body_begin = 0; ///< offset of the body '{'
  std::size_t body_end = 0;   ///< one past the body's closing '}'
  std::vector<FunctionParam> params;
};

/// One call site: `callee(args)` at statement level inside some scope.
struct CallSite {
  std::string callee;
  int line = 0;
  std::size_t pos = 0;            ///< byte offset of the callee token
  std::vector<std::string> args;  ///< raw top-level-comma-split argument
                                  ///< texts, whitespace-trimmed
};

/// Every function definition of the buffer, in source order.
[[nodiscard]] std::vector<FunctionDef> scan_functions(
    const SourceScanner& scanner);

/// Every call site in [begin, end), in source order. Definitions inside
/// the range are not reported as calls.
[[nodiscard]] std::vector<CallSite> scan_calls(const SourceScanner& scanner,
                                               std::size_t begin,
                                               std::size_t end);

/// Innermost definition whose body contains `pos`, or -1. Definitions
/// never partially overlap, so "innermost" is the latest-starting span.
[[nodiscard]] int function_at(const std::vector<FunctionDef>& functions,
                              std::size_t pos);

}  // namespace evmp::compiler

#pragma once
// The evmpcc source-to-source translator: the C++ analogue of the Pyjama
// compiler (paper §IV.A). It rewrites every `//#omp` / `#pragma omp`
// extended-target directive into a TargetRegion lambda plus an EventMP
// runtime invocation, preserving all remaining source text byte-for-byte.
//
// Example (the paper's §IV.A listing):
//
//   //#omp target virtual(worker) await
//   {
//     compute_half1();                        // S1
//     //#omp target virtual(edt) nowait
//     { label.set_text("half done"); }        // S2
//     compute_half2();                        // S3
//   }
//
// becomes
//
//   { auto __evmp_region_0 = [&]() {
//       compute_half1();
//       { auto __evmp_region_1 = [&]() { label.set_text("half done"); };
//         ::evmp::rt().invoke_target_block("edt",
//             std::move(__evmp_region_1), ::evmp::Async::kNowait); }
//       compute_half2();
//     };
//     ::evmp::rt().invoke_target_block("worker",
//         std::move(__evmp_region_0), ::evmp::Async::kAwait); }

#include <string>
#include <string_view>

#include "compilerlib/directive.hpp"

namespace evmp::compiler {

/// Translation knobs.
struct TranslateOptions {
  /// Prepend `#include "core/evmp.hpp"` when any directive was rewritten.
  bool add_include = true;
  /// Expression evaluating to the Runtime& the generated code talks to.
  std::string runtime_expr = "::evmp::rt()";
  /// Wrap every generated dispatch/wait in a ScopedDispatchSite naming the
  /// enclosing function (compilerlib function scanner — the same frames
  /// the static analyzer's call paths use), so the EVMP_VERIFY and
  /// EVMP_RACECHECK reports carry the source call chain. Off by default:
  /// the plain translation stays byte-identical.
  bool annotate_sites = false;
};

/// Translation outcome.
struct TranslateResult {
  std::string output;
  int directives_rewritten = 0;
};

/// Translate a whole source buffer. Throws TranslateError on malformed
/// directives or blocks.
TranslateResult translate_source(std::string_view source,
                                 const TranslateOptions& options = {});

/// Generate the replacement code for one directive whose (already
/// recursively translated) block body is `body`. `braced` tells whether the
/// original block was a compound statement. A non-empty `site_frame`
/// (annotate_sites mode) names the enclosing function for the generated
/// ScopedDispatchSite. Exposed for unit testing.
std::string generate_invocation(const Directive& directive,
                                const std::string& body, bool braced,
                                int region_id,
                                const TranslateOptions& options,
                                const std::string& site_frame = {});

/// The canonical-form for-loop header a `parallel for` directive accepts:
///   for (TYPE VAR = INIT; VAR < BOUND; ++VAR)   (also <=, VAR++, VAR += 1)
struct ForHeader {
  std::string type;   ///< loop variable type, e.g. "int", "std::size_t"
  std::string var;    ///< loop variable name
  std::string init;   ///< initial-value expression
  std::string bound;  ///< exclusive upper bound (…+1 already applied for <=)
};

/// Parse a canonical for-header text (the "init; cond; incr" between the
/// parentheses). Throws TranslateError on non-canonical loops.
ForHeader parse_for_header(const std::string& header, int line);

/// Generate the fork-join invocation for `#pragma omp parallel` (body
/// already translated). Exposed for unit testing.
std::string generate_parallel(const Directive& directive,
                              const std::string& body, bool braced,
                              int region_id);

/// Generate the fork-join worksharing loop for `#pragma omp parallel for`.
std::string generate_parallel_for(const Directive& directive,
                                  const ForHeader& header,
                                  const std::string& body, bool braced,
                                  int region_id);

}  // namespace evmp::compiler

#include <cctype>
#include <cstdlib>
#include <utility>

#include "compilerlib/directive.hpp"

namespace evmp::compiler {

namespace {

/// Cursor over the directive text with small lexing helpers.
class Cursor {
 public:
  Cursor(const std::string& text, int line) : text_(text), line_(line) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Read an identifier ([A-Za-z_][A-Za-z0-9_]*); empty if none.
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Read a balanced parenthesised argument "( ... )" and return the inner
  /// text; returns nullopt if the next token is not '('.
  std::optional<std::string> paren_arg() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') return std::nullopt;
    int depth = 0;
    const std::size_t start = pos_ + 1;
    for (std::size_t i = pos_; i < text_.size(); ++i) {
      if (text_[i] == '(') ++depth;
      if (text_[i] == ')') {
        --depth;
        if (depth == 0) {
          std::string inner = text_.substr(start, i - start);
          pos_ = i + 1;
          return inner;
        }
      }
    }
    throw TranslateError(line_, "unbalanced '(' in directive clause");
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw TranslateError(line_, message);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_;
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

const char* kReductionOps[] = {"+", "-", "*", "min", "max",
                               "&", "|", "^", "&&", "||"};

bool is_reduction_op(const std::string& op) {
  for (const char* known : kReductionOps) {
    if (op == known) return true;
  }
  return false;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && (s[i] == '(' || s[i] == '[' || s[i] == '<')) ++depth;
    if (i < s.size() && (s[i] == ')' || s[i] == ']' || s[i] == '>')) --depth;
    if (i == s.size() || (s[i] == ',' && depth == 0)) {
      std::string item = trim(s.substr(start, i - start));
      if (!item.empty()) out.push_back(std::move(item));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

Directive parse_directive(const std::string& text, int line) {
  Directive d;
  d.line = line;
  Cursor cur(text, line);

  const std::string head = cur.ident();
  if (head == "wait") {
    d.kind = Directive::Kind::kWait;
    auto tag = cur.paren_arg();
    if (!tag || trim(*tag).empty()) {
      cur.fail("wait directive requires (name-tag)");
    }
    d.wait_tag = trim(*tag);
    if (!cur.at_end()) cur.fail("unexpected text after wait(name-tag)");
    return d;
  }
  // Traditional OpenMP: parallel / parallel for, with their own clause set.
  std::string pending_clause;
  if (head == "parallel") {
    d.kind = Directive::Kind::kParallel;
    const std::string next = cur.ident();
    if (next == "for") {
      d.kind = Directive::Kind::kParallelFor;
    } else {
      pending_clause = next;  // already-read first clause name (may be "")
    }
    bool have_schedule = false;
    bool have_num_threads = false;
    bool have_if = false;
    bool have_default = false;
    while (true) {
      std::string clause;
      if (!pending_clause.empty()) {
        clause = std::exchange(pending_clause, std::string{});
      } else {
        if (cur.at_end()) break;
        clause = cur.ident();
      }
      if (clause.empty()) {
        if (cur.at_end()) break;
        cur.fail("malformed clause");
      }
      if (clause == "schedule") {
        if (d.kind != Directive::Kind::kParallelFor) {
          cur.fail("schedule clause requires 'parallel for'");
        }
        if (have_schedule) cur.fail("duplicate schedule clause");
        have_schedule = true;
        auto arg = cur.paren_arg();
        if (!arg) cur.fail("schedule clause requires (kind[, chunk])");
        auto parts = split_list(*arg);
        if (parts.empty()) cur.fail("schedule clause is empty");
        d.schedule_kind = parts[0];
        if (d.schedule_kind != "static" && d.schedule_kind != "dynamic" &&
            d.schedule_kind != "guided") {
          cur.fail("unknown schedule kind '" + d.schedule_kind + "'");
        }
        if (parts.size() > 1) d.schedule_chunk = parts[1];
        if (parts.size() > 2) cur.fail("schedule clause takes at most chunk");
      } else if (clause == "num_threads") {
        if (have_num_threads) cur.fail("duplicate num_threads clause");
        have_num_threads = true;
        auto arg = cur.paren_arg();
        if (!arg || trim(*arg).empty()) {
          cur.fail("num_threads clause requires (expression)");
        }
        d.num_threads = trim(*arg);
      } else if (clause == "reduction") {
        if (d.kind != Directive::Kind::kParallelFor) {
          cur.fail("reduction is only supported on 'parallel for'");
        }
        auto arg = cur.paren_arg();
        if (!arg) cur.fail("reduction clause requires (op: list)");
        const auto colon = arg->find(':');
        if (colon == std::string::npos) {
          cur.fail("reduction clause requires 'op: list'");
        }
        const std::string op = trim(arg->substr(0, colon));
        if (!is_reduction_op(op)) {
          cur.fail("unsupported reduction operator '" + op + "'");
        }
        const auto vars = split_list(arg->substr(colon + 1));
        if (vars.empty()) cur.fail("reduction clause lists no variables");
        for (const auto& v : vars) {
          d.reductions.push_back(Directive::Reduction{op, v});
        }
      } else if (clause == "private") {
        auto arg = cur.paren_arg();
        if (!arg) cur.fail("private clause requires (list)");
        for (auto& v : split_list(*arg)) d.privates.push_back(v);
      } else if (clause == "firstprivate") {
        auto arg = cur.paren_arg();
        if (!arg) cur.fail("firstprivate clause requires (list)");
        for (auto& v : split_list(*arg)) d.firstprivate.push_back(v);
      } else if (clause == "if") {
        if (have_if) cur.fail("duplicate if clause");
        have_if = true;
        auto cond = cur.paren_arg();
        if (!cond || trim(*cond).empty()) {
          cur.fail("if clause requires (expression)");
        }
        d.if_condition = trim(*cond);
      } else if (clause == "default") {
        if (have_default) cur.fail("duplicate default clause");
        have_default = true;
        auto arg = cur.paren_arg();
        if (!arg) cur.fail("default clause requires (shared|none)");
        const std::string v = trim(*arg);
        if (v == "none") {
          d.default_none = true;
        } else if (v != "shared") {
          cur.fail("default clause accepts only shared or none");
        }
      } else {
        cur.fail("unknown clause '" + clause + "' on parallel directive");
      }
    }
    return d;
  }

  if (head != "target") {
    cur.fail("expected 'target', 'wait' or 'parallel' directive, got '" +
             head + "'");
  }

  bool have_target_property = false;
  bool have_scheduling = false;
  bool have_if = false;
  bool have_default = false;
  while (!cur.at_end()) {
    const std::string clause = cur.ident();
    if (clause.empty()) cur.fail("malformed clause");

    if (clause == "virtual" || clause == "device") {
      if (have_target_property) {
        cur.fail("duplicate target-property-clause");
      }
      have_target_property = true;
      auto arg = cur.paren_arg();
      if (!arg) cur.fail(clause + " clause requires an argument");
      const std::string value = trim(*arg);
      if (value.empty()) cur.fail(clause + " clause argument is empty");
      if (clause == "virtual") {
        d.virtual_name = value;
      } else {
        char* end = nullptr;
        const long id = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          cur.fail("device clause requires an integer device-number");
        }
        d.device_id = static_cast<int>(id);
      }
    } else if (clause == "nowait" || clause == "await" ||
               clause == "name_as") {
      if (have_scheduling) cur.fail("duplicate scheduling-property-clause");
      have_scheduling = true;
      if (clause == "nowait") {
        d.mode = Async::kNowait;
      } else if (clause == "await") {
        d.mode = Async::kAwait;
      } else {
        auto tag = cur.paren_arg();
        if (!tag || trim(*tag).empty()) {
          cur.fail("name_as clause requires (name-tag)");
        }
        d.mode = Async::kNameAs;
        d.name_tag = trim(*tag);
      }
    } else if (clause == "if") {
      if (have_if) cur.fail("duplicate if clause");
      have_if = true;
      auto cond = cur.paren_arg();
      if (!cond || trim(*cond).empty()) {
        cur.fail("if clause requires (expression)");
      }
      d.if_condition = trim(*cond);
    } else if (clause == "default") {
      if (have_default) cur.fail("duplicate default clause");
      have_default = true;
      auto arg = cur.paren_arg();
      if (!arg) cur.fail("default clause requires (shared|none)");
      const std::string v = trim(*arg);
      if (v == "none") {
        d.default_none = true;
      } else if (v != "shared") {
        cur.fail("default clause accepts only shared or none");
      }
    } else if (clause == "firstprivate") {
      auto arg = cur.paren_arg();
      if (!arg) cur.fail("firstprivate clause requires (list)");
      for (auto& v : split_list(*arg)) d.firstprivate.push_back(v);
    } else if (clause == "map") {
      auto arg = cur.paren_arg();
      if (!arg) cur.fail("map clause requires (to|from|tofrom: list)");
      const std::string inner = trim(*arg);
      const auto colon = inner.find(':');
      if (colon == std::string::npos) {
        cur.fail("map clause requires a to/from/tofrom map-type");
      }
      const std::string type = trim(inner.substr(0, colon));
      auto items = split_list(inner.substr(colon + 1));
      if (type == "to") {
        d.map_to.insert(d.map_to.end(), items.begin(), items.end());
      } else if (type == "from") {
        d.map_from.insert(d.map_from.end(), items.begin(), items.end());
      } else if (type == "tofrom") {
        d.map_to.insert(d.map_to.end(), items.begin(), items.end());
        d.map_from.insert(d.map_from.end(), items.begin(), items.end());
      } else {
        cur.fail("unknown map-type '" + type + "'");
      }
    } else {
      cur.fail("unknown clause '" + clause + "'");
    }
  }
  return d;
}

}  // namespace evmp::compiler

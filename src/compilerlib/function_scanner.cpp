#include "compilerlib/function_scanner.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace evmp::compiler {

namespace {

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Identifiers that introduce control flow, types, or expressions — never
/// a linkable function name on either side of a call edge.
bool is_reserved(std::string_view word) noexcept {
  static constexpr std::array<std::string_view, 44> kWords = {
      "if",       "else",     "for",      "while",     "do",
      "switch",   "case",     "catch",    "try",       "return",
      "sizeof",   "alignof",  "alignas",  "decltype",  "typeid",
      "new",      "delete",   "throw",    "using",     "typedef",
      "template", "typename", "class",    "struct",    "enum",
      "union",    "namespace","operator", "requires",  "noexcept",
      "co_await", "co_return","co_yield", "static_assert",
      "int",      "char",     "bool",     "float",     "double",
      "void",     "long",     "short",    "unsigned",  "auto"};
  return std::find(kWords.begin(), kWords.end(), word) != kWords.end();
}

/// Previous code character at or before `pos - 1`, skipping whitespace and
/// non-code bytes; '\0' at buffer start.
char prev_code_char(const SourceScanner& scanner, std::size_t pos) {
  const auto src = scanner.source();
  while (pos > 0) {
    --pos;
    if (scanner.at(pos) != CharClass::kCode) continue;
    if (std::isspace(static_cast<unsigned char>(src[pos])) != 0) continue;
    return src[pos];
  }
  return '\0';
}

/// True when the identifier at `pos` sits on a preprocessor line (first
/// non-whitespace code byte of the line is '#') — `#define M(x)` and
/// `#pragma omp ... num_threads(4)` are not calls or definitions.
bool on_preprocessor_line(const SourceScanner& scanner, std::size_t pos) {
  const auto src = scanner.source();
  std::size_t i = pos;
  while (i > 0 && src[i - 1] != '\n') --i;
  for (; i < pos; ++i) {
    if (scanner.at(i) != CharClass::kCode) continue;
    const char c = src[i];
    if (c == ' ' || c == '\t') continue;
    return c == '#';
  }
  return false;
}

/// Matching close paren of the '(' at `open`, code-class aware; npos when
/// unbalanced.
std::size_t match_paren(const SourceScanner& scanner, std::size_t open) {
  const auto src = scanner.source();
  int depth = 0;
  for (std::size_t i = open; i < src.size(); ++i) {
    if (scanner.at(i) != CharClass::kCode) continue;
    if (src[i] == '(') ++depth;
    if (src[i] == ')' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

std::size_t match_brace(const SourceScanner& scanner, std::size_t open) {
  const auto src = scanner.source();
  int depth = 0;
  for (std::size_t i = open; i < src.size(); ++i) {
    if (scanner.at(i) != CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}' && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// Split at top-level (bracket-depth-zero) occurrences of `sep`.
std::vector<std::string> split_top_level(std::string_view s, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() &&
        (s[i] == '(' || s[i] == '[' || s[i] == '{' || s[i] == '<')) {
      ++depth;
    }
    if (i < s.size() &&
        (s[i] == ')' || s[i] == ']' || s[i] == '}' || s[i] == '>')) {
      --depth;
    }
    if (i == s.size() || (s[i] == sep && depth <= 0)) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::string trailing_identifier(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  if (begin == end ||
      std::isdigit(static_cast<unsigned char>(text[begin])) != 0) {
    return {};
  }
  return std::string(text.substr(begin, end - begin));
}

FunctionParam parse_param(std::string_view text) {
  FunctionParam param;
  // Strip a default argument; `=` inside nested brackets belongs to it too,
  // so a top-level split is enough.
  const std::vector<std::string> halves = split_top_level(text, '=');
  const std::string decl = trim(halves.front());
  if (decl.empty() || decl == "void" || decl == "...") return param;
  param.by_ref = decl.find('&') != std::string::npos ||
                 decl.find('*') != std::string::npos ||
                 decl.find('[') != std::string::npos;
  std::string name = trailing_identifier(decl);
  // `const T& x` yields "x"; a bare type like `int` yields the type name —
  // reject names that are the whole declarator (unnamed parameter).
  if (name == decl || is_reserved(name)) name.clear();
  param.name = std::move(name);
  return param;
}

/// After the parameter list's ')': skip qualifier tokens and a trailing
/// return type; returns the offset of the body '{', the offset of a ':'
/// starting a constructor initializer list (resolved by the caller), or
/// npos when this is not a definition.
struct SuffixScan {
  std::size_t body = std::string_view::npos;
  bool init_list = false;
};

SuffixScan scan_suffix(const SourceScanner& scanner, std::size_t after) {
  const auto src = scanner.source();
  std::size_t i = after;
  int paren_depth = 0;
  bool in_trailing_return = false;
  while (i < src.size()) {
    if (scanner.at(i) != CharClass::kCode) {
      ++i;
      continue;
    }
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '(') {
      ++paren_depth;
      ++i;
      continue;
    }
    if (c == ')') {
      if (paren_depth == 0) return {};  // enclosing expression, not a suffix
      --paren_depth;
      ++i;
      continue;
    }
    if (paren_depth > 0) {
      ++i;
      continue;
    }
    if (c == '{') return {i, false};
    if (in_trailing_return) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      in_trailing_return = true;
      i += 2;
      continue;
    }
    if (c == ':') {
      if (i + 1 < src.size() && src[i + 1] == ':') return {};
      return {i, true};
    }
    if (is_ident_char(c)) {
      std::size_t e = i;
      while (e < src.size() && scanner.at(e) == CharClass::kCode &&
             is_ident_char(src[e])) {
        ++e;
      }
      const std::string_view word = src.substr(i, e - i);
      if (word == "const" || word == "noexcept" || word == "override" ||
          word == "final" || word == "try" || word == "throw" ||
          word == "requires") {
        i = e;
        continue;
      }
      return {};
    }
    return {};  // ';' (declaration), ',', operator, etc.
  }
  return {};
}

/// From a ':' initializer list, find the body '{'. Member brace-inits
/// (`a_{x}`) directly follow an identifier or '>'; the body brace follows
/// ')' , '}' or the list itself.
std::size_t skip_init_list(const SourceScanner& scanner, std::size_t colon) {
  const auto src = scanner.source();
  std::size_t i = colon + 1;
  int paren_depth = 0;
  char prev = '\0';
  while (i < src.size()) {
    if (scanner.at(i) != CharClass::kCode) {
      ++i;
      continue;
    }
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '(') ++paren_depth;
    if (c == ')') --paren_depth;
    if (c == '{' && paren_depth == 0) {
      if (is_ident_char(prev) || prev == '>') {
        const std::size_t close = match_brace(scanner, i);
        if (close == std::string_view::npos) return std::string_view::npos;
        i = close + 1;
        prev = '}';
        continue;
      }
      return i;
    }
    if (c == ';') return std::string_view::npos;
    prev = c;
    ++i;
  }
  return std::string_view::npos;
}

/// Iterate identifier tokens in code class; calls fn(begin, end) per token.
template <typename Fn>
void for_each_identifier(const SourceScanner& scanner, std::size_t begin,
                         std::size_t end, Fn&& fn) {
  const auto src = scanner.source();
  end = std::min(end, src.size());
  for (std::size_t i = begin; i < end; ++i) {
    if (scanner.at(i) != CharClass::kCode || !is_ident_char(src[i])) continue;
    if (std::isdigit(static_cast<unsigned char>(src[i])) != 0) {
      while (i < end && scanner.at(i) == CharClass::kCode &&
             is_ident_char(src[i])) {
        ++i;
      }
      continue;
    }
    if (i > 0 && scanner.at(i - 1) == CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    std::size_t e = i;
    while (e < end && scanner.at(e) == CharClass::kCode &&
           is_ident_char(src[e])) {
      ++e;
    }
    fn(i, e);
    i = e - 1;
  }
}

/// Shared gate for both scans: identifier at [s,e) immediately applied to a
/// balanced paren group. Returns the close paren, or npos to skip.
std::size_t paren_group_after(const SourceScanner& scanner, std::size_t e) {
  const auto open = scanner.next_code_char(e);
  if (!open || scanner.source()[*open] != '(') return std::string_view::npos;
  return match_paren(scanner, *open);
}

bool has_member_or_qualified_prefix(const SourceScanner& scanner,
                                    std::size_t s) {
  const char prev = prev_code_char(scanner, s);
  if (prev == '.' || prev == '~') return true;
  if (prev == ':') return true;  // `A::f` — qualified
  if (prev == '>') {
    // `p->f` — but `T>` of a template close also ends in '>'; only the
    // arrow form has '-' before it.
    const auto src = scanner.source();
    std::size_t i = s;
    while (i > 0 && (scanner.at(i - 1) != CharClass::kCode ||
                     std::isspace(static_cast<unsigned char>(
                         src[i - 1])) != 0)) {
      --i;
    }
    if (i >= 2 && src[i - 1] == '>' && src[i - 2] == '-') return true;
  }
  return false;
}

}  // namespace

std::vector<FunctionDef> scan_functions(const SourceScanner& scanner) {
  const auto src = scanner.source();
  std::vector<FunctionDef> out;
  for_each_identifier(scanner, 0, src.size(), [&](std::size_t s,
                                                  std::size_t e) {
    const std::string_view word = src.substr(s, e - s);
    if (is_reserved(word)) return;
    if (on_preprocessor_line(scanner, s)) return;
    const char prev = prev_code_char(scanner, s);
    if (prev == '.' || prev == '~') return;
    if (prev == '>' && has_member_or_qualified_prefix(scanner, s)) return;
    const std::size_t close = paren_group_after(scanner, e);
    if (close == std::string_view::npos) return;
    SuffixScan suffix = scan_suffix(scanner, close + 1);
    if (suffix.init_list) {
      suffix.body = skip_init_list(scanner, suffix.body);
      if (suffix.body == std::string_view::npos) return;
    }
    if (suffix.body == std::string_view::npos) return;
    const std::size_t body_close = match_brace(scanner, suffix.body);
    if (body_close == std::string_view::npos) return;

    FunctionDef def;
    def.name = std::string(word);
    def.name_pos = s;
    def.line = scanner.line_of(s);
    def.body_begin = suffix.body;
    def.body_end = body_close + 1;
    const auto open = scanner.next_code_char(e);
    const std::string_view params =
        src.substr(*open + 1, close - *open - 1);
    if (!trim(params).empty()) {
      for (const std::string& p : split_top_level(params, ',')) {
        def.params.push_back(parse_param(p));
      }
    }
    out.push_back(std::move(def));
  });
  return out;
}

std::vector<CallSite> scan_calls(const SourceScanner& scanner,
                                 std::size_t begin, std::size_t end) {
  const auto src = scanner.source();
  std::vector<CallSite> out;
  for_each_identifier(scanner, begin, end, [&](std::size_t s, std::size_t e) {
    const std::string_view word = src.substr(s, e - s);
    if (is_reserved(word)) return;
    if (on_preprocessor_line(scanner, s)) return;
    if (has_member_or_qualified_prefix(scanner, s)) return;
    const std::size_t close = paren_group_after(scanner, e);
    if (close == std::string_view::npos || close >= end) return;
    // A '{' after the argument list means this is a definition (or a
    // macro with a trailing block), not a call.
    const auto after = scanner.next_code_char(close + 1);
    if (after && src[*after] == '{') return;
    // A declaration like `Image img(w, h);` has a type name directly
    // before the "callee"; skip when the previous token is an identifier.
    if (is_ident_char(prev_code_char(scanner, s))) return;

    CallSite call;
    call.callee = std::string(word);
    call.pos = s;
    call.line = scanner.line_of(s);
    const auto open = scanner.next_code_char(e);
    const std::string_view args = src.substr(*open + 1, close - *open - 1);
    if (!trim(args).empty()) {
      for (const std::string& a : split_top_level(args, ',')) {
        call.args.push_back(trim(a));
      }
    }
    out.push_back(std::move(call));
  });
  return out;
}

int function_at(const std::vector<FunctionDef>& functions, std::size_t pos) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(functions.size()); ++i) {
    const FunctionDef& f = functions[static_cast<std::size_t>(i)];
    if (f.body_begin <= pos && pos < f.body_end) {
      if (best < 0 ||
          f.body_begin > functions[static_cast<std::size_t>(best)].body_begin) {
        best = i;
      }
    }
  }
  return best;
}

}  // namespace evmp::compiler

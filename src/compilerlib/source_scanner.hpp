#pragma once
// Lexical scanning of C++ sources for the evmpcc translator: classifies
// every character as code / comment / literal so that directive detection
// and structured-block extraction never misfire inside strings or comments.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace evmp::compiler {

/// Character classification for translation purposes.
enum class CharClass : unsigned char {
  kCode,
  kLineComment,
  kBlockComment,
  kString,   // string/char/raw-string literal contents (incl. quotes)
};

/// Pre-scans a source buffer once; all queries are O(span) afterwards.
class SourceScanner {
 public:
  explicit SourceScanner(std::string_view source);

  [[nodiscard]] std::string_view source() const noexcept { return src_; }
  [[nodiscard]] CharClass at(std::size_t pos) const noexcept {
    return classes_[pos];
  }

  /// True when the byte at `pos` is comment text (line or block). Used
  /// by the analyzer's suppression-comment scan (evmp-lint-ignore).
  [[nodiscard]] bool is_comment(std::size_t pos) const noexcept {
    return classes_[pos] == CharClass::kLineComment ||
           classes_[pos] == CharClass::kBlockComment;
  }

  /// 1-based line number of a byte offset.
  [[nodiscard]] int line_of(std::size_t pos) const noexcept;

  /// A directive occurrence: `//#omp ...` inside a line comment, or a
  /// `#pragma omp ...` line in code.
  struct DirectiveMatch {
    std::size_t begin = 0;  ///< first byte of the directive marker
    std::size_t end = 0;    ///< one past the directive's last byte
    std::string text;       ///< clause text after the omp sentinel
    int line = 0;
  };

  /// Earliest directive at or after `from`; nullopt when none remain.
  [[nodiscard]] std::optional<DirectiveMatch> find_directive(
      std::size_t from) const;

  /// The structured block that associates with a directive: either a
  /// balanced `{...}` compound or a single statement ending at `;`.
  struct Block {
    std::size_t begin = 0;  ///< first byte ('{' or statement start)
    std::size_t end = 0;    ///< one past the closing '}' or ';'
    bool braced = false;
  };

  /// Extract the block starting at the first code character at/after
  /// `from`. Throws TranslateError (via line attribution) on malformed
  /// input (unbalanced braces, missing block).
  [[nodiscard]] Block extract_block(std::size_t from) const;

  /// First position >= from whose class is kCode and is not whitespace.
  [[nodiscard]] std::optional<std::size_t> next_code_char(
      std::size_t from) const noexcept;

 private:
  void classify();

  std::string_view src_;
  std::vector<CharClass> classes_;
  std::vector<std::size_t> line_starts_;
};

}  // namespace evmp::compiler

#include "compilerlib/translator.hpp"

#include <cctype>
#include <sstream>

#include "compilerlib/function_scanner.hpp"
#include "compilerlib/source_scanner.hpp"

namespace evmp::compiler {

namespace {

std::string trim_copy(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string strip_whitespace(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

/// Split at top-level occurrences of `sep` (paren/bracket aware).
std::vector<std::string> split_top_level(const std::string& s, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && (s[i] == '(' || s[i] == '[' || s[i] == '{')) ++depth;
    if (i < s.size() && (s[i] == ')' || s[i] == ']' || s[i] == '}')) --depth;
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

/// Build the lambda capture list from the data-handling clauses:
/// default(shared) -> [&] (+ by-value firstprivates);
/// default(none)   -> only the listed firstprivates.
std::string capture_list(const Directive& d) {
  std::string cap;
  bool first = true;
  if (!d.default_none) {
    cap += "&";
    first = false;
  }
  for (const auto& v : d.firstprivate) {
    if (!first) cap += ", ";
    cap += v;
    first = false;
  }
  return "[" + cap + "]";
}

std::string async_expr(Async mode) {
  switch (mode) {
    case Async::kDefault: return "::evmp::Async::kDefault";
    case Async::kNowait: return "::evmp::Async::kNowait";
    case Async::kNameAs: return "::evmp::Async::kNameAs";
    case Async::kAwait: return "::evmp::Async::kAwait";
  }
  return "::evmp::Async::kDefault";
}

std::string quoted(const std::string& s) { return "\"" + s + "\""; }

/// Locate `for ( header )` starting at the first code char at/after `from`.
/// Returns {header_text, offset one past ')'}.
std::pair<std::string, std::size_t> extract_for_header(
    const SourceScanner& scanner, std::size_t from, int line) {
  const auto src = scanner.source();
  auto start = scanner.next_code_char(from);
  if (!start || src.substr(*start, 3) != "for") {
    throw TranslateError(line,
                         "'parallel for' directive must precede a for loop");
  }
  auto open = scanner.next_code_char(*start + 3);
  if (!open || src[*open] != '(') {
    throw TranslateError(line, "malformed for loop after directive");
  }
  int depth = 0;
  for (std::size_t i = *open; i < src.size(); ++i) {
    if (scanner.at(i) != CharClass::kCode) continue;
    if (src[i] == '(') ++depth;
    if (src[i] == ')') {
      --depth;
      if (depth == 0) {
        return {std::string(src.substr(*open + 1, i - *open - 1)), i + 1};
      }
    }
  }
  throw TranslateError(line, "unbalanced '(' in for loop header");
}

struct Rewriter {
  const TranslateOptions& options;
  int next_region = 0;
  int rewritten = 0;

  /// Frame name for annotate_sites. The top-level transform resolves each
  /// directive's enclosing function; recursive calls (region bodies) pass
  /// the resolved frame down — nested directives share the outer frame
  /// (lambdas have no name to link).
  std::string transform(std::string_view src, int base_line = 1,
                        const std::string& outer_frame = {},
                        bool top_level = true) {
    SourceScanner scanner(src);
    std::vector<FunctionDef> functions;
    if (options.annotate_sites && top_level) {
      functions = scan_functions(scanner);
    }
    const auto frame_of = [&](std::size_t pos) -> std::string {
      if (!options.annotate_sites) return {};
      if (!top_level) return outer_frame;
      const int fn = function_at(functions, pos);
      if (fn < 0) return "<file scope>";
      return functions[static_cast<std::size_t>(fn)].name;
    };
    std::string out;
    out.reserve(src.size() + 256);
    std::size_t pos = 0;
    while (auto m = scanner.find_directive(pos)) {
      out.append(src.substr(pos, m->begin - pos));
      const Directive d =
          parse_directive(m->text, base_line + (m->line - 1));
      const std::string frame = frame_of(m->begin);
      if (d.kind == Directive::Kind::kWait) {
        std::string call =
            options.runtime_expr + ".wait_tag(" + quoted(d.wait_tag) + ");";
        if (options.annotate_sites) {
          call = "{ ::evmp::analysis::ScopedDispatchSite __evmp_site(" +
                 quoted(frame) + "); " + call + " }";
        }
        out += call;
        pos = m->end;
        ++rewritten;
        continue;
      }
      if (d.kind == Directive::Kind::kParallelFor) {
        const auto [header, after_paren] =
            extract_for_header(scanner, m->end, d.line);
        const ForHeader fh = parse_for_header(header, d.line);
        const auto loop_block = scanner.extract_block(after_paren);
        std::string_view loop_body =
            loop_block.braced
                ? src.substr(loop_block.begin + 1,
                             loop_block.end - loop_block.begin - 2)
                : src.substr(loop_block.begin,
                             loop_block.end - loop_block.begin);
        const int region_id = next_region++;
        const std::string body = transform(
            loop_body, base_line + (scanner.line_of(loop_block.begin) - 1),
            frame, false);
        out += generate_parallel_for(d, fh, body, loop_block.braced,
                                     region_id);
        ++rewritten;
        pos = loop_block.end;
        continue;
      }
      if (d.kind == Directive::Kind::kParallel) {
        const auto par_block = scanner.extract_block(m->end);
        std::string_view par_body =
            par_block.braced
                ? src.substr(par_block.begin + 1,
                             par_block.end - par_block.begin - 2)
                : src.substr(par_block.begin,
                             par_block.end - par_block.begin);
        const int region_id = next_region++;
        const std::string body = transform(
            par_body, base_line + (scanner.line_of(par_block.begin) - 1),
            frame, false);
        out += generate_parallel(d, body, par_block.braced, region_id);
        ++rewritten;
        pos = par_block.end;
        continue;
      }
      const auto block = scanner.extract_block(m->end);
      std::string_view body_text;
      if (block.braced) {
        body_text = src.substr(block.begin + 1,
                               block.end - block.begin - 2);  // inner text
      } else {
        body_text = src.substr(block.begin, block.end - block.begin);
      }
      const int region_id = next_region++;
      // Depth-first: inner directives are rewritten inside the region body.
      const int body_line =
          base_line + (scanner.line_of(block.begin) - 1);
      const std::string body = transform(body_text, body_line, frame, false);
      out += generate_invocation(d, body, block.braced, region_id, options,
                                 frame);
      ++rewritten;
      pos = block.end;
    }
    out.append(src.substr(pos));
    return out;
  }
};

}  // namespace

std::string generate_invocation(const Directive& d, const std::string& body,
                                bool braced, int region_id,
                                const TranslateOptions& options,
                                const std::string& site_frame) {
  const std::string region = "__evmp_region_" + std::to_string(region_id);
  std::ostringstream os;
  os << "{ /* evmpcc line " << d.line << " */\n";
  if (!site_frame.empty()) {
    // RAII scope covers the dispatch below, so EVMP_VERIFY / EVMP_RACECHECK
    // stamp this frame into their reported chains.
    os << "  ::evmp::analysis::ScopedDispatchSite __evmp_site_" << region_id
       << "(" << quoted(site_frame) << ");\n";
  }
  os << "  auto " << region << " = " << capture_list(d) << "() {";
  if (braced) {
    os << body;
  } else {
    os << " " << body << " ";
  }
  os << "};\n";

  // map(to:) transfers precede the block (only meaningful for devices;
  // virtual targets share the host data context, §III-B).
  const std::string target = d.target_name();
  if (d.is_device()) {
    for (const auto& v : d.map_to) {
      os << "  ::evmp::device_transfer_to(" << quoted(target) << ", sizeof("
         << v << "));\n";
    }
  }

  std::ostringstream call;
  if (target.empty()) {
    call << options.runtime_expr << ".invoke_default(std::move(" << region
         << "), " << async_expr(d.mode);
    if (d.mode == Async::kNameAs) call << ", " << quoted(d.name_tag);
    call << ")";
  } else {
    call << options.runtime_expr << ".invoke_target_block(" << quoted(target)
         << ", std::move(" << region << "), " << async_expr(d.mode);
    if (d.mode == Async::kNameAs) call << ", " << quoted(d.name_tag);
    call << ")";
  }

  if (d.if_condition.empty()) {
    os << "  " << call.str() << ";\n";
  } else {
    // if(false): plain sequential execution on the encountering thread.
    os << "  if (" << d.if_condition << ") { " << call.str() << "; } else { "
       << region << "(); }\n";
  }

  if (d.is_device()) {
    if (d.mode == Async::kDefault || d.mode == Async::kAwait) {
      for (const auto& v : d.map_from) {
        os << "  ::evmp::device_transfer_from(" << quoted(target)
           << ", sizeof(" << v << "));\n";
      }
    } else if (!d.map_from.empty()) {
      os << "  /* evmpcc: map(from:) ignored for " << to_string(d.mode)
         << " device target (no completion point) */\n";
    }
  }
  os << "}";
  return os.str();
}

ForHeader parse_for_header(const std::string& header, int line) {
  const auto parts = split_top_level(header, ';');
  if (parts.size() != 3) {
    throw TranslateError(line, "for loop header must be 'init; cond; incr'");
  }
  ForHeader h;

  // --- init: TYPE VAR = EXPR ---------------------------------------------
  const std::string init = trim_copy(parts[0]);
  std::size_t eq = std::string::npos;
  int depth = 0;
  for (std::size_t i = 0; i < init.size(); ++i) {
    const char c = init[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth == 0 && c == '=' &&
        (i == 0 || (init[i - 1] != '=' && init[i - 1] != '<' &&
                    init[i - 1] != '>' && init[i - 1] != '!')) &&
        (i + 1 >= init.size() || init[i + 1] != '=')) {
      eq = i;
      break;
    }
  }
  if (eq == std::string::npos) {
    throw TranslateError(line, "for init must be 'TYPE VAR = expression'");
  }
  const std::string lhs = trim_copy(init.substr(0, eq));
  h.init = trim_copy(init.substr(eq + 1));
  // VAR = trailing identifier of the lhs; TYPE = what precedes it.
  std::size_t var_begin = lhs.size();
  while (var_begin > 0 &&
         (std::isalnum(static_cast<unsigned char>(lhs[var_begin - 1])) != 0 ||
          lhs[var_begin - 1] == '_')) {
    --var_begin;
  }
  h.var = lhs.substr(var_begin);
  h.type = trim_copy(lhs.substr(0, var_begin));
  if (h.var.empty() || h.type.empty() ||
      std::isdigit(static_cast<unsigned char>(h.var[0])) != 0) {
    throw TranslateError(line, "for init must declare the loop variable");
  }

  // --- cond: VAR < EXPR or VAR <= EXPR -------------------------------------
  const std::string cond = trim_copy(parts[1]);
  if (cond.rfind(h.var, 0) != 0) {
    throw TranslateError(line, "for condition must test the loop variable");
  }
  std::string rest = trim_copy(cond.substr(h.var.size()));
  bool inclusive = false;
  if (rest.rfind("<=", 0) == 0) {
    inclusive = true;
    rest = trim_copy(rest.substr(2));
  } else if (!rest.empty() && rest[0] == '<' &&
             (rest.size() < 2 || rest[1] != '<')) {
    rest = trim_copy(rest.substr(1));
  } else {
    throw TranslateError(line, "for condition must be '" + h.var +
                                   " < bound' or '" + h.var + " <= bound'");
  }
  if (rest.empty()) {
    throw TranslateError(line, "for condition has no bound expression");
  }
  h.bound = inclusive ? "(" + rest + ") + 1" : rest;

  // --- incr: unit step only -------------------------------------------------
  const std::string incr = strip_whitespace(parts[2]);
  const bool unit_step = incr == "++" + h.var || incr == h.var + "++" ||
                         incr == h.var + "+=1" ||
                         incr == h.var + "=" + h.var + "+1";
  if (!unit_step) {
    throw TranslateError(
        line, "parallel for supports unit-stride loops only (got '" +
                  trim_copy(parts[2]) + "')");
  }
  return h;
}

namespace {

std::string schedule_expr(const Directive& d) {
  if (d.schedule_kind == "dynamic") return "::evmp::fj::Schedule::kDynamic";
  if (d.schedule_kind == "guided") return "::evmp::fj::Schedule::kGuided";
  return "::evmp::fj::Schedule::kStatic";
}

std::string chunk_expr(const Directive& d) {
  if (d.schedule_chunk.empty()) return "0";
  return "static_cast<long>(" + d.schedule_chunk + ")";
}

std::string decayed(const std::string& var) {
  return "std::decay_t<decltype(" + var + ")>";
}

/// firstprivate snapshots taken before the region + per-thread shadow
/// declarations inserted at the top of the region body.
struct DataEnv {
  std::string before;   // outer snapshot declarations
  std::string shadows;  // per-thread shadow declarations
};

DataEnv data_environment(const Directive& d, const std::string& suffix) {
  DataEnv env;
  for (const auto& v : d.firstprivate) {
    const std::string snap = "__evmp_fp_" + v + "_" + suffix;
    env.before += "  auto " + snap + " = " + v + ";\n";
    env.shadows += "    " + decayed(snap) + " " + v + " = " + snap + ";\n";
  }
  for (const auto& v : d.privates) {
    env.shadows += "    " + decayed(v) + " " + v + "{};\n";
  }
  return env;
}

std::string identity_expr(const std::string& op, const std::string& var) {
  const std::string t = decayed(var);
  if (op == "*") return "::evmp::fj::detail::ident_mul<" + t + ">()";
  if (op == "min") return "::evmp::fj::detail::ident_min<" + t + ">()";
  if (op == "max") return "::evmp::fj::detail::ident_max<" + t + ">()";
  if (op == "&") return "::evmp::fj::detail::ident_band<" + t + ">()";
  if (op == "&&") return "::evmp::fj::detail::ident_land<" + t + ">()";
  // +, -, |, ^, ||
  return "::evmp::fj::detail::ident_plus<" + t + ">()";
}

std::string combine_stmt(const std::string& op, const std::string& var,
                         const std::string& partial) {
  if (op == "min") {
    return var + " = (" + partial + " < " + var + ") ? " + partial + " : " +
           var + ";";
  }
  if (op == "max") {
    return var + " = (" + var + " < " + partial + ") ? " + partial + " : " +
           var + ";";
  }
  if (op == "-") return var + " = " + var + " + " + partial + ";";  // OpenMP
  return var + " = " + var + " " + op + " " + partial + ";";
}

std::string wrap_body(const std::string& body, bool braced) {
  return braced ? "{" + body + "}" : "{ " + body + " }";
}

/// num_threads(adaptive): the pool's WidthGovernor picks the width from
/// live load instead of evaluating a user expression (DESIGN.md §11).
bool adaptive_num_threads(const Directive& d) {
  return strip_whitespace(d.num_threads) == "adaptive";
}

std::string lease_call(const Directive& d) {
  if (adaptive_num_threads(d)) {
    return "::evmp::fj::TeamPool::instance().lease_adaptive(0)";
  }
  return "::evmp::fj::TeamPool::instance().lease(static_cast<int>(" +
         d.num_threads + "))";
}

}  // namespace

std::string generate_parallel(const Directive& d, const std::string& body,
                              bool braced, int region_id) {
  const std::string id = std::to_string(region_id);
  const DataEnv env = data_environment(d, id);
  std::ostringstream os;
  os << "{ /* evmpcc line " << d.line << ": parallel */\n";
  // private/firstprivate are implemented by shadowing — silence -Wshadow
  // for the generated region only.
  os << "#pragma GCC diagnostic push\n"
     << "#pragma GCC diagnostic ignored \"-Wshadow\"\n";
  os << env.before;
  os << "  auto __evmp_region_" << id << " = [&](int, int) {\n"
     << env.shadows << "    " << wrap_body(body, braced) << "\n  };\n";
  std::string invoke;
  if (!d.num_threads.empty()) {
    // Lease the region's team from the process-wide pool: a num_threads
    // clause inside an event handler no longer creates helper threads per
    // event (the Figure 9 pathology).
    invoke = "{ auto __evmp_team_" + id + " = " + lease_call(d) +
             "; __evmp_team_" + id + "->parallel(__evmp_region_" + id +
             "); }";
  } else {
    invoke = "::evmp::fj::default_parallel(__evmp_region_" + id + ");";
  }
  if (d.if_condition.empty()) {
    os << "  " << invoke << "\n";
  } else {
    os << "  if (" << d.if_condition << ") { " << invoke
       << " } else { __evmp_region_" << id << "(0, 1); }\n";
  }
  os << "#pragma GCC diagnostic pop\n";
  os << "}";
  return os.str();
}

std::string generate_parallel_for(const Directive& d, const ForHeader& h,
                                  const std::string& body, bool braced,
                                  int region_id) {
  const std::string id = std::to_string(region_id);
  const DataEnv env = data_environment(d, id);
  const std::string lo = "__evmp_lo_" + id;
  const std::string hi = "__evmp_hi_" + id;
  std::ostringstream os;
  os << "{ /* evmpcc line " << d.line << ": parallel for */\n";
  // Reduction/firstprivate shadowing is the translation technique —
  // silence -Wshadow for the generated region only.
  os << "#pragma GCC diagnostic push\n"
     << "#pragma GCC diagnostic ignored \"-Wshadow\"\n";
  os << "  const long " << lo << " = static_cast<long>(" << h.init << ");\n";
  os << "  const long " << hi << " = static_cast<long>(" << h.bound << ");\n";
  os << env.before;

  // Per-iteration body: restores the loop variable's declared type.
  const std::string iter_body = "    " + h.type + " " + h.var +
                                " = static_cast<" + h.type +
                                ">(__evmp_i_" + id + ");\n" + env.shadows +
                                "    " + wrap_body(body, braced) + "\n";

  if (d.reductions.empty()) {
    os << "  auto __evmp_loop_" << id << " = [&](long __evmp_i_" << id
       << ") {\n" << iter_body << "  };\n";
    std::string invoke;
    if (!d.num_threads.empty()) {
      invoke = "{ auto __evmp_team_" + id + " = " + lease_call(d) +
               "; ::evmp::fj::parallel_for(*__evmp_team_" + id + ", " + lo +
               ", " + hi + ", __evmp_loop_" + id + ", " + schedule_expr(d) +
               ", " + chunk_expr(d) + "); }";
    } else {
      invoke = "::evmp::fj::default_parallel_for(" + lo + ", " + hi +
               ", __evmp_loop_" + id + ", " + schedule_expr(d) + ", " +
               chunk_expr(d) + ");";
    }
    if (d.if_condition.empty()) {
      os << "  " << invoke << "\n";
    } else {
      os << "  if (" << d.if_condition << ") { " << invoke
         << " } else { for (long __evmp_i_" << id << " = " << lo
         << "; __evmp_i_" << id << " < " << hi << "; ++__evmp_i_" << id
         << ") __evmp_loop_" << id << "(__evmp_i_" << id << "); }\n";
    }
    os << "#pragma GCC diagnostic pop\n";
    os << "}";
    return os.str();
  }

  // Reductions: per-thread padded partials, combined after the join.
  std::string team_size;
  if (d.num_threads.empty()) {
    team_size = "::evmp::fj::default_team().num_threads()";
  } else if (adaptive_num_threads(d)) {
    // The governor picks the width at lease time, so the team must exist
    // before the partial vectors can be sized.
    os << "  auto __evmp_team_" << id << " = " << lease_call(d) << ";\n";
    team_size = "__evmp_team_" + id + "->num_threads()";
  } else {
    team_size = "static_cast<int>(" + d.num_threads + ")";
  }
  for (const auto& r : d.reductions) {
    const std::string part = "__evmp_red_" + r.var + "_" + id;
    os << "  std::vector<::evmp::fj::detail::Padded<" << decayed(r.var)
       << ">> " << part << "(static_cast<std::size_t>(" << team_size
       << "), ::evmp::fj::detail::Padded<" << decayed(r.var) << ">{"
       << identity_expr(r.op, r.var) << "});\n";
  }
  os << "  auto __evmp_ranges_" << id << " = [&](int __evmp_tid_" << id
     << ", long __evmp_rlo_" << id << ", long __evmp_rhi_" << id << ") {\n";
  for (const auto& r : d.reductions) {
    // Shadow each reduction variable with this thread's partial slot.
    os << "    auto& " << r.var << " = __evmp_red_" << r.var << "_" << id
       << "[static_cast<std::size_t>(__evmp_tid_" << id << ")].value;\n";
  }
  os << "    for (long __evmp_i_" << id << " = __evmp_rlo_" << id
     << "; __evmp_i_" << id << " < __evmp_rhi_" << id << "; ++__evmp_i_"
     << id << ") {\n"
     << iter_body << "    }\n  };\n";
  std::string invoke;
  if (adaptive_num_threads(d)) {
    // Team already leased above (partials are sized from it).
    invoke = "::evmp::fj::parallel_ranges(*__evmp_team_" + id + ", " + lo +
             ", " + hi + ", __evmp_ranges_" + id + ", " + schedule_expr(d) +
             ", " + chunk_expr(d) + ");";
  } else if (!d.num_threads.empty()) {
    invoke = "{ auto __evmp_team_" + id + " = " + lease_call(d) +
             "; ::evmp::fj::parallel_ranges(*__evmp_team_" + id + ", " + lo +
             ", " + hi + ", __evmp_ranges_" + id + ", " + schedule_expr(d) +
             ", " + chunk_expr(d) + "); }";
  } else {
    invoke = "::evmp::fj::default_parallel_ranges(" + lo + ", " + hi +
             ", __evmp_ranges_" + id + ", " + schedule_expr(d) + ", " +
             chunk_expr(d) + ");";
  }
  if (d.if_condition.empty()) {
    os << "  " << invoke << "\n";
  } else {
    os << "  if (" << d.if_condition << ") { " << invoke
       << " } else { __evmp_ranges_" << id << "(0, " << lo << ", " << hi
       << "); }\n";
  }
  for (const auto& r : d.reductions) {
    const std::string part = "__evmp_red_" + r.var + "_" + id;
    os << "  for (const auto& __evmp_p_" << id << " : " << part << ") { "
       << combine_stmt(r.op, r.var, "__evmp_p_" + id + ".value") << " }\n";
  }
  os << "#pragma GCC diagnostic pop\n";
  os << "}";
  return os.str();
}

TranslateResult translate_source(std::string_view source,
                                 const TranslateOptions& options) {
  Rewriter rw{options};
  TranslateResult result;
  result.output = rw.transform(source);
  result.directives_rewritten = rw.rewritten;
  if (result.directives_rewritten > 0 && options.annotate_sites) {
    result.output =
        "#include \"analysis/dispatch_site.hpp\"  // added by evmpcc "
        "--annotate-sites\n" +
        result.output;
  }
  if (result.directives_rewritten > 0 && options.add_include) {
    result.output =
        "#include \"core/evmp.hpp\"  // added by evmpcc\n" + result.output;
  }
  return result;
}

}  // namespace evmp::compiler

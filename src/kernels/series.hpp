#pragma once
// Java Grande "Series": the first N Fourier coefficients of f(x) = (x+1)^x
// on the interval [0, 2], computed by trapezoid-rule numerical integration.
//
// Work unit i computes the coefficient pair (a_i, b_i) — unit 0 computes
// only a_0 — exactly the decomposition the JGF parallel version distributes
// across threads. Every unit is pure and writes only its own array slots.

#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// Fourier coefficient kernel.
class SeriesKernel final : public Kernel {
 public:
  explicit SeriesKernel(SizeClass size);
  /// Number of coefficient pairs to compute (>= 2).
  explicit SeriesKernel(long coefficients);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "series";
  }
  [[nodiscard]] long units() const noexcept override { return n_; }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  /// Cosine coefficients a_i (a_[0] is the constant term a0/2 as in JGF).
  [[nodiscard]] const std::vector<double>& a() const noexcept { return a_; }
  /// Sine coefficients b_i (b_[0] unused, kept 0).
  [[nodiscard]] const std::vector<double>& b() const noexcept { return b_; }

  /// Trapezoid-rule integration of the JGF integrand family over [lo, hi]:
  /// select 0: (x+1)^x; 1: (x+1)^x * cos(omega_n x); 2: (x+1)^x * sin(omega_n x).
  static double trapezoid_integrate(double lo, double hi, int nsteps,
                                    double omega_n, int select) noexcept;

 private:
  long n_;
  std::vector<double> a_;
  std::vector<double> b_;
};

}  // namespace evmp::kernels

#include "kernels/sparsematmult.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace evmp::kernels {

namespace {

struct SizeParams {
  int n;
  int nnz_per_row;
  int iterations;
};

SizeParams params_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return {256, 8, 4};
    case SizeClass::kSmall: return {4096, 16, 8};
    case SizeClass::kMedium: return {16384, 32, 16};
  }
  return {4096, 16, 8};
}

}  // namespace

SparseMatmultKernel::SparseMatmultKernel(SizeClass size)
    : SparseMatmultKernel(params_for(size).n, params_for(size).nnz_per_row,
                          params_for(size).iterations) {}

SparseMatmultKernel::SparseMatmultKernel(int n, int avg_nonzeros_per_row,
                                         int iterations)
    : n_(n < 4 ? 4 : n), avg_nnz_(avg_nonzeros_per_row < 1
                                      ? 1
                                      : avg_nonzeros_per_row),
      iterations_(iterations < 1 ? 1 : iterations) {}

void SparseMatmultKernel::prepare() {
  common::Xoshiro256 rng(0x5Da7ull);
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_idx_.clear();
  values_.clear();
  // Row lengths vary between 1 and 2*avg-1 for genuinely irregular cost.
  for (int row = 0; row < n_; ++row) {
    const auto len = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(2 * avg_nnz_ - 1)));
    for (int k = 0; k < len; ++k) {
      col_idx_.push_back(static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n_))));
      values_.push_back(rng.next_double() * 2.0 - 1.0);
    }
    row_ptr_[static_cast<std::size_t>(row) + 1] =
        static_cast<int>(col_idx_.size());
  }
  x_.assign(static_cast<std::size_t>(n_), 0.0);
  for (auto& v : x_) v = rng.next_double();
  y_.assign(static_cast<std::size_t>(n_), 0.0);
}

double SparseMatmultKernel::dot_row(int row) const noexcept {
  double sum = 0.0;
  const int begin = row_ptr_[static_cast<std::size_t>(row)];
  const int end = row_ptr_[static_cast<std::size_t>(row) + 1];
  for (int k = begin; k < end; ++k) {
    sum += values_[static_cast<std::size_t>(k)] *
           x_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
  }
  return sum;
}

std::uint64_t SparseMatmultKernel::compute_range(long lo, long hi) {
  for (long row = lo; row < hi; ++row) {
    // All iterations for this row, accumulated locally: rows never share
    // output slots, so any schedule produces identical results.
    double acc = 0.0;
    for (int it = 0; it < iterations_; ++it) {
      acc += dot_row(static_cast<int>(row));
    }
    y_[static_cast<std::size_t>(row)] = acc;
  }
  return static_cast<std::uint64_t>(hi - lo);
}

bool SparseMatmultKernel::validate(std::uint64_t combined) const {
  if (combined != static_cast<std::uint64_t>(n_)) return false;
  // Spot-check two rows against a fresh dot product and require finite
  // output everywhere.
  const auto check_row = [&](int row) {
    const double expected = static_cast<double>(iterations_) * dot_row(row);
    return std::fabs(y_[static_cast<std::size_t>(row)] - expected) <
           1e-9 * std::max(1.0, std::fabs(expected));
  };
  if (!check_row(0) || !check_row(n_ / 2)) return false;
  return std::all_of(y_.begin(), y_.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace evmp::kernels

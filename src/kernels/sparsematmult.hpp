#pragma once
// Java Grande "SparseMatmult": repeated sparse matrix-vector products
// y += A*x over a random NxN CSR matrix. Another non-paper extension
// kernel; its irregular per-row cost makes the dynamic/guided schedules
// actually matter, unlike the four regular paper kernels.
//
// Work unit = one matrix row; a unit performs all `iterations`
// accumulations for its row locally, so units are fully independent and
// results are schedule-invariant.

#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// CSR sparse matrix-vector product kernel.
class SparseMatmultKernel final : public Kernel {
 public:
  explicit SparseMatmultKernel(SizeClass size);
  SparseMatmultKernel(int n, int avg_nonzeros_per_row, int iterations);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sparsematmult";
  }
  [[nodiscard]] long units() const noexcept override { return n_; }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  [[nodiscard]] const std::vector<double>& result() const noexcept {
    return y_;
  }
  [[nodiscard]] long nonzeros() const noexcept {
    return static_cast<long>(values_.size());
  }

 private:
  [[nodiscard]] double dot_row(int row) const noexcept;

  int n_;
  int avg_nnz_;
  int iterations_;
  // CSR storage.
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace evmp::kernels

#pragma once
// Computational kernels used as event-handler workloads.
//
// The paper's §V.A benchmarks "adopt a computational kernel selected from
// the Java Grande Benchmark suite ... Crypt, RayTracer, MonteCarlo and
// Series" to simulate time-consuming work inside event handlers. Each
// kernel here is a faithful C++ port, decomposed into `units()` independent
// work units so it can run sequentially or under any fork-join schedule.
//
// Work models (see DESIGN.md §2): this container exposes a single CPU, so a
// kernel can run in
//  * WorkModel::kReal       — pure computation (the paper's setting); or
//  * WorkModel::kSimulated  — the same computation *plus* a calibrated
//    sleep per unit, emulating each unit's duration on a dedicated core.
//    Concurrency structure (queueing, EDT blocking, offloading, parallel
//    section overlap) is preserved; raw CPU contention is not.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "forkjoin/parallel_for.hpp"
#include "forkjoin/team.hpp"

namespace evmp::kernels {

/// How a kernel's work units consume time.
enum class WorkModel { kReal, kSimulated };

/// The simulated machine's core count. Under WorkModel::kSimulated every
/// in-flight work range occupies one virtual core for its modeled duration
/// (a global counting semaphore), so concurrency saturates at this value —
/// exactly how a real K-core host behaves under CPU-bound load. Defaults to
/// 16 (the paper's Xeon for §V.B) or the EVMP_SIM_CORES environment
/// variable; settable at runtime for sweeps.
int simulated_cores() noexcept;
void set_simulated_cores(int cores);

/// Base class for all Java Grande kernel ports.
///
/// Thread-safety contract: after prepare(), compute_range() may be called
/// concurrently on *disjoint* unit ranges; units write only unit-local state.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Kernel identifier: "crypt", "series", "montecarlo", "raytracer".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of independent work units (IDEA blocks, Fourier coefficients,
  /// Monte Carlo paths, scanlines).
  [[nodiscard]] virtual long units() const noexcept = 0;

  /// Allocate and initialise inputs. Must be called once before any run.
  virtual void prepare() = 0;

  /// Process units [lo, hi) (pure computation); returns a partial checksum
  /// combined across ranges by addition.
  virtual std::uint64_t compute_range(long lo, long hi) = 0;

  /// Cheap sanity check on a full run's combined checksum and the kernel's
  /// output state. False means the computation is broken.
  [[nodiscard]] virtual bool validate(std::uint64_t combined) const = 0;

  // --- work model ---------------------------------------------------------
  /// Select the work model; `per_unit` is the simulated duration of one
  /// unit (ignored under kReal).
  void set_work_model(WorkModel model,
                      common::Nanos per_unit = common::Nanos{0}) noexcept {
    model_ = model;
    per_unit_ = per_unit;
  }
  [[nodiscard]] WorkModel work_model() const noexcept { return model_; }
  [[nodiscard]] common::Nanos per_unit() const noexcept { return per_unit_; }

  /// Process a range under the active work model: always runs the real
  /// computation; under kSimulated additionally sleeps out the remainder of
  /// the range's simulated duration (batched per range, so chunked
  /// schedules pay one sleep per chunk).
  std::uint64_t process_range(long lo, long hi);

  /// Full run on the calling thread.
  std::uint64_t run_sequential();

  /// Full run across a fork-join team (the calling thread participates).
  std::uint64_t run_parallel(fj::Team& team,
                             fj::Schedule sched = fj::Schedule::kStatic,
                             long chunk = 0);

  /// Full run across a team of `width` leased from the process-wide
  /// fj::TeamPool — per-event handlers get fork-join parallelism without
  /// creating helper threads per event (the Figure 9 fix).
  std::uint64_t run_parallel_pooled(int width,
                                    fj::Schedule sched = fj::Schedule::kStatic,
                                    long chunk = 0);

  /// Full run across an elastically sized team: the pool's WidthGovernor
  /// grants up to `max_width` threads (<= 0 means "as wide as useful"),
  /// narrowing under concurrent load so simultaneous handlers never
  /// oversubscribe the cores (the Figure 9 level-off fix, DESIGN.md §11).
  std::uint64_t run_parallel_adaptive(
      int max_width = 0, fj::Schedule sched = fj::Schedule::kStatic,
      long chunk = 0);

  /// Parallel run restricted to units [lo, hi) — used by handlers that
  /// interleave GUI progress updates between kernel halves. Virtual so
  /// kernels with cross-unit ordering constraints (e.g. SOR's red/black
  /// phases) can impose phase barriers while reusing the schedules.
  virtual std::uint64_t run_parallel_range(
      fj::Team& team, long lo, long hi,
      fj::Schedule sched = fj::Schedule::kStatic, long chunk = 0);

 private:
  WorkModel model_ = WorkModel::kReal;
  common::Nanos per_unit_{0};
};

/// Size classes loosely following the Java Grande A/B/C convention, scaled
/// so a size-0 run finishes in well under a millisecond (tests) and size-2
/// in tens of milliseconds (benchmarks, real mode).
enum class SizeClass : int { kTiny = 0, kSmall = 1, kMedium = 2 };

/// Factory: construct a kernel by name ("crypt", "series", "montecarlo",
/// "raytracer") at the given size class. Throws std::invalid_argument for
/// unknown names. The kernel is returned un-prepared.
std::unique_ptr<Kernel> make_kernel(std::string_view kernel_name,
                                    SizeClass size = SizeClass::kSmall);

/// The paper's four evaluation kernels, in its order.
const std::vector<std::string>& kernel_names();

/// All kernels the factory accepts: the paper's four plus the "sor" and
/// "sparsematmult" extensions (JGF kernels not used by the paper).
const std::vector<std::string>& extended_kernel_names();

}  // namespace evmp::kernels

#include "kernels/kernel_pool.hpp"

namespace evmp::kernels {

KernelPool::KernelPool(std::function<std::unique_ptr<Kernel>()> factory)
    : factory_(std::move(factory)) {}

KernelPool::KernelPool(std::string kernel_name, SizeClass size,
                       WorkModel model, common::Nanos per_unit)
    : factory_([name = std::move(kernel_name), size, model, per_unit] {
        auto k = make_kernel(name, size);
        k->set_work_model(model, per_unit);
        k->prepare();
        return k;
      }) {}

std::shared_ptr<Kernel> KernelPool::acquire() {
  std::unique_ptr<Kernel> instance;
  {
    std::scoped_lock lk(state_->mu);
    if (!state_->free.empty()) {
      instance = std::move(state_->free.back());
      state_->free.pop_back();
    } else {
      ++state_->created;
    }
  }
  if (!instance) instance = factory_();
  // The deleter co-owns the state, so returning a kernel is safe even if
  // the KernelPool object is already gone.
  return {instance.release(), [state = state_](Kernel* k) {
            std::scoped_lock lk(state->mu);
            state->free.emplace_back(k);
          }};
}

std::size_t KernelPool::created() const {
  std::scoped_lock lk(state_->mu);
  return state_->created;
}

}  // namespace evmp::kernels

#include "kernels/series.hpp"

#include <cmath>

namespace evmp::kernels {

namespace {

constexpr int kIntegrationSteps = 1000;  // as in the JGF benchmark
constexpr double kPi = 3.141592653589793238462643383279;

double the_function(double x, double omega_n, int select) noexcept {
  // f(x) = (x+1)^x, optionally modulated for the cos/sin projections.
  const double base = std::pow(x + 1.0, x);
  switch (select) {
    case 0: return base;
    case 1: return base * std::cos(omega_n * x);
    default: return base * std::sin(omega_n * x);
  }
}

long coefficients_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 8;
    case SizeClass::kSmall: return 64;
    case SizeClass::kMedium: return 256;
  }
  return 64;
}

}  // namespace

SeriesKernel::SeriesKernel(SizeClass size)
    : SeriesKernel(coefficients_for(size)) {}

SeriesKernel::SeriesKernel(long coefficients)
    : n_(coefficients < 2 ? 2 : coefficients) {}

double SeriesKernel::trapezoid_integrate(double lo, double hi, int nsteps,
                                         double omega_n, int select) noexcept {
  const double dx = (hi - lo) / nsteps;
  double x = lo;
  double sum = 0.5 * the_function(x, omega_n, select);
  for (int i = 1; i < nsteps; ++i) {
    x += dx;
    sum += the_function(x, omega_n, select);
  }
  sum += 0.5 * the_function(hi, omega_n, select);
  return sum * dx;
}

void SeriesKernel::prepare() {
  a_.assign(static_cast<std::size_t>(n_), 0.0);
  b_.assign(static_cast<std::size_t>(n_), 0.0);
}

std::uint64_t SeriesKernel::compute_range(long lo, long hi) {
  const double omega = kPi;  // fundamental frequency: 2*pi / period(=2)
  for (long i = lo; i < hi; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (i == 0) {
      a_[0] = trapezoid_integrate(0.0, 2.0, kIntegrationSteps, 0.0, 0) / 2.0;
    } else {
      const double omega_n = omega * static_cast<double>(i);
      a_[idx] =
          trapezoid_integrate(0.0, 2.0, kIntegrationSteps, omega_n, 1);
      b_[idx] =
          trapezoid_integrate(0.0, 2.0, kIntegrationSteps, omega_n, 2);
    }
  }
  return static_cast<std::uint64_t>(hi - lo);
}

bool SeriesKernel::validate(std::uint64_t combined) const {
  // All units processed, and the leading coefficients match the reference
  // values of the 1000-step trapezoid rule for this integrand on [0,2]
  // (a0/2 ≈ 2.881921, a1 ≈ 1.134041, b1 ≈ -1.882082).
  if (combined != static_cast<std::uint64_t>(n_)) return false;
  const bool a0_ok = std::fabs(a_[0] - 2.8819207855) < 1e-6;
  const bool a1_ok = std::fabs(a_[1] - 1.1340408915) < 1e-6;
  const bool b1_ok = std::fabs(b_[1] + 1.8820818874) < 1e-6;
  return a0_ok && a1_ok && b1_ok;
}

}  // namespace evmp::kernels

#include "kernels/crypt.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace evmp::kernels {

namespace {

std::size_t bytes_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 2 * 1024;        // 256 blocks
    case SizeClass::kSmall: return 100 * 1024;     // 12.8k blocks
    case SizeClass::kMedium: return 1000 * 1024;   // 128k blocks
  }
  return 100 * 1024;
}

}  // namespace

CryptKernel::CryptKernel(SizeClass size) : CryptKernel(bytes_for(size)) {}

CryptKernel::CryptKernel(std::size_t data_bytes)
    : bytes_((data_bytes + kBlockBytes - 1) / kBlockBytes * kBlockBytes) {
  blocks_ = static_cast<long>(bytes_ / kBlockBytes);
  units_ = (blocks_ + kBlocksPerUnit - 1) / kBlocksPerUnit;
}

std::uint16_t CryptKernel::mul(std::uint32_t a, std::uint32_t b) noexcept {
  // IDEA multiplication: operands/results live in [1, 2^16], with 0
  // standing in for 2^16; arithmetic is modulo the prime 2^16 + 1.
  if (a == 0) a = 0x10000u;
  if (b == 0) b = 0x10000u;
  const std::uint64_t r = (static_cast<std::uint64_t>(a) * b) % 0x10001u;
  return static_cast<std::uint16_t>(r & 0xffffu);  // 2^16 encodes back to 0
}

std::uint16_t CryptKernel::mul_inv(std::uint16_t x) noexcept {
  // Extended Euclid modulo 2^16+1. 0 encodes 2^16 == -1, self-inverse;
  // 1 is self-inverse.
  if (x <= 1) return x;
  std::int64_t t0 = 0;
  std::int64_t t1 = 1;
  std::int64_t r0 = 0x10001;
  std::int64_t r1 = x;
  while (r1 != 0) {
    const std::int64_t q = r0 / r1;
    std::int64_t tmp = r0 - q * r1;
    r0 = r1;
    r1 = tmp;
    tmp = t0 - q * t1;
    t0 = t1;
    t1 = tmp;
  }
  std::int64_t inv = t0 % 0x10001;
  if (inv < 0) inv += 0x10001;
  return static_cast<std::uint16_t>(inv & 0xffff);  // 2^16 -> 0
}

std::array<std::uint16_t, 52> CryptKernel::encrypt_key(
    const std::array<std::uint16_t, 8>& userkey) noexcept {
  // Standard IDEA schedule: the 128-bit key, rotated left 25 bits between
  // groups of eight subkeys (expressed below via the JGF index recurrence).
  std::array<std::uint16_t, 52> z{};
  for (int i = 0; i < 8; ++i) z[i] = userkey[static_cast<std::size_t>(i)];
  for (int i = 8; i < 52; ++i) {
    const int j = i % 8;
    if (j < 6) {
      z[i] = static_cast<std::uint16_t>(((z[i - 7] >> 9) | (z[i - 6] << 7)) &
                                        0xffff);
    } else if (j == 6) {
      z[i] = static_cast<std::uint16_t>(((z[i - 7] >> 9) | (z[i - 14] << 7)) &
                                        0xffff);
    } else {
      z[i] = static_cast<std::uint16_t>(((z[i - 15] >> 9) | (z[i - 14] << 7)) &
                                        0xffff);
    }
  }
  return z;
}

std::array<std::uint16_t, 52> CryptKernel::decrypt_key(
    const std::array<std::uint16_t, 52>& z) noexcept {
  std::array<std::uint16_t, 52> dk{};
  // Output transform of decryption = inverses of round 1 keys, unswapped.
  dk[48] = mul_inv(z[0]);
  dk[49] = add_inv(z[1]);
  dk[50] = add_inv(z[2]);
  dk[51] = mul_inv(z[3]);
  int j = 47;
  int k = 4;
  for (int round = 0; round < 7; ++round) {
    // MA-layer keys copy straight across (swapped pair order).
    const std::uint16_t t1 = z[k++];
    dk[j--] = z[k++];
    dk[j--] = t1;
    // Middle rounds swap the two addition keys (the round structure swaps
    // x2/x3 between rounds).
    const std::uint16_t m1 = mul_inv(z[k++]);
    const std::uint16_t a1 = add_inv(z[k++]);
    const std::uint16_t a2 = add_inv(z[k++]);
    dk[j--] = mul_inv(z[k++]);
    dk[j--] = a1;
    dk[j--] = a2;
    dk[j--] = m1;
  }
  // First decryption round comes from the encryption output transform,
  // with the addition keys unswapped.
  const std::uint16_t t1 = z[k++];
  dk[j--] = z[k++];
  dk[j--] = t1;
  const std::uint16_t m1 = mul_inv(z[k++]);
  const std::uint16_t a1 = add_inv(z[k++]);
  const std::uint16_t a2 = add_inv(z[k++]);
  dk[j--] = mul_inv(z[k]);
  dk[j--] = a2;
  dk[j--] = a1;
  dk[j] = m1;
  return dk;
}

void CryptKernel::cipher_block(const std::uint8_t* in, std::uint8_t* out,
                               const std::array<std::uint16_t, 52>& key) noexcept {
  auto load16 = [](const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8);
  };
  std::uint32_t x1 = load16(in);
  std::uint32_t x2 = load16(in + 2);
  std::uint32_t x3 = load16(in + 4);
  std::uint32_t x4 = load16(in + 6);
  int ik = 0;
  for (int r = 0; r < 8; ++r) {
    x1 = mul(x1, key[ik++]);
    x2 = (x2 + key[ik++]) & 0xffffu;
    x3 = (x3 + key[ik++]) & 0xffffu;
    x4 = mul(x4, key[ik++]);
    std::uint32_t t2 = x1 ^ x3;
    t2 = mul(t2, key[ik++]);
    std::uint32_t t1 = (t2 + (x2 ^ x4)) & 0xffffu;
    t1 = mul(t1, key[ik++]);
    t2 = (t1 + t2) & 0xffffu;
    x1 ^= t1;
    x4 ^= t2;
    t2 ^= x2;
    x2 = x3 ^ t1;
    x3 = t2;
  }
  // Output transform (note the x2/x3 swap undone by the write order).
  x1 = mul(x1, key[ik++]);
  x3 = (x3 + key[ik++]) & 0xffffu;
  x2 = (x2 + key[ik++]) & 0xffffu;
  x4 = mul(x4, key[ik]);
  auto store16 = [](std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v & 0xff);
    p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  };
  store16(out, x1);
  store16(out + 2, x3);
  store16(out + 4, x2);
  store16(out + 6, x4);
}

void CryptKernel::prepare() {
  common::Xoshiro256 rng(0x1dea'c0de'5eedull);
  plain_.resize(bytes_);
  crypt_.assign(bytes_, 0);
  back_.assign(bytes_, 0);
  for (auto& b : plain_) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  for (auto& k : userkey_) {
    k = static_cast<std::uint16_t>(rng.next_below(0x10000));
  }
  z_ = encrypt_key(userkey_);
  dk_ = decrypt_key(z_);
}

std::uint64_t CryptKernel::compute_range(long lo, long hi) {
  std::uint64_t ok_blocks = 0;
  for (long u = lo; u < hi; ++u) {
    const long first = u * kBlocksPerUnit;
    const long last = std::min(blocks_, first + kBlocksPerUnit);
    for (long b = first; b < last; ++b) {
      const std::size_t off = static_cast<std::size_t>(b) * kBlockBytes;
      cipher_block(plain_.data() + off, crypt_.data() + off, z_);
      cipher_block(crypt_.data() + off, back_.data() + off, dk_);
      ok_blocks += std::equal(plain_.begin() + static_cast<long>(off),
                              plain_.begin() + static_cast<long>(off) +
                                  kBlockBytes,
                              back_.begin() + static_cast<long>(off))
                       ? 1u
                       : 0u;
    }
  }
  return ok_blocks;
}

bool CryptKernel::validate(std::uint64_t combined) const {
  // Every block must decrypt back to its plaintext, and the ciphertext must
  // actually differ from the plaintext (the cipher did something).
  return combined == static_cast<std::uint64_t>(blocks_) && crypt_ != plain_;
}

}  // namespace evmp::kernels

#include "kernels/raytracer.hpp"

#include <algorithm>
#include <cmath>

namespace evmp::kernels {

namespace {

constexpr double kEps = 1e-6;
constexpr int kMaxDepth = 3;
constexpr Vec3 kAmbient{0.08, 0.08, 0.08};
constexpr Vec3 kBackground{0.05, 0.05, 0.10};

std::uint32_t pack_color(const Vec3& c) noexcept {
  auto q = [](double v) {
    return static_cast<std::uint32_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
  };
  return (q(c.x) << 16) | (q(c.y) << 8) | q(c.z);
}

std::pair<int, int> dimensions_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return {32, 32};
    case SizeClass::kSmall: return {64, 64};
    case SizeClass::kMedium: return {150, 150};  // JGF size A
  }
  return {64, 64};
}

}  // namespace

double Vec3::length() const noexcept { return std::sqrt(dot(*this)); }

Vec3 Vec3::normalized() const noexcept {
  const double len = length();
  if (len < kEps) return {0.0, 0.0, 0.0};
  return {x / len, y / len, z / len};
}

double Sphere::intersect(const Vec3& origin, const Vec3& dir) const noexcept {
  // Solve |origin + t*dir - center|^2 = r^2 for the nearest t > eps.
  const Vec3 oc = origin - center;
  const double b = oc.dot(dir);
  const double c = oc.dot(oc) - radius * radius;
  const double disc = b * b - c;
  if (disc < 0.0) return -1.0;
  const double sq = std::sqrt(disc);
  const double t0 = -b - sq;
  if (t0 > kEps) return t0;
  const double t1 = -b + sq;
  if (t1 > kEps) return t1;
  return -1.0;
}

RayTracerKernel::RayTracerKernel(SizeClass size)
    : RayTracerKernel(dimensions_for(size).first,
                      dimensions_for(size).second) {}

RayTracerKernel::RayTracerKernel(int width, int height)
    : width_(width < 1 ? 1 : width), height_(height < 1 ? 1 : height) {}

void RayTracerKernel::prepare() {
  spheres_.clear();
  // 4x4x4 lattice of small coloured spheres (the JGF scene uses 64 spheres).
  for (int ix = 0; ix < 4; ++ix) {
    for (int iy = 0; iy < 4; ++iy) {
      for (int iz = 0; iz < 4; ++iz) {
        Sphere s;
        s.center = Vec3{ix * 1.0 - 1.5, iy * 1.0 - 1.5, iz * 1.0 - 6.0};
        s.radius = 0.35;
        s.color = Vec3{0.25 + 0.25 * ix, 0.25 + 0.25 * iy, 0.25 + 0.25 * iz};
        spheres_.push_back(s);
      }
    }
  }
  // Large floor sphere.
  Sphere floor;
  floor.center = Vec3{0.0, -102.5, -6.0};
  floor.radius = 100.0;
  floor.color = Vec3{0.8, 0.8, 0.8};
  floor.kr = 0.1;
  spheres_.push_back(floor);

  light_pos_ = Vec3{5.0, 8.0, 0.0};
  eye_ = Vec3{0.0, 0.0, 3.0};
  pixels_.assign(static_cast<std::size_t>(width_) *
                     static_cast<std::size_t>(height_),
                 0u);
}

Vec3 RayTracerKernel::trace(const Vec3& origin, const Vec3& dir,
                            int depth) const noexcept {
  // Nearest hit over all spheres (linear scan, as in the JGF original).
  double best_t = -1.0;
  const Sphere* hit = nullptr;
  for (const Sphere& s : spheres_) {
    const double t = s.intersect(origin, dir);
    if (t > 0.0 && (best_t < 0.0 || t < best_t)) {
      best_t = t;
      hit = &s;
    }
  }
  if (hit == nullptr) return kBackground;

  const Vec3 point = origin + dir * best_t;
  const Vec3 normal = (point - hit->center).normalized();
  Vec3 color = kAmbient * hit->color;

  // Shadow ray toward the point light.
  const Vec3 to_light = (light_pos_ - point).normalized();
  const double light_dist = (light_pos_ - point).length();
  bool shadowed = false;
  for (const Sphere& s : spheres_) {
    const double t = s.intersect(point, to_light);
    if (t > 0.0 && t < light_dist) {
      shadowed = true;
      break;
    }
  }
  if (!shadowed) {
    const double diffuse = normal.dot(to_light);
    if (diffuse > 0.0) {
      color = color + hit->color * (hit->kd * diffuse);
      // Phong specular on the reflection of the light direction.
      const Vec3 refl_l = to_light - normal * (2.0 * normal.dot(to_light));
      const double spec = refl_l.dot(dir);
      if (spec > 0.0) {
        color = color + Vec3{1.0, 1.0, 1.0} * (hit->ks *
                                               std::pow(spec, hit->shine));
      }
    }
  }

  // Specular reflection.
  if (depth < kMaxDepth && hit->kr > 0.0) {
    const Vec3 refl_dir =
        (dir - normal * (2.0 * normal.dot(dir))).normalized();
    color = color + trace(point, refl_dir, depth + 1) * hit->kr;
  }
  return color;
}

std::uint32_t RayTracerKernel::render_pixel(int px, int py) const noexcept {
  // Pinhole camera looking down -z; field of view fixed by the image plane.
  const double u =
      (2.0 * (px + 0.5) / width_ - 1.0) * (static_cast<double>(width_) /
                                           height_);
  const double v = 1.0 - 2.0 * (py + 0.5) / height_;
  const Vec3 dir = Vec3{u, v, -2.0}.normalized();
  return pack_color(trace(eye_, dir, 0));
}

std::uint64_t RayTracerKernel::compute_range(long lo, long hi) {
  std::uint64_t checksum = 0;
  for (long y = lo; y < hi; ++y) {
    for (int x = 0; x < width_; ++x) {
      const std::uint32_t rgb = render_pixel(x, static_cast<int>(y));
      pixels_[static_cast<std::size_t>(y) * width_ + x] = rgb;
      checksum += rgb;
    }
  }
  return checksum;
}

bool RayTracerKernel::validate(std::uint64_t combined) const {
  // The render must have produced a non-trivial image: a non-zero checksum
  // and more than one distinct pixel value (lighting actually varies).
  if (combined == 0) return false;
  const std::uint32_t first = pixels_.empty() ? 0u : pixels_.front();
  const bool varied = std::any_of(pixels_.begin(), pixels_.end(),
                                  [&](std::uint32_t p) { return p != first; });
  return varied;
}

}  // namespace evmp::kernels

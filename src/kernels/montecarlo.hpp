#pragma once
// Java Grande "MonteCarlo": Monte Carlo simulation of stock price paths.
//
// The JGF original calibrates a geometric Brownian motion to a historic
// rate file (hitData) and generates thousands of sample time series; that
// data file is not redistributable, so the drift/volatility are fixed
// synthetic constants here (documented in DESIGN.md) — the computational
// shape (per-path Gaussian generation + exp updates) is identical.
//
// Work unit i simulates path i with its own deterministically seeded RNG,
// so results are bit-identical regardless of schedule or thread count.

#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// Geometric-Brownian-motion path simulation kernel.
class MonteCarloKernel final : public Kernel {
 public:
  struct Params {
    double initial_price = 100.0;
    double drift = 0.05;        ///< annual mu
    double volatility = 0.2;    ///< annual sigma
    int steps = 250;            ///< trading days simulated per path
    std::uint64_t seed = 0x4d6f'6e74'6543ull;
  };

  explicit MonteCarloKernel(SizeClass size);
  MonteCarloKernel(long paths, Params params);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "montecarlo";
  }
  [[nodiscard]] long units() const noexcept override { return paths_; }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  /// Final price of each simulated path (after a run).
  [[nodiscard]] const std::vector<double>& final_prices() const noexcept {
    return final_prices_;
  }
  /// Mean final price across all paths (after a run).
  [[nodiscard]] double mean_final_price() const;

 private:
  long paths_;
  Params params_;
  std::vector<double> final_prices_;
};

}  // namespace evmp::kernels

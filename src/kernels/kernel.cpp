#include "kernels/kernel.hpp"

#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/env.hpp"
#include "common/sync.hpp"
#include "forkjoin/team_pool.hpp"
#include "kernels/crypt.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/raytracer.hpp"
#include "kernels/series.hpp"
#include "kernels/sor.hpp"
#include "kernels/sparsematmult.hpp"

namespace evmp::kernels {

namespace {

struct SimMachine {
  std::mutex mu;
  int cores = 16;
  std::unique_ptr<common::Semaphore> slots;
};

SimMachine& sim_machine() {
  static SimMachine machine;
  static std::once_flag init;
  std::call_once(init, [] {
    if (auto v = common::env_long("EVMP_SIM_CORES"); v && *v > 0) {
      machine.cores = static_cast<int>(*v);
    }
    machine.slots = std::make_unique<common::Semaphore>(
        static_cast<std::size_t>(machine.cores));
  });
  return machine;
}

}  // namespace

int simulated_cores() noexcept {
  auto& m = sim_machine();
  std::scoped_lock lk(m.mu);
  return m.cores;
}

void set_simulated_cores(int cores) {
  if (cores < 1) cores = 1;
  auto& m = sim_machine();
  std::scoped_lock lk(m.mu);
  // Swapping the semaphore is only safe while no simulated work is in
  // flight; benches set this once up front.
  m.cores = cores;
  m.slots = std::make_unique<common::Semaphore>(
      static_cast<std::size_t>(cores));
}

std::uint64_t Kernel::process_range(long lo, long hi) {
  if (model_ == WorkModel::kReal) {
    return compute_range(lo, hi);
  }
  // One virtual core hosts this range for its modeled duration; if all
  // cores are busy, the range queues — the saturation behaviour of a real
  // K-core machine under CPU-bound load.
  common::Semaphore* slots = nullptr;
  {
    auto& m = sim_machine();
    std::scoped_lock lk(m.mu);
    slots = m.slots.get();
  }
  const common::SemaphoreGuard core(*slots);
  const auto begin = common::now();
  const std::uint64_t partial = compute_range(lo, hi);
  const auto target = per_unit_ * (hi - lo);
  const auto elapsed = common::now() - begin;
  if (target > elapsed) {
    common::precise_sleep(
        std::chrono::duration_cast<common::Nanos>(target - elapsed));
  }
  return partial;
}

std::uint64_t Kernel::run_sequential() { return process_range(0, units()); }

std::uint64_t Kernel::run_parallel(fj::Team& team, fj::Schedule sched,
                                   long chunk) {
  return run_parallel_range(team, 0, units(), sched, chunk);
}

std::uint64_t Kernel::run_parallel_pooled(int width, fj::Schedule sched,
                                          long chunk) {
  auto team = fj::TeamPool::instance().lease(width);
  return run_parallel(*team, sched, chunk);
}

std::uint64_t Kernel::run_parallel_adaptive(int max_width, fj::Schedule sched,
                                            long chunk) {
  auto team = fj::TeamPool::instance().lease_adaptive(max_width);
  return run_parallel(*team, sched, chunk);
}

std::uint64_t Kernel::run_parallel_range(fj::Team& team, long range_lo,
                                         long range_hi, fj::Schedule sched,
                                         long chunk) {
  std::vector<fj::detail::Padded<std::uint64_t>> partials(
      static_cast<std::size_t>(team.num_threads()),
      fj::detail::Padded<std::uint64_t>{0});
  fj::parallel_ranges(
      team, range_lo, range_hi,
      [&](int tid, long lo, long hi) {
        partials[static_cast<std::size_t>(tid)].value +=
            process_range(lo, hi);
      },
      sched, chunk);
  std::uint64_t combined = 0;
  for (const auto& p : partials) combined += p.value;
  return combined;
}

std::unique_ptr<Kernel> make_kernel(std::string_view kernel_name,
                                    SizeClass size) {
  if (kernel_name == "crypt") return std::make_unique<CryptKernel>(size);
  if (kernel_name == "raytracer") {
    return std::make_unique<RayTracerKernel>(size);
  }
  if (kernel_name == "montecarlo") {
    return std::make_unique<MonteCarloKernel>(size);
  }
  if (kernel_name == "series") return std::make_unique<SeriesKernel>(size);
  if (kernel_name == "sor") return std::make_unique<SorKernel>(size);
  if (kernel_name == "sparsematmult") {
    return std::make_unique<SparseMatmultKernel>(size);
  }
  throw std::invalid_argument("unknown kernel: " + std::string(kernel_name));
}

const std::vector<std::string>& kernel_names() {
  static const std::vector<std::string> names{"crypt", "raytracer",
                                              "montecarlo", "series"};
  return names;
}

const std::vector<std::string>& extended_kernel_names() {
  static const std::vector<std::string> names{
      "crypt", "raytracer", "montecarlo", "series", "sor", "sparsematmult"};
  return names;
}

}  // namespace evmp::kernels

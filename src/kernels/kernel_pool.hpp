#pragma once
// A pool of prepared kernel instances.
//
// Kernel objects hold working buffers, so two in-flight event handlers must
// not run the same instance concurrently. Harnesses lease an instance per
// request and return it on completion; the pool grows on demand (preparing
// a kernel is much more expensive than leasing one).
//
// Lifetime: a lease may legally outlive the KernelPool object — e.g. a
// completion callback holding the last reference can run on a detached
// worker after the benchmark round tore the pool down. The free list is
// therefore shared state co-owned by every outstanding lease; returning a
// kernel to a pool that no longer exists simply parks it on the shared
// list, which is freed when the last lease drops.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// Thread-safe lease pool of identically configured kernels.
class KernelPool {
 public:
  /// Factory form: `factory()` returns a *prepared* kernel.
  explicit KernelPool(std::function<std::unique_ptr<Kernel>()> factory);

  /// Convenience: pool of `make_kernel(kernel_name, size)` instances under
  /// the given work model.
  KernelPool(std::string kernel_name, SizeClass size,
             WorkModel model = WorkModel::kReal,
             common::Nanos per_unit = common::Nanos{0});

  /// A leased kernel; dropping the shared_ptr releases it back here.
  /// Leases remain valid even past the pool's destruction (see above).
  std::shared_ptr<Kernel> acquire();

  /// Instances ever created (growth = peak concurrency reached).
  [[nodiscard]] std::size_t created() const;

 private:
  /// Free list + counters; co-owned by the pool and all live leases.
  struct State {
    std::mutex mu;
    std::vector<std::unique_ptr<Kernel>> free;
    std::size_t created = 0;
  };

  std::function<std::unique_ptr<Kernel>()> factory_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace evmp::kernels

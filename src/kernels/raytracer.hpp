#pragma once
// Java Grande "RayTracer": renders a scene of spheres with Phong shading,
// shadows and specular reflection.
//
// The scene mirrors the JGF one in spirit: a 4x4x4 lattice of coloured
// spheres above a large floor sphere, one point light, recursive
// reflections up to a fixed depth. Work unit y renders scanline y; every
// pixel is computed independently and deterministically, so sequential and
// parallel renders are bit-identical.

#include <cstdint>
#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// Minimal 3-vector for the ray tracer.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  /// Component-wise product (colour modulation).
  constexpr Vec3 operator*(const Vec3& o) const noexcept {
    return {x * o.x, y * o.y, z * o.z};
  }
  [[nodiscard]] constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double length() const noexcept;
  [[nodiscard]] Vec3 normalized() const noexcept;
};

/// Sphere primitive with Phong material.
struct Sphere {
  Vec3 center;
  double radius = 1.0;
  Vec3 color{1.0, 1.0, 1.0};
  double kd = 0.8;     ///< diffuse coefficient
  double ks = 0.3;     ///< specular coefficient
  double shine = 15.0; ///< Phong exponent
  double kr = 0.25;    ///< reflectance

  /// Ray-sphere intersection: smallest t > eps, or a negative value.
  [[nodiscard]] double intersect(const Vec3& origin,
                                 const Vec3& dir) const noexcept;
};

/// Scanline-parallel Whitted-style ray tracing kernel.
class RayTracerKernel final : public Kernel {
 public:
  explicit RayTracerKernel(SizeClass size);
  RayTracerKernel(int width, int height);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "raytracer";
  }
  [[nodiscard]] long units() const noexcept override { return height_; }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  /// Packed 0x00RRGGBB framebuffer (after a run).
  [[nodiscard]] const std::vector<std::uint32_t>& framebuffer() const noexcept {
    return pixels_;
  }

 private:
  [[nodiscard]] Vec3 trace(const Vec3& origin, const Vec3& dir,
                           int depth) const noexcept;
  [[nodiscard]] std::uint32_t render_pixel(int px, int py) const noexcept;

  int width_;
  int height_;
  std::vector<Sphere> spheres_;
  Vec3 light_pos_;
  Vec3 eye_;
  std::vector<std::uint32_t> pixels_;
};

}  // namespace evmp::kernels

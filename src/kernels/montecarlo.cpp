#include "kernels/montecarlo.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace evmp::kernels {

namespace {

long paths_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 64;
    case SizeClass::kSmall: return 1024;
    case SizeClass::kMedium: return 8192;
  }
  return 1024;
}

}  // namespace

MonteCarloKernel::MonteCarloKernel(SizeClass size)
    : MonteCarloKernel(paths_for(size), Params{}) {}

MonteCarloKernel::MonteCarloKernel(long paths, Params params)
    : paths_(paths < 1 ? 1 : paths), params_(params) {}

void MonteCarloKernel::prepare() {
  final_prices_.assign(static_cast<std::size_t>(paths_), 0.0);
}

std::uint64_t MonteCarloKernel::compute_range(long lo, long hi) {
  const double dt = 1.0 / static_cast<double>(params_.steps);
  const double sigma_sqrt_dt = params_.volatility * std::sqrt(dt);
  const double drift_term =
      (params_.drift - 0.5 * params_.volatility * params_.volatility) * dt;
  for (long i = lo; i < hi; ++i) {
    // Per-path generator: seeded by path index, independent of schedule.
    common::Xoshiro256 rng(params_.seed + static_cast<std::uint64_t>(i));
    double log_price = std::log(params_.initial_price);
    for (int s = 0; s < params_.steps; ++s) {
      log_price += drift_term + sigma_sqrt_dt * rng.next_gaussian();
    }
    final_prices_[static_cast<std::size_t>(i)] = std::exp(log_price);
  }
  return static_cast<std::uint64_t>(hi - lo);
}

double MonteCarloKernel::mean_final_price() const {
  double sum = 0.0;
  for (double p : final_prices_) sum += p;
  return final_prices_.empty() ? 0.0
                               : sum / static_cast<double>(final_prices_.size());
}

bool MonteCarloKernel::validate(std::uint64_t combined) const {
  if (combined != static_cast<std::uint64_t>(paths_)) return false;
  // GBM expectation after T=1 year: S0 * exp(mu). The sample mean should
  // land within a generous band (the band is wide because tiny path counts
  // have high variance).
  const double expected = params_.initial_price * std::exp(params_.drift);
  const double mean = mean_final_price();
  return mean > 0.5 * expected && mean < 1.5 * expected;
}

}  // namespace evmp::kernels

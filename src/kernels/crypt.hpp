#pragma once
// Java Grande "Crypt": IDEA encryption/decryption over a byte array.
//
// Each work unit is a slab of 64 independent 8-byte IDEA blocks (ECB), so
// the kernel parallelises across slabs exactly like the JGF original
// parallelises across array sections. A unit encrypts its slab from the
// plaintext into the ciphertext buffer, then decrypts it back, and the
// checksum counts blocks that round-tripped bit-exactly.
//
// Fidelity note: unlike the JGF Java code (which computes x*key % 0x10001
// directly), the multiplication here implements the full IDEA convention
// (operand 0 represents 2^16), making encrypt/decrypt exact inverses for
// every input — validation is exact equality over all blocks.

#include <array>
#include <cstdint>
#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// IDEA encryption round-trip kernel.
class CryptKernel final : public Kernel {
 public:
  static constexpr long kBlockBytes = 8;
  static constexpr long kBlocksPerUnit = 64;

  explicit CryptKernel(SizeClass size);
  /// Exact data size in bytes (rounded up to a whole block).
  explicit CryptKernel(std::size_t data_bytes);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "crypt";
  }
  [[nodiscard]] long units() const noexcept override { return units_; }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  /// Ciphertext buffer (after a run), for cross-run comparisons in tests.
  [[nodiscard]] const std::vector<std::uint8_t>& ciphertext() const noexcept {
    return crypt_;
  }

  // --- exposed IDEA primitives (unit-tested directly) --------------------
  /// IDEA multiplication modulo 2^16+1 with the 0 == 2^16 convention.
  static std::uint16_t mul(std::uint32_t a, std::uint32_t b) noexcept;
  /// Multiplicative inverse modulo 2^16+1 under the same convention.
  static std::uint16_t mul_inv(std::uint16_t x) noexcept;
  /// Additive inverse modulo 2^16.
  static std::uint16_t add_inv(std::uint16_t x) noexcept {
    return static_cast<std::uint16_t>(0x10000u - x);
  }

  /// Expand a 128-bit user key into the 52 encryption subkeys.
  static std::array<std::uint16_t, 52> encrypt_key(
      const std::array<std::uint16_t, 8>& userkey) noexcept;
  /// Derive the 52 decryption subkeys from the encryption subkeys.
  static std::array<std::uint16_t, 52> decrypt_key(
      const std::array<std::uint16_t, 52>& z) noexcept;

  /// Run the IDEA block function on one 8-byte block.
  static void cipher_block(const std::uint8_t* in, std::uint8_t* out,
                           const std::array<std::uint16_t, 52>& key) noexcept;

 private:
  std::size_t bytes_;
  long blocks_ = 0;
  long units_ = 0;
  std::array<std::uint16_t, 8> userkey_{};
  std::array<std::uint16_t, 52> z_{};
  std::array<std::uint16_t, 52> dk_{};
  std::vector<std::uint8_t> plain_;
  std::vector<std::uint8_t> crypt_;
  std::vector<std::uint8_t> back_;
};

}  // namespace evmp::kernels

#include "kernels/sor.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace evmp::kernels {

namespace {

int grid_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 34;      // 32 interior rows
    case SizeClass::kSmall: return 130;
    case SizeClass::kMedium: return 514;
  }
  return 130;
}

int iterations_for(SizeClass size) {
  switch (size) {
    case SizeClass::kTiny: return 4;
    case SizeClass::kSmall: return 10;
    case SizeClass::kMedium: return 20;
  }
  return 10;
}

}  // namespace

SorKernel::SorKernel(SizeClass size)
    : SorKernel(grid_for(size), iterations_for(size)) {}

SorKernel::SorKernel(int n, int iterations)
    : n_(n < 4 ? 4 : n), iterations_(iterations < 1 ? 1 : iterations) {}

void SorKernel::prepare() {
  common::Xoshiro256 rng(0x50edull);
  grid_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
  for (auto& v : grid_) v = rng.next_double();
}

void SorKernel::relax_row(int row, int parity) {
  // Update cells of one colour in an interior row: classic 5-point SOR.
  double* g = grid_.data();
  const int n = n_;
  const int first = 1 + ((row + parity) & 1);
  for (int col = first; col < n - 1; col += 2) {
    const std::size_t idx = static_cast<std::size_t>(row) * n + col;
    g[idx] = omega_ * 0.25 *
                 (g[idx - n] + g[idx + n] + g[idx - 1] + g[idx + 1]) +
             (1.0 - omega_) * g[idx];
  }
}

std::uint64_t SorKernel::compute_range(long lo, long hi) {
  // Unit u: phase = u / rows (a colour of one iteration), row within the
  // phase = u % rows. Correctness requires units to be processed in
  // nondecreasing phase order with no two phases interleaved — guaranteed
  // by run_sequential() and by this kernel's run_parallel_range override
  // (which never lets a range span a phase boundary concurrently).
  const long rows = n_ - 2;
  for (long u = lo; u < hi; ++u) {
    const long phase = u / rows;
    const int row = static_cast<int>(u % rows) + 1;
    const int parity = static_cast<int>(phase & 1);  // red then black
    relax_row(row, parity);
  }
  return static_cast<std::uint64_t>(hi - lo);
}

std::uint64_t SorKernel::run_parallel_range(fj::Team& team, long lo, long hi,
                                            fj::Schedule sched, long chunk) {
  // Execute phase by phase; within a phase all rows are independent
  // (red-black ordering), so any schedule is fine.
  const long rows = n_ - 2;
  std::uint64_t combined = 0;
  long pos = lo;
  while (pos < hi) {
    const long phase_end = std::min(hi, (pos / rows + 1) * rows);
    combined += Kernel::run_parallel_range(team, pos, phase_end, sched, chunk);
    pos = phase_end;
  }
  return combined;
}

double SorKernel::grid_sum() const {
  double sum = 0.0;
  for (double v : grid_) sum += v;
  return sum;
}

bool SorKernel::validate(std::uint64_t combined) const {
  if (combined != static_cast<std::uint64_t>(units())) return false;
  // The relaxation must keep the grid finite and strictly change it from
  // the uniform random start (mean stays in (0,1) for this stencil).
  const double mean = grid_sum() / static_cast<double>(grid_.size());
  return std::isfinite(mean) && mean > 0.0 && mean < 1.0;
}

}  // namespace evmp::kernels

#pragma once
// Java Grande "SOR": successive over-relaxation on an NxN grid using
// red-black ordering, the classic JGF Section 2 kernel. Not used by the
// paper's evaluation (which picks Crypt/RayTracer/MonteCarlo/Series), but
// included so the harness covers a stencil-shaped workload too.
//
// Red-black ordering makes each colour's update embarrassingly parallel:
// a work unit is one row of one colour sweep. Each call to compute_range
// must process units of the *current* sweep; run() drives full iterations.

#include <vector>

#include "kernels/kernel.hpp"

namespace evmp::kernels {

/// Red-black SOR kernel.
///
/// Unit layout: units() == 2 * rows; unit u < rows is row u of the red
/// sweep, unit u >= rows is row (u - rows) of the black sweep. Within one
/// full pass the red units must complete before the black units — which
/// both run_sequential() and run_parallel() (barrier between colours via
/// two parallel loops) guarantee. The checksum folds the grid sum.
class SorKernel final : public Kernel {
 public:
  explicit SorKernel(SizeClass size);
  SorKernel(int n, int iterations);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sor";
  }
  [[nodiscard]] long units() const noexcept override {
    return 2L * (n_ - 2) * iterations_;
  }
  void prepare() override;
  std::uint64_t compute_range(long lo, long hi) override;
  [[nodiscard]] bool validate(std::uint64_t combined) const override;

  /// Phase-aware parallel execution: a range never spans a red/black phase
  /// boundary concurrently (see the unit-layout note above).
  std::uint64_t run_parallel_range(fj::Team& team, long lo, long hi,
                                   fj::Schedule sched = fj::Schedule::kStatic,
                                   long chunk = 0) override;

  /// Final relaxed-grid sum (after a full run), for exactness tests.
  [[nodiscard]] double grid_sum() const;

 private:
  void relax_row(int row, int parity);

  int n_;
  int iterations_;
  double omega_ = 1.25;  // JGF's over-relaxation factor
  std::vector<double> grid_;
};

}  // namespace evmp::kernels

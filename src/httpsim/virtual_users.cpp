#include "httpsim/virtual_users.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"

namespace evmp::http {

HttpLoadResult run_virtual_users(Connector& connector,
                                 const VirtualUserOptions& options) {
  HttpLoadResult result;
  std::mutex result_mu;
  common::LatencyHistogram hist;
  const auto start = common::now();
  common::TimePoint last_response = start;

  {
    std::vector<std::jthread> users;
    users.reserve(static_cast<std::size_t>(options.users));
    for (int u = 0; u < options.users; ++u) {
      users.emplace_back([&, u] {
        common::Xoshiro256 rng(options.seed +
                               static_cast<std::uint64_t>(u) * 0x9e37ull);
        std::vector<std::uint8_t> payload(options.payload_bytes);
        for (auto& b : payload) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        const int burst = options.burst < 1 ? 1 : options.burst;
        for (int r = 0; r < options.requests_per_user;) {
          const int n = std::min(burst, options.requests_per_user - r);
          std::vector<Request> batch;
          batch.reserve(static_cast<std::size_t>(n));
          for (int b = 0; b < n; ++b) {
            Request req;
            req.id = static_cast<std::uint64_t>(u) * 1'000'000u +
                     static_cast<std::uint64_t>(r + b);
            req.user = static_cast<std::uint64_t>(u);
            req.payload = payload;
            req.arrived = common::now();
            batch.push_back(std::move(req));
          }
          r += n;

          const auto sent = batch.front().arrived;

          // Closed loop per burst: block this user until every response of
          // its pipelined burst arrives (n == 1 is the paper's strict
          // one-request-in-flight client).
          common::CountdownLatch done(static_cast<std::size_t>(n));
          std::mutex burst_mu;
          std::uint64_t burst_failed = 0;
          auto on_response = [&](const Response& resp) {
            const auto now_tp = common::now();
            // Wait-free record path: no lock around the histogram.
            hist.record(static_cast<std::uint64_t>(
                std::max<std::int64_t>(1, (now_tp - sent).count())));
            {
              std::scoped_lock lk(burst_mu);
              if (!resp.ok) ++burst_failed;
            }
            {
              std::scoped_lock lk(result_mu);
              ++result.completed;
              result.latency_ms.add(common::to_ms(now_tp - sent));
              if (now_tp > last_response) last_response = now_tp;
            }
            done.count_down();
          };
          if (n == 1) {
            connector.submit(std::move(batch.front()), on_response);
          } else {
            connector.submit_batch(std::move(batch), on_response);
          }
          done.wait();
          if (burst_failed != 0) {
            std::scoped_lock lk(result_mu);
            result.failed += burst_failed;
          }
        }
      });
    }
  }  // join all users

  result.latency = hist.snapshot();
  result.wall_seconds = common::to_sec(last_response - start);
  result.throughput_rps =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace evmp::http

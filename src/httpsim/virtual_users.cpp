#include "httpsim/virtual_users.hpp"

#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"

namespace evmp::http {

HttpLoadResult run_virtual_users(Connector& connector,
                                 const VirtualUserOptions& options) {
  HttpLoadResult result;
  std::mutex result_mu;
  const auto start = common::now();
  common::TimePoint last_response = start;

  {
    std::vector<std::jthread> users;
    users.reserve(static_cast<std::size_t>(options.users));
    for (int u = 0; u < options.users; ++u) {
      users.emplace_back([&, u] {
        common::Xoshiro256 rng(options.seed +
                               static_cast<std::uint64_t>(u) * 0x9e37ull);
        std::vector<std::uint8_t> payload(options.payload_bytes);
        for (auto& b : payload) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        for (int r = 0; r < options.requests_per_user; ++r) {
          Request req;
          req.id = static_cast<std::uint64_t>(u) * 1'000'000u +
                   static_cast<std::uint64_t>(r);
          req.user = static_cast<std::uint64_t>(u);
          req.payload = payload;
          req.arrived = common::now();

          const auto sent = req.arrived;

          // Closed loop: block this user until its response arrives.
          common::CountdownLatch done(1);
          Response response;
          connector.submit(std::move(req), [&](const Response& resp) {
            response = resp;
            done.count_down();
          });
          done.wait();

          const auto now_tp = common::now();
          std::scoped_lock lk(result_mu);
          ++result.completed;
          if (!response.ok) ++result.failed;
          result.latency_ms.add(common::to_ms(now_tp - sent));
          if (now_tp > last_response) last_response = now_tp;
        }
      });
    }
  }  // join all users

  result.wall_seconds = common::to_sec(last_response - start);
  result.throughput_rps =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.completed) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace evmp::http

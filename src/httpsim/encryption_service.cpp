#include "httpsim/encryption_service.hpp"

#include "forkjoin/team.hpp"
#include "kernels/crypt.hpp"

namespace evmp::http {

EncryptionService::EncryptionService(Config cfg)
    : cfg_(cfg),
      pool_(std::make_shared<kernels::KernelPool>(
          [bytes = cfg.payload_bytes, model = cfg.work_model,
           per_unit = cfg.per_unit] {
            auto k = std::make_unique<kernels::CryptKernel>(bytes);
            k->set_work_model(model, per_unit);
            k->prepare();
            return std::unique_ptr<kernels::Kernel>(std::move(k));
          })) {}

Response EncryptionService::serve(const Request& request) {
  auto kernel = pool_->acquire();
  std::uint64_t checksum = 0;
  if (cfg_.parallel_width > 1) {
    if (cfg_.adaptive_width) {
      // The elastic fix: the governor widens this request's team on an
      // idle machine and narrows it when many requests are in flight, so
      // per-request parallelism never oversubscribes the cores.
      checksum = kernel->run_parallel_adaptive(cfg_.parallel_width);
    } else if (cfg_.pooled_team) {
      // The fix: lease a cached team, so helper-thread creation stays
      // flat no matter how many requests arrive.
      checksum = kernel->run_parallel_pooled(cfg_.parallel_width);
    } else {
      // //#omp parallel inside the handler: a fresh team per request,
      // exactly the per-event parallelisation of Figure 9's "+parallel".
      fj::Team team(cfg_.parallel_width);
      checksum = kernel->run_parallel(team);
    }
  } else {
    checksum = kernel->run_sequential();
  }
  // Fold a few payload bytes in so the response depends on the input.
  for (std::size_t i = 0; i < request.payload.size(); i += 4096) {
    checksum = checksum * 1099511628211ull + request.payload[i];
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return Response{request.id, checksum, true};
}

RequestHandler EncryptionService::handler() {
  return [this](const Request& request) { return serve(request); };
}

}  // namespace evmp::http

#include "httpsim/connector.hpp"

#include "core/target.hpp"

namespace evmp::http {

JettyConnector::JettyConnector(int worker_threads, RequestHandler handler)
    : handler_(std::move(handler)),
      pool_("jetty-pool",
            static_cast<std::size_t>(worker_threads < 1 ? 1 : worker_threads)) {}

void JettyConnector::submit(Request request, ResponseCallback on_done) {
  // Thread-per-request from the fixed pool: one thread owns the whole
  // request lifecycle.
  pool_.post([this, req = std::move(request), cb = std::move(on_done)] {
    cb(handler_(req));
  });
}

PyjamaConnector::PyjamaConnector(int worker_threads, RequestHandler handler)
    : handler_(std::move(handler)),
      dispatcher_(std::make_unique<event::EventLoop>("http-dispatcher")) {
  rt_.create_worker("worker", worker_threads < 1 ? 1 : worker_threads);
  rt_.register_edt("edt", *dispatcher_);
  rt_.set_default_target("worker");
  dispatcher_->start();
}

PyjamaConnector::~PyjamaConnector() {
  dispatcher_->wait_until_idle();
  // Drain offloaded handlers before tearing the dispatcher down.
  rt_.clear();
  dispatcher_->stop();
}

std::size_t PyjamaConnector::workers() const noexcept {
  return rt_.has_target("worker") ? rt_.resolve("worker").concurrency() : 0;
}

void PyjamaConnector::submit(Request request, ResponseCallback on_done) {
  // The dispatcher is the server's EDT: it only dequeues the event and
  // offloads the handler, staying free for the next request.
  dispatcher_->post(
      [this, req = std::move(request), cb = std::move(on_done)]() mutable {
        // //#omp target virtual(worker) nowait
        rt_.target("worker").nowait(
            [this, r = std::move(req), done = std::move(cb)] {
              done(handler_(r));
            });
      });
}

}  // namespace evmp::http

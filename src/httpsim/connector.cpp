#include "httpsim/connector.hpp"

#include "core/target.hpp"

namespace evmp::http {

JettyConnector::JettyConnector(int worker_threads, RequestHandler handler)
    : handler_(std::move(handler)),
      pool_("jetty-pool",
            static_cast<std::size_t>(worker_threads < 1 ? 1 : worker_threads)) {}

void JettyConnector::submit(Request request, ResponseCallback on_done) {
  // Thread-per-request from the fixed pool: one thread owns the whole
  // request lifecycle.
  pool_.post([this, req = std::move(request), cb = std::move(on_done)] {
    cb(handler_(req));
  });
}

void JettyConnector::submit_batch(std::vector<Request> requests,
                                  ResponseCallback on_done) {
  std::vector<exec::Task> tasks;
  tasks.reserve(requests.size());
  for (auto& request : requests) {
    tasks.emplace_back([this, req = std::move(request), cb = on_done] {
      cb(handler_(req));
    });
  }
  pool_.post_batch(tasks);
}

PyjamaConnector::PyjamaConnector(int worker_threads, RequestHandler handler)
    : handler_(std::move(handler)),
      dispatcher_(std::make_unique<event::EventLoop>("http-dispatcher")) {
  rt_.create_worker("worker", worker_threads < 1 ? 1 : worker_threads);
  rt_.register_edt("edt", *dispatcher_);
  rt_.set_default_target("worker");
  dispatcher_->start();
}

PyjamaConnector::~PyjamaConnector() {
  dispatcher_->wait_until_idle();
  // Drain offloaded handlers before tearing the dispatcher down.
  rt_.clear();
  dispatcher_->stop();
}

std::size_t PyjamaConnector::workers() const noexcept {
  return rt_.has_target("worker") ? rt_.resolve("worker").concurrency() : 0;
}

void PyjamaConnector::submit(Request request, ResponseCallback on_done) {
  // The dispatcher is the server's EDT: it only dequeues the event and
  // offloads the handler, staying free for the next request.
  dispatcher_->post(
      [this, req = std::move(request), cb = std::move(on_done)]() mutable {
        // //#omp target virtual(worker) nowait
        rt_.target("worker").nowait(
            [this, r = std::move(req), done = std::move(cb)] {
              done(handler_(r));
            });
      });
}

void PyjamaConnector::submit_batch(std::vector<Request> requests,
                                   ResponseCallback on_done) {
  // One dispatcher event per burst; the dispatcher then performs one
  // batched nowait offload for the whole burst, so a client's pipeline
  // costs two lock acquisitions end to end instead of 2·N.
  dispatcher_->post([this, reqs = std::move(requests),
                     cb = std::move(on_done)]() mutable {
    std::vector<exec::Task> blocks;
    blocks.reserve(reqs.size());
    for (auto& req : reqs) {
      blocks.emplace_back([this, r = std::move(req), done = cb] {
        done(handler_(r));
      });
    }
    // //#omp target virtual(worker) nowait  — per burst, not per request
    rt_.target("worker").nowait_batch(std::move(blocks));
  });
}

}  // namespace evmp::http

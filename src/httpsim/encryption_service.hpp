#pragma once
// The application of §V.B: "an HTTP service that provides data encryption
// to web users. Every time a user sends input data with an HTTP request,
// the server performs a calculation and returns the result via the HTTP
// response. The encryption computation can be parallelized by adopting
// traditional OpenMP directives."

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/clock.hpp"
#include "httpsim/request.hpp"
#include "kernels/kernel.hpp"
#include "kernels/kernel_pool.hpp"

namespace evmp::http {

/// IDEA-encryption request handler factory.
///
/// parallel_width == 1 produces a sequential handler; greater widths make
/// every request spawn its own fork-join team of that many threads
/// (reproducing the paper's observation that per-event `omp parallel`
/// "spawns its own set of worker threads" and oversubscribes the system).
class EncryptionService {
 public:
  struct Config {
    std::size_t payload_bytes = 64 * 1024;
    int parallel_width = 1;
    /// With parallel_width > 1: lease the region's team from the
    /// process-wide fj::TeamPool instead of constructing one per request.
    /// Off by default — the fresh-team-per-event pathology IS the Figure 9
    /// reproduction; turning this on is the paper-implied fix (the
    /// "pooled-team" series in results/fig9.csv).
    bool pooled_team = false;
    /// With parallel_width > 1: let the pool's WidthGovernor size each
    /// request's team from live load (parallel_width becomes the upper
    /// hint) — a lone request gets the full width, concurrent requests
    /// get narrower teams instead of oversubscribing the cores. Implies
    /// pooled teams ("pyjama+par(adaptive)" in results/fig9.csv).
    bool adaptive_width = false;
    kernels::WorkModel work_model = kernels::WorkModel::kReal;
    common::Nanos per_unit{0};  ///< simulated duration per crypt unit
  };

  explicit EncryptionService(Config cfg);

  /// A handler bound to this service; callable concurrently.
  [[nodiscard]] RequestHandler handler();

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  Response serve(const Request& request);

  Config cfg_;
  std::shared_ptr<kernels::KernelPool> pool_;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace evmp::http

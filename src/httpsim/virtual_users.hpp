#pragma once
// Closed-loop load: "The load benchmark is set up with 100 virtual users,
// with each user sending a constant number of requests. The throughput
// measures the application's ability to process requests." (§V.B)

#include <cstdint>

#include "common/stats.hpp"
#include "httpsim/connector.hpp"

namespace evmp::http {

/// Result of one closed-loop load run.
struct HttpLoadResult {
  std::uint64_t completed = 0;     ///< responses received
  std::uint64_t failed = 0;        ///< responses with ok == false
  double wall_seconds = 0.0;       ///< first submit .. last response
  double throughput_rps = 0.0;     ///< completed / wall_seconds
  common::PercentileSampler latency_ms;  ///< per-request round trip
  /// Same round trips in the HDR-style log-bucketed histogram (ns):
  /// p50/p99/p999 without storing every sample, mergeable across runs.
  common::HistogramSnapshot latency;
};

/// Closed-loop virtual user swarm.
struct VirtualUserOptions {
  int users = 100;               ///< paper: 100 virtual users
  int requests_per_user = 10;    ///< constant per-user request count
  std::size_t payload_bytes = 4096;
  std::uint64_t seed = 7;
  /// Requests each user pipelines per round trip. 1 reproduces the paper's
  /// strict closed loop (send one, wait for its response). Larger values
  /// model HTTP pipelining/multiplexed clients: the user submits `burst`
  /// requests as one Connector::submit_batch and waits for all responses
  /// of the burst before the next round. requests_per_user still bounds
  /// the per-user total (a final short burst covers the remainder).
  int burst = 1;
};

/// Drive `connector` with `users` concurrent users, each sending
/// `requests_per_user` back-to-back requests (a user waits for its response
/// before sending the next; with options.burst > 1, for the whole pipelined
/// burst). Blocks until every response arrived.
HttpLoadResult run_virtual_users(Connector& connector,
                                 const VirtualUserOptions& options);

}  // namespace evmp::http

#pragma once
// Request/response model for the simulated HTTP encryption service (§V.B).
//
// Substitution note (DESIGN.md §2): the paper's testbed is a real Jetty
// HTTP server on a 16-core Xeon. The transport here is in-process — a
// connector receives Request objects and invokes a completion callback with
// the Response — because the experiment's variable is the *threading
// structure* behind the connector, not TCP. Payloads are still real bytes
// and the handler really encrypts them.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"

namespace evmp::http {

/// An inbound request carrying the data to encrypt.
struct Request {
  std::uint64_t id = 0;
  std::uint64_t user = 0;
  std::vector<std::uint8_t> payload;
  common::TimePoint arrived{};
};

/// The service's reply.
struct Response {
  std::uint64_t id = 0;
  std::uint64_t checksum = 0;      ///< checksum of the encrypted payload
  bool ok = false;
};

/// Application logic: consume a request, produce a response. May run on any
/// connector-managed thread; implementations must be callable concurrently.
using RequestHandler = std::function<Response(const Request&)>;

/// Completion callback invoked exactly once per submitted request.
using ResponseCallback = std::function<void(const Response&)>;

}  // namespace evmp::http

#pragma once
// Server connectors: the two threading architectures compared in Figure 9.
//
//  * JettyConnector — "Jetty's thread-pool framework, which adopts a
//    thread-per-request policy but reuses a fixed number of threads from a
//    thread pool": each accepted request is handled start-to-finish by one
//    pool thread.
//  * PyjamaConnector — a single dispatcher thread (the server's event loop)
//    accepts requests and offloads each handler to a worker virtual target
//    with `target virtual(worker) nowait`, exactly the structure the paper
//    builds with Pyjama's runtime.

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "event/event_loop.hpp"
#include "executor/thread_pool_executor.hpp"
#include "httpsim/request.hpp"

namespace evmp::http {

/// Abstract server front end.
class Connector {
 public:
  virtual ~Connector() = default;

  /// Accept a request; `on_done` fires exactly once when its response is
  /// ready (possibly on a connector thread). Thread-safe.
  virtual void submit(Request request, ResponseCallback on_done) = 0;

  /// Accept a burst of pipelined requests from one client; `on_done` fires
  /// once per request. Connectors that can, admit the whole burst into
  /// their run queue under a single lock (Executor::post_batch); the
  /// default degrades to per-request submit(). Thread-safe.
  virtual void submit_batch(std::vector<Request> requests,
                            ResponseCallback on_done) {
    for (auto& request : requests) {
      submit(std::move(request), on_done);
    }
  }

  /// Connector architecture name for reports.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of worker threads serving requests.
  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
};

/// Fixed-pool thread-per-request connector (the Jetty model).
class JettyConnector final : public Connector {
 public:
  JettyConnector(int worker_threads, RequestHandler handler);

  void submit(Request request, ResponseCallback on_done) override;
  /// One pool-queue lock + one wakeup for the whole burst.
  void submit_batch(std::vector<Request> requests,
                    ResponseCallback on_done) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "jetty";
  }
  [[nodiscard]] std::size_t workers() const noexcept override {
    return pool_.concurrency();
  }

 private:
  RequestHandler handler_;
  exec::ThreadPoolExecutor pool_;
};

/// Dispatcher + virtual-target connector (the Pyjama model). Owns a private
/// Runtime with an EDT-style dispatcher loop and a worker target.
class PyjamaConnector final : public Connector {
 public:
  PyjamaConnector(int worker_threads, RequestHandler handler);
  ~PyjamaConnector() override;

  void submit(Request request, ResponseCallback on_done) override;
  /// One dispatcher event for the whole burst; the dispatcher offloads it
  /// to the worker target as a single nowait batch (one shard lock, one
  /// wakeup) instead of per-request posts.
  void submit_batch(std::vector<Request> requests,
                    ResponseCallback on_done) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "pyjama";
  }
  [[nodiscard]] std::size_t workers() const noexcept override;

  /// Dispatcher-loop statistics (events dispatched, busy time).
  [[nodiscard]] const event::EventLoop& dispatcher() const noexcept {
    return *dispatcher_;
  }
  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }

 private:
  RequestHandler handler_;
  Runtime rt_;
  std::unique_ptr<event::EventLoop> dispatcher_;
};

}  // namespace evmp::http

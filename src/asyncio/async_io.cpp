#include "asyncio/async_io.hpp"

#include <algorithm>
#include <functional>

#include "common/sync.hpp"
#include "common/tracing.hpp"
#include "net/reactor.hpp"

namespace evmp::io {

namespace {

std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 1 : h;  // 0 is the "no content" sentinel
}

}  // namespace

bool AsyncIoService::later_due(const Pending& a, const Pending& b) {
  if (a.due != b.due) return a.due > b.due;
  return a.seq > b.seq;
}

AsyncIoService::AsyncIoService() : AsyncIoService(Config{}) {}

AsyncIoService::AsyncIoService(Config cfg)
    : cfg_(cfg), rng_(cfg.seed), thread_([this] { completion_main(); }) {}

AsyncIoService::~AsyncIoService() { shutdown(); }

common::Nanos AsyncIoService::modeled_duration(const DeviceModel& model,
                                               std::size_t bytes) {
  double secs = common::to_sec(model.base_latency) +
                static_cast<double>(bytes) / model.bytes_per_sec;
  if (model.jitter_fraction > 0.0) {
    // rng_ is guarded by mu_ in submit().
    const double u = rng_.next_double() * 2.0 - 1.0;
    secs *= 1.0 + model.jitter_fraction * u;
  }
  return common::Nanos{static_cast<std::int64_t>(secs * 1e9)};
}

IoOperation AsyncIoService::submit(const DeviceModel& model,
                                   std::size_t bytes,
                                   std::uint64_t content_seed,
                                   exec::Executor* post_to,
                                   exec::Task continuation) {
  IoOperation op;
  exec::CompletionRef state = exec::CompletionState::make();
  op.handle_ = exec::TaskHandle(state);
  {
    std::scoped_lock lk(mu_);
    if (stopping_) {
      state->set_exception(std::make_exception_ptr(
          std::runtime_error("AsyncIoService is shut down")));
      return op;
    }
    Pending p;
    p.due = common::now() + modeled_duration(model, bytes);
    p.seq = seq_++;
    p.state = state;
    p.data = op.data_;
    p.bytes = bytes;
    p.content_seed = content_seed;
    p.post_to = post_to;
    p.continuation = std::move(continuation);
    queue_.push_back(std::move(p));
    std::push_heap(queue_.begin(), queue_.end(), &AsyncIoService::later_due);
    cv_.notify_all();  // under the lock: destruction-safe wakeup
  }
  return op;
}

IoOperation AsyncIoService::read_file(const std::string& name,
                                      std::size_t bytes) {
  return submit(cfg_.disk, bytes, hash_name(name), nullptr, {});
}

IoOperation AsyncIoService::write_file(const std::string& /*name*/,
                                       std::size_t bytes) {
  return submit(cfg_.disk, bytes, 0, nullptr, {});
}

IoOperation AsyncIoService::fetch_url(const std::string& url,
                                      std::size_t bytes) {
  return submit(cfg_.network, bytes, hash_name(url), nullptr, {});
}

IoOperation AsyncIoService::fetch_url_then(const std::string& url,
                                           std::size_t bytes,
                                           exec::Executor& executor,
                                           exec::Task on_complete) {
  return submit(cfg_.network, bytes, hash_name(url), &executor,
                std::move(on_complete));
}

std::size_t AsyncIoService::in_flight() const {
  std::scoped_lock lk(mu_);
  return queue_.size();
}

void AsyncIoService::attach_reactor(net::Reactor& reactor) {
  std::scoped_lock lk(mu_);
  reactor_ = &reactor;
}

void AsyncIoService::ensure_reactor_timer_locked(common::TimePoint due) {
  if (reactor_timer_id_ != 0 && reactor_timer_due_ <= due) return;
  if (reactor_timer_id_ != 0) reactor_->cancel_timer(reactor_timer_id_);
  reactor_timer_due_ = due;
  const auto delay = due - common::now();
  reactor_timer_id_ = reactor_->add_timer(
      std::max(common::Nanos{0},
               std::chrono::duration_cast<common::Nanos>(delay)),
      exec::Task([this] { on_reactor_timer(); }));
}

// Reactor thread: the single wheel timer fired; hand the baton to the
// completion thread, which retires due operations and re-arms as needed.
void AsyncIoService::on_reactor_timer() {
  std::scoped_lock lk(mu_);
  reactor_timer_id_ = 0;
  reactor_timer_due_ = common::TimePoint::max();
  reactor_wakeups_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();
}

void AsyncIoService::shutdown() {
  {
    std::scoped_lock lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::uint64_t timer = 0;
  net::Reactor* reactor = nullptr;
  {
    std::scoped_lock lk(mu_);
    timer = reactor_timer_id_;
    reactor_timer_id_ = 0;
    reactor = reactor_;
  }
  if (reactor != nullptr && reactor->running()) {
    if (timer != 0) reactor->cancel_timer(timer);
    // Drain the posted cancel and any in-flight wake before returning, so
    // no timer callback can outlive this object. Timed: if the reactor
    // stopped between the running() check and the post, the sentinel was
    // dropped and its timers discarded — equally safe, just don't hang.
    common::CountdownLatch drained(1);
    reactor->post(exec::Task([&drained] { drained.count_down(); }));
    (void)drained.wait_for(std::chrono::seconds{2});
  }
  publish_counters();
}

void AsyncIoService::publish_counters(const std::string& prefix) const {
  auto& tracer = common::Tracer::instance();
  tracer.set_counter(prefix + ".ops_pending", in_flight());
  tracer.set_counter(prefix + ".ops_completed",
                     completed_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".bytes_transferred",
                     bytes_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".reactor_wakeups",
                     reactor_wakeups_.load(std::memory_order_relaxed));
}

void AsyncIoService::completion_main() {
  std::unique_lock lk(mu_);
  while (true) {
    if (queue_.empty()) {
      if (stopping_) return;
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const auto due = queue_.front().due;
    if (common::now() < due && !stopping_) {
      if (reactor_ != nullptr && reactor_->running()) {
        // Single-timer path: the reactor's wheel owns the deadline; this
        // thread sleeps untimed until the wake (or a new submission).
        ensure_reactor_timer_locked(due);
        cv_.wait(lk);
      } else {
        cv_.wait_until(lk, due);
      }
      continue;
    }
    std::pop_heap(queue_.begin(), queue_.end(), &AsyncIoService::later_due);
    Pending p = std::move(queue_.back());
    queue_.pop_back();
    lk.unlock();

    // Retire: generate content (reads/fetches), flip the handle, fire the
    // continuation. On shutdown, pending ops still retire (possibly early)
    // so no waiter hangs.
    if (p.content_seed != 0) {
      p.data->resize(p.bytes);
      common::SplitMix64 gen(p.content_seed);
      for (auto& b : *p.data) {
        b = static_cast<std::uint8_t>(gen.next() & 0xff);
      }
    }
    bytes_.fetch_add(p.bytes, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    p.state->set_done();
    if (p.post_to != nullptr && p.continuation) {
      p.post_to->post(std::move(p.continuation));
    }
    lk.lock();
  }
}

}  // namespace evmp::io

#pragma once
// Asynchronous I/O extension.
//
// The paper's conclusion names as future work "integrating non-blocking
// I/O and asynchronous I/O into this model". This module provides that
// integration: an AsyncIoService models a storage device and a network
// (latency + bandwidth), executes operations on a completion thread
// *without occupying any worker thread while an operation is pending*,
// and hands completions back as TaskHandles / executor posts. Combined
// with Runtime::await_handle, an event handler can write
//
//     auto op = io.read_file(file, bytes);          // returns immediately
//     rt.await_handle(op.handle);                   // logical barrier:
//                                                   // EDT pumps other events
//     use(op);                                      // sequential style
//
// which is exactly the directive model's continuation-in-place philosophy
// applied to I/O.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "executor/completion.hpp"
#include "executor/executor.hpp"

namespace evmp::net {
class Reactor;
}  // namespace evmp::net

namespace evmp::io {

/// Latency/bandwidth model of one simulated device (disk or NIC).
struct DeviceModel {
  common::Nanos base_latency{std::chrono::microseconds{100}};
  double bytes_per_sec = 200.0e6;  ///< sustained transfer rate
  double jitter_fraction = 0.0;    ///< +- uniform jitter on the total time
};

/// A pending or completed I/O operation. The payload buffer is owned by
/// the operation and valid once `handle.done()`.
class IoOperation {
 public:
  /// Completion handle; await it, wait on it, or poll done().
  [[nodiscard]] const exec::TaskHandle& handle() const noexcept {
    return handle_;
  }
  /// The transferred bytes (reads: filled by the service).
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return *data_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_->size(); }

 private:
  friend class AsyncIoService;
  exec::TaskHandle handle_;
  std::shared_ptr<std::vector<std::uint8_t>> data_ =
      std::make_shared<std::vector<std::uint8_t>>();
};

/// Simulated asynchronous I/O service. One completion thread retires
/// operations in deadline order; no caller thread blocks while an
/// operation is in flight.
class AsyncIoService {
 public:
  struct Config {
    DeviceModel disk{};
    DeviceModel network{common::Micros{500}, 50.0e6, 0.2};
    std::uint64_t seed = 0xA51Cull;
  };

  AsyncIoService();
  explicit AsyncIoService(Config cfg);
  ~AsyncIoService();
  AsyncIoService(const AsyncIoService&) = delete;
  AsyncIoService& operator=(const AsyncIoService&) = delete;

  /// Asynchronously "read" `bytes` from the named file: the returned
  /// operation completes after the disk model's latency with
  /// deterministic pseudo-content derived from (name, bytes).
  IoOperation read_file(const std::string& name, std::size_t bytes);

  /// Asynchronously "write" `bytes`; completes after the disk model time.
  IoOperation write_file(const std::string& name, std::size_t bytes);

  /// Asynchronously "download" from a URL via the network model.
  IoOperation fetch_url(const std::string& url, std::size_t bytes);

  /// As fetch_url, but additionally run `on_complete` on `executor` when
  /// the transfer finishes — completion-to-executor integration, e.g.
  /// post straight to the "edt" target.
  IoOperation fetch_url_then(const std::string& url, std::size_t bytes,
                             exec::Executor& executor, exec::Task on_complete);

  /// Route completion timing through `reactor`'s timer wheel: the
  /// completion thread stops running its own timed waits and instead
  /// sleeps until a single reactor timer — armed at the earliest pending
  /// deadline, re-armed as earlier operations arrive — wakes it. The
  /// reactor thus becomes the one timing source for both socket timeouts
  /// and asyncio completions. Call once, before submitting operations;
  /// the reactor must not be stopped concurrently with shutdown() (either
  /// order is fine, just not overlapped).
  void attach_reactor(net::Reactor& reactor);

  /// Stop accepting work, retire everything in flight, join. Idempotent.
  void shutdown();

  [[nodiscard]] std::uint64_t operations_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Reactor-timer wakeups delivered to the completion thread.
  [[nodiscard]] std::uint64_t reactor_wakeups() const noexcept {
    return reactor_wakeups_.load(std::memory_order_relaxed);
  }
  /// Operations submitted but not yet retired.
  [[nodiscard]] std::size_t in_flight() const;

  /// Export "<prefix>.ops_pending" / "<prefix>.ops_completed" /
  /// "<prefix>.bytes_transferred" / "<prefix>.reactor_wakeups" through
  /// common::Tracer (also called by shutdown()).
  void publish_counters(const std::string& prefix = "asyncio") const;

 private:
  struct Pending {
    common::TimePoint due;
    std::uint64_t seq = 0;
    exec::CompletionRef state;
    std::shared_ptr<std::vector<std::uint8_t>> data;
    std::size_t bytes = 0;
    std::uint64_t content_seed = 0;  ///< 0 = no content generation (write)
    exec::Executor* post_to = nullptr;
    exec::Task continuation;
  };

  static bool later_due(const Pending& a, const Pending& b);
  IoOperation submit(const DeviceModel& model, std::size_t bytes,
                     std::uint64_t content_seed, exec::Executor* post_to,
                     exec::Task continuation);
  common::Nanos modeled_duration(const DeviceModel& model, std::size_t bytes);
  void completion_main();
  /// mu_ held: make sure one reactor timer covers deadline `due`.
  void ensure_reactor_timer_locked(common::TimePoint due);
  void on_reactor_timer();

  Config cfg_;
  common::Xoshiro256 rng_;  // guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;  // min-heap by (due, seq)
  std::uint64_t seq_ = 0;
  bool stopping_ = false;
  net::Reactor* reactor_ = nullptr;        // set once by attach_reactor
  std::uint64_t reactor_timer_id_ = 0;     // guarded by mu_; 0 = none
  common::TimePoint reactor_timer_due_{};  // guarded by mu_

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> reactor_wakeups_{0};
  std::jthread thread_;
};

}  // namespace evmp::io

#pragma once
// The event-handling approaches compared in the paper's §V.A (Figures 7-8).
//
// Every approach implements the same handler logic (paper Figure 2):
//   S1: first half of the kernel          (background candidate)
//   S2: progress update to the GUI        (EDT-only)
//   S3: second half of the kernel         (background candidate)
//   S4: final GUI update + completion     (EDT-only)
//
// What differs is *how* S1/S3 leave the EDT and how S2/S4 come back:
//   kSequential       — everything inline on the EDT (paper: "sequential")
//   kSwingWorker      — SwingWorker: doInBackground/publish/process/done
//   kExecutorService  — submit to a fixed pool + invoke_later for GUI
//   kThreadPerRequest — a new thread per event (§II.A's traditional model)
//   kPyjama           — EventMP directives (target virtual worker/edt)
//   kSyncParallel     — kernel parallelised with fork-join, EDT is master
//                       and stays trapped in the region ("synchronous
//                       parallel ... the EDT still does part of the
//                       computing job")
//   kAsyncParallel    — Pyjama offload + fork-join inside the target block
//                       ("asynchronous parallel")

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/executor_service.hpp"
#include "baselines/thread_per_request.hpp"
#include "kernels/kernel_pool.hpp"
#include "core/runtime.hpp"
#include "event/gui.hpp"
#include "event/load.hpp"
#include "forkjoin/team.hpp"

namespace evmp::baselines {

enum class Approach {
  kSequential,
  kSwingWorker,
  kExecutorService,
  kThreadPerRequest,
  kPyjama,
  kSyncParallel,
  kAsyncParallel,
};

/// Display name used by benchmarks ("sequential", "swingworker", ...).
std::string_view to_string(Approach a) noexcept;

/// Parse a display name; nullopt for unknown strings.
std::optional<Approach> parse_approach(std::string_view name) noexcept;

/// All approaches in report order.
const std::vector<Approach>& all_approaches();

/// Shared environment for one benchmark configuration. The referenced
/// objects must outlive all in-flight handlers.
struct GuiBenchEnv {
  event::EventLoop& edt;            ///< the EDT (registered as "edt" in rt)
  Runtime& rt;                      ///< runtime with "worker"/"edt" targets
  event::Label& status;             ///< S4 target widget
  event::ProgressBar& progress;     ///< S2 target widget
  kernels::KernelPool& kernels;     ///< per-request kernel instances

  ExecutorService* executor_service = nullptr;    ///< kExecutorService only
  ThreadPerRequest* thread_per_request = nullptr; ///< kThreadPerRequest only
  fj::Team* sync_team = nullptr;                  ///< kSyncParallel only

  /// Team width for the parallel variants (paper: EDT + 3 workers).
  int parallel_width = 4;

  /// Checksum sink: keeps kernel results observable.
  std::atomic<std::uint64_t>* sink = nullptr;
};

/// Handle one event under the given approach. Must be called on the EDT
/// (it is the body of the button-click callback). `token.complete()` fires
/// when the request's S4 ran — possibly asynchronously, after this returns.
void handle_event(Approach approach, GuiBenchEnv& env, std::size_t index,
                  const event::CompletionToken& token);

}  // namespace evmp::baselines

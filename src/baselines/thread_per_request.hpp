#pragma once
// The "most traditional approach ... thread-per-request" of §II.A: every
// offloaded handler gets a newly spawned thread. Kept as a baseline to
// demonstrate the scalability drawback the paper describes (thread creation
// and scheduling overhead under load).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "executor/executor.hpp"

namespace evmp::baselines {

/// Spawns one thread per launched task. Threads are reaped opportunistically
/// and all joined on destruction (no detach — Core Guidelines CP.26).
class ThreadPerRequest {
 public:
  ThreadPerRequest() = default;
  ~ThreadPerRequest();
  ThreadPerRequest(const ThreadPerRequest&) = delete;
  ThreadPerRequest& operator=(const ThreadPerRequest&) = delete;

  /// Run `task` on a brand new thread.
  void launch(exec::Task task);

  /// Join threads whose task already finished; returns how many were reaped.
  std::size_t reap();

  /// Block until every launched task finished and its thread was joined.
  void join_all();

  [[nodiscard]] std::uint64_t launched() const noexcept {
    return launched_.load(std::memory_order_relaxed);
  }
  /// Highest number of simultaneously live threads observed.
  [[nodiscard]] std::uint64_t peak_live() const noexcept {
    return peak_live_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<std::atomic<bool>> finished;
    std::jthread thread;
  };

  std::mutex mu_;
  std::vector<Entry> entries_;
  std::atomic<std::uint64_t> launched_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> peak_live_{0};
};

}  // namespace evmp::baselines

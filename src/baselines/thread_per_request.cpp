#include "baselines/thread_per_request.hpp"

#include <algorithm>

namespace evmp::baselines {

ThreadPerRequest::~ThreadPerRequest() { join_all(); }

void ThreadPerRequest::launch(exec::Task task) {
  auto finished = std::make_shared<std::atomic<bool>>(false);
  launched_.fetch_add(1, std::memory_order_relaxed);
  const auto live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto peak = peak_live_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_live_.compare_exchange_weak(peak, live,
                                           std::memory_order_relaxed)) {
  }
  std::jthread t([this, finished, fn = std::move(task)]() mutable {
    fn();
    live_.fetch_sub(1, std::memory_order_relaxed);
    finished->store(true, std::memory_order_release);
  });
  std::scoped_lock lk(mu_);
  entries_.push_back(Entry{std::move(finished), std::move(t)});
}

std::size_t ThreadPerRequest::reap() {
  std::vector<Entry> done;
  {
    std::scoped_lock lk(mu_);
    auto it = std::partition(entries_.begin(), entries_.end(),
                             [](const Entry& e) {
                               return !e.finished->load(
                                   std::memory_order_acquire);
                             });
    done.assign(std::make_move_iterator(it),
                std::make_move_iterator(entries_.end()));
    entries_.erase(it, entries_.end());
  }
  return done.size();  // joined by jthread destructors
}

void ThreadPerRequest::join_all() {
  std::vector<Entry> all;
  {
    std::scoped_lock lk(mu_);
    all.swap(entries_);
  }
  all.clear();  // joins
}

}  // namespace evmp::baselines

#include "baselines/approaches.hpp"

#include "baselines/swing_worker.hpp"
#include "core/target.hpp"

namespace evmp::baselines {

namespace {

using KernelLease = std::shared_ptr<evmp::kernels::Kernel>;

void sink_add(GuiBenchEnv& env, std::uint64_t v) {
  if (env.sink != nullptr) {
    env.sink->fetch_add(v, std::memory_order_relaxed);
  }
}

void s2_progress(GuiBenchEnv& env) { env.progress.set_value(50); }

void s4_finish(GuiBenchEnv& env, const event::CompletionToken& token) {
  env.progress.set_value(100);
  env.status.set_text("Task finished");
  token.complete();
}

/// SwingWorker subclass mirroring the paper's Figure 3 structure.
class KernelWorker final : public SwingWorker<std::uint64_t, int> {
 public:
  KernelWorker(GuiBenchEnv& env, KernelLease kernel,
               event::CompletionToken token)
      : SwingWorker(env.edt), env_(env), kernel_(std::move(kernel)),
        token_(std::move(token)) {}

 protected:
  std::uint64_t do_in_background() override {
    const long half = kernel_->units() / 2;
    std::uint64_t sum = kernel_->process_range(0, half);  // S1
    publish(50);                                          // -> S2 on EDT
    sum += kernel_->process_range(half, kernel_->units());  // S3
    return sum;
  }

  void process(const std::vector<int>& chunks) override {
    env_.progress.set_value(chunks.back());  // S2
  }

  void done() override {
    sink_add(env_, get());
    s4_finish(env_, token_);  // S4
  }

 private:
  GuiBenchEnv& env_;
  KernelLease kernel_;
  event::CompletionToken token_;
};

void handle_sequential(GuiBenchEnv& env, const event::CompletionToken& token) {
  KernelLease k = env.kernels.acquire();
  const long half = k->units() / 2;
  std::uint64_t sum = k->process_range(0, half);  // S1 on the EDT
  s2_progress(env);                               // S2
  sum += k->process_range(half, k->units());      // S3 on the EDT
  sink_add(env, sum);
  s4_finish(env, token);                          // S4
}

void handle_swing_worker(GuiBenchEnv& env, const event::CompletionToken& token) {
  auto worker =
      std::make_shared<KernelWorker>(env, env.kernels.acquire(), token);
  worker->execute();
}

// The offloaded body shared by ExecutorService and thread-per-request: the
// hand-written continuation-passing structure of the paper's Figure 4.
exec::Task offloaded_body(GuiBenchEnv& env, KernelLease k,
                          event::CompletionToken token) {
  return [&env, k = std::move(k), token]() {
    const long half = k->units() / 2;
    std::uint64_t sum = k->process_range(0, half);  // S1
    env.edt.invoke_later([&env] { s2_progress(env); });  // S2 hop
    sum += k->process_range(half, k->units());      // S3
    sink_add(env, sum);
    // S4 hop; the lease rides along so the kernel is only reused after S4.
    env.edt.invoke_later([&env, token, k] { s4_finish(env, token); });
  };
}

void handle_executor_service(GuiBenchEnv& env,
                             const event::CompletionToken& token) {
  env.executor_service->execute(
      offloaded_body(env, env.kernels.acquire(), token));
}

void handle_thread_per_request(GuiBenchEnv& env,
                               const event::CompletionToken& token) {
  env.thread_per_request->reap();  // opportunistically join finished threads
  env.thread_per_request->launch(
      offloaded_body(env, env.kernels.acquire(), token));
}

void handle_pyjama(GuiBenchEnv& env, const event::CompletionToken& token) {
  KernelLease k = env.kernels.acquire();
  // //#omp target virtual(worker) nowait      (paper Figure 6 structure)
  env.rt.target("worker").nowait([&env, k, token] {
    const long half = k->units() / 2;
    std::uint64_t sum = k->process_range(0, half);  // S1
    // //#omp target virtual(edt) nowait
    env.rt.target("edt").nowait([&env] { s2_progress(env); });  // S2
    sum += k->process_range(half, k->units());      // S3
    sink_add(env, sum);
    // //#omp target virtual(edt) nowait
    env.rt.target("edt").nowait([&env, token, k] { s4_finish(env, token); });
  });
}

void handle_sync_parallel(GuiBenchEnv& env,
                          const event::CompletionToken& token) {
  // The EDT is the fork-join master: it stays inside the region until the
  // team completes (the paper's synchronous-parallel drawback).
  KernelLease k = env.kernels.acquire();
  const long half = k->units() / 2;
  std::uint64_t sum = k->run_parallel_range(*env.sync_team, 0, half);  // S1
  s2_progress(env);                                                    // S2
  sum += k->run_parallel_range(*env.sync_team, half, k->units());      // S3
  sink_add(env, sum);
  s4_finish(env, token);                                               // S4
}

void handle_async_parallel(GuiBenchEnv& env,
                           const event::CompletionToken& token) {
  KernelLease k = env.kernels.acquire();
  const int width = env.parallel_width;
  // //#omp target virtual(worker) nowait { ... #pragma omp parallel ... }
  env.rt.target("worker").nowait([&env, k, token, width] {
    // Each parallelised event spawns its own team, as the paper observes
    // of per-event `omp parallel` use.
    fj::Team team(width);
    const long half = k->units() / 2;
    std::uint64_t sum = k->run_parallel_range(team, 0, half);       // S1
    env.rt.target("edt").nowait([&env] { s2_progress(env); });      // S2
    sum += k->run_parallel_range(team, half, k->units());           // S3
    sink_add(env, sum);
    env.rt.target("edt").nowait([&env, token, k] { s4_finish(env, token); });
  });
}

}  // namespace

std::string_view to_string(Approach a) noexcept {
  switch (a) {
    case Approach::kSequential: return "sequential";
    case Approach::kSwingWorker: return "swingworker";
    case Approach::kExecutorService: return "executorservice";
    case Approach::kThreadPerRequest: return "threadperrequest";
    case Approach::kPyjama: return "pyjama";
    case Approach::kSyncParallel: return "syncparallel";
    case Approach::kAsyncParallel: return "asyncparallel";
  }
  return "?";
}

std::optional<Approach> parse_approach(std::string_view name) noexcept {
  for (Approach a : all_approaches()) {
    if (to_string(a) == name) return a;
  }
  return std::nullopt;
}

const std::vector<Approach>& all_approaches() {
  static const std::vector<Approach> approaches{
      Approach::kSequential,      Approach::kSwingWorker,
      Approach::kExecutorService, Approach::kThreadPerRequest,
      Approach::kPyjama,          Approach::kSyncParallel,
      Approach::kAsyncParallel,
  };
  return approaches;
}

void handle_event(Approach approach, GuiBenchEnv& env, std::size_t /*index*/,
                  const event::CompletionToken& token) {
  env.status.set_text("Started EDT handling");
  switch (approach) {
    case Approach::kSequential: handle_sequential(env, token); break;
    case Approach::kSwingWorker: handle_swing_worker(env, token); break;
    case Approach::kExecutorService:
      handle_executor_service(env, token);
      break;
    case Approach::kThreadPerRequest:
      handle_thread_per_request(env, token);
      break;
    case Approach::kPyjama: handle_pyjama(env, token); break;
    case Approach::kSyncParallel: handle_sync_parallel(env, token); break;
    case Approach::kAsyncParallel: handle_async_parallel(env, token); break;
  }
}

}  // namespace evmp::baselines

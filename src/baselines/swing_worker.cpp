#include "baselines/swing_worker.hpp"

namespace evmp::baselines {

exec::ThreadPoolExecutor& swing_worker_pool() {
  static exec::ThreadPoolExecutor pool("swingworker-pool",
                                       kSwingWorkerPoolThreads);
  return pool;
}

}  // namespace evmp::baselines

#pragma once
// C++ port of javax.swing.SwingWorker — the first manual baseline of the
// paper's §V.A evaluation (its Figure 3 shows the Java original).
//
// Lifecycle, faithfully reproduced:
//  * do_in_background() runs on a shared worker pool capped at 10 threads
//    ("The underlying implementation of SwingWorker maintains a default
//    10-thread-max thread pool", §V.A);
//  * publish(chunk) hands interim results to process(chunks) on the EDT,
//    with JDK-style coalescing (multiple publishes between EDT turns arrive
//    in one process() call);
//  * done() runs on the EDT after do_in_background() returns;
//  * get() blocks for the result.

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "event/event_loop.hpp"
#include "executor/completion.hpp"
#include "executor/executor.hpp"
#include "executor/thread_pool_executor.hpp"

namespace evmp::baselines {

/// The JDK cap on SwingWorker's shared pool.
inline constexpr std::size_t kSwingWorkerPoolThreads = 10;

/// Shared SwingWorker pool (created on first use, like the JDK's).
exec::ThreadPoolExecutor& swing_worker_pool();

/// Abstract asynchronous worker; subclass and override do_in_background(),
/// process() and done(). Instances must be owned by std::shared_ptr
/// (execution keeps the worker alive via shared_from_this).
template <class Result, class Chunk>
class SwingWorker
    : public std::enable_shared_from_this<SwingWorker<Result, Chunk>> {
 public:
  explicit SwingWorker(event::EventLoop& edt,
                       exec::Executor* pool = nullptr)
      : edt_(edt), pool_(pool != nullptr ? *pool : swing_worker_pool()) {}
  virtual ~SwingWorker() = default;

  /// Schedule do_in_background() on the worker pool. Call once.
  void execute() {
    auto self = this->shared_from_this();
    pool_.post([self] { self->run_background(); });
  }

  /// Block until the background computation finished; rethrows its
  /// exception. (Java's get() throws ExecutionException; here the original
  /// exception propagates directly.)
  Result get() {
    state_.wait();
    std::scoped_lock lk(mu_);
    return result_;
  }

  [[nodiscard]] bool is_done() const { return state_.done(); }

 protected:
  /// The long-running computation; runs on a pool thread.
  virtual Result do_in_background() = 0;

  /// Receives coalesced published chunks; runs on the EDT.
  virtual void process(const std::vector<Chunk>& /*chunks*/) {}

  /// Completion callback; runs on the EDT.
  virtual void done() {}

  /// Queue an interim result for process(); callable from any thread.
  void publish(Chunk chunk) {
    bool need_schedule = false;
    {
      std::scoped_lock lk(mu_);
      pending_.push_back(std::move(chunk));
      need_schedule = !process_scheduled_;
      process_scheduled_ = true;
    }
    if (need_schedule) {
      auto self = this->shared_from_this();
      edt_.post([self] { self->drain_pending(); });
    }
  }

  [[nodiscard]] event::EventLoop& edt() noexcept { return edt_; }

 private:
  void run_background() {
    try {
      Result r = do_in_background();
      {
        std::scoped_lock lk(mu_);
        result_ = std::move(r);
      }
      state_.set_done();
    } catch (...) {
      state_.set_exception(std::current_exception());
    }
    auto self = this->shared_from_this();
    edt_.post([self] { self->done(); });
  }

  void drain_pending() {
    std::vector<Chunk> chunks;
    {
      std::scoped_lock lk(mu_);
      chunks.swap(pending_);
      process_scheduled_ = false;
    }
    if (!chunks.empty()) process(chunks);
  }

  event::EventLoop& edt_;
  exec::Executor& pool_;
  exec::CompletionState state_;
  std::mutex mu_;
  Result result_{};
  std::vector<Chunk> pending_;
  bool process_scheduled_ = false;
};

}  // namespace evmp::baselines

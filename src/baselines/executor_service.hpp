#pragma once
// C++ port of java.util.concurrent.ExecutorService — the second manual
// baseline of §V.A ("ExecutorService (using SwingUtilities when
// necessary)"): tasks are submitted to a fixed pool and GUI updates are
// hopped to the EDT via invoke_later.

#include <future>
#include <type_traits>
#include <utility>

#include "executor/thread_pool_executor.hpp"

namespace evmp::baselines {

/// Executors.newFixedThreadPool equivalent with submit()/std::future.
class ExecutorService {
 public:
  explicit ExecutorService(std::size_t num_threads,
                           std::string name = "executor-service")
      : pool_(std::move(name), num_threads) {}

  /// Submit a callable; returns a future for its result. Exceptions
  /// propagate through the future, as in Java.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> future = task.get_future();
    pool_.post([t = std::move(task)]() mutable { t(); });
    return future;
  }

  /// Fire-and-forget submission.
  template <class F>
  void execute(F&& fn) {
    pool_.post(exec::Task(std::forward<F>(fn)));
  }

  /// Drain queued tasks and join the pool (Java shutdown+awaitTermination).
  void shutdown() { pool_.shutdown(); }

  [[nodiscard]] exec::ThreadPoolExecutor& pool() noexcept { return pool_; }

 private:
  exec::ThreadPoolExecutor pool_;
};

}  // namespace evmp::baselines

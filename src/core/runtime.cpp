#include "core/runtime.hpp"

#include <chrono>

#include "core/target.hpp"

namespace evmp {

Runtime::Runtime() = default;

Runtime::~Runtime() { clear(); }

void Runtime::register_edt(std::string tname, event::EventLoop& loop) {
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{&loop, nullptr};
}

exec::ThreadPoolExecutor& Runtime::create_worker(std::string tname, int m) {
  auto pool = std::make_shared<exec::ThreadPoolExecutor>(
      tname, static_cast<std::size_t>(m < 1 ? 1 : m));
  exec::ThreadPoolExecutor& ref = *pool;
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{pool.get(), pool};
  return ref;
}

exec::WorkStealingExecutor& Runtime::create_stealing_worker(std::string tname,
                                                            int m) {
  auto pool = std::make_shared<exec::WorkStealingExecutor>(
      tname, static_cast<std::size_t>(m < 1 ? 1 : m));
  exec::WorkStealingExecutor& ref = *pool;
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{pool.get(), pool};
  return ref;
}

exec::SimulatedDeviceExecutor& Runtime::register_device(
    int id, exec::SimulatedDeviceExecutor::Config cfg) {
  const std::string tname = "device:" + std::to_string(id);
  auto dev = std::make_shared<exec::SimulatedDeviceExecutor>(tname, id, cfg);
  exec::SimulatedDeviceExecutor& ref = *dev;
  std::scoped_lock lk(mu_);
  targets_[tname] = TargetEntry{dev.get(), dev};
  return ref;
}

void Runtime::register_executor(std::string tname, exec::Executor& executor) {
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{&executor, nullptr};
}

void Runtime::unregister(std::string_view tname) {
  std::shared_ptr<exec::Executor> owned;
  {
    std::scoped_lock lk(mu_);
    auto it = targets_.find(tname);
    if (it == targets_.end()) return;
    owned = std::move(it->second.owned);  // destroy outside the lock
    targets_.erase(it);
  }
}

void Runtime::clear() {
  std::map<std::string, TargetEntry, std::less<>> drained;
  {
    std::scoped_lock lk(mu_);
    drained.swap(targets_);
  }
  // Owned executors shut down here, outside the registry lock, so their
  // draining tasks may still resolve other targets.
  drained.clear();
}

exec::Executor& Runtime::resolve(std::string_view tname) const {
  std::scoped_lock lk(mu_);
  auto it = targets_.find(tname);
  if (it == targets_.end()) throw TargetNotFound(tname);
  return *it->second.executor;
}

bool Runtime::has_target(std::string_view tname) const {
  std::scoped_lock lk(mu_);
  return targets_.find(tname) != targets_.end();
}

void Runtime::set_default_target(std::string tname) {
  std::scoped_lock lk(mu_);
  default_target_ = std::move(tname);
}

std::string Runtime::default_target() const {
  std::scoped_lock lk(mu_);
  return default_target_;
}

exec::TaskHandle Runtime::invoke_target_block(std::string_view tname,
                                              exec::Task block, Async mode,
                                              std::string_view tag) {
  // Directives disabled: the "unsupported compiler" semantics — the block
  // is plain sequential code on the encountering thread.
  if (!enabled()) {
    block();
    return {};
  }

  exec::Executor& executor = resolve(tname);

  // Algorithm 1, line 6: T ∈ E → execute synchronously by T. The directive
  // is "simply ignored" (thread-context awareness).
  if (executor.owns_current_thread()) {
    {
      std::scoped_lock lk(stats_mu_);
      ++stats_.inline_fast_path;
    }
    block();
    return {};
  }

  // Line 8: post B to E asynchronously, with completion tracking.
  auto state = std::make_shared<exec::CompletionState>();
  TagGroup* group = nullptr;
  if (mode == Async::kNameAs) {
    group = &tags_.group(tag);
    group->enter();
  }
  const bool report_unhandled = (mode == Async::kNowait);
  const std::string executor_name(executor.name());
  executor.post([state, group, report_unhandled, executor_name,
                 fn = std::move(block)]() mutable {
    try {
      fn();
      state->set_done();
      if (group != nullptr) group->leave(nullptr);
    } catch (...) {
      auto ep = std::current_exception();
      state->set_exception(ep);
      if (group != nullptr) group->leave(ep);
      // A nowait block has no join point; surface the failure via the hook
      // instead of dropping it.
      if (report_unhandled) {
        exec::unhandled_exception_hook()(executor_name, ep);
      }
    }
  });
  {
    std::scoped_lock lk(stats_mu_);
    ++stats_.posted;
  }

  switch (mode) {
    case Async::kNowait:
    case Async::kNameAs:
      // Lines 10-11: continue with the statements after the block.
      return exec::TaskHandle(state);
    case Async::kAwait:
      // Lines 13-16: logical barrier.
      await_completion(state);
      return exec::TaskHandle(state);
    case Async::kDefault:
      // Line 17: plain wait (standard `target` behaviour).
      {
        std::scoped_lock lk(stats_mu_);
        ++stats_.default_waits;
      }
      exec::TaskHandle(state).wait();
      return exec::TaskHandle(state);
  }
  return exec::TaskHandle(state);  // unreachable
}

std::vector<exec::TaskHandle> Runtime::invoke_target_batch(
    std::string_view tname, std::vector<exec::Task> blocks, Async mode,
    std::string_view tag) {
  std::vector<exec::TaskHandle> handles;
  if (blocks.empty()) return handles;

  // Disabled runtime: sequential semantics, block by block.
  if (!enabled()) {
    for (auto& block : blocks) block();
    return handles;
  }

  exec::Executor& executor = resolve(tname);

  // Thread-context awareness applies to the whole burst: member threads run
  // it synchronously in order (Algorithm 1 line 6, N times).
  if (executor.owns_current_thread()) {
    {
      std::scoped_lock lk(stats_mu_);
      stats_.inline_fast_path += blocks.size();
    }
    for (auto& block : blocks) block();
    return handles;
  }

  // Wrap every block with the same completion/tag/exception protocol as
  // invoke_target_block, then submit the burst in one post_batch call.
  handles.reserve(blocks.size());
  std::vector<exec::Task> wrapped;
  wrapped.reserve(blocks.size());
  const bool report_unhandled = (mode == Async::kNowait);
  const std::string executor_name(executor.name());
  TagGroup* group = nullptr;
  if (mode == Async::kNameAs) group = &tags_.group(tag);
  for (auto& block : blocks) {
    auto state = std::make_shared<exec::CompletionState>();
    handles.emplace_back(state);
    if (group != nullptr) group->enter();
    wrapped.emplace_back([state, group, report_unhandled, executor_name,
                          fn = std::move(block)]() mutable {
      try {
        fn();
        state->set_done();
        if (group != nullptr) group->leave(nullptr);
      } catch (...) {
        auto ep = std::current_exception();
        state->set_exception(ep);
        if (group != nullptr) group->leave(ep);
        if (report_unhandled) {
          exec::unhandled_exception_hook()(executor_name, ep);
        }
      }
    });
  }
  executor.post_batch(wrapped);
  {
    std::scoped_lock lk(stats_mu_);
    stats_.posted += handles.size();
    ++stats_.batch_posts;
  }

  switch (mode) {
    case Async::kNowait:
    case Async::kNameAs:
      return handles;
    case Async::kAwait:
      for (const auto& handle : handles) await_completion(handle.state());
      return handles;
    case Async::kDefault:
      {
        std::scoped_lock lk(stats_mu_);
        stats_.default_waits += handles.size();
      }
      for (const auto& handle : handles) handle.wait();
      return handles;
  }
  return handles;  // unreachable
}

void Runtime::await_completion(
    const std::shared_ptr<exec::CompletionState>& state) {
  {
    std::scoped_lock lk(stats_mu_);
    ++stats_.awaits;
  }
  exec::Executor* self = exec::Executor::current();
  std::uint64_t pumped = 0;
  while (!state->done()) {
    // "while B is not finished do T.processAnotherEventHandler()":
    // a member thread drains its own executor's queue (the EDT dispatches
    // other events; a pool thread runs other tasks).
    if (self != nullptr && self->try_run_one()) {
      ++pumped;
      continue;
    }
    // Foreign thread, or nothing pending right now: block briefly instead
    // of busy-spinning, then re-check both conditions.
    state->wait_for(std::chrono::microseconds{200});
  }
  if (pumped != 0) {
    std::scoped_lock lk(stats_mu_);
    stats_.await_pumped += pumped;
  }
  state->rethrow_if_error();
}

void Runtime::await_handle(const exec::TaskHandle& handle) {
  if (!handle.valid()) return;
  await_completion(handle.state());
}

void Runtime::wait_tag(std::string_view tag) {
  exec::Executor* self = exec::Executor::current();
  tags_.group(tag).wait(
      self != nullptr ? std::function<bool()>([self] { return self->try_run_one(); })
                      : std::function<bool()>{});
}

TargetRef Runtime::target(std::string tname) {
  return TargetRef(*this, std::move(tname));
}

RuntimeStats Runtime::stats() const {
  std::scoped_lock lk(stats_mu_);
  return stats_;
}

void Runtime::reset_stats() {
  std::scoped_lock lk(stats_mu_);
  stats_ = RuntimeStats{};
}

Runtime& rt() {
  static Runtime instance;
  return instance;
}

void device_transfer_to(std::string_view tname, std::uint64_t bytes) {
  if (auto* dev = dynamic_cast<exec::SimulatedDeviceExecutor*>(
          &rt().resolve(tname))) {
    dev->transfer_to_device(bytes);
  }
}

void device_transfer_from(std::string_view tname, std::uint64_t bytes) {
  if (auto* dev = dynamic_cast<exec::SimulatedDeviceExecutor*>(
          &rt().resolve(tname))) {
    dev->transfer_from_device(bytes);
  }
}

}  // namespace evmp

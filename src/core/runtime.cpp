#include "core/runtime.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "analysis/wait_graph.hpp"
#include "common/tracing.hpp"
#include "core/target.hpp"

namespace evmp {

namespace {

/// Wait-for-graph identity of the calling thread: its executor (with the
/// concurrency that decides saturation) or a synthetic external node that
/// can never be blocked *on* and therefore never joins a cycle.
analysis::WaitGraph::Waiter current_waiter() {
  if (exec::Executor* self = exec::Executor::current()) {
    return {std::string(self->name()), self->concurrency()};
  }
  std::ostringstream name;
  name << "external:" << std::this_thread::get_id();
  return {name.str(), 0};
}

}  // namespace

Runtime::Runtime() = default;

Runtime::~Runtime() { clear(); }

void Runtime::register_edt(std::string tname, event::EventLoop& loop) {
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{&loop, nullptr};
}

exec::ThreadPoolExecutor& Runtime::create_worker(std::string tname, int m) {
  auto pool = std::make_shared<exec::ThreadPoolExecutor>(
      tname, static_cast<std::size_t>(m < 1 ? 1 : m));
  exec::ThreadPoolExecutor& ref = *pool;
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{pool.get(), pool};
  return ref;
}

exec::WorkStealingExecutor& Runtime::create_stealing_worker(std::string tname,
                                                            int m) {
  auto pool = std::make_shared<exec::WorkStealingExecutor>(
      tname, static_cast<std::size_t>(m < 1 ? 1 : m));
  exec::WorkStealingExecutor& ref = *pool;
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{pool.get(), pool};
  return ref;
}

exec::LockedWorkStealingExecutor& Runtime::create_locked_stealing_worker(
    std::string tname, int m) {
  auto pool = std::make_shared<exec::LockedWorkStealingExecutor>(
      tname, static_cast<std::size_t>(m < 1 ? 1 : m));
  exec::LockedWorkStealingExecutor& ref = *pool;
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{pool.get(), pool};
  return ref;
}

exec::SimulatedDeviceExecutor& Runtime::register_device(
    int id, exec::SimulatedDeviceExecutor::Config cfg) {
  const std::string tname = "device:" + std::to_string(id);
  auto dev = std::make_shared<exec::SimulatedDeviceExecutor>(tname, id, cfg);
  exec::SimulatedDeviceExecutor& ref = *dev;
  std::scoped_lock lk(mu_);
  targets_[tname] = TargetEntry{dev.get(), dev};
  return ref;
}

void Runtime::register_executor(std::string tname, exec::Executor& executor) {
  std::scoped_lock lk(mu_);
  targets_[std::move(tname)] = TargetEntry{&executor, nullptr};
}

void Runtime::unregister(std::string_view tname) {
  std::shared_ptr<exec::Executor> owned;
  {
    std::scoped_lock lk(mu_);
    auto it = targets_.find(tname);
    if (it == targets_.end()) return;
    owned = std::move(it->second.owned);  // destroy outside the lock
    targets_.erase(it);
  }
}

void Runtime::clear() {
  std::map<std::string, TargetEntry, std::less<>> drained;
  {
    std::scoped_lock lk(mu_);
    drained.swap(targets_);
  }
  // Owned executors shut down here, outside the registry lock, so their
  // draining tasks may still resolve other targets.
  drained.clear();
  common::Tracer::instance().set_counter("runtime.tags_created",
                                         tags_.created());
}

exec::Executor& Runtime::resolve(std::string_view tname) const {
  std::scoped_lock lk(mu_);
  auto it = targets_.find(tname);
  if (it == targets_.end()) throw TargetNotFound(tname);
  return *it->second.executor;
}

bool Runtime::has_target(std::string_view tname) const {
  std::scoped_lock lk(mu_);
  return targets_.find(tname) != targets_.end();
}

void Runtime::set_default_target(std::string tname) {
  std::scoped_lock lk(mu_);
  default_target_ = std::move(tname);
}

std::string Runtime::default_target() const {
  std::scoped_lock lk(mu_);
  return default_target_;
}

Runtime::DispatchPlan Runtime::plan_dispatch(std::string_view tname,
                                             Async mode,
                                             std::string_view tag) {
  DispatchPlan plan;

  // Directives disabled: the "unsupported compiler" semantics — the block
  // is plain sequential code on the encountering thread.
  if (!enabled()) {
    plan.run_inline = true;
    return plan;
  }

  exec::Executor& executor = resolve(tname);

  // Algorithm 1, line 6: T ∈ E → execute synchronously by T. The directive
  // is "simply ignored" (thread-context awareness).
  if (executor.owns_current_thread()) {
    stats_.inline_fast_path.fetch_add(1, std::memory_order_relaxed);
    plan.run_inline = true;
    return plan;
  }

  // Line 8: post B to E asynchronously, with completion tracking. The
  // state comes from the thread-cached pool; kNameAs additionally enters
  // the (sharded, lock-free-joining) tag group before the post so a racing
  // wait_tag cannot observe an empty group.
  plan.executor = &executor;
  plan.state = exec::CompletionState::make();
  if (mode == Async::kNameAs) {
    plan.group = &tags_.group(tag);
    plan.group->enter();
  }
  plan.report_unhandled = (mode == Async::kNowait);
  if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
    plan.race_birth = rc->on_dispatch(executor.name());
  }
  return plan;
}

exec::TaskHandle Runtime::finish_dispatch(exec::CompletionRef state,
                                          Async mode,
                                          exec::Executor* executor) {
  stats_.posted.fetch_add(1, std::memory_order_relaxed);
  switch (mode) {
    case Async::kNowait:
    case Async::kNameAs:
      // Lines 10-11: continue with the statements after the block.
      return exec::TaskHandle(std::move(state));
    case Async::kAwait:
      // Lines 13-16: logical barrier.
      await_completion(state, executor);
      return exec::TaskHandle(std::move(state));
    case Async::kDefault:
      // Line 17: plain wait (standard `target` behaviour).
      stats_.default_waits.fetch_add(1, std::memory_order_relaxed);
      verified_wait(state, *executor);
      return exec::TaskHandle(std::move(state));
  }
  return exec::TaskHandle(std::move(state));  // unreachable
}

void Runtime::verified_wait(const exec::CompletionRef& state,
                            exec::Executor& target) {
  analysis::WaitGraph* graph = analysis::WaitGraph::global();
  if (graph == nullptr) {
    state->wait();
  } else {
    const analysis::WaitGraph::Waiter self = current_waiter();
    const char* what = "default-mode dispatch";
    const std::string to(target.name());
    analysis::WaitScope scope(*graph, self, to, target.pending(), what,
                              /*hard=*/true);
    if (graph->timeout().count() <= 0) {
      state->wait();
    } else if (!state->wait_for(graph->timeout())) {
      graph->fail_timeout(self, to, what);
      state->wait();  // reached only when a test handler swallowed the report
    }
  }
  // EVMP_RACECHECK: the block completed before this wait returned — join
  // its parked clock into the waiting thread.
  if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
    rc->on_join(state.get());
  }
}

std::vector<exec::TaskHandle> Runtime::invoke_target_batch(
    std::string_view tname, std::vector<exec::Task> blocks, Async mode,
    std::string_view tag) {
  std::vector<exec::TaskHandle> handles;
  if (blocks.empty()) return handles;

  // Disabled runtime: sequential semantics, block by block.
  if (!enabled()) {
    for (auto& block : blocks) block();
    return handles;
  }

  exec::Executor& executor = resolve(tname);

  // Thread-context awareness applies to the whole burst: member threads run
  // it synchronously in order (Algorithm 1 line 6, N times).
  if (executor.owns_current_thread()) {
    stats_.inline_fast_path.fetch_add(blocks.size(),
                                      std::memory_order_relaxed);
    for (auto& block : blocks) block();
    return handles;
  }

  // Wrap every block with the same completion/tag/exception protocol as
  // invoke_target_block, then submit the burst in one post_batch call.
  handles.reserve(blocks.size());
  std::vector<exec::Task> wrapped;
  wrapped.reserve(blocks.size());
  const bool report_unhandled = (mode == Async::kNowait);
  TagGroup* group = nullptr;
  if (mode == Async::kNameAs) group = &tags_.group(tag);
  analysis::RaceCheck* rc = analysis::RaceCheck::active();
  for (auto& block : blocks) {
    exec::CompletionRef state = exec::CompletionState::make();
    handles.emplace_back(state);
    if (group != nullptr) group->enter();
    const std::uint64_t birth =
        rc != nullptr ? rc->on_dispatch(executor.name()) : 0;
    wrapped.emplace_back([state = std::move(state), group, report_unhandled,
                          ex = &executor, birth,
                          fn = std::move(block)]() mutable {
      run_dispatched_block(fn, state, group, ex, report_unhandled, birth);
    });
  }
  executor.post_batch(wrapped);
  stats_.posted.fetch_add(handles.size(), std::memory_order_relaxed);
  stats_.batch_posts.fetch_add(1, std::memory_order_relaxed);

  switch (mode) {
    case Async::kNowait:
    case Async::kNameAs:
      return handles;
    case Async::kAwait:
      for (const auto& handle : handles) {
        await_completion(handle.state(), &executor);
      }
      return handles;
    case Async::kDefault:
      stats_.default_waits.fetch_add(handles.size(),
                                     std::memory_order_relaxed);
      for (const auto& handle : handles) {
        verified_wait(handle.state(), executor);
      }
      return handles;
  }
  return handles;  // unreachable
}

void Runtime::await_completion(const exec::CompletionRef& state,
                               exec::Executor* target) {
  stats_.awaits.fetch_add(1, std::memory_order_relaxed);
  exec::Executor* self = exec::Executor::current();

  // EVMP_VERIFY: record the barrier in the wait-for graph. From a member
  // thread the edge is *soft* — the pump below keeps this executor live,
  // so the wait cannot saturate it — but a foreign thread parks for real.
  analysis::WaitGraph* graph = analysis::WaitGraph::global();
  std::optional<analysis::WaitScope> scope;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  analysis::WaitGraph::Waiter waiter;
  std::string to;
  const char* what = "await logical barrier";
  if (graph != nullptr) {
    waiter = current_waiter();
    to = target != nullptr ? std::string(target->name()) : "<completion>";
    scope.emplace(*graph, waiter, to, target != nullptr ? target->pending() : 0,
                  what, /*hard=*/self == nullptr);
    if (graph->timeout().count() > 0) {
      deadline = std::chrono::steady_clock::now() + graph->timeout();
    }
  }

  if (self == nullptr) {
    // Foreign thread: nothing to pump, so park on the completion futex and
    // wake exactly when the block finishes (no polling quantum).
    if (deadline && !state->wait_for(graph->timeout())) {
      graph->fail_timeout(waiter, to, what);
    }
    state->wait();
    if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
      rc->on_join(state.get());
    }
    state->rethrow_if_error();
    return;
  }
  std::uint64_t pumped = 0;
  while (!state->done()) {
    // "while B is not finished do T.processAnotherEventHandler()":
    // a member thread drains its own executor's queue (the EDT dispatches
    // other events; a pool thread runs other tasks).
    if (self->try_run_one()) {
      ++pumped;
      continue;
    }
    // Nothing pending right now: block briefly instead of busy-spinning,
    // then re-check both conditions.
    state->wait_for(std::chrono::microseconds{200});
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      graph->fail_timeout(waiter, to, what);
      deadline.reset();  // test handlers swallow the report; don't re-fire
    }
  }
  if (pumped != 0) {
    stats_.await_pumped.fetch_add(pumped, std::memory_order_relaxed);
  }
  if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
    rc->on_join(state.get());
  }
  state->rethrow_if_error();
}

void Runtime::await_handle(const exec::TaskHandle& handle) {
  if (!handle.valid()) return;
  await_completion(handle.state());
}

void Runtime::wait_tag(std::string_view tag) {
  exec::Executor* self = exec::Executor::current();
  std::function<bool()> help;
  if (self != nullptr) help = [self] { return self->try_run_one(); };
  TagGroup& group = tags_.group(tag);

  analysis::WaitGraph* graph = analysis::WaitGraph::global();
  if (graph == nullptr) {
    group.wait(help);
    if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
      rc->on_tag_join(&group);
    }
    return;
  }
  // Tag nodes never have outgoing edges, so they cannot sit on a wait-for
  // cycle themselves; a member thread's join is soft (it pumps), a foreign
  // thread's join is hard. The timeout watchdog rides the help callback.
  const analysis::WaitGraph::Waiter waiter = current_waiter();
  const std::string to = "tag:" + std::string(tag);
  const char* what = "wait(name-tag)";
  const auto in_flight = group.in_flight();
  analysis::WaitScope scope(
      *graph, waiter, to,
      in_flight > 0 ? static_cast<std::size_t>(in_flight) : 0, what,
      /*hard=*/self == nullptr);
  if (graph->timeout().count() > 0) {
    const auto deadline = std::chrono::steady_clock::now() + graph->timeout();
    std::function<bool()> inner = std::move(help);
    help = [graph, waiter, to, what, deadline, inner] {
      if (std::chrono::steady_clock::now() >= deadline) {
        graph->fail_timeout(waiter, to, what);
      }
      return inner && inner();
    };
  }
  group.wait(help);
  if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
    rc->on_tag_join(&group);
  }
}

TargetRef Runtime::target(std::string tname) {
  return TargetRef(*this, std::move(tname));
}

RuntimeStats Runtime::stats() const {
  RuntimeStats out;
  out.inline_fast_path =
      stats_.inline_fast_path.load(std::memory_order_relaxed);
  out.posted = stats_.posted.load(std::memory_order_relaxed);
  out.batch_posts = stats_.batch_posts.load(std::memory_order_relaxed);
  out.awaits = stats_.awaits.load(std::memory_order_relaxed);
  out.await_pumped = stats_.await_pumped.load(std::memory_order_relaxed);
  out.default_waits = stats_.default_waits.load(std::memory_order_relaxed);
  return out;
}

void Runtime::reset_stats() {
  stats_.inline_fast_path.store(0, std::memory_order_relaxed);
  stats_.posted.store(0, std::memory_order_relaxed);
  stats_.batch_posts.store(0, std::memory_order_relaxed);
  stats_.awaits.store(0, std::memory_order_relaxed);
  stats_.await_pumped.store(0, std::memory_order_relaxed);
  stats_.default_waits.store(0, std::memory_order_relaxed);
}

Runtime& rt() {
  static Runtime instance;
  return instance;
}

void device_transfer_to(std::string_view tname, std::uint64_t bytes) {
  if (auto* dev = dynamic_cast<exec::SimulatedDeviceExecutor*>(
          &rt().resolve(tname))) {
    dev->transfer_to_device(bytes);
  }
}

void device_transfer_from(std::string_view tname, std::uint64_t bytes) {
  if (auto* dev = dynamic_cast<exec::SimulatedDeviceExecutor*>(
          &rt().resolve(tname))) {
    dev->transfer_from_device(bytes);
  }
}

}  // namespace evmp

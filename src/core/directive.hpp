#pragma once
// Directive-style macros: the closest C++ spelling of the paper's
// annotation syntax for code that wants the block to *look* like a pragma:
//
//   EVMP_TARGET_AWAIT("worker") {
//     compute_half1();
//     EVMP_TARGET_NOWAIT("edt") { label.set_text("half done"); };
//     compute_half2();
//   };                                    // <- note the semicolon
//
// Each macro captures the following compound statement as a [&] lambda
// (default(shared) data context) and submits it via the global runtime.

#include "core/target.hpp"

namespace evmp::detail {

/// Helper binding a (runtime, name, mode, tag) tuple to the block produced
/// by the macro's trailing lambda via operator%.
class DirectiveInvoker {
 public:
  DirectiveInvoker(Runtime& rt, std::string tname, Async mode,
                   std::string tag = {})
      : rt_(rt), tname_(std::move(tname)), mode_(mode), tag_(std::move(tag)) {}

  template <class F>
  exec::TaskHandle operator%(F&& block) const {
    // Unerased forward: one type erasure happens inside the runtime (see
    // TargetRef::dispatch).
    return rt_.invoke_target_block(tname_, std::forward<F>(block), mode_,
                                   tag_);
  }

 private:
  Runtime& rt_;
  std::string tname_;
  Async mode_;
  std::string tag_;
};

}  // namespace evmp::detail

/// #pragma omp target virtual(name)            — default (wait) scheduling
#define EVMP_TARGET(name)                                                \
  ::evmp::detail::DirectiveInvoker(::evmp::rt(), (name),                 \
                                   ::evmp::Async::kDefault) %            \
      [&]()

/// #pragma omp target virtual(name) nowait
#define EVMP_TARGET_NOWAIT(name)                                         \
  ::evmp::detail::DirectiveInvoker(::evmp::rt(), (name),                 \
                                   ::evmp::Async::kNowait) %             \
      [&]()

/// #pragma omp target virtual(name) name_as(tag)
#define EVMP_TARGET_NAME_AS(name, tag)                                   \
  ::evmp::detail::DirectiveInvoker(::evmp::rt(), (name),                 \
                                   ::evmp::Async::kNameAs, (tag)) %      \
      [&]()

/// #pragma omp target virtual(name) await
#define EVMP_TARGET_AWAIT(name)                                          \
  ::evmp::detail::DirectiveInvoker(::evmp::rt(), (name),                 \
                                   ::evmp::Async::kAwait) %              \
      [&]()

/// The standalone wait(tag) clause.
#define EVMP_WAIT(tag) ::evmp::rt().wait_tag((tag))

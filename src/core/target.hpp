#pragma once
// Fluent directive API: the C++ spelling of the extended target directive.
//
//   //#omp target virtual(worker) await          (paper, Figure 5/6)
// becomes
//   evmp::target("worker").await([&] { ... });
//
// Captures follow the paper's data-context-sharing semantics: `[&]` is
// `default(shared)` (virtual targets share the host memory, §III-B), while
// capturing by value reproduces `firstprivate`.

#include <string>
#include <utility>

#include "core/async_mode.hpp"
#include "core/runtime.hpp"

namespace evmp {

/// A bound (runtime, target-name) pair plus optional clauses; terminal
/// methods dispatch the block. Cheap to construct; not meant to be stored.
class TargetRef {
 public:
  TargetRef(Runtime& rt, std::string tname)
      : rt_(rt), tname_(std::move(tname)) {}

  /// The if-clause (Figure 5): when `condition` is false the block executes
  /// inline on the encountering thread, as plain sequential code.
  TargetRef&& if_clause(bool condition) && {
    condition_ = condition;
    return std::move(*this);
  }

  /// Default scheduling: dispatch and wait for completion.
  template <class F>
  exec::TaskHandle run(F&& block) && {
    return std::move(*this).dispatch(Async::kDefault, {},
                                     std::forward<F>(block));
  }

  /// nowait: fire-and-forget.
  template <class F>
  exec::TaskHandle nowait(F&& block) && {
    return std::move(*this).dispatch(Async::kNowait, {},
                                     std::forward<F>(block));
  }

  /// name_as(tag): fire, join later with evmp::wait_tag(tag).
  template <class F>
  exec::TaskHandle name_as(std::string_view tag, F&& block) && {
    return std::move(*this).dispatch(Async::kNameAs, tag,
                                     std::forward<F>(block));
  }

  /// await: continue after the block; pump other events while waiting.
  template <class F>
  exec::TaskHandle await(F&& block) && {
    return std::move(*this).dispatch(Async::kAwait, {},
                                     std::forward<F>(block));
  }

  // --- batched forms ------------------------------------------------------
  // A burst of target blocks submitted as one operation: the backing
  // executor takes its shard lock once and wakes workers once (see
  // Runtime::invoke_target_batch). One handle per block, in order.

  /// nowait burst: fire-and-forget the whole batch.
  std::vector<exec::TaskHandle> nowait_batch(
      std::vector<exec::Task> blocks) && {
    return std::move(*this).dispatch_batch(Async::kNowait, {},
                                           std::move(blocks));
  }

  /// name_as(tag) burst: fire all, join the tag later with wait_tag(tag).
  std::vector<exec::TaskHandle> name_as_batch(
      std::string_view tag, std::vector<exec::Task> blocks) && {
    return std::move(*this).dispatch_batch(Async::kNameAs, tag,
                                           std::move(blocks));
  }

  /// await burst: logical barrier until every block in the batch finished.
  std::vector<exec::TaskHandle> await_batch(
      std::vector<exec::Task> blocks) && {
    return std::move(*this).dispatch_batch(Async::kAwait, {},
                                           std::move(blocks));
  }

 private:
  template <class F>
  exec::TaskHandle dispatch(Async mode, std::string_view tag, F&& block) && {
    if (!condition_) {
      // if(false): sequential execution on the encountering thread.
      block();
      return {};
    }
    // Forward the callable unerased: the runtime wraps it with the
    // completion protocol in ONE type erasure, so small captures ride the
    // Task's inline buffer (pre-erasing here would nest Task-in-Task and
    // force the wrapper to the heap on every dispatch).
    return rt_.invoke_target_block(tname_, std::forward<F>(block), mode, tag);
  }

  std::vector<exec::TaskHandle> dispatch_batch(
      Async mode, std::string_view tag, std::vector<exec::Task> blocks) && {
    if (!condition_) {
      for (auto& block : blocks) block();
      return {};
    }
    return rt_.invoke_target_batch(tname_, std::move(blocks), mode, tag);
  }

  Runtime& rt_;
  std::string tname_;
  bool condition_ = true;
};

// --- process-wide convenience wrappers (use evmp::rt()) -------------------

/// `#pragma omp target virtual(tname)` against the global runtime.
inline TargetRef target(std::string tname) {
  return rt().target(std::move(tname));
}

/// `#pragma omp target device(n)` against the global runtime.
inline TargetRef device(int id) {
  return rt().target("device:" + std::to_string(id));
}

/// The standalone wait(name-tag) clause against the global runtime.
inline void wait_tag(std::string_view tag) { rt().wait_tag(tag); }

}  // namespace evmp

#pragma once
// Fluent directive API: the C++ spelling of the extended target directive.
//
//   //#omp target virtual(worker) await          (paper, Figure 5/6)
// becomes
//   evmp::target("worker").await([&] { ... });
//
// Captures follow the paper's data-context-sharing semantics: `[&]` is
// `default(shared)` (virtual targets share the host memory, §III-B), while
// capturing by value reproduces `firstprivate`.

#include <string>
#include <utility>

#include "core/async_mode.hpp"
#include "core/runtime.hpp"

namespace evmp {

/// A bound (runtime, target-name) pair plus optional clauses; terminal
/// methods dispatch the block. Cheap to construct; not meant to be stored.
class TargetRef {
 public:
  TargetRef(Runtime& rt, std::string tname)
      : rt_(rt), tname_(std::move(tname)) {}

  /// The if-clause (Figure 5): when `condition` is false the block executes
  /// inline on the encountering thread, as plain sequential code.
  TargetRef&& if_clause(bool condition) && {
    condition_ = condition;
    return std::move(*this);
  }

  /// Default scheduling: dispatch and wait for completion.
  template <class F>
  exec::TaskHandle run(F&& block) && {
    return std::move(*this).dispatch(Async::kDefault, {},
                                     std::forward<F>(block));
  }

  /// nowait: fire-and-forget.
  template <class F>
  exec::TaskHandle nowait(F&& block) && {
    return std::move(*this).dispatch(Async::kNowait, {},
                                     std::forward<F>(block));
  }

  /// name_as(tag): fire, join later with evmp::wait_tag(tag).
  template <class F>
  exec::TaskHandle name_as(std::string_view tag, F&& block) && {
    return std::move(*this).dispatch(Async::kNameAs, tag,
                                     std::forward<F>(block));
  }

  /// await: continue after the block; pump other events while waiting.
  template <class F>
  exec::TaskHandle await(F&& block) && {
    return std::move(*this).dispatch(Async::kAwait, {},
                                     std::forward<F>(block));
  }

 private:
  template <class F>
  exec::TaskHandle dispatch(Async mode, std::string_view tag, F&& block) && {
    if (!condition_) {
      // if(false): sequential execution on the encountering thread.
      block();
      return {};
    }
    return rt_.invoke_target_block(tname_, exec::Task(std::forward<F>(block)),
                                   mode, tag);
  }

  Runtime& rt_;
  std::string tname_;
  bool condition_ = true;
};

// --- process-wide convenience wrappers (use evmp::rt()) -------------------

/// `#pragma omp target virtual(tname)` against the global runtime.
inline TargetRef target(std::string tname) {
  return rt().target(std::move(tname));
}

/// `#pragma omp target device(n)` against the global runtime.
inline TargetRef device(int id) {
  return rt().target("device:" + std::to_string(id));
}

/// The standalone wait(name-tag) clause against the global runtime.
inline void wait_tag(std::string_view tag) { rt().wait_tag(tag); }

}  // namespace evmp

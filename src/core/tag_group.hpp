#pragma once
// Named task groups backing the name_as(name-tag) / wait(name-tag) clauses.
//
// Paper §III-C: "different target blocks are allowed to share the same
// name-tag, such that when a wait clause is applied with that name-tag, the
// encountering thread suspends until all the name-tag asynchronous target
// block instances finish."

#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace evmp {

/// Tracks the in-flight count of one name-tag.
class TagGroup {
 public:
  /// Register one more in-flight block under this tag.
  void enter();

  /// Mark one block finished; `error` is the block's exception (nullptr on
  /// success). The first error is kept and rethrown by the next wait().
  void leave(std::exception_ptr error);

  /// Block until the in-flight count reaches zero. While waiting,
  /// `try_help()` is polled (if provided) so member threads can process
  /// other queued work instead of idling; it returns true when it made
  /// progress. Rethrows (and clears) the first stored error.
  void wait(const std::function<bool()>& try_help);

  [[nodiscard]] int in_flight() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
  std::exception_ptr first_error_;
};

/// Name-tag → TagGroup map; groups are created on first use and live for
/// the registry's lifetime (a tag is a program-wide name, like the paper's).
class TagRegistry {
 public:
  /// Get or create the group for `tag`.
  TagGroup& group(std::string_view tag);

  /// Number of distinct tags seen.
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TagGroup>, std::less<>> groups_;
};

}  // namespace evmp

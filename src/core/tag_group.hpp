#pragma once
// Named task groups backing the name_as(name-tag) / wait(name-tag) clauses.
//
// Paper §III-C: "different target blocks are allowed to share the same
// name-tag, such that when a wait clause is applied with that name-tag, the
// encountering thread suspends until all the name-tag asynchronous target
// block instances finish."
//
// Perf shape: enter/leave are single atomic RMWs (the seed took a mutex on
// both sides of every name_as block), and joining polls the counter
// lock-free — a bounded spin, then escalating naps — so the `await`-style
// help-pump never touches a lock. leave()'s final action on the group is
// the decrement itself (no post-decrement notify), which keeps the
// seed's teardown guarantee: a waiter may destroy the runtime the moment
// it observes the count at zero. The exception slot is a cold path guarded
// by a spinlock and flagged by an atomic.

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace evmp {

/// Tracks the in-flight count of one name-tag.
class TagGroup {
 public:
  /// Register one more in-flight block under this tag.
  void enter() noexcept { count_.fetch_add(1, std::memory_order_relaxed); }

  /// Mark one block finished; `error` is the block's exception (nullptr on
  /// success). The first error is kept and rethrown by the next wait().
  void leave(std::exception_ptr error) noexcept;

  /// Block until the in-flight count reaches zero. While waiting,
  /// `try_help()` is polled (if provided) so member threads can process
  /// other queued work instead of idling; it returns true when it made
  /// progress. Rethrows (and clears) the first stored error.
  void wait(const std::function<bool()>& try_help);

  [[nodiscard]] int in_flight() const noexcept {
    return static_cast<int>(count_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<bool> has_error_{false};
  // The error slot is written at most once per wait cycle and read only
  // after has_error_ reads true; the flag spinlock covers the cold path.
  std::atomic_flag error_lock_ = ATOMIC_FLAG_INIT;
  std::exception_ptr first_error_;
};

/// Name-tag → TagGroup map; groups are created on first use and live for
/// the registry's lifetime (a tag is a program-wide name, like the paper's).
/// Sharded by precomputed string hash so concurrent name_as dispatches on
/// distinct tags never contend on one registry lock, and backed by
/// pre-reserved unordered_map buckets so first-use insertion does not
/// rebalance a tree under the lock.
class TagRegistry {
 public:
  TagRegistry();

  /// Get or create the group for `tag`.
  TagGroup& group(std::string_view tag);

  /// Number of distinct tags seen.
  [[nodiscard]] std::size_t size() const;

  /// Total groups ever created (tracer counter `*.tags_created`).
  [[nodiscard]] std::uint64_t created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct TransparentEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<TagGroup>,
                       TransparentHash, TransparentEq>
        groups;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> created_{0};
};

}  // namespace evmp

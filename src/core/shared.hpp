#pragma once
// evmp::shared<T> — a checked wrapper for variables shared across target
// regions, the access half of the EVMP_RACECHECK race verifier
// (analysis/race_check.hpp, DESIGN.md §10).
//
//   evmp::shared<int> total("total");
//   //#omp target virtual(worker) nowait
//   { total.write() += batch; }          // checked write
//   ...
//   use(total.read());                   // checked read
//
// With EVMP_RACECHECK unset every access is a plain null check against a
// pointer captured at construction — no lock, no clock. With the mode on,
// each read()/write() consults the vector-clock state: two accesses with
// no happens-before path through dispatch / completion / wait(tag) edges
// abort with both dispatch chains.
//
// The wrapper is deliberately not a synchronization primitive: it
// detects missing ordering, it does not add any.

#include <string>
#include <utility>

#include "analysis/race_check.hpp"

namespace evmp {

template <typename T>
class shared {
 public:
  explicit shared(std::string name, T value = T())
      : value_(std::move(value)) {
    if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
      shadow_ = rc->create_shadow(std::move(name));
    }
  }

  ~shared() {
    if (shadow_ != nullptr) {
      if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
        rc->destroy_shadow(shadow_);
      }
    }
  }

  shared(const shared&) = delete;
  shared& operator=(const shared&) = delete;

  /// Checked read access.
  [[nodiscard]] const T& read() const {
    if (shadow_ != nullptr) {
      if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
        rc->on_read(shadow_);
      }
    }
    return value_;
  }

  /// Checked write (and read-modify-write) access.
  [[nodiscard]] T& write() {
    if (shadow_ != nullptr) {
      if (analysis::RaceCheck* rc = analysis::RaceCheck::active()) {
        rc->on_write(shadow_);
      }
    }
    return value_;
  }

  shared& operator=(T value) {
    write() = std::move(value);
    return *this;
  }

  operator const T&() const { return read(); }  // NOLINT(google-explicit-*)

 private:
  T value_;
  void* shadow_ = nullptr;  ///< RaceCheck shadow word; null when off
};

}  // namespace evmp

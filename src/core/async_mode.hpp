#pragma once
// The scheduling-property-clause of the extended target directive
// (paper Figure 5 / Table I).

#include <string_view>

namespace evmp {

/// Asynchronous execution mode of a target block.
enum class Async {
  kDefault,  ///< encountering thread waits until the block finishes
  kNowait,   ///< fire-and-forget; no completion notification
  kNameAs,   ///< fire, tag with a name; join later via wait(name-tag)
  kAwait,    ///< continue *after* the block, pumping other events meanwhile
};

/// Clause spelling for diagnostics ("", "nowait", "name_as", "await").
constexpr std::string_view to_string(Async mode) noexcept {
  switch (mode) {
    case Async::kDefault: return "default";
    case Async::kNowait: return "nowait";
    case Async::kNameAs: return "name_as";
    case Async::kAwait: return "await";
  }
  return "?";
}

}  // namespace evmp

#pragma once
// Umbrella header: everything an application needs to use EventMP.

#include "core/async_mode.hpp"     // IWYU pragma: export
#include "core/directive.hpp"      // IWYU pragma: export
#include "core/runtime.hpp"        // IWYU pragma: export
#include "core/shared.hpp"         // IWYU pragma: export
#include "core/tag_group.hpp"      // IWYU pragma: export
#include "core/target.hpp"         // IWYU pragma: export
#include "event/event_loop.hpp"    // IWYU pragma: export
#include "event/gui.hpp"           // IWYU pragma: export
#include "forkjoin/default_team.hpp"  // IWYU pragma: export
#include "forkjoin/parallel_for.hpp"  // IWYU pragma: export
#include "forkjoin/team.hpp"       // IWYU pragma: export
#include "forkjoin/team_pool.hpp"  // IWYU pragma: export

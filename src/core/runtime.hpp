#pragma once
// The EventMP runtime: virtual-target registry + Algorithm 1.
//
// This is the C++ analogue of PjRuntime in the paper. A *virtual target* is
// a named software-level executor sharing the host's memory (paper §III-A);
// the runtime dispatches target blocks to it according to the
// scheduling-property-clause (Table I) using Algorithm 1:
//
//   1. if the encountering thread already belongs to the target executor,
//      run the block synchronously (thread-context awareness);
//   2. otherwise post it asynchronously;
//   3. nowait / name_as: return immediately;
//   4. await: "logical barrier" — while the block is unfinished, the
//      encountering thread processes other queued handlers of its own
//      executor (nested event dispatch on the EDT, task stealing on pools);
//   5. default: block until finished.
//
// Dispatch cost model (DESIGN.md §7): invoke_target_block is a template so
// the user's callable is type-erased exactly once, already wrapped with the
// completion protocol — the wrapper (pooled completion handle + tag group +
// executor + flag + user capture) fits exec::Task's inline buffer, the
// completion state comes from a thread-cached pool, and the per-mode
// counters are relaxed atomics. Steady-state, a nowait dispatch performs no
// heap allocation and takes no lock other than the target's queue shard.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/race_check.hpp"
#include "core/async_mode.hpp"
#include "core/tag_group.hpp"
#include "event/event_loop.hpp"
#include "executor/completion.hpp"
#include "executor/executor.hpp"
#include "executor/locked_work_stealing_executor.hpp"
#include "executor/simulated_device.hpp"
#include "executor/thread_pool_executor.hpp"
#include "executor/work_stealing_executor.hpp"

namespace evmp {

class TargetRef;  // fluent API, target.hpp

/// Error for directives naming an unregistered virtual target.
class TargetNotFound : public std::runtime_error {
 public:
  explicit TargetNotFound(std::string_view target_name)
      : std::runtime_error("virtual target not registered: " +
                           std::string(target_name)) {}
};

/// Per-mode invocation counters (ablation + test observability).
struct RuntimeStats {
  std::uint64_t inline_fast_path = 0;  ///< membership hit, ran synchronously
  std::uint64_t posted = 0;            ///< blocks posted to an executor
  std::uint64_t batch_posts = 0;       ///< invoke_target_batch submissions
  std::uint64_t awaits = 0;
  std::uint64_t await_pumped = 0;      ///< handlers pumped inside awaits
  std::uint64_t default_waits = 0;
};

/// The EventMP runtime. Instantiable (tests create private runtimes); most
/// code uses the process-wide instance via evmp::rt().
class Runtime {
 public:
  Runtime();
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- Table II: virtual target registration ---------------------------
  /// Register an existing event loop as an EDT-type virtual target named
  /// `tname`. The loop must outlive its registration. Mirrors
  /// virtual_target_register_edt(tname) — in the paper the *calling* thread
  /// becomes the target; here the loop object carries that thread.
  void register_edt(std::string tname, event::EventLoop& loop);

  /// Create a worker-type virtual target: a thread pool with at most `m`
  /// threads, named `tname`. Mirrors virtual_target_create_worker(tname, m).
  /// Returns the backing executor (owned by the runtime).
  exec::ThreadPoolExecutor& create_worker(std::string tname, int m);

  /// Create a worker-type virtual target backed by the lock-free
  /// work-stealing pool instead of the central queue (scalability
  /// extension; see bench_ablation_pool). Semantically interchangeable
  /// with create_worker.
  exec::WorkStealingExecutor& create_stealing_worker(std::string tname,
                                                     int m);

  /// Create a worker-type virtual target backed by the mutex-per-deque
  /// stealing pool — the ablation baseline the lock-free pool is measured
  /// against (bench_steal_throughput, bench_ablation_pool). Semantically
  /// interchangeable with create_stealing_worker.
  exec::LockedWorkStealingExecutor& create_locked_stealing_worker(
      std::string tname, int m);

  /// Create a simulated accelerator reachable as device(`id`). Fallback
  /// for the original `target device(n)` form on GPU-less hosts.
  exec::SimulatedDeviceExecutor& register_device(
      int id, exec::SimulatedDeviceExecutor::Config cfg = {});

  /// Register an arbitrary executor under a name (advanced/testing).
  /// Non-owning: the executor must outlive the registration.
  void register_executor(std::string tname, exec::Executor& executor);

  /// Remove a target by name (no-op if absent). Worker targets owned by the
  /// runtime are shut down and destroyed.
  void unregister(std::string_view tname);

  /// Unregister everything (shuts down owned workers).
  void clear();

  /// Look up a target's executor; throws TargetNotFound.
  exec::Executor& resolve(std::string_view tname) const;

  [[nodiscard]] bool has_target(std::string_view tname) const;

  // --- ICVs --------------------------------------------------------------
  /// default-target-var: target used by a directive with no
  /// target-property-clause (analogue of OpenMP's default-device-var).
  void set_default_target(std::string tname);
  [[nodiscard]] std::string default_target() const;

  /// Master switch: when disabled, every directive runs its block inline on
  /// the encountering thread — the "unsupported compiler ignores the
  /// directives" sequential semantics the model guarantees.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // --- Algorithm 1 --------------------------------------------------------
  /// Dispatch a target block to the named virtual target under `mode`.
  /// `tag` is required for Async::kNameAs and ignored otherwise. Returns a
  /// handle to the submission (empty if the block ran inline).
  ///
  /// Templated on the callable so the block is type-erased once, already
  /// inside its completion-protocol wrapper (small captures therefore ride
  /// the Task's inline buffer — no per-post allocation). Accepts anything
  /// invocable with no arguments, including a pre-erased exec::Task.
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  exec::TaskHandle invoke_target_block(std::string_view tname, F&& block,
                                       Async mode = Async::kDefault,
                                       std::string_view tag = {}) {
    DispatchPlan plan = plan_dispatch(tname, mode, tag);
    if (plan.run_inline) {
      block();
      return {};
    }
    plan.executor->post(exec::Task(
        [state = plan.state, group = plan.group, ex = plan.executor,
         report = plan.report_unhandled, birth = plan.race_birth,
         fn = std::forward<F>(block)]() mutable {
          run_dispatched_block(fn, state, group, ex, report, birth);
        }));
    return finish_dispatch(std::move(plan.state), mode, plan.executor);
  }

  /// Batched Algorithm 1: dispatch a burst of target blocks to one virtual
  /// target as a single submission — queue-backed executors take their
  /// shard lock once and wake consumers once for the whole burst (see
  /// Executor::post_batch). Returns one handle per block, in submission
  /// order. Per-block semantics match invoke_target_block: kNowait /
  /// kNameAs return immediately (tag joins via wait_tag as usual); kAwait
  /// applies the logical barrier until every block in the burst finished;
  /// kDefault blocks until every block finished. Blocks run inline (and
  /// the returned handles are empty) when the calling thread belongs to
  /// the target executor or the runtime is disabled.
  std::vector<exec::TaskHandle> invoke_target_batch(
      std::string_view tname, std::vector<exec::Task> blocks,
      Async mode = Async::kNowait, std::string_view tag = {});

  /// Shorthand for a directive with no target-property-clause: dispatch to
  /// the default target.
  template <class F, class = std::enable_if_t<
                         std::is_invocable_v<std::decay_t<F>&>>>
  exec::TaskHandle invoke_default(F&& block, Async mode = Async::kDefault,
                                  std::string_view tag = {}) {
    return invoke_target_block(default_target(), std::forward<F>(block),
                               mode, tag);
  }

  /// Generic await: apply the logical barrier to any completion handle —
  /// the calling thread processes other queued handlers of its own
  /// executor until `handle` is done, then rethrows the handle's
  /// exception if any. This is the integration point for asynchronous
  /// operations that occupy no thread while pending (e.g. the async-I/O
  /// extension the paper lists as future work).
  void await_handle(const exec::TaskHandle& handle);

  /// The wait(name-tag) clause: suspend until all name_as blocks tagged
  /// `tag` have finished. Member threads of an executor help by processing
  /// queued work while waiting. Rethrows the first exception of the group.
  void wait_tag(std::string_view tag);

  /// Fluent directive entry point: rt.target("worker").await([&]{...});
  TargetRef target(std::string tname);

  [[nodiscard]] RuntimeStats stats() const;
  void reset_stats();

 private:
  /// Everything plan-shaped Algorithm 1 decides before the block is
  /// wrapped: where to post, whether to run inline, the pooled completion
  /// state and (for name_as) the entered tag group.
  struct DispatchPlan {
    exec::Executor* executor = nullptr;
    TagGroup* group = nullptr;
    bool report_unhandled = false;
    bool run_inline = false;
    exec::CompletionRef state;
    std::uint64_t race_birth = 0;  ///< EVMP_RACECHECK birth token (0 = off)
  };

  /// Algorithm 1 lines 1-8 (shared by the template and the batch path);
  /// non-template so one instantiation serves every callable type.
  DispatchPlan plan_dispatch(std::string_view tname, Async mode,
                             std::string_view tag);

  /// Post-submission bookkeeping + per-mode join (lines 10-17). `executor`
  /// is the dispatch target (for the EVMP_VERIFY wait-for graph).
  exec::TaskHandle finish_dispatch(exec::CompletionRef state, Async mode,
                                   exec::Executor* executor);

  /// The completion protocol every dispatched block runs under; shared by
  /// the single and batch paths.
  template <class F>
  static void run_dispatched_block(F& fn, exec::CompletionRef& state,
                                   TagGroup* group, exec::Executor* ex,
                                   bool report_unhandled,
                                   std::uint64_t race_birth = 0) {
    // EVMP_RACECHECK: join the dispatch edge before the block's first
    // access; park the clock *before* the completion is published so a
    // joiner always observes it.
    analysis::RaceCheck* rc =
        race_birth != 0 ? analysis::RaceCheck::active() : nullptr;
    if (rc != nullptr) rc->on_block_start(race_birth);
    try {
      fn();
      if (rc != nullptr) rc->on_block_finish(state.get(), group);
      state->set_done();
      if (group != nullptr) group->leave(nullptr);
    } catch (...) {
      auto ep = std::current_exception();
      if (rc != nullptr) rc->on_block_finish(state.get(), group);
      state->set_exception(ep);
      if (group != nullptr) group->leave(ep);
      // A nowait block has no join point; surface the failure via the hook
      // instead of dropping it.
      if (report_unhandled) {
        exec::unhandled_exception_hook()(ex->name(), ep);
      }
    }
  }

  /// The `await` logical barrier (Algorithm 1 lines 13-16). `target` is
  /// the executor the completion belongs to, when known (EVMP_VERIFY edge
  /// attribution; the barrier itself never needs it).
  void await_completion(const exec::CompletionRef& state,
                        exec::Executor* target = nullptr);

  /// A kDefault hard wait, instrumented for the EVMP_VERIFY wait-for
  /// graph. With verification off this is exactly state->wait().
  void verified_wait(const exec::CompletionRef& state,
                     exec::Executor& target);

  struct TargetEntry {
    exec::Executor* executor = nullptr;        // non-owning view
    std::shared_ptr<exec::Executor> owned;     // set when runtime owns it
  };

  mutable std::mutex mu_;
  std::map<std::string, TargetEntry, std::less<>> targets_;
  std::string default_target_ = "worker";
  std::atomic<bool> enabled_{true};

  TagRegistry tags_;

  /// Hot-path counters: relaxed atomics (the seed serialised every
  /// dispatch through a stats mutex).
  struct AtomicStats {
    std::atomic<std::uint64_t> inline_fast_path{0};
    std::atomic<std::uint64_t> posted{0};
    std::atomic<std::uint64_t> batch_posts{0};
    std::atomic<std::uint64_t> awaits{0};
    std::atomic<std::uint64_t> await_pumped{0};
    std::atomic<std::uint64_t> default_waits{0};
  };
  AtomicStats stats_;
};

/// Process-wide runtime instance (lazily constructed, never destroyed before
/// static teardown of its clients).
Runtime& rt();

/// map(to:)/map(from:) support for device targets: model a host<->device
/// transfer of `bytes` on the named target of the global runtime. No-op when
/// the target is not a SimulatedDeviceExecutor (virtual targets share the
/// host memory, so their map clauses need no copies). Used by evmpcc output.
void device_transfer_to(std::string_view tname, std::uint64_t bytes);
void device_transfer_from(std::string_view tname, std::uint64_t bytes);

}  // namespace evmp

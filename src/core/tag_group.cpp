#include "core/tag_group.hpp"

#include <chrono>

namespace evmp {

void TagGroup::enter() {
  std::scoped_lock lk(mu_);
  ++count_;
}

void TagGroup::leave(std::exception_ptr error) {
  // Notify under the lock: a waiter may resume and tear the runtime down
  // as soon as the count is observably zero.
  std::scoped_lock lk(mu_);
  if (error && !first_error_) first_error_ = std::move(error);
  if (--count_ == 0) cv_.notify_all();
}

void TagGroup::wait(const std::function<bool()>& try_help) {
  std::unique_lock lk(mu_);
  while (count_ > 0) {
    if (try_help) {
      lk.unlock();
      const bool helped = try_help();
      lk.lock();
      if (helped) continue;
      // Nothing to steal right now: block briefly, then re-check both the
      // count and the helper (new work may appear in either place).
      cv_.wait_for(lk, std::chrono::microseconds{200},
                   [&] { return count_ == 0; });
    } else {
      cv_.wait(lk, [&] { return count_ == 0; });
    }
  }
  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

int TagGroup::in_flight() const {
  std::scoped_lock lk(mu_);
  return count_;
}

TagGroup& TagRegistry::group(std::string_view tag) {
  std::scoped_lock lk(mu_);
  auto it = groups_.find(tag);
  if (it == groups_.end()) {
    it = groups_.emplace(std::string(tag), std::make_unique<TagGroup>()).first;
  }
  return *it->second;
}

std::size_t TagRegistry::size() const {
  std::scoped_lock lk(mu_);
  return groups_.size();
}

}  // namespace evmp

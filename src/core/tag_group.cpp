#include "core/tag_group.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace evmp {

namespace {
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// On a single-core machine a leaver cannot progress while the waiter
// pause-spins, so the relax phase only delays the hand-over yield.
bool relax_spins_enabled() noexcept {
  static const bool enabled = std::thread::hardware_concurrency() > 1;
  return enabled;
}
}  // namespace

void TagGroup::leave(std::exception_ptr error) noexcept {
  if (error) {
    while (error_lock_.test_and_set(std::memory_order_acquire)) cpu_relax();
    if (!first_error_) first_error_ = std::move(error);
    error_lock_.clear(std::memory_order_release);
    has_error_.store(true, std::memory_order_release);
  }
  // The decrement is the LAST access to this group: a waiter observing
  // zero may immediately destroy the registry (runtime teardown). Atomic
  // RMWs extend the release sequence, so a waiter's acquire load of zero
  // sees every leaver's prior writes, including the error publication.
  count_.fetch_sub(1, std::memory_order_release);
}

void TagGroup::wait(const std::function<bool()>& try_help) {
  // Lock-free join: poll the counter, helping when a helper is supplied.
  // Backoff in three phases: pause instructions (multi-core: leavers are
  // often a cache miss away), then sched_yields (single-core: the leaver
  // cannot decrement until it gets the CPU, and a yield hands it over
  // directly), then escalating naps capped at 100 us — the quantum the
  // seed's condvar path used between help attempts.
  int spins = 0;
  std::chrono::nanoseconds nap{1000};
  while (count_.load(std::memory_order_acquire) > 0) {
    if (try_help && try_help()) {
      spins = 0;
      nap = std::chrono::nanoseconds{1000};
      continue;
    }
    ++spins;
    if (spins < 64 && relax_spins_enabled()) {
      cpu_relax();
      continue;
    }
    if (spins < 320) {
      std::this_thread::yield();
      continue;
    }
    std::this_thread::sleep_for(nap);
    nap = std::min(nap * 2, std::chrono::nanoseconds{100000});
  }
  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    while (error_lock_.test_and_set(std::memory_order_acquire)) cpu_relax();
    err = std::move(first_error_);
    first_error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
    error_lock_.clear(std::memory_order_release);
    if (err) std::rethrow_exception(err);
  }
}

TagRegistry::TagRegistry() {
  for (Shard& shard : shards_) {
    shard.groups.reserve(8);  // first-use inserts stay rehash-free
  }
}

TagGroup& TagRegistry::group(std::string_view tag) {
  const std::size_t hash = TransparentHash{}(tag);
  Shard& shard = shards_[hash & (kShards - 1)];
  std::scoped_lock lk(shard.mu);
  auto it = shard.groups.find(tag);
  if (it == shard.groups.end()) {
    it = shard.groups
             .emplace(std::string(tag), std::make_unique<TagGroup>())
             .first;
    created_.fetch_add(1, std::memory_order_relaxed);
  }
  return *it->second;
}

std::size_t TagRegistry::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lk(shard.mu);
    total += shard.groups.size();
  }
  return total;
}

}  // namespace evmp

#include "analysis/directive_graph.hpp"

#include <utility>

namespace evmp::analysis {

namespace {

/// Offset one past the closing ')' of the `for (...)` header at/after
/// `from`. The analyzer needs the loop *body* as the nesting scope of a
/// parallel-for directive; extract_block on the whole statement would trip
/// over the header's semicolons.
std::size_t skip_for_header(const compiler::SourceScanner& scanner,
                            std::size_t from, int line) {
  const auto src = scanner.source();
  const auto start = scanner.next_code_char(from);
  if (!start || src.substr(*start, 3) != "for") {
    throw compiler::TranslateError(
        line, "'parallel for' directive must precede a for loop");
  }
  const auto open = scanner.next_code_char(*start + 3);
  if (!open || src[*open] != '(') {
    throw compiler::TranslateError(line, "malformed for loop after directive");
  }
  int depth = 0;
  for (std::size_t i = *open; i < src.size(); ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '(') ++depth;
    if (src[i] == ')') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  throw compiler::TranslateError(line, "unbalanced '(' in for loop header");
}

}  // namespace

DirectiveGraph::DirectiveGraph(std::string_view source) : scanner_(source) {
  // One absolute-offset scan; a stack of open structured blocks gives each
  // directive its lexically enclosing directive.
  std::vector<std::pair<int, std::size_t>> open;  // (node index, block end)
  std::size_t pos = 0;
  while (auto m = scanner_.find_directive(pos)) {
    while (!open.empty() && open.back().second <= m->begin) open.pop_back();

    RegionNode node;
    node.directive = compiler::parse_directive(m->text, m->line);
    node.parent = open.empty() ? -1 : open.back().first;
    node.directive_begin = m->begin;
    pos = m->end;

    if (node.directive.kind == compiler::Directive::Kind::kWait) {
      nodes_.push_back(std::move(node));
      continue;
    }

    std::size_t block_from = m->end;
    if (node.directive.kind == compiler::Directive::Kind::kParallelFor) {
      block_from = skip_for_header(scanner_, m->end, m->line);
    }
    const compiler::SourceScanner::Block block =
        scanner_.extract_block(block_from);
    node.block_begin = block.begin;
    node.block_end = block.end;

    const int index = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    open.emplace_back(index, block.end);
  }
}

int DirectiveGraph::enclosing_target(int node) const {
  using Kind = compiler::Directive::Kind;
  int walk = nodes_[static_cast<std::size_t>(node)].parent;
  while (walk >= 0) {
    const RegionNode& ancestor = nodes_[static_cast<std::size_t>(walk)];
    if (ancestor.directive.kind == Kind::kTarget) return walk;
    if (ancestor.directive.kind == Kind::kParallel ||
        ancestor.directive.kind == Kind::kParallelFor) {
      return -1;
    }
    walk = ancestor.parent;
  }
  return -1;
}

}  // namespace evmp::analysis

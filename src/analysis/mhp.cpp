#include "analysis/mhp.hpp"

#include <algorithm>

#include "compilerlib/directive.hpp"

namespace evmp::analysis {

namespace {

using Kind = compiler::Directive::Kind;

bool is_target(const RegionNode& node) {
  return node.directive.kind == Kind::kTarget;
}

bool is_fork_join(const RegionNode& node) {
  return node.directive.kind == Kind::kParallel ||
         node.directive.kind == Kind::kParallelFor;
}

}  // namespace

MhpRelation::MhpRelation(const DirectiveGraph& graph) : graph_(&graph) {
  const auto& nodes = graph.nodes();
  tctx_.resize(nodes.size(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    int parent = nodes[i].parent;
    while (parent >= 0 &&
           !is_target(nodes[static_cast<std::size_t>(parent)])) {
      parent = nodes[static_cast<std::size_t>(parent)].parent;
    }
    tctx_[i] = parent;
  }
}

bool MhpRelation::is_ancestor(int outer, int inner) const {
  const auto& nodes = graph_->nodes();
  int walk = nodes[static_cast<std::size_t>(inner)].parent;
  while (walk >= 0) {
    if (walk == outer) return true;
    walk = nodes[static_cast<std::size_t>(walk)].parent;
  }
  return false;
}

// Does execution reaching byte `from_pos` in context `from_ctx`
// happen-before execution reaching byte `to_pos` in context `to_ctx`?
// Contexts are target regions (-1 = file/function top level); a context
// runs its direct body in program order, so within one context the
// byte order is the answer. Across contexts: a point in an enclosing
// context is ordered before everything in a region it dispatches later,
// and otherwise the whole `from` region must complete first.
bool MhpRelation::point_hb(int from_ctx, std::size_t from_pos, int to_ctx,
                           std::size_t to_pos,
                           std::vector<int>& visiting) const {
  if (from_ctx == to_ctx) return from_pos <= to_pos;
  const auto& nodes = graph_->nodes();
  // If from_ctx (lexically) encloses to_ctx, the dispatch point of the
  // child on to_ctx's ancestor chain orders them.
  int descend = to_ctx;
  while (descend >= 0) {
    const int up = tctx_[static_cast<std::size_t>(descend)];
    if (up == from_ctx) {
      return from_pos <=
             nodes[static_cast<std::size_t>(descend)].directive_begin;
    }
    descend = up;
  }
  if (from_ctx < 0) return false;
  return completes_before_impl(from_ctx, to_ctx, to_pos, visiting);
}

// Does the whole of region `node` complete before execution reaches
// byte `to_pos` in context `to_ctx`?
bool MhpRelation::completes_before_impl(int node, int to_ctx,
                                        std::size_t to_pos,
                                        std::vector<int>& visiting) const {
  if (std::find(visiting.begin(), visiting.end(), node) != visiting.end()) {
    return false;  // wait-tag cycle guard: unprovable, not ordered
  }
  visiting.push_back(node);
  bool ordered = false;
  const auto& nodes = graph_->nodes();
  const RegionNode& n = nodes[static_cast<std::size_t>(node)];
  if (is_fork_join(n)) {
    // Traditional parallel regions are fork-join: done at their own end.
    ordered = point_hb(tctx_[static_cast<std::size_t>(node)], n.block_end,
                       to_ctx, to_pos, visiting);
  } else if (is_target(n)) {
    switch (n.directive.mode) {
      case Async::kDefault:
      case Async::kAwait:
        // Blocking dispatch: complete before the dispatcher moves past
        // the region's own end.
        ordered = point_hb(tctx_[static_cast<std::size_t>(node)], n.block_end,
                           to_ctx, to_pos, visiting);
        break;
      case Async::kNameAs:
        // Joined by any later wait(tag) with a matching tag whose own
        // position is ordered before the destination point.
        for (std::size_t w = 0; w < nodes.size() && !ordered; ++w) {
          const RegionNode& join = nodes[w];
          if (join.directive.kind != Kind::kWait) continue;
          if (join.directive.wait_tag != n.directive.name_tag) continue;
          if (join.directive_begin < n.directive_begin) continue;
          ordered = point_hb(tctx_[w], join.directive_begin, to_ctx, to_pos,
                             visiting);
        }
        break;
      case Async::kNowait:
        ordered = false;  // never joined: MHP with everything after it
        break;
    }
  }
  visiting.pop_back();
  return ordered;
}

bool MhpRelation::completes_before(int node, int ctx, std::size_t pos) const {
  std::vector<int> visiting;
  return completes_before_impl(node, ctx, pos, visiting);
}

bool MhpRelation::may_happen_in_parallel(int a, int b) const {
  if (a == b) return false;
  if (is_ancestor(a, b) || is_ancestor(b, a)) return false;
  const auto& nodes = graph_->nodes();
  const RegionNode& na = nodes[static_cast<std::size_t>(a)];
  const RegionNode& nb = nodes[static_cast<std::size_t>(b)];
  if (completes_before(a, tctx_[static_cast<std::size_t>(b)],
                       nb.directive_begin)) {
    return false;
  }
  if (completes_before(b, tctx_[static_cast<std::size_t>(a)],
                       na.directive_begin)) {
    return false;
  }
  return true;
}

}  // namespace evmp::analysis

#pragma once
// Per-function effect summaries, propagated bottom-up over the call
// graph's strongly connected components (DESIGN.md §12).
//
// A FunctionSummary is the lattice join of everything a call to the
// function can do, directly or through further calls:
//
//   dispatches     target dispatches executed during the call (target
//                  name, async mode, name_as tag), with the call path
//                  from the summarized function down to the directive
//   waits          wait(tag) joins executed during the call
//   param_escapes  by-ref/pointer parameters captured by an asynchronous
//                  (nowait/name_as) region inside the call — the caller's
//                  object outlives the call's own frame only if the
//                  *caller* keeps it alive until the dispatch completes
//
// The table is whole-program: built over one TU for `evmpcc --analyze
// file.cpp`, or over every TU of a multi-file invocation, linking
// identically named functions across files. Same-named definitions merge
// conservatively (their effects union); mutually recursive SCCs share one
// joined summary. Effects are deduplicated by their directive site, so
// summaries stay bounded on deep or cyclic call structures.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/capture_analysis.hpp"
#include "core/async_mode.hpp"

namespace evmp::analysis {

/// One frame of a call path: the caller invokes `callee` at file:line.
struct CallFrame {
  std::string callee;
  std::string file;  ///< empty in single-TU mode
  int line = 0;
};

/// "entry -> g (a.cpp:10) -> h (b.cpp:5)" — each frame is the call site
/// inside the previous function.
[[nodiscard]] std::string render_call_path(std::string_view entry,
                                           const std::vector<CallFrame>& path);

/// The identifier an argument expression plainly names (`x`, `&x`), or
/// empty for anything more complex — the escape mapping only follows
/// arguments whose aliasing is certain.
[[nodiscard]] std::string bare_identifier_arg(std::string_view arg);

/// A target dispatch reachable from a call to the summarized function.
struct SummaryDispatch {
  std::string target;
  Async mode = Async::kDefault;
  std::string tag;             ///< name_as tag, when mode == kNameAs
  std::string file;            ///< directive location
  int line = 0;
  bool conditional = false;    ///< under control flow somewhere on the path
  std::vector<CallFrame> path; ///< empty when the directive is direct
};

/// A wait(tag) join reachable from a call to the summarized function.
struct SummaryWait {
  std::string tag;
  std::string file;
  int line = 0;
  std::vector<CallFrame> path;
};

/// A by-ref parameter escaping into an asynchronous region.
struct ParamEscape {
  std::size_t param = 0;       ///< positional index in the callee's list
  std::string param_name;
  std::string target;
  Async mode = Async::kNowait;
  std::string tag;
  std::string file;            ///< dispatch directive location
  int line = 0;
  bool conditional = false;
  std::vector<CallFrame> path;
};

struct FunctionSummary {
  std::vector<SummaryDispatch> dispatches;
  std::vector<SummaryWait> waits;
  std::vector<ParamEscape> param_escapes;
};

/// One TU's analysis inputs, as the table consumes them.
struct TuView {
  const CallGraph* cg = nullptr;
  const std::vector<RegionAccesses>* captures = nullptr;
  std::string file;  ///< empty in single-TU mode
};

/// Whole-program summary table, keyed by function name.
class SummaryTable {
 public:
  explicit SummaryTable(const std::vector<TuView>& tus);

  /// Summary of a *defined* function, or nullptr for unknown names.
  [[nodiscard]] const FunctionSummary* summary(const std::string& name) const;

  /// True when some resolved call site invokes `name` anywhere in the
  /// program — the analysis has seen the function actually entered, so
  /// frame-lifetime reasoning about its locals applies.
  [[nodiscard]] bool has_caller(const std::string& name) const {
    return callers_.count(name) != 0;
  }

  /// First observed call site of `name` (callee field holds the *calling*
  /// function's name, or "<file scope>"); nullptr when never called.
  [[nodiscard]] const CallFrame* first_caller(const std::string& name) const;

 private:
  std::map<std::string, FunctionSummary> summaries_;
  std::map<std::string, CallFrame> callers_;
};

}  // namespace evmp::analysis

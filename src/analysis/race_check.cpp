#include "analysis/race_check.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "analysis/dispatch_site.hpp"
#include "common/env.hpp"

namespace evmp::analysis {

namespace {

void join_clocks(RaceCheck::Clock& into, const RaceCheck::Clock& other) {
  if (other.size() > into.size()) into.resize(other.size(), 0);
  for (std::size_t i = 0; i < other.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

std::uint64_t clock_at(const RaceCheck::Clock& clock, int slot) {
  const auto index = static_cast<std::size_t>(slot);
  return slot >= 0 && index < clock.size() ? clock[index] : 0;
}

}  // namespace

std::atomic<RaceCheck*> RaceCheck::override_{nullptr};

RaceCheck* RaceCheck::global() {
  static RaceCheck* const instance = []() -> RaceCheck* {
    if (!common::env_bool("EVMP_RACECHECK").value_or(false)) return nullptr;
    return new RaceCheck();  // leaked: workers may outlive static dtors
  }();
  return instance;
}

RaceCheck* RaceCheck::active() noexcept {
  RaceCheck* installed = override_.load(std::memory_order_acquire);
  return installed != nullptr ? installed : global();
}

RaceCheck::ScopedInstall::ScopedInstall(RaceCheck* instance)
    : previous_(override_.exchange(instance, std::memory_order_acq_rel)) {}

RaceCheck::ScopedInstall::~ScopedInstall() {
  override_.store(previous_, std::memory_order_release);
}

void RaceCheck::set_failure_handler(FailureHandler handler) {
  std::scoped_lock lock(mu_);
  handler_ = std::move(handler);
}

RaceCheck::ThreadState& RaceCheck::self_locked() {
  const auto id = std::this_thread::get_id();
  auto [it, inserted] = threads_.try_emplace(id);
  if (inserted) {
    it->second.slot = next_slot_++;
    it->second.clock.resize(static_cast<std::size_t>(it->second.slot) + 1, 0);
    it->second.clock[static_cast<std::size_t>(it->second.slot)] = 1;
    std::ostringstream name;
    name << "external:" << id;
    it->second.chain = name.str();
  }
  return it->second;
}

std::uint64_t RaceCheck::on_dispatch(std::string_view target) {
  // Sampled before the lock: the site stack belongs to this thread.
  std::string site = dispatch_site_path();
  std::scoped_lock lock(mu_);
  ThreadState& self = self_locked();
  const std::uint64_t birth = next_birth_++;
  Birth record;
  record.clock = self.clock;
  record.chain = self.chain + " -> " + std::string(target);
  if (!site.empty()) record.chain += " [at " + site + "]";
  births_.emplace(birth, std::move(record));
  ++self.clock[static_cast<std::size_t>(self.slot)];
  return birth;
}

void RaceCheck::on_block_start(std::uint64_t birth) {
  std::scoped_lock lock(mu_);
  ThreadState& self = self_locked();
  const auto it = births_.find(birth);
  if (it == births_.end()) return;
  join_clocks(self.clock, it->second.clock);
  self.chain = std::move(it->second.chain);
  births_.erase(it);
  ++self.clock[static_cast<std::size_t>(self.slot)];
}

void RaceCheck::on_block_finish(const void* completion,
                                const void* tag_group) {
  std::scoped_lock lock(mu_);
  ThreadState& self = self_locked();
  // Overwrite-before-publish: CompletionStates are pooled, and a pointer
  // is only recycled after a fresh block finishes on it — which lands
  // here first and replaces the stale clock.
  deaths_[completion] = self.clock;
  if (tag_group != nullptr) {
    join_clocks(tag_clocks_[tag_group], self.clock);
  }
  ++self.clock[static_cast<std::size_t>(self.slot)];
}

void RaceCheck::on_join(const void* completion) {
  std::scoped_lock lock(mu_);
  const auto it = deaths_.find(completion);
  if (it == deaths_.end()) return;
  join_clocks(self_locked().clock, it->second);
}

void RaceCheck::on_tag_join(const void* tag_group) {
  std::scoped_lock lock(mu_);
  const auto it = tag_clocks_.find(tag_group);
  if (it == tag_clocks_.end()) return;
  join_clocks(self_locked().clock, it->second);
}

void* RaceCheck::create_shadow(std::string name) {
  return new Shadow{std::move(name), -1, 0, {}, {}, {}};
}

void RaceCheck::destroy_shadow(void* shadow) {
  delete static_cast<Shadow*>(shadow);
}

void RaceCheck::on_read(void* shadow) {
  std::string report;
  {
    std::scoped_lock lock(mu_);
    auto* s = static_cast<Shadow*>(shadow);
    ThreadState& self = self_locked();
    if (s->write_slot >= 0 && s->write_slot != self.slot &&
        clock_at(self.clock, s->write_slot) < s->write_epoch) {
      report = report_locked(*s, self, "read", "write", s->write_chain);
    }
    const auto slot = static_cast<std::size_t>(self.slot);
    if (slot >= s->reads.size()) {
      s->reads.resize(slot + 1, 0);
      s->read_chains.resize(slot + 1);
    }
    s->reads[slot] = self.clock[slot];
    s->read_chains[slot] = self.chain;
  }
  if (!report.empty()) fail(report);
}

void RaceCheck::on_write(void* shadow) {
  std::string report;
  {
    std::scoped_lock lock(mu_);
    auto* s = static_cast<Shadow*>(shadow);
    ThreadState& self = self_locked();
    if (s->write_slot >= 0 && s->write_slot != self.slot &&
        clock_at(self.clock, s->write_slot) < s->write_epoch) {
      report = report_locked(*s, self, "write", "write", s->write_chain);
    }
    if (report.empty()) {
      for (std::size_t r = 0; r < s->reads.size(); ++r) {
        if (s->reads[r] == 0 || static_cast<int>(r) == self.slot) continue;
        if (clock_at(self.clock, static_cast<int>(r)) < s->reads[r]) {
          report =
              report_locked(*s, self, "write", "read", s->read_chains[r]);
          break;
        }
      }
    }
    s->write_slot = self.slot;
    s->write_epoch = self.clock[static_cast<std::size_t>(self.slot)];
    s->write_chain = self.chain;
  }
  if (!report.empty()) fail(report);
}

std::string RaceCheck::report_locked(const Shadow& shadow,
                                     const ThreadState& self,
                                     const char* current, const char* prior,
                                     const std::string& prior_chain) const {
  std::ostringstream out;
  out << "EVMP_RACECHECK: data race on shared variable '" << shadow.name
      << "':\n  current " << current << " via dispatch chain [" << self.chain
      << "]\n  unordered prior " << prior << " via dispatch chain ["
      << prior_chain
      << "]\nno dispatch, completion, or wait(tag) edge orders these "
         "accesses — join the producing block (blocking/await dispatch or "
         "wait(tag)) before touching '"
      << shadow.name << "'\n";
  return out.str();
}

void RaceCheck::fail(const std::string& report) {
  FailureHandler handler;
  {
    std::scoped_lock lock(mu_);
    handler = handler_;
  }
  if (handler) {
    handler(report);
    return;
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace evmp::analysis

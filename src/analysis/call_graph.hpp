#pragma once
// Per-TU call-graph substrate for the interprocedural analyzer
// (DESIGN.md §12): the DirectiveGraph's regions tied back to the function
// definitions that lexically contain them, plus every call site that can
// carry effects (dispatches, waits, escaping captures) across frames.
//
// The function/call detection itself lives in compilerlib
// (function_scanner.hpp) so the translator's --annotate-sites mode names
// the same frames the static diagnostics do.

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/directive_graph.hpp"
#include "compilerlib/function_scanner.hpp"

namespace evmp::analysis {

/// One call site attributed to its enclosing function.
struct AttributedCall {
  compiler::CallSite site;
  int caller = -1;           ///< index into functions(), -1 at file scope
  bool conditional = false;  ///< lexically under if/else/loop/switch/catch
};

/// Functions, call sites, and directive attribution of one TU.
class CallGraph {
 public:
  explicit CallGraph(const DirectiveGraph& graph);

  [[nodiscard]] const std::vector<compiler::FunctionDef>& functions()
      const noexcept {
    return functions_;
  }
  [[nodiscard]] const std::vector<AttributedCall>& calls() const noexcept {
    return calls_;
  }
  [[nodiscard]] const DirectiveGraph& graph() const noexcept { return *graph_; }

  /// Innermost function definition whose body contains `pos`, or -1.
  [[nodiscard]] int function_at(std::size_t pos) const {
    return compiler::function_at(functions_, pos);
  }

  /// Index of the function named `name`, or -1 (first definition wins).
  [[nodiscard]] int function_named(const std::string& name) const;

  /// Region nodes (indices into graph().nodes()) directly attributed to
  /// the function — the innermost function containing the directive.
  [[nodiscard]] std::vector<int> regions_of(int function) const;

  /// Execution context of a byte offset: the innermost enclosing target
  /// region's target name. Empty when the position runs on the enclosing
  /// function's own thread, or inside a parallel region (team threads are
  /// not the enclosing target's thread — same rule as
  /// DirectiveGraph::enclosing_target).
  [[nodiscard]] std::string context_target(std::size_t pos) const;

  /// True when the byte is lexically under control flow (if/else/loop/
  /// switch/catch) — the statement may not execute, or not exactly once.
  [[nodiscard]] bool conditional_at(std::size_t pos) const {
    return pos < conditional_.size() && conditional_[pos];
  }

 private:
  const DirectiveGraph* graph_;
  std::vector<compiler::FunctionDef> functions_;
  std::vector<AttributedCall> calls_;
  std::vector<bool> conditional_;
};

}  // namespace evmp::analysis

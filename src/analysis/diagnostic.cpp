#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace evmp::analysis {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

DiagnosticCounts count(const std::vector<Diagnostic>& diags) {
  DiagnosticCounts counts;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      ++counts.errors;
    } else {
      ++counts.warnings;
    }
  }
  return counts;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

std::string render_text(const std::vector<Diagnostic>& diags,
                        std::string_view file) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << (d.file.empty() ? file : std::string_view(d.file)) << ":" << d.line
        << ": " << to_string(d.severity) << "[" << d.rule
        << "]: " << d.message << "\n";
  }
  return out.str();
}

std::string render_json(const std::vector<Diagnostic>& diags,
                        std::string_view file) {
  const DiagnosticCounts counts = count(diags);
  std::ostringstream out;
  out << "{\n  \"file\": \"" << json_escape(file) << "\",\n"
      << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diags) {
    out << (first ? "" : ",") << "\n    {\"rule\": \"" << json_escape(d.rule)
        << "\", \"severity\": \"" << to_string(d.severity)
        << "\", \"line\": " << d.line << ", \"message\": \""
        << json_escape(d.message) << "\"";
    if (!d.file.empty()) out << ", \"file\": \"" << json_escape(d.file) << "\"";
    out << "}";
    first = false;
  }
  if (!first) out << "\n  ";
  out << "],\n  \"errors\": " << counts.errors
      << ",\n  \"warnings\": " << counts.warnings << "\n}\n";
  return out.str();
}

namespace {

/// One-line rule summaries for the SARIF rule metadata.
const char* rule_description(std::string_view rule) {
  if (rule == "E1") return "Blocking dispatch to the executor already running the region (self-deadlock)";
  if (rule == "E2") return "Blocking dispatch from the event-dispatch thread (EDT freeze)";
  if (rule == "E3") return "Cyclic blocking chain between virtual targets";
  if (rule == "E4") return "Data race between concurrent target regions on a by-reference capture";
  if (rule == "E5") return "Use after scope: a by-reference capture outlives its storage across an unjoined asynchronous dispatch";
  if (rule == "W1") return "wait(tag) with no name_as(tag) producer, or a name_as tag never joined";
  if (rule == "W2") return "Loop control variable captured by reference in an asynchronous region";
  if (rule == "W3") return "Possible data race (conditional or indirect access)";
  if (rule == "W4") return "Possible use after scope (conditional dispatch or access)";
  if (rule == "P1") return "Directive does not parse";
  return "EventMP directive lint finding";
}

}  // namespace

std::string render_sarif(const std::vector<Diagnostic>& diags,
                         std::string_view file) {
  // Rule metadata: every distinct rule id present, in sorted order, with a
  // stable index the results reference.
  std::vector<std::string> rules;
  for (const Diagnostic& d : diags) {
    if (std::find(rules.begin(), rules.end(), d.rule) == rules.end()) {
      rules.push_back(d.rule);
    }
  }
  std::sort(rules.begin(), rules.end());

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"evmpcc\",\n"
      << "          \"informationUri\": "
         "\"https://github.com/eventmp/eventmp\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n            {\"id\": \""
        << json_escape(rules[i]) << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_description(rules[i])) << "\"}}";
  }
  if (!rules.empty()) out << "\n          ";
  out << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  bool first = true;
  for (const Diagnostic& d : diags) {
    const std::size_t rule_index = static_cast<std::size_t>(
        std::find(rules.begin(), rules.end(), d.rule) - rules.begin());
    const std::string_view uri = d.file.empty() ? file : d.file;
    out << (first ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
        << "          \"ruleIndex\": " << rule_index << ",\n"
        << "          \"level\": \"" << to_string(d.severity) << "\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(uri) << "\"}, \"region\": {\"startLine\": "
        << (d.line > 0 ? d.line : 1) << "}}}]\n"
        << "        }";
    first = false;
  }
  if (!first) out << "\n      ";
  out << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace evmp::analysis

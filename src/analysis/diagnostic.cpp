#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace evmp::analysis {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

DiagnosticCounts count(const std::vector<Diagnostic>& diags) {
  DiagnosticCounts counts;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      ++counts.errors;
    } else {
      ++counts.warnings;
    }
  }
  return counts;
}

void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

std::string render_text(const std::vector<Diagnostic>& diags,
                        std::string_view file) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << file << ":" << d.line << ": " << to_string(d.severity) << "["
        << d.rule << "]: " << d.message << "\n";
  }
  return out.str();
}

std::string render_json(const std::vector<Diagnostic>& diags,
                        std::string_view file) {
  const DiagnosticCounts counts = count(diags);
  std::ostringstream out;
  out << "{\n  \"file\": \"" << json_escape(file) << "\",\n"
      << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diags) {
    out << (first ? "" : ",") << "\n    {\"rule\": \"" << json_escape(d.rule)
        << "\", \"severity\": \"" << to_string(d.severity)
        << "\", \"line\": " << d.line << ", \"message\": \""
        << json_escape(d.message) << "\"}";
    first = false;
  }
  if (!first) out << "\n  ";
  out << "],\n  \"errors\": " << counts.errors
      << ",\n  \"warnings\": " << counts.warnings << "\n}\n";
  return out.str();
}

}  // namespace evmp::analysis

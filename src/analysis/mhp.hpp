#pragma once
// May-happen-in-parallel (MHP) relation over a DirectiveGraph.
//
// Two target regions are MHP unless the analysis can prove an ordering:
//
//   * lexical containment — a region and its (transitive) lexical
//     ancestors are treated as ordered (the ancestor dispatched it);
//   * a blocking-mode dispatch — a kDefault or kAwait region completes
//     at its dispatch site, so everything the dispatching context runs
//     afterwards is ordered after the whole region (`await` pumps, but
//     it still does not continue past the barrier);
//   * a wait(tag) join — a name_as(tag) region completes before any
//     point that is ordered after a matching `wait(tag)` directive.
//
// The relation is transitive through dispatch chains: orderings recurse
// through the completing region's own context (e.g. a name_as block
// joined by a wait *inside* an await region is ordered before anything
// that follows the await region). `nowait` regions are never ordered
// with anything outside their own body. Traditional parallel /
// parallel-for regions are fork-join: they complete in place.
//
// This is the foundation of the E4/W3 data-race rules (analyzer.cpp)
// and the relation the distributed-target verifier (ROADMAP item 3)
// will extend across processes.

#include <cstddef>
#include <vector>

#include "analysis/directive_graph.hpp"

namespace evmp::analysis {

class MhpRelation {
 public:
  /// Precomputes target-context chains. The graph must outlive the
  /// relation.
  explicit MhpRelation(const DirectiveGraph& graph);

  /// True when `outer` is a lexical ancestor of `inner`.
  [[nodiscard]] bool is_ancestor(int outer, int inner) const;

  /// Nearest enclosing *target-region* ancestor of `node`, or -1 for
  /// top level. Unlike DirectiveGraph::enclosing_target, traditional
  /// parallel regions are transparent here: the walk is about lexical
  /// execution contexts, not executor identity.
  [[nodiscard]] int target_context(int node) const {
    return tctx_[static_cast<std::size_t>(node)];
  }

  /// True when every access inside region `node` happens-before
  /// execution reaching byte `pos`, where `pos` lies in the direct body
  /// of region `ctx` (-1 = file scope). Conservative: false means
  /// "cannot prove ordering", not "definitely racy".
  [[nodiscard]] bool completes_before(int node, int ctx,
                                      std::size_t pos) const;

  /// Region-granular MHP: false when the regions are ordered by
  /// containment or either completes before the other's dispatch point.
  /// MHP(a, a) is defined false (one region instance is sequential;
  /// loop-dispatched sibling instances are out of scope for the static
  /// rules).
  [[nodiscard]] bool may_happen_in_parallel(int a, int b) const;

 private:
  [[nodiscard]] bool point_hb(int from_ctx, std::size_t from_pos, int to_ctx,
                              std::size_t to_pos,
                              std::vector<int>& visiting) const;
  [[nodiscard]] bool completes_before_impl(int node, int to_ctx,
                                           std::size_t to_pos,
                                           std::vector<int>& visiting) const;

  const DirectiveGraph* graph_;
  std::vector<int> tctx_;  ///< node -> nearest kTarget ancestor (or -1)
};

}  // namespace evmp::analysis

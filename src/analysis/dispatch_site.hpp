#pragma once
// Dispatch-site frames for the runtime verifiers.
//
// `evmpcc --annotate-sites` wraps every translated dispatch in a
// ScopedDispatchSite naming the enclosing function (the same frame names
// the static analyzer's interprocedural call paths use, via the shared
// compilerlib function scanner). The EVMP_VERIFY wait-for-graph and the
// EVMP_RACECHECK vector-clock verifier sample dispatch_site_path() when
// they record an edge or a task birth, so their reports carry the source
// call chain that performed the dispatch — "worker [via main -> submit]"
// instead of an anonymous executor name.
//
// The stack is per-thread and allocation-free on the push/pop path: a
// fixed array of string-literal pointers. Frames beyond the depth cap are
// counted but not stored ("... " suffix in the rendered path). With no
// annotation (the default translation) the stack stays empty and every
// query is a thread-local load.

#include <string>

namespace evmp::analysis {

/// Push a frame name (must outlive the scope — generated code passes a
/// string literal). Balanced by pop_dispatch_site().
void push_dispatch_site(const char* frame) noexcept;
void pop_dispatch_site() noexcept;

/// True when the calling thread has at least one frame pushed.
[[nodiscard]] bool has_dispatch_site() noexcept;

/// " -> "-joined frame names of the calling thread, outermost first;
/// empty when no frame is pushed.
[[nodiscard]] std::string dispatch_site_path();

/// RAII frame around one translated dispatch.
class ScopedDispatchSite {
 public:
  explicit ScopedDispatchSite(const char* frame) noexcept {
    push_dispatch_site(frame);
  }
  ScopedDispatchSite(const ScopedDispatchSite&) = delete;
  ScopedDispatchSite& operator=(const ScopedDispatchSite&) = delete;
  ~ScopedDispatchSite() { pop_dispatch_site(); }
};

}  // namespace evmp::analysis

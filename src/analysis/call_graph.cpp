#include "analysis/call_graph.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace evmp::analysis {

namespace {

using compiler::CharClass;
using compiler::SourceScanner;

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t match_close(const SourceScanner& scanner, std::size_t open,
                        char open_ch, char close_ch) {
  const auto src = scanner.source();
  int depth = 0;
  for (std::size_t i = open; i < src.size(); ++i) {
    if (scanner.at(i) != CharClass::kCode) continue;
    if (src[i] == open_ch) ++depth;
    if (src[i] == close_ch && --depth == 0) return i;
  }
  return std::string_view::npos;
}

/// Mark the dependent statement of a control keyword: the attached
/// `{...}` block, or up to the statement-terminating ';' at depth zero.
void mark_statement(const SourceScanner& scanner, std::size_t from,
                    std::vector<bool>& mask) {
  const auto src = scanner.source();
  const auto start = scanner.next_code_char(from);
  if (!start) return;
  std::size_t end;
  if (src[*start] == '{') {
    end = match_close(scanner, *start, '{', '}');
  } else {
    end = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = *start; i < src.size(); ++i) {
      if (scanner.at(i) != CharClass::kCode) continue;
      const char c = src[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';' && depth == 0) {
        end = i;
        break;
      }
    }
  }
  if (end == std::string_view::npos) return;
  for (std::size_t i = *start; i <= end && i < mask.size(); ++i) {
    mask[i] = true;
  }
}

/// Conditional-byte mask: every byte lexically under if/else/for/while/
/// do/switch/catch. Matches the spirit of capture_analysis's access
/// classification — such a statement may run zero times (or, for loops,
/// a data-dependent number of times).
std::vector<bool> conditional_mask(const SourceScanner& scanner) {
  static constexpr std::array<std::string_view, 7> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "catch"};
  const auto src = scanner.source();
  std::vector<bool> mask(src.size(), false);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (scanner.at(i) != CharClass::kCode || !is_ident_char(src[i])) continue;
    if (i > 0 && scanner.at(i - 1) == CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    std::size_t e = i;
    while (e < src.size() && scanner.at(e) == CharClass::kCode &&
           is_ident_char(src[e])) {
      ++e;
    }
    const std::string_view word = src.substr(i, e - i);
    bool control = false;
    for (const std::string_view k : kKeywords) control |= (word == k);
    if (!control) {
      i = e - 1;
      continue;
    }
    std::size_t body_from = e;
    if (word != "else" && word != "do") {
      const auto open = scanner.next_code_char(e);
      if (!open || src[*open] != '(') {
        i = e - 1;
        continue;
      }
      const std::size_t close = match_close(scanner, *open, '(', ')');
      if (close == std::string_view::npos) {
        i = e - 1;
        continue;
      }
      body_from = close + 1;
    }
    mark_statement(scanner, body_from, mask);
    i = e - 1;
  }
  return mask;
}

}  // namespace

CallGraph::CallGraph(const DirectiveGraph& graph)
    : graph_(&graph),
      functions_(compiler::scan_functions(graph.scanner())),
      conditional_(conditional_mask(graph.scanner())) {
  const auto src = graph.scanner().source();
  for (compiler::CallSite& site :
       compiler::scan_calls(graph.scanner(), 0, src.size())) {
    AttributedCall call;
    call.caller = compiler::function_at(functions_, site.pos);
    call.conditional = conditional_at(site.pos);
    call.site = std::move(site);
    calls_.push_back(std::move(call));
  }
}

int CallGraph::function_named(const std::string& name) const {
  for (int i = 0; i < static_cast<int>(functions_.size()); ++i) {
    if (functions_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

std::vector<int> CallGraph::regions_of(int function) const {
  std::vector<int> out;
  if (function < 0 ||
      function >= static_cast<int>(functions_.size())) {
    return out;
  }
  const auto& nodes = graph_->nodes();
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const std::size_t pos = nodes[static_cast<std::size_t>(i)].directive_begin;
    if (function_at(pos) == function) out.push_back(i);
  }
  return out;
}

std::string CallGraph::context_target(std::size_t pos) const {
  const auto& nodes = graph_->nodes();
  int innermost = -1;
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const RegionNode& node = nodes[static_cast<std::size_t>(i)];
    if (node.block_end == 0) continue;  // standalone wait: no block
    if (node.block_begin <= pos && pos < node.block_end) {
      if (innermost < 0 ||
          node.block_begin >
              nodes[static_cast<std::size_t>(innermost)].block_begin) {
        innermost = i;
      }
    }
  }
  if (innermost < 0) return {};
  const compiler::Directive& d =
      nodes[static_cast<std::size_t>(innermost)].directive;
  if (d.kind != compiler::Directive::Kind::kTarget) return {};  // parallel
  return d.target_name();
}

}  // namespace evmp::analysis

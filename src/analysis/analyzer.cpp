#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "analysis/call_graph.hpp"
#include "analysis/capture_analysis.hpp"
#include "analysis/function_summary.hpp"
#include "analysis/mhp.hpp"

namespace evmp::analysis {

namespace {

using compiler::Directive;
using Kind = Directive::Kind;

constexpr std::string_view kEdtName = "edt";

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool in_list(const std::vector<std::string>& list, const std::string& name) {
  return std::find(list.begin(), list.end(), name) != list.end();
}

/// One translation unit of the analysis: its directive graph, call graph,
/// and capture accesses. `file` is empty in single-TU mode, which keeps
/// every message and rendering byte-identical to the historical output.
struct Tu {
  std::string file;
  std::unique_ptr<DirectiveGraph> owned;  ///< program mode owns its graph
  const DirectiveGraph* graph = nullptr;
  std::unique_ptr<CallGraph> cg;
  std::vector<RegionAccesses> captures;
};

/// "line 7" in single-TU mode, "a.cpp:7" when the location names a file.
std::string loc_of(const std::string& file, int line) {
  if (file.empty()) return "line " + std::to_string(line);
  return file + ":" + std::to_string(line);
}

// --- E1 / E2: blocking dispatch from a forbidden execution context -------

void check_blocking_context(const DirectiveGraph& graph,
                            std::vector<Diagnostic>& out) {
  const auto& nodes = graph.nodes();
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const RegionNode& node = nodes[static_cast<std::size_t>(i)];
    if (node.directive.kind != Kind::kTarget ||
        node.directive.mode != Async::kDefault) {
      continue;
    }
    const int host_index = graph.enclosing_target(i);
    if (host_index < 0) continue;
    const std::string host =
        nodes[static_cast<std::size_t>(host_index)].directive.target_name();
    const std::string target = node.directive.target_name();
    if (host.empty() || target.empty()) continue;  // default-target ICV
    if (host == target) {
      out.push_back(
          {"E1", Severity::kError, node.directive.line,
           "blocking default-mode dispatch to '" + target +
               "' from a region already running on '" + host +
               "': a busy serial executor deadlocks on itself — use await, "
               "nowait, or name_as"});
    } else if (host == kEdtName) {
      out.push_back(
          {"E2", Severity::kError, node.directive.line,
           "blocking default-mode dispatch to '" + target + "' from the '" +
               std::string(kEdtName) +
               "' region blocks the event-dispatch thread (the Figure 1 "
               "freeze) — use await or nowait"});
    }
  }
}

// --- interprocedural E1 / E2: the blocking dispatch sits in a callee -----

void check_call_blocking(const Tu& tu, const SummaryTable& table,
                         std::vector<Diagnostic>& out) {
  // One finding per (call line, rule, target): a call chain reaching the
  // same bad dispatch through several paths reports once.
  std::set<std::tuple<int, std::string, std::string>> seen;
  for (const AttributedCall& call : tu.cg->calls()) {
    const std::string host = tu.cg->context_target(call.site.pos);
    if (host.empty()) continue;
    const FunctionSummary* summary = table.summary(call.site.callee);
    if (summary == nullptr) continue;
    for (const SummaryDispatch& d : summary->dispatches) {
      if (d.mode != Async::kDefault || d.target.empty()) continue;
      const bool self = d.target == host;
      if (!self && host != kEdtName) continue;
      const std::string rule = self ? "E1" : "E2";
      if (!seen.emplace(call.site.line, rule, d.target).second) continue;
      std::vector<CallFrame> path{{call.site.callee, tu.file, call.site.line}};
      path.insert(path.end(), d.path.begin(), d.path.end());
      std::string entry = "<file scope>";
      if (call.caller >= 0) {
        entry =
            tu.cg->functions()[static_cast<std::size_t>(call.caller)].name;
      }
      const std::string via = render_call_path(entry, path) +
                              " (dispatch at " + loc_of(d.file, d.line) + ")";
      if (self) {
        out.push_back(
            {"E1", Severity::kError, call.site.line,
             "blocking default-mode dispatch to '" + d.target +
                 "' reached from a region already running on '" + host +
                 "' through " + via +
                 ": a busy serial executor deadlocks on itself — use await, "
                 "nowait, or name_as"});
      } else {
        out.push_back(
            {"E2", Severity::kError, call.site.line,
             "blocking default-mode dispatch to '" + d.target +
                 "' reached from the '" + std::string(kEdtName) +
                 "' region through " + via +
                 " blocks the event-dispatch thread (the Figure 1 freeze) — "
                 "use await or nowait"});
      }
    }
  }
}

// --- E3: cyclic blocking chains ------------------------------------------

/// One cross-target blocking dependency: while a thread of `from` runs the
/// enclosing region, it hard-blocks until `to` makes progress.
struct BlockingEdge {
  std::string from;
  std::string to;
  int line = 0;
  std::string why;
  std::string file;
};

std::vector<BlockingEdge> blocking_edges(const std::vector<Tu>& tus,
                                         const SummaryTable& table) {
  // name_as producers of the whole program, in TU/node order, deduplicated
  // per (tag, target) — wait(tag) joins block on each producer's target.
  std::vector<std::pair<std::string, std::string>> producers;
  {
    std::set<std::pair<std::string, std::string>> producer_seen;
    for (const Tu& tu : tus) {
      for (const RegionNode& node : tu.graph->nodes()) {
        if (node.directive.mode != Async::kNameAs) continue;
        const std::string target = node.directive.target_name();
        if (target.empty()) continue;
        if (producer_seen.emplace(node.directive.name_tag, target).second) {
          producers.emplace_back(node.directive.name_tag, target);
        }
      }
    }
  }

  std::vector<BlockingEdge> edges;
  std::set<std::pair<std::string, std::string>> join_seen;
  for (const Tu& tu : tus) {
    const auto& nodes = tu.graph->nodes();
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
      const RegionNode& node = nodes[static_cast<std::size_t>(i)];
      const int host_index = tu.graph->enclosing_target(i);
      if (host_index < 0) continue;
      const std::string host =
          nodes[static_cast<std::size_t>(host_index)].directive.target_name();
      if (host.empty()) continue;
      if (node.directive.kind == Kind::kTarget &&
          node.directive.mode == Async::kDefault) {
        const std::string target = node.directive.target_name();
        if (!target.empty() && target != host) {
          edges.push_back({host, target, node.directive.line,
                           "default-mode dispatch", tu.file});
        }
      } else if (node.directive.kind == Kind::kWait) {
        // wait(tag) hard-blocks on every name_as(tag) producer's target.
        // The self-target case is excluded: the waiting member thread pumps
        // its own queue (wait_tag's help function), so it cannot wedge.
        for (const auto& [tag, target] : producers) {
          if (tag != node.directive.wait_tag) continue;
          if (target == host) continue;
          if (!join_seen.emplace(host, target).second) continue;
          edges.push_back({host, target, node.directive.line,
                           "wait(" + node.directive.wait_tag + ") join",
                           tu.file});
        }
      }
    }
    // Call-mediated blocking: a call inside a region whose callee's
    // summary blocks (default-mode dispatch or wait join) on another
    // executor blocks the hosting executor the same way.
    for (const AttributedCall& call : tu.cg->calls()) {
      const std::string host = tu.cg->context_target(call.site.pos);
      if (host.empty()) continue;
      const FunctionSummary* summary = table.summary(call.site.callee);
      if (summary == nullptr) continue;
      for (const SummaryDispatch& d : summary->dispatches) {
        if (d.mode != Async::kDefault || d.target.empty()) continue;
        if (d.target == host) continue;  // E1's domain
        edges.push_back({host, d.target, call.site.line,
                         "default-mode dispatch via call to " +
                             render_call_path(call.site.callee, d.path),
                         tu.file});
      }
      for (const SummaryWait& w : summary->waits) {
        for (const auto& [tag, target] : producers) {
          if (tag != w.tag || target == host) continue;
          if (!join_seen.emplace(host, target).second) continue;
          edges.push_back({host, target, call.site.line,
                           "wait(" + w.tag + ") join via call to " +
                               render_call_path(call.site.callee, w.path),
                           tu.file});
        }
      }
    }
  }
  return edges;
}

/// Strongly connected components (Tarjan) over the target-name graph.
std::vector<std::vector<std::string>> components(
    const std::vector<BlockingEdge>& edges) {
  std::vector<std::string> names;
  std::map<std::string, int> ids;
  auto id_of = [&](const std::string& name) {
    auto [it, inserted] = ids.emplace(name, static_cast<int>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  };
  std::vector<std::vector<int>> adj;
  for (const BlockingEdge& e : edges) {
    const int from = id_of(e.from);
    const int to = id_of(e.to);
    adj.resize(names.size());
    adj[static_cast<std::size_t>(from)].push_back(to);
  }
  adj.resize(names.size());

  const int n = static_cast<int>(names.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<std::size_t>(v)] =
        low[static_cast<std::size_t>(v)] = counter++;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (const int w : adj[static_cast<std::size_t>(v)]) {
      if (index[static_cast<std::size_t>(w)] < 0) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] = std::min(
            low[static_cast<std::size_t>(v)], low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     index[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
      std::vector<std::string> scc;
      for (;;) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        scc.push_back(names[static_cast<std::size_t>(w)]);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  };
  for (int v = 0; v < n; ++v) {
    if (index[static_cast<std::size_t>(v)] < 0) strongconnect(v);
  }
  return sccs;
}

void check_blocking_cycles(const std::vector<BlockingEdge>& edges,
                           std::vector<Diagnostic>& out) {
  for (const std::vector<std::string>& scc : components(edges)) {
    if (scc.size() < 2) continue;  // self-edges are excluded by construction
    const std::set<std::string> members(scc.begin(), scc.end());
    std::vector<const BlockingEdge*> internal;
    for (const BlockingEdge& e : edges) {
      if (members.count(e.from) != 0 && members.count(e.to) != 0) {
        internal.push_back(&e);
      }
    }
    std::sort(internal.begin(), internal.end(),
              [](const BlockingEdge* a, const BlockingEdge* b) {
                if (a->file != b->file) return a->file < b->file;
                return a->line < b->line;
              });

    // Best-effort chain for the message: follow internal edges from the
    // earliest one until the walk closes.
    std::string chain = internal.front()->from;
    std::string cursor = internal.front()->from;
    for (std::size_t step = 0; step <= members.size(); ++step) {
      const BlockingEdge* next = nullptr;
      for (const BlockingEdge* e : internal) {
        if (e->from == cursor) {
          next = e;
          break;
        }
      }
      if (next == nullptr) break;
      chain += " -> " + next->to;
      cursor = next->to;
      if (cursor == internal.front()->from) break;
    }

    std::string detail;
    for (const BlockingEdge* e : internal) {
      if (!detail.empty()) detail += "; ";
      detail += loc_of(e->file, e->line) + ": '" + e->from + "' blocks on '" +
                e->to + "' via " + e->why;
    }
    out.push_back({"E3", Severity::kError, internal.front()->line,
                   "cyclic blocking chain between virtual targets: " + chain +
                       " (" + detail + ")",
                   internal.front()->file});
  }
}

// --- W1: unmatched name_as / wait tags -----------------------------------

void check_tag_pairing(const std::vector<Tu>& tus, bool linked,
                       std::vector<Diagnostic>& out) {
  struct TagSite {
    int line = 0;
    std::string file;
  };
  std::map<std::string, TagSite> producers;  // tag -> first name_as site
  std::map<std::string, TagSite> waits;      // tag -> first wait site
  for (const Tu& tu : tus) {
    for (const RegionNode& node : tu.graph->nodes()) {
      if (node.directive.mode == Async::kNameAs) {
        producers.emplace(node.directive.name_tag,
                          TagSite{node.directive.line, tu.file});
      } else if (node.directive.kind == Kind::kWait) {
        waits.emplace(node.directive.wait_tag,
                      TagSite{node.directive.line, tu.file});
      }
    }
  }
  const std::string scope =
      linked ? "anywhere in the linked program" : "in this translation unit";
  for (const auto& [tag, site] : waits) {
    if (producers.count(tag) != 0) continue;
    out.push_back({"W1", Severity::kWarning, site.line,
                   "wait(" + tag + ") has no name_as(" + tag + ") producer " +
                       scope + " — the wait completes immediately",
                   site.file});
  }
  for (const auto& [tag, site] : producers) {
    if (waits.count(tag) != 0) continue;
    out.push_back({"W1", Severity::kWarning, site.line,
                   "name_as tag '" + tag + "' is never joined by wait(" + tag +
                       ") — the tagged blocks complete unobserved",
                   site.file});
  }
}

// --- W2: by-reference loop-variable capture escaping the iteration -------

struct Loop {
  std::string var;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// Split at top-level (paren/bracket-depth zero) occurrences of `sep`.
std::vector<std::string> split_top_level(const std::string& s, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && (s[i] == '(' || s[i] == '[' || s[i] == '{')) ++depth;
    if (i < s.size() && (s[i] == ')' || s[i] == ']' || s[i] == '}')) --depth;
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string trailing_identifier(const std::string& text) {
  std::size_t end = text.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  if (begin == end ||
      std::isdigit(static_cast<unsigned char>(text[begin])) != 0) {
    return {};
  }
  return text.substr(begin, end - begin);
}

/// The control variable of a for header: the declared/assigned variable of
/// the init statement, or the declaration of a range-for.
std::string loop_var_of(const std::string& header) {
  std::string decl;
  const std::vector<std::string> init = split_top_level(header, ';');
  if (init.size() >= 2) {
    decl = init[0];
  } else {
    // Range-for: split at the first top-level ':' that is not part of '::'.
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 0 || c != ':') continue;
      if ((i + 1 < header.size() && header[i + 1] == ':') ||
          (i > 0 && header[i - 1] == ':')) {
        continue;
      }
      decl = header.substr(0, i);
      break;
    }
    if (decl.empty()) return {};
  }
  const std::size_t assign = [&] {
    int depth = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
      const char c = decl[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 0 || c != '=') continue;
      const bool compare = (i + 1 < decl.size() && decl[i + 1] == '=') ||
                           (i > 0 && (decl[i - 1] == '=' || decl[i - 1] == '!' ||
                                      decl[i - 1] == '<' || decl[i - 1] == '>'));
      if (!compare) return i;
    }
    return decl.size();
  }();
  return trailing_identifier(decl.substr(0, assign));
}

std::vector<Loop> find_loops(const compiler::SourceScanner& scanner) {
  std::vector<Loop> loops;
  const auto src = scanner.source();
  for (std::size_t i = 0; i + 3 < src.size(); ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src.compare(i, 3, "for") != 0) continue;
    if (i > 0 && scanner.at(i - 1) == compiler::CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    if (is_ident_char(src[i + 3])) continue;
    const auto open = scanner.next_code_char(i + 3);
    if (!open || src[*open] != '(') continue;
    int depth = 0;
    std::size_t close = std::string_view::npos;
    for (std::size_t j = *open; j < src.size(); ++j) {
      if (scanner.at(j) != compiler::CharClass::kCode) continue;
      if (src[j] == '(') ++depth;
      if (src[j] == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == std::string_view::npos) continue;
    Loop loop;
    loop.var = loop_var_of(std::string(src.substr(*open + 1, close - *open - 1)));
    try {
      const compiler::SourceScanner::Block body =
          scanner.extract_block(close + 1);
      loop.body_begin = body.begin;
      loop.body_end = body.end;
    } catch (const compiler::TranslateError&) {
      continue;  // not a loop the lint can reason about
    }
    if (!loop.var.empty()) loops.push_back(std::move(loop));
  }
  return loops;
}

bool identifier_used(const compiler::SourceScanner& scanner, std::size_t begin,
                     std::size_t end, const std::string& name) {
  const auto src = scanner.source();
  end = std::min(end, src.size());
  for (std::size_t i = begin; i + name.size() <= end; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src.compare(i, name.size(), name) != 0) continue;
    if (i > begin && scanner.at(i - 1) == compiler::CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    const std::size_t after = i + name.size();
    if (after < end && scanner.at(after) == compiler::CharClass::kCode &&
        is_ident_char(src[after])) {
      continue;
    }
    return true;
  }
  return false;
}

void check_loop_captures(const DirectiveGraph& graph,
                         std::vector<Diagnostic>& out) {
  const std::vector<Loop> loops = find_loops(graph.scanner());
  if (loops.empty()) return;
  for (const RegionNode& node : graph.nodes()) {
    if (node.directive.kind != Kind::kTarget) continue;
    if (node.directive.mode != Async::kNowait &&
        node.directive.mode != Async::kNameAs) {
      continue;
    }
    if (node.directive.default_none) continue;  // no implicit [&] capture
    std::set<std::string> reported;
    for (const Loop& loop : loops) {
      if (node.directive_begin < loop.body_begin ||
          node.directive_begin >= loop.body_end) {
        continue;
      }
      if (in_list(node.directive.firstprivate, loop.var)) continue;
      if (!identifier_used(graph.scanner(), node.block_begin, node.block_end,
                           loop.var)) {
        continue;
      }
      if (!reported.insert(loop.var).second) continue;
      out.push_back(
          {"W2", Severity::kWarning, node.directive.line,
           "loop variable '" + loop.var +
               "' is captured by reference in this asynchronous region and "
               "may be read after the iteration advances — add firstprivate(" +
               loop.var + ")"});
    }
  }
}

// --- E4 / W3: cross-region data races over the MHP relation --------------

/// True when the byte range between the two positions never leaves a
/// function body (absolute brace depth stays >= 1). Regions in different
/// functions share no stack frame, so same-named captures are different
/// variables — the race rules are intra-procedural.
bool same_function(const compiler::SourceScanner& scanner, std::size_t a,
                   std::size_t b) {
  const auto src = scanner.source();
  const std::size_t from = std::min(a, b);
  const std::size_t to = std::max(a, b);
  int depth = 0;
  for (std::size_t i = 0; i < from; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}') --depth;
  }
  if (depth <= 0) return false;
  for (std::size_t i = from; i < to; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}') --depth;
    if (depth <= 0) return false;
  }
  return true;
}

void check_data_races(const DirectiveGraph& graph,
                      const std::vector<RegionAccesses>& regions,
                      std::vector<Diagnostic>& out) {
  if (regions.size() < 2) return;
  const auto& nodes = graph.nodes();
  const MhpRelation mhp(graph);

  // One diagnostic per (anchor line, variable), strongest severity wins.
  std::map<std::pair<int, std::string>, Diagnostic> reports;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const int a = regions[i].node;
      const int b = regions[j].node;
      const RegionNode& na = nodes[static_cast<std::size_t>(a)];
      const RegionNode& nb = nodes[static_cast<std::size_t>(b)];
      if (na.directive.target_name() == kEdtName &&
          nb.directive.target_name() == kEdtName) {
        continue;  // one serial event loop: the regions mutually exclude
      }
      if (!same_function(graph.scanner(), na.directive_begin,
                         nb.directive_begin)) {
        continue;
      }
      if (!mhp.may_happen_in_parallel(a, b)) continue;
      for (const VarAccess& x : regions[i].accesses) {
        for (const VarAccess& y : regions[j].accesses) {
          if (x.name != y.name) continue;
          if (!x.write && !y.write) continue;
          // Access-level refinement: a wait(tag) inside a region can
          // order individual statements even when the regions overlap.
          if (mhp.completes_before(a, b, y.pos)) continue;
          if (mhp.completes_before(b, a, x.pos)) continue;
          const bool definite =
              x.direct && y.direct && !x.conditional && !y.conditional;
          const char* shape = nullptr;
          if (x.write && y.write) {
            shape = "written by this region and by the concurrent region";
          } else if (y.write) {
            shape = "written by this region and read by the concurrent region";
          } else {
            shape = "read by this region and written by the concurrent region";
          }
          std::string message =
              std::string(definite ? "data race: captured variable '"
                                   : "possible data race: captured variable '") +
              x.name + "' is " + shape + " at line " +
              std::to_string(na.directive.line) +
              " with no ordering between them — join the producer "
              "(blocking dispatch, await, or wait(tag)) or privatize with "
              "firstprivate(" +
              x.name + ")";
          if (!definite) {
            message += " [conditional or indirect access; confirm with "
                       "EVMP_RACECHECK=1]";
          }
          const Diagnostic diag{definite ? "E4" : "W3",
                                definite ? Severity::kError
                                         : Severity::kWarning,
                                nb.directive.line, std::move(message)};
          const auto key = std::make_pair(diag.line, x.name);
          const auto it = reports.find(key);
          if (it == reports.end()) {
            reports.emplace(key, diag);
          } else if (it->second.rule == "W3" && diag.rule == "E4") {
            it->second = diag;
          }
        }
      }
    }
  }
  for (auto& [key, diag] : reports) out.push_back(std::move(diag));
}

/// Indirect-write augmentation for the race rules: a call inside a region
/// that passes an already-captured variable to a by-ref parameter of a
/// known function may mutate it on the region's thread. The access is
/// indirect, so it can only ever contribute W3-grade findings.
void augment_indirect_accesses(
    Tu& tu, const std::map<std::string, std::vector<bool>>& byref_params) {
  const auto& nodes = tu.graph->nodes();
  for (const AttributedCall& call : tu.cg->calls()) {
    const auto params = byref_params.find(call.site.callee);
    if (params == byref_params.end()) continue;
    int region_index = -1;
    std::size_t innermost = 0;
    for (std::size_t r = 0; r < tu.captures.size(); ++r) {
      const RegionNode& node =
          nodes[static_cast<std::size_t>(tu.captures[r].node)];
      if (node.block_begin <= call.site.pos &&
          call.site.pos < node.block_end &&
          (region_index < 0 || node.block_begin > innermost)) {
        region_index = static_cast<int>(r);
        innermost = node.block_begin;
      }
    }
    if (region_index < 0) continue;
    RegionAccesses& region = tu.captures[static_cast<std::size_t>(region_index)];
    const std::size_t argc =
        std::min(params->second.size(), call.site.args.size());
    for (std::size_t p = 0; p < argc; ++p) {
      if (!params->second[p]) continue;
      const std::string var = bare_identifier_arg(call.site.args[p]);
      if (var.empty()) continue;
      // Only variables the capture pass already deemed captured (not
      // region-local, not firstprivate) can race through the callee.
      const bool captured =
          std::any_of(region.accesses.begin(), region.accesses.end(),
                      [&](const VarAccess& a) { return a.name == var; });
      if (!captured) continue;
      VarAccess access;
      access.name = var;
      access.pos = call.site.pos;
      access.line = call.site.line;
      access.write = true;
      access.direct = false;
      access.conditional = call.conditional;
      region.accesses.push_back(std::move(access));
    }
  }
}

// --- E5 / W4: captured storage dying before an unjoined async dispatch ---

/// Tokens after which an identifier is an expression operand, not a
/// declared name (`return total;` does not declare `total`).
bool non_declaring_intro(std::string_view token) {
  static const std::unordered_set<std::string_view> kSet = {
      "return",   "throw",    "case",      "goto",     "new",  "delete",
      "sizeof",   "co_await", "co_return", "co_yield", "else", "do",
      "typeid",   "operator",
  };
  return kSet.count(token) != 0;
}

/// Byte offset of the last plausible declaration of `name` in [from, to),
/// or npos. Token-level heuristic mirroring capture_analysis: the name is
/// declared when preceded by a type-ish token (`int total`), a `&`/`*`
/// declarator after a type token (`const auto& feed`), or a closed
/// template argument list (`std::vector<int> v`).
std::size_t find_declaration(const compiler::SourceScanner& scanner,
                             std::size_t from, std::size_t to,
                             const std::string& name) {
  const auto src = scanner.source();
  to = std::min(to, src.size());
  std::size_t found = std::string_view::npos;
  for (std::size_t i = from; i + name.size() <= to; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src.compare(i, name.size(), name) != 0) continue;
    if (i > 0 && scanner.at(i - 1) == compiler::CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    const std::size_t after = i + name.size();
    if (after < src.size() && scanner.at(after) == compiler::CharClass::kCode &&
        is_ident_char(src[after])) {
      continue;
    }
    // Previous non-whitespace code character decides declaration-ness.
    std::size_t p = i;
    std::size_t prev = std::string_view::npos;
    while (p > from) {
      --p;
      if (scanner.at(p) != compiler::CharClass::kCode) continue;
      if (std::isspace(static_cast<unsigned char>(src[p])) != 0) continue;
      prev = p;
      break;
    }
    if (prev == std::string_view::npos) continue;
    const char prevc = src[prev];
    bool decl = false;
    if (is_ident_char(prevc)) {
      std::size_t begin = prev;
      while (begin > from && is_ident_char(src[begin - 1])) --begin;
      const std::string_view intro = src.substr(begin, prev - begin + 1);
      decl = !non_declaring_intro(intro) &&
             std::isdigit(static_cast<unsigned char>(intro.front())) == 0;
    } else if (prevc == '&' || prevc == '*') {
      // `int& r` / `int* p`; require a type token right before the
      // declarator run so `a & b` / `a * b` stay expressions.
      std::size_t run = prev;
      while (run > from && (src[run - 1] == '&' || src[run - 1] == '*')) --run;
      decl = run > from &&
             (is_ident_char(src[run - 1]) || src[run - 1] == '>');
    } else if (prevc == '>') {
      // Template close directly after the argument (`std::vector<int> v`),
      // not a comparison (`v > w name` has whitespace before '>').
      decl = prev > from &&
             (is_ident_char(src[prev - 1]) || src[prev - 1] == '>' ||
              src[prev - 1] == '*' || src[prev - 1] == '&');
    }
    if (decl) found = i;
  }
  return found;
}

struct DeclScope {
  std::size_t open = 0;   ///< the scope's '{'
  std::size_t close = 0;  ///< one past the matching '}'
  bool frame = false;     ///< the function body itself
};

/// Innermost brace scope of `fn`'s body holding a declaration at `pos`.
DeclScope scope_of_declaration(const compiler::SourceScanner& scanner,
                               const compiler::FunctionDef& fn,
                               std::size_t pos) {
  const auto src = scanner.source();
  std::vector<std::size_t> stack;
  for (std::size_t i = fn.body_begin; i < pos && i < src.size(); ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') stack.push_back(i);
    if (src[i] == '}' && !stack.empty()) stack.pop_back();
  }
  if (stack.size() <= 1) return {fn.body_begin, fn.body_end, true};
  const std::size_t open = stack.back();
  int depth = 0;
  for (std::size_t i = open; i < fn.body_end && i < src.size(); ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}' && --depth == 0) return {open, i + 1, false};
  }
  return {fn.body_begin, fn.body_end, true};
}

/// One variable escaping by reference into an asynchronous dispatch,
/// either captured directly by a region of this function or passed to a
/// callee whose summary records a parameter escape.
struct EscapeEvent {
  std::string var;
  std::size_t pos = 0;  ///< anchor: directive marker or call site
  int line = 0;
  Async mode = Async::kNowait;
  std::string tag;
  std::string target;
  bool conditional = false;
  std::vector<CallFrame> path;  ///< empty for a direct capture
  std::string dispatch_file;
  int dispatch_line = 0;
};

/// A join between `from` and `to` inside function `fn` that fences the
/// escaping dispatch: wait(tag) for name_as, or a blocking/await dispatch
/// to the same target (the serial executor drains its FIFO first). Joins
/// reached through calls count via the callee summaries.
bool joined_in_range(const Tu& tu, const SummaryTable& table, int fn,
                     const EscapeEvent& event, std::size_t from,
                     std::size_t to) {
  for (const RegionNode& node : tu.graph->nodes()) {
    if (node.directive_begin <= from || node.directive_begin >= to) continue;
    if (tu.cg->function_at(node.directive_begin) != fn) continue;
    if (event.mode == Async::kNameAs && node.directive.kind == Kind::kWait &&
        node.directive.wait_tag == event.tag) {
      return true;
    }
    if (node.directive.kind == Kind::kTarget &&
        (node.directive.mode == Async::kDefault ||
         node.directive.mode == Async::kAwait) &&
        node.directive.target_name() == event.target) {
      return true;
    }
  }
  for (const AttributedCall& call : tu.cg->calls()) {
    if (call.site.pos <= from || call.site.pos >= to) continue;
    if (call.caller != fn) continue;
    const FunctionSummary* summary = table.summary(call.site.callee);
    if (summary == nullptr) continue;
    if (event.mode == Async::kNameAs) {
      for (const SummaryWait& w : summary->waits) {
        if (w.tag == event.tag) return true;
      }
    }
    for (const SummaryDispatch& d : summary->dispatches) {
      if ((d.mode == Async::kDefault || d.mode == Async::kAwait) &&
          d.target == event.target) {
        return true;
      }
    }
  }
  return false;
}

void check_capture_lifetimes(const Tu& tu, const SummaryTable& table,
                             std::vector<Diagnostic>& out) {
  const compiler::SourceScanner& scanner = tu.graph->scanner();
  const auto& nodes = tu.graph->nodes();
  const auto& functions = tu.cg->functions();
  const std::vector<Loop> loops = find_loops(scanner);
  std::set<std::pair<int, std::string>> reported;

  for (int f = 0; f < static_cast<int>(functions.size()); ++f) {
    const compiler::FunctionDef& fn = functions[static_cast<std::size_t>(f)];
    std::vector<EscapeEvent> events;

    // Direct captures of this function's asynchronous regions.
    for (const int node_index : tu.cg->regions_of(f)) {
      const RegionNode& node = nodes[static_cast<std::size_t>(node_index)];
      const Directive& d = node.directive;
      if (d.kind != Kind::kTarget) continue;
      if (d.mode != Async::kNowait && d.mode != Async::kNameAs) continue;
      if (d.default_none) continue;
      const bool dispatch_conditional =
          tu.cg->conditional_at(node.directive_begin);
      std::map<std::string, bool> vars;  // name -> has unconditional access
      for (const RegionAccesses& region : tu.captures) {
        if (region.node != node_index) continue;
        for (const VarAccess& access : region.accesses) {
          auto [it, inserted] = vars.emplace(access.name, !access.conditional);
          if (!inserted && !access.conditional) it->second = true;
        }
      }
      for (const auto& [var, unconditional] : vars) {
        EscapeEvent event;
        event.var = var;
        event.pos = node.directive_begin;
        event.line = d.line;
        event.mode = d.mode;
        event.tag = d.name_tag;
        event.target = d.target_name();
        event.conditional = dispatch_conditional || !unconditional;
        event.dispatch_file = tu.file;
        event.dispatch_line = d.line;
        events.push_back(std::move(event));
      }
    }

    // Arguments escaping by reference through callee dispatches.
    for (const AttributedCall& call : tu.cg->calls()) {
      if (call.caller != f) continue;
      const FunctionSummary* summary = table.summary(call.site.callee);
      if (summary == nullptr) continue;
      for (const ParamEscape& escape : summary->param_escapes) {
        if (escape.param >= call.site.args.size()) continue;
        const std::string var =
            bare_identifier_arg(call.site.args[escape.param]);
        if (var.empty()) continue;
        EscapeEvent event;
        event.var = var;
        event.pos = call.site.pos;
        event.line = call.site.line;
        event.mode = escape.mode;
        event.tag = escape.tag;
        event.target = escape.target;
        event.conditional = call.conditional || escape.conditional;
        event.path.push_back({call.site.callee, tu.file, call.site.line});
        event.path.insert(event.path.end(), escape.path.begin(),
                          escape.path.end());
        event.dispatch_file = escape.file;
        event.dispatch_line = escape.line;
        events.push_back(std::move(event));
      }
    }

    for (const EscapeEvent& event : events) {
      // Parameters: a by-ref parameter is the caller's storage (reported
      // at the caller's call site through the escape summary); a by-value
      // parameter lives in this frame.
      bool is_param = false;
      bool byref_param = false;
      for (const compiler::FunctionParam& param : fn.params) {
        if (param.name == event.var) {
          is_param = true;
          byref_param = param.by_ref;
        }
      }
      if (byref_param) continue;
      bool frame = is_param;
      std::size_t scope_limit = fn.body_end;
      std::size_t scope_close_pos = fn.body_end;
      if (!is_param) {
        const std::size_t decl = find_declaration(
            scanner, fn.body_begin + 1, event.pos, event.var);
        if (decl == std::string_view::npos) continue;  // outer/global/member
        const DeclScope scope = scope_of_declaration(scanner, fn, decl);
        frame = scope.frame;
        scope_limit = scope.close;
        scope_close_pos = scope.close == 0 ? 0 : scope.close - 1;
        if (!frame && event.pos >= scope.close) continue;  // shadowed name
      }
      // Loop control variables are W2's domain.
      bool loop_var = false;
      for (const Loop& loop : loops) {
        if (loop.var == event.var && event.pos >= loop.body_begin &&
            event.pos < loop.body_end) {
          loop_var = true;
        }
      }
      if (loop_var) continue;
      if (joined_in_range(tu, table, f, event, event.pos,
                          frame ? fn.body_end : scope_limit)) {
        continue;
      }
      const CallFrame* caller = table.first_caller(fn.name);
      if (frame && caller == nullptr) continue;  // analysis horizon: the
                                                 // frame may well be main's
      if (!reported.emplace(event.line, event.var).second) continue;

      const std::string mode_text = event.mode == Async::kNameAs
                                        ? "name_as(" + event.tag + ")"
                                        : "nowait";
      std::string how;
      if (event.path.empty()) {
        how = "is captured by reference by the " + mode_text +
              " dispatch to '" + event.target + "'";
      } else {
        how = "escapes by reference into the " + mode_text +
              " dispatch to '" + event.target + "' through " +
              render_call_path(fn.name, event.path) + " (dispatch at " +
              loc_of(event.dispatch_file, event.dispatch_line) + ")";
      }
      std::string doom;
      if (frame) {
        doom = "the frame of '" + fn.name +
               "' is torn down when it returns (called from " +
               loc_of(caller->file, caller->line) + ")";
      } else {
        doom = "its storage dies at the end of the enclosing block (line " +
               std::to_string(scanner.line_of(scope_close_pos)) + ")";
      }
      const std::string join =
          event.mode == Async::kNameAs
              ? "join with wait(" + event.tag +
                    ") or a blocking dispatch to '" + event.target +
                    "' while the storage is live"
              : "join with a blocking or await dispatch to '" + event.target +
                    "' while the storage is live";
      const std::string privatize =
          event.path.empty()
              ? "capture it by value with firstprivate(" + event.var + ")"
              : "pass it by value";
      const bool definite = !event.conditional;
      std::string message =
          std::string(definite ? "use after scope: variable '"
                               : "possible use after scope: variable '") +
          event.var + "' " + how + " but " + doom +
          " while the dispatch may still be pending — " + join + ", or " +
          privatize;
      if (!definite) {
        message +=
            " [conditional dispatch or access — the escape may not occur on "
            "every execution]";
      }
      out.push_back({definite ? "E5" : "W4",
                     definite ? Severity::kError : Severity::kWarning,
                     event.line, std::move(message)});
    }
  }
}

// --- evmp-lint-ignore suppression comments --------------------------------

std::map<int, std::set<std::string>> collect_ignores(
    const compiler::SourceScanner& scanner) {
  constexpr std::string_view kMarker = "evmp-lint-ignore";
  const auto src = scanner.source();
  std::map<int, std::set<std::string>> out;
  for (std::size_t i = 0; i + kMarker.size() <= src.size(); ++i) {
    if (!scanner.is_comment(i)) continue;
    if (src.compare(i, kMarker.size(), kMarker) != 0) continue;
    std::set<std::string> rules;
    std::size_t j = i + kMarker.size();
    while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) ++j;
    if (j < src.size() && src[j] == '(') {
      ++j;
      std::string current;
      while (j < src.size() && src[j] != ')' && src[j] != '\n') {
        const char c = src[j++];
        if (c == ',') {
          if (!current.empty()) rules.insert(current);
          current.clear();
        } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          current += c;
        }
      }
      if (!current.empty()) rules.insert(current);
    }
    if (rules.empty()) rules.insert("*");  // bare marker: all rules
    out[scanner.line_of(i)].insert(rules.begin(), rules.end());
    i += kMarker.size() - 1;
  }
  return out;
}

/// Drop suppressed findings anchored in the TU that `scanner`/`file`
/// describe; findings of other TUs are left for their own pass.
void filter_ignored(std::vector<Diagnostic>& diags,
                    const compiler::SourceScanner& scanner,
                    const std::string& file) {
  const std::map<int, std::set<std::string>> ignores = collect_ignores(scanner);
  if (ignores.empty()) return;
  std::erase_if(diags, [&](const Diagnostic& d) {
    if (d.file != file) return false;
    for (const int line : {d.line, d.line - 1}) {
      const auto it = ignores.find(line);
      if (it != ignores.end() &&
          (it->second.count("*") != 0 || it->second.count(d.rule) != 0)) {
        return true;
      }
    }
    return false;
  });
}

// --- driver ---------------------------------------------------------------

std::vector<Diagnostic> analyze_linked(std::vector<Tu>& tus,
                                       const AnalyzeOptions& options,
                                       bool linked) {
  for (Tu& tu : tus) {
    tu.cg = std::make_unique<CallGraph>(*tu.graph);
    tu.captures = analyze_captures(*tu.graph);
  }
  std::vector<TuView> views;
  views.reserve(tus.size());
  for (const Tu& tu : tus) {
    views.push_back({tu.cg.get(), &tu.captures, tu.file});
  }
  const SummaryTable table(views);

  // Whole-program by-ref parameter shapes (first definition wins), for the
  // indirect-write augmentation of the race rules.
  std::map<std::string, std::vector<bool>> byref_params;
  for (const Tu& tu : tus) {
    for (const compiler::FunctionDef& fn : tu.cg->functions()) {
      std::vector<bool> shape;
      shape.reserve(fn.params.size());
      bool any = false;
      for (const compiler::FunctionParam& param : fn.params) {
        const bool by_ref = param.by_ref && !param.name.empty();
        shape.push_back(by_ref);
        any = any || by_ref;
      }
      if (any) byref_params.try_emplace(fn.name, std::move(shape));
    }
  }
  for (Tu& tu : tus) augment_indirect_accesses(tu, byref_params);

  std::vector<Diagnostic> out;
  for (Tu& tu : tus) {
    std::vector<Diagnostic> local;
    check_blocking_context(*tu.graph, local);
    check_call_blocking(tu, table, local);
    check_loop_captures(*tu.graph, local);
    check_data_races(*tu.graph, tu.captures, local);
    check_capture_lifetimes(tu, table, local);
    for (Diagnostic& d : local) {
      if (d.file.empty()) d.file = tu.file;
      out.push_back(std::move(d));
    }
  }
  check_tag_pairing(tus, linked, out);
  check_blocking_cycles(blocking_edges(tus, table), out);

  if (options.honor_ignores) {
    for (const Tu& tu : tus) {
      filter_ignored(out, tu.graph->scanner(), tu.file);
    }
  }
  sort_diagnostics(out);
  return out;
}

Diagnostic parse_failure(const compiler::TranslateError& e,
                         const std::string& file) {
  // Strip the "line N: " prefix the exception bakes into what(); the
  // diagnostic carries the line separately.
  std::string message = e.what();
  const std::string prefix = "line " + std::to_string(e.line()) + ": ";
  if (message.rfind(prefix, 0) == 0) message = message.substr(prefix.size());
  return {"P1", Severity::kError, e.line(),
          "directive does not parse: " + message, file};
}

}  // namespace

std::vector<Diagnostic> analyze(const DirectiveGraph& graph,
                                const AnalyzeOptions& options) {
  std::vector<Tu> tus(1);
  tus.front().graph = &graph;
  return analyze_linked(tus, options, /*linked=*/false);
}

std::vector<Diagnostic> analyze_source(std::string_view source,
                                       const AnalyzeOptions& options) {
  try {
    const DirectiveGraph graph(source);
    return analyze(graph, options);
  } catch (const compiler::TranslateError& e) {
    std::vector<Diagnostic> diags{parse_failure(e, {})};
    if (options.honor_ignores) {
      // The scan-only classifier never throws, so suppression comments
      // still apply to parse failures.
      const compiler::SourceScanner scanner(source);
      filter_ignored(diags, scanner, {});
    }
    return diags;
  }
}

std::vector<Diagnostic> analyze_program(const std::vector<SourceUnit>& units,
                                        const AnalyzeOptions& options) {
  std::vector<Diagnostic> out;
  std::vector<Tu> tus;
  tus.reserve(units.size());
  for (const SourceUnit& unit : units) {
    try {
      Tu tu;
      tu.file = unit.file;
      tu.owned = std::make_unique<DirectiveGraph>(unit.text);
      tu.graph = tu.owned.get();
      tus.push_back(std::move(tu));
    } catch (const compiler::TranslateError& e) {
      // The unit cannot be linked; report it and analyze the rest.
      std::vector<Diagnostic> diags{parse_failure(e, unit.file)};
      if (options.honor_ignores) {
        const compiler::SourceScanner scanner(unit.text);
        filter_ignored(diags, scanner, unit.file);
      }
      out.insert(out.end(), diags.begin(), diags.end());
    }
  }
  if (!tus.empty()) {
    std::vector<Diagnostic> linked =
        analyze_linked(tus, options, /*linked=*/units.size() > 1);
    out.insert(out.end(), std::make_move_iterator(linked.begin()),
               std::make_move_iterator(linked.end()));
  }
  sort_diagnostics(out);
  return out;
}

}  // namespace evmp::analysis

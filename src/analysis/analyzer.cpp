#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "analysis/capture_analysis.hpp"
#include "analysis/mhp.hpp"

namespace evmp::analysis {

namespace {

using compiler::Directive;
using Kind = Directive::Kind;

constexpr std::string_view kEdtName = "edt";

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool in_list(const std::vector<std::string>& list, const std::string& name) {
  return std::find(list.begin(), list.end(), name) != list.end();
}

// --- E1 / E2: blocking dispatch from a forbidden execution context -------

void check_blocking_context(const DirectiveGraph& graph,
                            std::vector<Diagnostic>& out) {
  const auto& nodes = graph.nodes();
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const RegionNode& node = nodes[static_cast<std::size_t>(i)];
    if (node.directive.kind != Kind::kTarget ||
        node.directive.mode != Async::kDefault) {
      continue;
    }
    const int host_index = graph.enclosing_target(i);
    if (host_index < 0) continue;
    const std::string host =
        nodes[static_cast<std::size_t>(host_index)].directive.target_name();
    const std::string target = node.directive.target_name();
    if (host.empty() || target.empty()) continue;  // default-target ICV
    if (host == target) {
      out.push_back(
          {"E1", Severity::kError, node.directive.line,
           "blocking default-mode dispatch to '" + target +
               "' from a region already running on '" + host +
               "': a busy serial executor deadlocks on itself — use await, "
               "nowait, or name_as"});
    } else if (host == kEdtName) {
      out.push_back(
          {"E2", Severity::kError, node.directive.line,
           "blocking default-mode dispatch to '" + target + "' from the '" +
               std::string(kEdtName) +
               "' region blocks the event-dispatch thread (the Figure 1 "
               "freeze) — use await or nowait"});
    }
  }
}

// --- E3: cyclic blocking chains ------------------------------------------

/// One cross-target blocking dependency: while a thread of `from` runs the
/// enclosing region, it hard-blocks until `to` makes progress.
struct BlockingEdge {
  std::string from;
  std::string to;
  int line = 0;
  std::string why;
};

std::vector<BlockingEdge> blocking_edges(const DirectiveGraph& graph) {
  std::vector<BlockingEdge> edges;
  std::set<std::pair<std::string, std::string>> join_seen;
  const auto& nodes = graph.nodes();
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const RegionNode& node = nodes[static_cast<std::size_t>(i)];
    const int host_index = graph.enclosing_target(i);
    if (host_index < 0) continue;
    const std::string host =
        nodes[static_cast<std::size_t>(host_index)].directive.target_name();
    if (host.empty()) continue;
    if (node.directive.kind == Kind::kTarget &&
        node.directive.mode == Async::kDefault) {
      const std::string target = node.directive.target_name();
      if (!target.empty() && target != host) {
        edges.push_back({host, target, node.directive.line,
                         "default-mode dispatch"});
      }
    } else if (node.directive.kind == Kind::kWait) {
      // wait(tag) hard-blocks on every name_as(tag) producer's target.
      // The self-target case is excluded: the waiting member thread pumps
      // its own queue (wait_tag's help function), so it cannot wedge.
      for (const RegionNode& producer : nodes) {
        if (producer.directive.mode != Async::kNameAs ||
            producer.directive.name_tag != node.directive.wait_tag) {
          continue;
        }
        const std::string target = producer.directive.target_name();
        if (target.empty() || target == host) continue;
        if (!join_seen.emplace(host, target).second) continue;
        edges.push_back({host, target, node.directive.line,
                         "wait(" + node.directive.wait_tag + ") join"});
      }
    }
  }
  return edges;
}

/// Strongly connected components (Tarjan) over the target-name graph.
std::vector<std::vector<std::string>> components(
    const std::vector<BlockingEdge>& edges) {
  std::vector<std::string> names;
  std::map<std::string, int> ids;
  auto id_of = [&](const std::string& name) {
    auto [it, inserted] = ids.emplace(name, static_cast<int>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  };
  std::vector<std::vector<int>> adj;
  for (const BlockingEdge& e : edges) {
    const int from = id_of(e.from);
    const int to = id_of(e.to);
    adj.resize(names.size());
    adj[static_cast<std::size_t>(from)].push_back(to);
  }
  adj.resize(names.size());

  const int n = static_cast<int>(names.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<std::size_t>(v)] =
        low[static_cast<std::size_t>(v)] = counter++;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (const int w : adj[static_cast<std::size_t>(v)]) {
      if (index[static_cast<std::size_t>(w)] < 0) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] = std::min(
            low[static_cast<std::size_t>(v)], low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     index[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
      std::vector<std::string> scc;
      for (;;) {
        const int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        scc.push_back(names[static_cast<std::size_t>(w)]);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  };
  for (int v = 0; v < n; ++v) {
    if (index[static_cast<std::size_t>(v)] < 0) strongconnect(v);
  }
  return sccs;
}

void check_blocking_cycles(const DirectiveGraph& graph,
                           std::vector<Diagnostic>& out) {
  const std::vector<BlockingEdge> edges = blocking_edges(graph);
  for (const std::vector<std::string>& scc : components(edges)) {
    if (scc.size() < 2) continue;  // self-edges are excluded by construction
    const std::set<std::string> members(scc.begin(), scc.end());
    std::vector<const BlockingEdge*> internal;
    for (const BlockingEdge& e : edges) {
      if (members.count(e.from) != 0 && members.count(e.to) != 0) {
        internal.push_back(&e);
      }
    }
    std::sort(internal.begin(), internal.end(),
              [](const BlockingEdge* a, const BlockingEdge* b) {
                return a->line < b->line;
              });

    // Best-effort chain for the message: follow internal edges from the
    // earliest one until the walk closes.
    std::string chain = internal.front()->from;
    std::string cursor = internal.front()->from;
    for (std::size_t step = 0; step <= members.size(); ++step) {
      const BlockingEdge* next = nullptr;
      for (const BlockingEdge* e : internal) {
        if (e->from == cursor) {
          next = e;
          break;
        }
      }
      if (next == nullptr) break;
      chain += " -> " + next->to;
      cursor = next->to;
      if (cursor == internal.front()->from) break;
    }

    std::string detail;
    for (const BlockingEdge* e : internal) {
      if (!detail.empty()) detail += "; ";
      detail += "line " + std::to_string(e->line) + ": '" + e->from +
                "' blocks on '" + e->to + "' via " + e->why;
    }
    out.push_back({"E3", Severity::kError, internal.front()->line,
                   "cyclic blocking chain between virtual targets: " + chain +
                       " (" + detail + ")"});
  }
}

// --- W1: unmatched name_as / wait tags -----------------------------------

void check_tag_pairing(const DirectiveGraph& graph,
                       std::vector<Diagnostic>& out) {
  std::map<std::string, int> producers;  // tag -> first name_as line
  std::map<std::string, int> waits;      // tag -> first wait line
  for (const RegionNode& node : graph.nodes()) {
    if (node.directive.mode == Async::kNameAs) {
      producers.emplace(node.directive.name_tag, node.directive.line);
    } else if (node.directive.kind == Kind::kWait) {
      waits.emplace(node.directive.wait_tag, node.directive.line);
    }
  }
  for (const auto& [tag, line] : waits) {
    if (producers.count(tag) != 0) continue;
    out.push_back({"W1", Severity::kWarning, line,
                   "wait(" + tag + ") has no name_as(" + tag +
                       ") producer in this translation unit — the wait "
                       "completes immediately"});
  }
  for (const auto& [tag, line] : producers) {
    if (waits.count(tag) != 0) continue;
    out.push_back({"W1", Severity::kWarning, line,
                   "name_as tag '" + tag + "' is never joined by wait(" + tag +
                       ") — the tagged blocks complete unobserved"});
  }
}

// --- W2: by-reference loop-variable capture escaping the iteration -------

struct Loop {
  std::string var;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// Split at top-level (paren/bracket-depth zero) occurrences of `sep`.
std::vector<std::string> split_top_level(const std::string& s, char sep) {
  std::vector<std::string> parts;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && (s[i] == '(' || s[i] == '[' || s[i] == '{')) ++depth;
    if (i < s.size() && (s[i] == ')' || s[i] == ']' || s[i] == '}')) --depth;
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string trailing_identifier(const std::string& text) {
  std::size_t end = text.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(text[begin - 1])) --begin;
  if (begin == end ||
      std::isdigit(static_cast<unsigned char>(text[begin])) != 0) {
    return {};
  }
  return text.substr(begin, end - begin);
}

/// The control variable of a for header: the declared/assigned variable of
/// the init statement, or the declaration of a range-for.
std::string loop_var_of(const std::string& header) {
  std::string decl;
  const std::vector<std::string> init = split_top_level(header, ';');
  if (init.size() >= 2) {
    decl = init[0];
  } else {
    // Range-for: split at the first top-level ':' that is not part of '::'.
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 0 || c != ':') continue;
      if ((i + 1 < header.size() && header[i + 1] == ':') ||
          (i > 0 && header[i - 1] == ':')) {
        continue;
      }
      decl = header.substr(0, i);
      break;
    }
    if (decl.empty()) return {};
  }
  const std::size_t assign = [&] {
    int depth = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
      const char c = decl[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth != 0 || c != '=') continue;
      const bool compare = (i + 1 < decl.size() && decl[i + 1] == '=') ||
                           (i > 0 && (decl[i - 1] == '=' || decl[i - 1] == '!' ||
                                      decl[i - 1] == '<' || decl[i - 1] == '>'));
      if (!compare) return i;
    }
    return decl.size();
  }();
  return trailing_identifier(decl.substr(0, assign));
}

std::vector<Loop> find_loops(const compiler::SourceScanner& scanner) {
  std::vector<Loop> loops;
  const auto src = scanner.source();
  for (std::size_t i = 0; i + 3 < src.size(); ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src.compare(i, 3, "for") != 0) continue;
    if (i > 0 && scanner.at(i - 1) == compiler::CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    if (is_ident_char(src[i + 3])) continue;
    const auto open = scanner.next_code_char(i + 3);
    if (!open || src[*open] != '(') continue;
    int depth = 0;
    std::size_t close = std::string_view::npos;
    for (std::size_t j = *open; j < src.size(); ++j) {
      if (scanner.at(j) != compiler::CharClass::kCode) continue;
      if (src[j] == '(') ++depth;
      if (src[j] == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == std::string_view::npos) continue;
    Loop loop;
    loop.var = loop_var_of(std::string(src.substr(*open + 1, close - *open - 1)));
    try {
      const compiler::SourceScanner::Block body =
          scanner.extract_block(close + 1);
      loop.body_begin = body.begin;
      loop.body_end = body.end;
    } catch (const compiler::TranslateError&) {
      continue;  // not a loop the lint can reason about
    }
    if (!loop.var.empty()) loops.push_back(std::move(loop));
  }
  return loops;
}

bool identifier_used(const compiler::SourceScanner& scanner, std::size_t begin,
                     std::size_t end, const std::string& name) {
  const auto src = scanner.source();
  end = std::min(end, src.size());
  for (std::size_t i = begin; i + name.size() <= end; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src.compare(i, name.size(), name) != 0) continue;
    if (i > begin && scanner.at(i - 1) == compiler::CharClass::kCode &&
        is_ident_char(src[i - 1])) {
      continue;
    }
    const std::size_t after = i + name.size();
    if (after < end && scanner.at(after) == compiler::CharClass::kCode &&
        is_ident_char(src[after])) {
      continue;
    }
    return true;
  }
  return false;
}

void check_loop_captures(const DirectiveGraph& graph,
                         std::vector<Diagnostic>& out) {
  const std::vector<Loop> loops = find_loops(graph.scanner());
  if (loops.empty()) return;
  for (const RegionNode& node : graph.nodes()) {
    if (node.directive.kind != Kind::kTarget) continue;
    if (node.directive.mode != Async::kNowait &&
        node.directive.mode != Async::kNameAs) {
      continue;
    }
    if (node.directive.default_none) continue;  // no implicit [&] capture
    std::set<std::string> reported;
    for (const Loop& loop : loops) {
      if (node.directive_begin < loop.body_begin ||
          node.directive_begin >= loop.body_end) {
        continue;
      }
      if (in_list(node.directive.firstprivate, loop.var)) continue;
      if (!identifier_used(graph.scanner(), node.block_begin, node.block_end,
                           loop.var)) {
        continue;
      }
      if (!reported.insert(loop.var).second) continue;
      out.push_back(
          {"W2", Severity::kWarning, node.directive.line,
           "loop variable '" + loop.var +
               "' is captured by reference in this asynchronous region and "
               "may be read after the iteration advances — add firstprivate(" +
               loop.var + ")"});
    }
  }
}

// --- E4 / W3: cross-region data races over the MHP relation --------------

/// True when the byte range between the two positions never leaves a
/// function body (absolute brace depth stays >= 1). Regions in different
/// functions share no stack frame, so same-named captures are different
/// variables — the race rules are intra-procedural.
bool same_function(const compiler::SourceScanner& scanner, std::size_t a,
                   std::size_t b) {
  const auto src = scanner.source();
  const std::size_t from = std::min(a, b);
  const std::size_t to = std::max(a, b);
  int depth = 0;
  for (std::size_t i = 0; i < from; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}') --depth;
  }
  if (depth <= 0) return false;
  for (std::size_t i = from; i < to; ++i) {
    if (scanner.at(i) != compiler::CharClass::kCode) continue;
    if (src[i] == '{') ++depth;
    if (src[i] == '}') --depth;
    if (depth <= 0) return false;
  }
  return true;
}

void check_data_races(const DirectiveGraph& graph,
                      std::vector<Diagnostic>& out) {
  const std::vector<RegionAccesses> regions = analyze_captures(graph);
  if (regions.size() < 2) return;
  const auto& nodes = graph.nodes();
  const MhpRelation mhp(graph);

  // One diagnostic per (anchor line, variable), strongest severity wins.
  std::map<std::pair<int, std::string>, Diagnostic> reports;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const int a = regions[i].node;
      const int b = regions[j].node;
      const RegionNode& na = nodes[static_cast<std::size_t>(a)];
      const RegionNode& nb = nodes[static_cast<std::size_t>(b)];
      if (na.directive.target_name() == kEdtName &&
          nb.directive.target_name() == kEdtName) {
        continue;  // one serial event loop: the regions mutually exclude
      }
      if (!same_function(graph.scanner(), na.directive_begin,
                         nb.directive_begin)) {
        continue;
      }
      if (!mhp.may_happen_in_parallel(a, b)) continue;
      for (const VarAccess& x : regions[i].accesses) {
        for (const VarAccess& y : regions[j].accesses) {
          if (x.name != y.name) continue;
          if (!x.write && !y.write) continue;
          // Access-level refinement: a wait(tag) inside a region can
          // order individual statements even when the regions overlap.
          if (mhp.completes_before(a, b, y.pos)) continue;
          if (mhp.completes_before(b, a, x.pos)) continue;
          const bool definite =
              x.direct && y.direct && !x.conditional && !y.conditional;
          const char* shape = nullptr;
          if (x.write && y.write) {
            shape = "written by this region and by the concurrent region";
          } else if (y.write) {
            shape = "written by this region and read by the concurrent region";
          } else {
            shape = "read by this region and written by the concurrent region";
          }
          std::string message =
              std::string(definite ? "data race: captured variable '"
                                   : "possible data race: captured variable '") +
              x.name + "' is " + shape + " at line " +
              std::to_string(na.directive.line) +
              " with no ordering between them — join the producer "
              "(blocking dispatch, await, or wait(tag)) or privatize with "
              "firstprivate(" +
              x.name + ")";
          if (!definite) {
            message += " [conditional or indirect access; confirm with "
                       "EVMP_RACECHECK=1]";
          }
          const Diagnostic diag{definite ? "E4" : "W3",
                                definite ? Severity::kError
                                         : Severity::kWarning,
                                nb.directive.line, std::move(message)};
          const auto key = std::make_pair(diag.line, x.name);
          const auto it = reports.find(key);
          if (it == reports.end()) {
            reports.emplace(key, diag);
          } else if (it->second.rule == "W3" && diag.rule == "E4") {
            it->second = diag;
          }
        }
      }
    }
  }
  for (auto& [key, diag] : reports) out.push_back(std::move(diag));
}

// --- evmp-lint-ignore suppression comments --------------------------------

std::map<int, std::set<std::string>> collect_ignores(
    const compiler::SourceScanner& scanner) {
  constexpr std::string_view kMarker = "evmp-lint-ignore";
  const auto src = scanner.source();
  std::map<int, std::set<std::string>> out;
  for (std::size_t i = 0; i + kMarker.size() <= src.size(); ++i) {
    if (!scanner.is_comment(i)) continue;
    if (src.compare(i, kMarker.size(), kMarker) != 0) continue;
    std::set<std::string> rules;
    std::size_t j = i + kMarker.size();
    while (j < src.size() && (src[j] == ' ' || src[j] == '\t')) ++j;
    if (j < src.size() && src[j] == '(') {
      ++j;
      std::string current;
      while (j < src.size() && src[j] != ')' && src[j] != '\n') {
        const char c = src[j++];
        if (c == ',') {
          if (!current.empty()) rules.insert(current);
          current.clear();
        } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          current += c;
        }
      }
      if (!current.empty()) rules.insert(current);
    }
    if (rules.empty()) rules.insert("*");  // bare marker: all rules
    out[scanner.line_of(i)].insert(rules.begin(), rules.end());
    i += kMarker.size() - 1;
  }
  return out;
}

void filter_ignored(std::vector<Diagnostic>& diags,
                    const compiler::SourceScanner& scanner) {
  const std::map<int, std::set<std::string>> ignores = collect_ignores(scanner);
  if (ignores.empty()) return;
  std::erase_if(diags, [&](const Diagnostic& d) {
    for (const int line : {d.line, d.line - 1}) {
      const auto it = ignores.find(line);
      if (it != ignores.end() &&
          (it->second.count("*") != 0 || it->second.count(d.rule) != 0)) {
        return true;
      }
    }
    return false;
  });
}

}  // namespace

std::vector<Diagnostic> analyze(const DirectiveGraph& graph,
                                const AnalyzeOptions& options) {
  std::vector<Diagnostic> out;
  check_blocking_context(graph, out);
  check_blocking_cycles(graph, out);
  check_tag_pairing(graph, out);
  check_loop_captures(graph, out);
  check_data_races(graph, out);
  if (options.honor_ignores) filter_ignored(out, graph.scanner());
  sort_diagnostics(out);
  return out;
}

std::vector<Diagnostic> analyze_source(std::string_view source,
                                       const AnalyzeOptions& options) {
  try {
    const DirectiveGraph graph(source);
    return analyze(graph, options);
  } catch (const compiler::TranslateError& e) {
    // Strip the "line N: " prefix the exception bakes into what(); the
    // diagnostic carries the line separately.
    std::string message = e.what();
    const std::string prefix = "line " + std::to_string(e.line()) + ": ";
    if (message.rfind(prefix, 0) == 0) message = message.substr(prefix.size());
    std::vector<Diagnostic> diags{{"P1", Severity::kError, e.line(),
                                   "directive does not parse: " + message}};
    if (options.honor_ignores) {
      // The scan-only classifier never throws, so suppression comments
      // still apply to parse failures.
      const compiler::SourceScanner scanner(source);
      filter_ignored(diags, scanner);
    }
    return diags;
  }
}

}  // namespace evmp::analysis

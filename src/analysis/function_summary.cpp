#include "analysis/function_summary.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>
#include <tuple>
#include <utility>

namespace evmp::analysis {

namespace {

using compiler::Directive;
using Kind = Directive::Kind;

constexpr std::size_t kMaxPathFrames = 8;

/// Site key for effect deduplication during propagation.
using SiteKey = std::tuple<int, std::string, std::string, int>;

SiteKey key_of(const SummaryDispatch& d) {
  return {0, d.file, d.target + "\x1f" + d.tag, d.line};
}
SiteKey key_of(const SummaryWait& w) { return {1, w.file, w.tag, w.line}; }
SiteKey key_of(const ParamEscape& p) {
  return {2, p.file, p.param_name + "\x1f" + std::to_string(p.param), p.line};
}

template <typename Effect>
void merge_effect(std::vector<Effect>& into, std::set<SiteKey>& seen,
                  Effect effect) {
  if (!seen.insert(key_of(effect)).second) return;
  into.push_back(std::move(effect));
}

std::vector<CallFrame> prepend_frame(const CallFrame& frame,
                                     const std::vector<CallFrame>& path) {
  std::vector<CallFrame> out;
  out.reserve(std::min(path.size() + 1, kMaxPathFrames));
  out.push_back(frame);
  for (const CallFrame& f : path) {
    if (out.size() >= kMaxPathFrames) break;
    out.push_back(f);
  }
  return out;
}

bool region_accesses_var(const std::vector<RegionAccesses>& captures, int node,
                         const std::string& name) {
  for (const RegionAccesses& region : captures) {
    if (region.node != node) continue;
    for (const VarAccess& access : region.accesses) {
      if (access.name == name) return true;
    }
  }
  return false;
}

struct DefRef {
  std::size_t tu = 0;
  int fn = -1;
};

struct ResolvedCall {
  std::string caller;  ///< empty at file scope
  std::string callee;
  CallFrame frame;     ///< callee + call-site location
  bool conditional = false;
  std::vector<std::string> args;
};

}  // namespace

std::string bare_identifier_arg(std::string_view arg) {
  std::size_t b = 0;
  if (b < arg.size() && arg[b] == '&') ++b;  // address-of still aliases
  std::size_t e = arg.size();
  while (b < e && std::isspace(static_cast<unsigned char>(arg[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(arg[e - 1])) != 0) {
    --e;
  }
  if (b == e) return {};
  if (std::isdigit(static_cast<unsigned char>(arg[b])) != 0) return {};
  for (std::size_t i = b; i < e; ++i) {
    const char c = arg[i];
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return {};
    }
  }
  return std::string(arg.substr(b, e - b));
}

std::string render_call_path(std::string_view entry,
                             const std::vector<CallFrame>& path) {
  std::string out(entry);
  for (const CallFrame& f : path) {
    out += " -> " + f.callee + " (";
    if (f.file.empty()) {
      out += "line " + std::to_string(f.line);
    } else {
      out += f.file + ":" + std::to_string(f.line);
    }
    out += ")";
  }
  return out;
}

SummaryTable::SummaryTable(const std::vector<TuView>& tus) {
  // 1. The whole-program function table: name -> definitions.
  std::map<std::string, std::vector<DefRef>> defs;
  for (std::size_t t = 0; t < tus.size(); ++t) {
    const auto& functions = tus[t].cg->functions();
    for (int f = 0; f < static_cast<int>(functions.size()); ++f) {
      defs[functions[static_cast<std::size_t>(f)].name].push_back({t, f});
    }
  }

  // 2. Direct effects of every definition, merged per name.
  std::map<std::string, std::set<SiteKey>> seen;
  for (const auto& [name, refs] : defs) {
    FunctionSummary& summary = summaries_[name];
    std::set<SiteKey>& keys = seen[name];
    for (const DefRef& ref : refs) {
      const TuView& tu = tus[ref.tu];
      const CallGraph& cg = *tu.cg;
      const auto& nodes = cg.graph().nodes();
      const compiler::FunctionDef& def =
          cg.functions()[static_cast<std::size_t>(ref.fn)];
      for (const int node_index : cg.regions_of(ref.fn)) {
        const RegionNode& node = nodes[static_cast<std::size_t>(node_index)];
        const Directive& d = node.directive;
        const bool conditional = cg.conditional_at(node.directive_begin);
        if (d.kind == Kind::kWait) {
          merge_effect(summary.waits, keys,
                       SummaryWait{d.wait_tag, tu.file, d.line, {}});
          continue;
        }
        if (d.kind != Kind::kTarget) continue;
        merge_effect(summary.dispatches, keys,
                     SummaryDispatch{d.target_name(), d.mode, d.name_tag,
                                     tu.file, d.line, conditional, {}});
        const bool async = d.mode == Async::kNowait || d.mode == Async::kNameAs;
        if (!async || d.default_none || tu.captures == nullptr) continue;
        for (std::size_t p = 0; p < def.params.size(); ++p) {
          const compiler::FunctionParam& param = def.params[p];
          if (!param.by_ref || param.name.empty()) continue;
          if (std::find(d.firstprivate.begin(), d.firstprivate.end(),
                        param.name) != d.firstprivate.end()) {
            continue;
          }
          if (!region_accesses_var(*tu.captures, node_index, param.name)) {
            continue;
          }
          merge_effect(summary.param_escapes, keys,
                       ParamEscape{p, param.name, d.target_name(), d.mode,
                                   d.name_tag, tu.file, d.line, conditional,
                                   {}});
        }
      }
    }
  }

  // 3. Resolved call edges and first-caller records. The by-ref
  //    parameter index of each name (first definition wins) supports
  //    pass-through escape lifting in step 5.
  std::map<std::string, std::map<std::string, std::size_t>> byref_params;
  for (const auto& [name, refs] : defs) {
    const compiler::FunctionDef& def =
        tus[refs.front().tu]
            .cg->functions()[static_cast<std::size_t>(refs.front().fn)];
    for (std::size_t p = 0; p < def.params.size(); ++p) {
      if (def.params[p].by_ref && !def.params[p].name.empty()) {
        byref_params[name].emplace(def.params[p].name, p);
      }
    }
  }
  std::vector<ResolvedCall> edges;
  std::map<std::string, std::vector<std::size_t>> out_edges;
  for (const TuView& tu : tus) {
    for (const AttributedCall& call : tu.cg->calls()) {
      if (summaries_.count(call.site.callee) == 0) continue;
      ResolvedCall edge;
      edge.callee = call.site.callee;
      edge.frame = {call.site.callee, tu.file, call.site.line};
      edge.conditional = call.conditional;
      edge.args = call.site.args;
      if (call.caller >= 0) {
        edge.caller = tu.cg->functions()
                          [static_cast<std::size_t>(call.caller)].name;
      }
      callers_.try_emplace(
          edge.callee,
          CallFrame{edge.caller.empty() ? "<file scope>" : edge.caller,
                    tu.file, call.site.line});
      if (!edge.caller.empty() && edge.caller != edge.callee) {
        out_edges[edge.caller].push_back(edges.size());
      }
      edges.push_back(std::move(edge));
    }
  }

  // 4. Tarjan SCCs over the name graph; emission order is callees-first,
  //    so one pass joins each SCC with its already-final callees.
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::vector<std::vector<std::string>> sccs;
  int counter = 0;
  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        on_stack.insert(v);
        const auto it = out_edges.find(v);
        if (it != out_edges.end()) {
          for (const std::size_t e : it->second) {
            const std::string& w = edges[e].callee;
            if (index.count(w) == 0) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w) != 0) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> scc;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
      };
  for (const auto& [name, summary] : summaries_) {
    if (index.count(name) == 0) strongconnect(name);
  }

  // 5. Bottom-up join: lift each external callee's summary through the
  //    call frame. Within an SCC the members share one joined summary
  //    (mutual recursion: every member can reach every effect).
  for (const std::vector<std::string>& scc : sccs) {
    const std::set<std::string> members(scc.begin(), scc.end());
    FunctionSummary joined;
    std::set<SiteKey> keys;
    for (const std::string& member : members) {
      const FunctionSummary& direct = summaries_[member];
      for (const SummaryDispatch& d : direct.dispatches) {
        merge_effect(joined.dispatches, keys, d);
      }
      for (const SummaryWait& w : direct.waits) {
        merge_effect(joined.waits, keys, w);
      }
      for (const ParamEscape& p : direct.param_escapes) {
        merge_effect(joined.param_escapes, keys, p);
      }
      const auto it = out_edges.find(member);
      if (it == out_edges.end()) continue;
      for (const std::size_t e : it->second) {
        const ResolvedCall& edge = edges[e];
        if (members.count(edge.callee) != 0) continue;
        const FunctionSummary& callee = summaries_[edge.callee];
        for (const SummaryDispatch& d : callee.dispatches) {
          SummaryDispatch lifted = d;
          lifted.path = prepend_frame(edge.frame, d.path);
          lifted.conditional = d.conditional || edge.conditional;
          merge_effect(joined.dispatches, keys, std::move(lifted));
        }
        for (const SummaryWait& w : callee.waits) {
          SummaryWait lifted = w;
          lifted.path = prepend_frame(edge.frame, w.path);
          merge_effect(joined.waits, keys, std::move(lifted));
        }
        // Escapes lift only when the call forwards one of the member's
        // own by-ref parameters; arguments naming locals are resolved
        // per call site by the lifetime pass (analyzer.cpp).
        const auto params_it = byref_params.find(member);
        if (params_it == byref_params.end()) continue;
        for (const ParamEscape& p : callee.param_escapes) {
          if (p.param >= edge.args.size()) continue;
          const std::string arg = bare_identifier_arg(edge.args[p.param]);
          if (arg.empty()) continue;
          const auto own = params_it->second.find(arg);
          if (own == params_it->second.end()) continue;
          ParamEscape lifted = p;
          lifted.param = own->second;
          lifted.param_name = arg;
          lifted.path = prepend_frame(edge.frame, p.path);
          lifted.conditional = p.conditional || edge.conditional;
          merge_effect(joined.param_escapes, keys, std::move(lifted));
        }
      }
    }
    for (const std::string& member : members) summaries_[member] = joined;
  }
}

const FunctionSummary* SummaryTable::summary(const std::string& name) const {
  const auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

const CallFrame* SummaryTable::first_caller(const std::string& name) const {
  const auto it = callers_.find(name);
  return it == callers_.end() ? nullptr : &it->second;
}

}  // namespace evmp::analysis

#pragma once
// The evmpcc directive lint: rule passes over a DirectiveGraph.
//
// Rules (see DESIGN.md §8 and §10):
//   E1 (error)   blocking default-mode dispatch to a virtual target from a
//                region already running on that same target — the busy
//                serial executor deadlocks on itself; the thread-context
//                fast path in runtime.cpp only saves the *same-thread*
//                case, not a queued second block.
//   E2 (error)   blocking default-mode dispatch from the `edt` region —
//                the paper's Figure 1 freeze.
//   E3 (error)   cyclic blocking chain between two or more virtual
//                targets, through default-mode dispatches and/or
//                wait(tag) joins of name_as producers.
//   E4 (error)   data race: a variable captured by reference is written
//                by one target region and read or written by another,
//                the two regions may happen in parallel (MHP — no
//                containment, blocking-dispatch, or wait(tag) ordering),
//                and both accesses are unconditional and direct.
//   W1 (warning) wait(tag) with no name_as(tag) producer in the TU, and
//                name_as tags never joined by a wait.
//   W2 (warning) heuristic: an async (nowait/name_as) region captures the
//                surrounding loop's control variable by reference — the
//                region may outlive the iteration; suggest firstprivate.
//   W3 (warning) heuristic data race: same as E4 but at least one access
//                is conditional or pointer/element/member-mediated, so
//                the conflict may not materialize. EVMP_RACECHECK
//                (race_check.hpp) confirms these at runtime.
//   P1 (error)   a directive the parser rejects (duplicate clauses,
//                unknown clauses, malformed arguments).
//
// `await` dispatches never produce blocking edges: the logical barrier
// pumps the encountering thread's own queue (Algorithm 1 lines 13-16), so
// it cannot hard-deadlock a serial executor.
//
// Any rule can be suppressed per-site with a comment on the diagnostic's
// line or the line above:  // evmp-lint-ignore(E4)  — a bare
// `evmp-lint-ignore` or `evmp-lint-ignore(*)` suppresses every rule.
// `--no-ignores` (AnalyzeOptions::honor_ignores = false) audits past them.

#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/directive_graph.hpp"

namespace evmp::analysis {

/// Knobs shared by every rule pass.
struct AnalyzeOptions {
  /// Honor `// evmp-lint-ignore(<rules>)` suppression comments. The
  /// evmpcc `--no-ignores` flag clears this for CI audits.
  bool honor_ignores = true;
};

/// Run every rule pass over an already-built graph. Diagnostics come back
/// sorted by (line, rule).
[[nodiscard]] std::vector<Diagnostic> analyze(const DirectiveGraph& graph,
                                              const AnalyzeOptions& options = {});

/// Convenience: build the graph and analyze. A TranslateError during the
/// build becomes a single P1 error diagnostic instead of propagating.
[[nodiscard]] std::vector<Diagnostic> analyze_source(
    std::string_view source, const AnalyzeOptions& options = {});

}  // namespace evmp::analysis

#pragma once
// The evmpcc directive lint: rule passes over a DirectiveGraph.
//
// Rules (see DESIGN.md §8):
//   E1 (error)   blocking default-mode dispatch to a virtual target from a
//                region already running on that same target — the busy
//                serial executor deadlocks on itself; the thread-context
//                fast path in runtime.cpp only saves the *same-thread*
//                case, not a queued second block.
//   E2 (error)   blocking default-mode dispatch from the `edt` region —
//                the paper's Figure 1 freeze.
//   E3 (error)   cyclic blocking chain between two or more virtual
//                targets, through default-mode dispatches and/or
//                wait(tag) joins of name_as producers.
//   W1 (warning) wait(tag) with no name_as(tag) producer in the TU, and
//                name_as tags never joined by a wait.
//   W2 (warning) heuristic: an async (nowait/name_as) region captures the
//                surrounding loop's control variable by reference — the
//                region may outlive the iteration; suggest firstprivate.
//   P1 (error)   a directive the parser rejects (duplicate clauses,
//                unknown clauses, malformed arguments).
//
// `await` dispatches never produce blocking edges: the logical barrier
// pumps the encountering thread's own queue (Algorithm 1 lines 13-16), so
// it cannot hard-deadlock a serial executor.

#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/directive_graph.hpp"

namespace evmp::analysis {

/// Run every rule pass over an already-built graph. Diagnostics come back
/// sorted by (line, rule).
[[nodiscard]] std::vector<Diagnostic> analyze(const DirectiveGraph& graph);

/// Convenience: build the graph and analyze. A TranslateError during the
/// build becomes a single P1 error diagnostic instead of propagating.
[[nodiscard]] std::vector<Diagnostic> analyze_source(std::string_view source);

}  // namespace evmp::analysis

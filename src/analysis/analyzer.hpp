#pragma once
// The evmpcc directive lint: rule passes over a DirectiveGraph, made
// interprocedural (and whole-program, for multi-TU invocations) by the
// call graph and per-function effect summaries of DESIGN.md §12: every
// blocking/waiting rule also fires when the offending dispatch is reached
// through a chain of ordinary function calls, with the call path named in
// the message.
//
// Rules (see DESIGN.md §8, §10 and §12):
//   E1 (error)   blocking default-mode dispatch to a virtual target from a
//                region already running on that same target — the busy
//                serial executor deadlocks on itself; the thread-context
//                fast path in runtime.cpp only saves the *same-thread*
//                case, not a queued second block.
//   E2 (error)   blocking default-mode dispatch from the `edt` region —
//                the paper's Figure 1 freeze.
//   E3 (error)   cyclic blocking chain between two or more virtual
//                targets, through default-mode dispatches and/or
//                wait(tag) joins of name_as producers.
//   E4 (error)   data race: a variable captured by reference is written
//                by one target region and read or written by another,
//                the two regions may happen in parallel (MHP — no
//                containment, blocking-dispatch, or wait(tag) ordering),
//                and both accesses are unconditional and direct.
//   E5 (error)   use after scope: a variable captured by reference by an
//                asynchronous (nowait/name_as) dispatch — directly, or by
//                escaping through a callee's by-ref parameter — whose
//                storage (inner block, or the function frame when the
//                function is known to be called) definitely dies with no
//                join (wait(tag) or a blocking/await dispatch to the same
//                target, which fences the serial executor's FIFO) between
//                the dispatch and the end of the scope.
//   W1 (warning) wait(tag) with no name_as(tag) producer in the TU (or,
//                multi-TU, anywhere in the linked program), and name_as
//                tags never joined by a wait.
//   W2 (warning) heuristic: an async (nowait/name_as) region captures the
//                surrounding loop's control variable by reference — the
//                region may outlive the iteration; suggest firstprivate.
//   W3 (warning) heuristic data race: same as E4 but at least one access
//                is conditional or pointer/element/member-mediated, so
//                the conflict may not materialize. EVMP_RACECHECK
//                (race_check.hpp) confirms these at runtime.
//   W4 (warning) heuristic use after scope: same as E5 but the dispatch
//                or the capturing access sits under control flow, so the
//                escape may not occur on every execution.
//   P1 (error)   a directive the parser rejects (duplicate clauses,
//                unknown clauses, malformed arguments).
//
// `await` dispatches never produce blocking edges: the logical barrier
// pumps the encountering thread's own queue (Algorithm 1 lines 13-16), so
// it cannot hard-deadlock a serial executor.
//
// Any rule can be suppressed per-site with a comment on the diagnostic's
// line or the line above:  // evmp-lint-ignore(E4)  — a bare
// `evmp-lint-ignore` or `evmp-lint-ignore(*)` suppresses every rule.
// `--no-ignores` (AnalyzeOptions::honor_ignores = false) audits past them.

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/directive_graph.hpp"

namespace evmp::analysis {

/// Knobs shared by every rule pass.
struct AnalyzeOptions {
  /// Honor `// evmp-lint-ignore(<rules>)` suppression comments. The
  /// evmpcc `--no-ignores` flag clears this for CI audits.
  bool honor_ignores = true;
};

/// Run every rule pass over an already-built graph. Diagnostics come back
/// sorted by (line, rule).
[[nodiscard]] std::vector<Diagnostic> analyze(const DirectiveGraph& graph,
                                              const AnalyzeOptions& options = {});

/// Convenience: build the graph and analyze. A TranslateError during the
/// build becomes a single P1 error diagnostic instead of propagating.
[[nodiscard]] std::vector<Diagnostic> analyze_source(
    std::string_view source, const AnalyzeOptions& options = {});

/// One translation unit of a multi-TU (whole-program) analysis.
struct SourceUnit {
  std::string file;  ///< display name; stamped into each finding
  std::string text;
};

/// Link every unit into one program — virtual-target names and name_as/
/// wait tags resolve across files, the call graph and effect summaries
/// span all units — and run every rule pass over the linked view. A unit
/// whose directives do not parse contributes a P1 finding and is excluded
/// from linking; the remaining units are still analyzed. Suppression
/// comments are honored per unit.
[[nodiscard]] std::vector<Diagnostic> analyze_program(
    const std::vector<SourceUnit>& units, const AnalyzeOptions& options = {});

}  // namespace evmp::analysis

#include "analysis/capture_analysis.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "compilerlib/directive.hpp"
#include "compilerlib/source_scanner.hpp"

namespace evmp::analysis {

namespace {

using compiler::CharClass;
using compiler::SourceScanner;
using Kind = compiler::Directive::Kind;

bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool is_ws(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

const std::unordered_set<std::string_view>& keywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "alignas",   "alignof",      "asm",           "auto",
      "bool",      "break",        "case",          "catch",
      "char",      "char8_t",      "char16_t",      "char32_t",
      "class",     "concept",      "const",         "consteval",
      "constexpr", "constinit",    "const_cast",    "continue",
      "co_await",  "co_return",    "co_yield",      "decltype",
      "default",   "delete",       "do",            "double",
      "dynamic_cast", "else",      "enum",          "explicit",
      "export",    "extern",       "false",         "final",
      "float",     "for",          "friend",        "goto",
      "if",        "inline",       "int",           "long",
      "mutable",   "namespace",    "new",           "noexcept",
      "nullptr",   "operator",     "override",      "private",
      "protected", "public",       "register",      "reinterpret_cast",
      "requires",  "return",       "short",         "signed",
      "sizeof",    "static",       "static_assert", "static_cast",
      "struct",    "switch",       "template",      "this",
      "thread_local", "throw",     "true",          "try",
      "typedef",   "typeid",       "typename",      "union",
      "unsigned",  "using",        "virtual",       "void",
      "volatile",  "wchar_t",      "while",
  };
  return kSet;
}

// Tokens after which an identifier is an expression operand, not the
// name being declared (`return total;` does not declare `total`).
const std::unordered_set<std::string_view>& non_declaring_intro() {
  static const std::unordered_set<std::string_view> kSet = {
      "return",   "throw",    "case",     "goto",  "new",  "delete",
      "sizeof",   "co_await", "co_return", "co_yield", "else", "do",
      "typeid",   "operator",
  };
  return kSet;
}

// Methods commonly observing, not mutating — keeps `box.size()` a read
// instead of a heuristic write. Anything not listed is assumed mutating.
const std::unordered_set<std::string_view>& observer_methods() {
  static const std::unordered_set<std::string_view> kSet = {
      "at",    "back",     "begin",  "c_str", "capacity", "cbegin",
      "cend",  "contains", "count",  "data",  "empty",    "end",
      "find",  "front",    "get",    "load",  "length",   "size",
      "str",   "top",      "value",  "value_or",
  };
  return kSet;
}

bool at_line_start(std::string_view src, std::size_t pos) {
  while (pos > 0) {
    const char c = src[pos - 1];
    if (c == '\n') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
    --pos;
  }
  return true;
}

// One past the end of a preprocessor logical line (honors `\` splices).
std::size_t preprocessor_end(std::string_view src, std::size_t pos) {
  while (pos < src.size()) {
    if (src[pos] == '\n') {
      std::size_t back = pos;
      while (back > 0 && src[back - 1] == '\r') --back;
      if (back > 0 && src[back - 1] == '\\') {
        ++pos;
        continue;
      }
      return pos + 1;
    }
    ++pos;
  }
  return pos;
}

std::optional<std::size_t> prev_code_nonws(std::string_view src,
                                           const SourceScanner& sc,
                                           std::size_t from,
                                           std::size_t floor) {
  std::size_t i = from;
  while (i > floor) {
    --i;
    if (sc.at(i) != CharClass::kCode) continue;
    if (is_ws(src[i])) continue;
    return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> next_code_nonws(std::string_view src,
                                           const SourceScanner& sc,
                                           std::size_t from,
                                           std::size_t limit) {
  for (std::size_t i = from; i < limit; ++i) {
    if (sc.at(i) != CharClass::kCode) continue;
    if (is_ws(src[i])) continue;
    return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> match_forward(std::string_view src,
                                         const SourceScanner& sc,
                                         std::size_t open_pos, char open,
                                         char close, std::size_t limit) {
  int depth = 0;
  for (std::size_t i = open_pos; i < limit; ++i) {
    if (sc.at(i) != CharClass::kCode) continue;
    if (src[i] == open) ++depth;
    if (src[i] == close && --depth == 0) return i;
  }
  return std::nullopt;
}

// Read the identifier token ending at (inclusive) position `last`.
std::string_view token_ending_at(std::string_view src, std::size_t last,
                                 std::size_t floor) {
  std::size_t begin = last;
  while (begin > floor && is_ident_char(src[begin - 1])) --begin;
  return src.substr(begin, last - begin + 1);
}

struct SpanSet {
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // sorted

  // If pos is inside a span, the span's end; otherwise nullopt.
  [[nodiscard]] std::optional<std::size_t> skip_to(std::size_t pos) const {
    for (const auto& [begin, end] : spans) {
      if (pos >= begin && pos < end) return end;
      if (begin > pos) break;
    }
    return std::nullopt;
  }
};

// Marks bytes lexically under control flow (if/else/loops/switch/catch)
// inside [block_begin, block_end), skipping excluded spans.
std::vector<char> conditional_mask(const SourceScanner& sc,
                                   std::size_t block_begin,
                                   std::size_t block_end,
                                   const SpanSet& excluded) {
  const std::string_view src = sc.source();
  std::vector<char> mask(block_end - block_begin, 0);
  const auto mark = [&](std::size_t from, std::size_t to) {
    from = std::max(from, block_begin);
    to = std::min(to, block_end);
    for (std::size_t i = from; i < to; ++i) mask[i - block_begin] = 1;
  };
  std::size_t pos = block_begin;
  while (pos < block_end) {
    if (const auto jump = excluded.skip_to(pos)) {
      pos = *jump;
      continue;
    }
    if (sc.at(pos) != CharClass::kCode) {
      ++pos;
      continue;
    }
    const char c = src[pos];
    if (c == '#' && at_line_start(src, pos)) {
      pos = preprocessor_end(src, pos);
      continue;
    }
    if (!is_ident_start(c) ||
        (pos > block_begin && is_ident_char(src[pos - 1]))) {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < block_end && is_ident_char(src[end])) ++end;
    const std::string_view token = src.substr(pos, end - pos);
    const std::size_t kw_pos = pos;
    pos = end;
    const bool paren_headed = token == "if" || token == "for" ||
                              token == "while" || token == "switch" ||
                              token == "catch";
    if (!paren_headed && token != "else") continue;
    try {
      std::size_t body_from = end;
      if (paren_headed) {
        const auto open = next_code_nonws(src, sc, end, block_end);
        if (!open || src[*open] != '(') continue;
        const auto close =
            match_forward(src, sc, *open, '(', ')', block_end);
        if (!close) continue;
        body_from = *close + 1;
      } else {
        // `else if` is handled when the scan reaches the `if` token.
        const auto next = next_code_nonws(src, sc, end, block_end);
        if (next && src.substr(*next, 2) == "if" &&
            (*next + 2 >= block_end || !is_ident_char(src[*next + 2]))) {
          continue;
        }
      }
      const auto body = sc.extract_block(body_from);
      mark(kw_pos, body.end);
    } catch (const compiler::TranslateError&) {
      mark(kw_pos, block_end);  // unparsable body: conservatively cover
    }
  }
  return mask;
}

struct Classified {
  bool write = false;
  bool direct = true;
};

// Classify the use of the identifier spanning [s, e) given its lexical
// neighborhood. `deref` / `addr_of` are precomputed prefix contexts.
Classified classify_use(std::string_view src, const SourceScanner& sc,
                        std::size_t s, std::size_t e, bool deref,
                        bool addr_of, std::size_t limit) {
  Classified out;
  if (addr_of) {
    out.write = true;  // &v escapes: callee may mutate through the pointer
    out.direct = false;
    return out;
  }
  const auto is_compound_at = [&](std::size_t i) {
    if (i >= limit) return false;
    const char c0 = src[i];
    if ((c0 == '+' || c0 == '-' || c0 == '*' || c0 == '/' || c0 == '%' ||
         c0 == '&' || c0 == '|' || c0 == '^') &&
        i + 1 < limit && src[i + 1] == '=') {
      return true;
    }
    return (c0 == '<' || c0 == '>') && i + 2 < limit && src[i + 1] == c0 &&
           src[i + 2] == '=';
  };
  const auto is_plain_assign_at = [&](std::size_t i) {
    return i < limit && src[i] == '=' && (i + 1 >= limit || src[i + 1] != '=');
  };
  const auto prev = prev_code_nonws(src, sc, s, 0);
  if (prev && *prev > 0 &&
      ((src[*prev] == '+' && src[*prev - 1] == '+') ||
       (src[*prev] == '-' && src[*prev - 1] == '-'))) {
    out.write = true;  // pre-increment / pre-decrement
    return out;
  }
  const auto next = next_code_nonws(src, sc, e, limit);
  if (!next) {
    out.direct = !deref;
    return out;
  }
  const std::size_t n = *next;
  const char c = src[n];
  if ((c == '+' || c == '-') && n + 1 < limit && src[n + 1] == c) {
    out.write = true;  // post-increment / post-decrement
    return out;
  }
  if (is_plain_assign_at(n) || is_compound_at(n)) {
    out.write = true;
    out.direct = !deref;
    return out;
  }
  if (c == '[') {
    out.direct = false;
    const auto close = match_forward(src, sc, n, '[', ']', limit);
    if (!close) return out;
    const auto after = next_code_nonws(src, sc, *close + 1, limit);
    if (after &&
        (is_plain_assign_at(*after) || is_compound_at(*after) ||
         src[*after] == '.' ||
         (src[*after] == '-' && *after + 1 < limit &&
          src[*after + 1] == '>') ||
         ((src[*after] == '+' || src[*after] == '-') && *after + 1 < limit &&
          src[*after + 1] == src[*after]))) {
      out.write = true;  // v[i] = ..., v[i] += ..., v[i].mutate()
    }
    return out;
  }
  if (c == '.' || (c == '-' && n + 1 < limit && src[n + 1] == '>')) {
    out.direct = false;
    const std::size_t member_from = n + (c == '.' ? 1 : 2);
    const auto member = next_code_nonws(src, sc, member_from, limit);
    if (!member || !is_ident_start(src[*member])) return out;
    std::size_t member_end = *member;
    while (member_end < limit && is_ident_char(src[member_end])) ++member_end;
    const std::string_view name = src.substr(*member, member_end - *member);
    const auto after = next_code_nonws(src, sc, member_end, limit);
    if (after && src[*after] == '(') {
      out.write = observer_methods().count(name) == 0;  // method may mutate
    } else if (after &&
               (is_plain_assign_at(*after) || is_compound_at(*after))) {
      out.write = true;  // data-member store
    }
    return out;
  }
  if (c == '(') {
    return out;  // callable capture invoked: reads the binding
  }
  out.direct = !deref;
  return out;
}

}  // namespace

std::vector<RegionAccesses> analyze_captures(const DirectiveGraph& graph) {
  const SourceScanner& sc = graph.scanner();
  const std::string_view src = sc.source();
  const auto& nodes = graph.nodes();
  std::vector<RegionAccesses> out;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const RegionNode& node = nodes[i];
    if (node.directive.kind != Kind::kTarget) continue;
    if (node.block_end <= node.block_begin) continue;
    if (node.directive.default_none) continue;

    // Nested target regions report their accesses under their own node.
    SpanSet excluded;
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (j == i || nodes[j].directive.kind != Kind::kTarget) continue;
      if (nodes[j].directive_begin < node.block_begin ||
          nodes[j].directive_begin >= node.block_end) {
        continue;
      }
      excluded.spans.emplace_back(nodes[j].directive_begin,
                                  nodes[j].block_end);
    }
    std::sort(excluded.spans.begin(), excluded.spans.end());

    const std::vector<char> cond =
        conditional_mask(sc, node.block_begin, node.block_end, excluded);

    RegionAccesses region;
    region.node = static_cast<int>(i);
    std::unordered_set<std::string> locals;

    std::size_t pos = node.block_begin;
    while (pos < node.block_end) {
      if (const auto jump = excluded.skip_to(pos)) {
        pos = *jump;
        continue;
      }
      if (sc.at(pos) != CharClass::kCode) {
        ++pos;
        continue;
      }
      const char first = src[pos];
      if (first == '#' && at_line_start(src, pos)) {
        pos = preprocessor_end(src, pos);
        continue;
      }
      if (!is_ident_start(first) ||
          (pos > node.block_begin && is_ident_char(src[pos - 1]))) {
        ++pos;
        continue;
      }
      const std::size_t s = pos;
      std::size_t e = pos;
      while (e < node.block_end && is_ident_char(src[e])) ++e;
      pos = e;
      const std::string_view token = src.substr(s, e - s);
      if (keywords().count(token) != 0) continue;

      const auto prev = prev_code_nonws(src, sc, s, node.block_begin);
      const char prevc = prev ? src[*prev] : '\0';
      // Qualified names and member selections are not variable uses.
      if (prevc == ':' && *prev > 0 && src[*prev - 1] == ':') continue;
      if (prevc == '.') continue;
      if (prevc == '>' && *prev > 0 && src[*prev - 1] == '-') continue;
      const auto next = next_code_nonws(src, sc, e, node.block_end);
      if (next && src[*next] == ':' && *next + 1 < node.block_end &&
          src[*next + 1] == ':') {
        continue;  // namespace/class prefix
      }

      // Declaration detection: is this identifier the name being
      // introduced? (`int total`, `auto& feed`, `std::vector<int> v`)
      bool decl = false;
      bool deref = false;
      bool addr_of = false;
      if (prev) {
        if (is_ident_char(prevc)) {
          const std::string_view intro =
              token_ending_at(src, *prev, node.block_begin);
          decl = non_declaring_intro().count(intro) == 0;
        } else if (prevc == '&' || prevc == '*') {
          std::size_t run_end = *prev + 1;
          std::size_t run_begin = *prev;
          while (run_begin > node.block_begin &&
                 (src[run_begin - 1] == '&' || src[run_begin - 1] == '*')) {
            --run_begin;
          }
          const std::size_t run_len = run_end - run_begin;
          const auto before =
              prev_code_nonws(src, sc, run_begin, node.block_begin);
          const bool type_prefix =
              before && (is_ident_char(src[*before]) || src[*before] == '>');
          if (run_len >= 2 && prevc == '&') {
            decl = false;  // logical && — plain operand use
          } else if (type_prefix) {
            decl = true;  // `int* p`, `const auto& feed`
          } else if (prevc == '*') {
            deref = true;  // `*p = ...` writes through the capture
          } else {
            addr_of = true;  // `f(&v)` — pointer escape
          }
        } else if (prevc == '>') {
          decl = true;  // template-argument close: `std::vector<T> name`
        }
      }
      if (decl) {
        locals.insert(std::string(token));
        continue;
      }
      if (locals.count(std::string(token)) != 0) continue;
      const auto& fp = node.directive.firstprivate;
      if (std::find(fp.begin(), fp.end(), token) != fp.end()) continue;

      const Classified use =
          classify_use(src, sc, s, e, deref, addr_of, node.block_end);
      VarAccess access;
      access.name = std::string(token);
      access.pos = s;
      access.line = sc.line_of(s);
      access.write = use.write;
      access.direct = use.direct;
      access.conditional = cond[s - node.block_begin] != 0;
      region.accesses.push_back(std::move(access));
    }
    out.push_back(std::move(region));
  }
  return out;
}

}  // namespace evmp::analysis

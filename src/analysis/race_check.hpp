#pragma once
// EVMP_RACECHECK — a FastTrack-style happens-before race verifier for
// EventMP dispatch graphs (the dynamic half of the E4/W3 race rules;
// DESIGN.md §10).
//
// The runtime calls four hooks at the same seams the EVMP_VERIFY
// WaitGraph instruments (runtime.cpp), each a single pointer load when
// the mode is off:
//
//   on_dispatch      before a block is posted — snapshots the dispatching
//                    thread's vector clock into a birth record
//   on_block_start   first thing inside the dispatched block — the worker
//                    thread joins the birth clock (dispatch edge)
//   on_block_finish  last thing before the completion is published — the
//                    worker's clock is parked on the CompletionState (and
//                    merged into the TagGroup for name_as blocks)
//   on_join          after a blocking wait / await / wait(tag) — the
//                    waiting thread joins the parked clock (join edge)
//
// Accesses are checked through `evmp::shared<T>` (core/shared.hpp):
// each wrapper owns a shadow word recording the last write epoch and a
// read clock per thread. An access with no happens-before path to the
// previous conflicting access aborts with both dispatch chains — the
// dynamic confirmation for conflicts the static pass can only grade W3.
//
// Like the WaitGraph, the global instance is env-gated (EVMP_RACECHECK)
// and leaked; tests install a scoped instance with a failure handler.
// `TaskHandle::wait()` is deliberately *not* an ordering edge (it is not
// a directive; use await / wait(tag) to publish results).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace evmp::analysis {

class RaceCheck {
 public:
  using Clock = std::vector<std::uint64_t>;
  using FailureHandler = std::function<void(const std::string& report)>;

  RaceCheck() = default;
  RaceCheck(const RaceCheck&) = delete;
  RaceCheck& operator=(const RaceCheck&) = delete;

  /// Process-wide instance, or nullptr unless EVMP_RACECHECK is truthy
  /// in the environment. Intentionally leaked (workers may outlive
  /// static destruction).
  static RaceCheck* global();

  /// The instance the runtime should consult: a test-installed override
  /// if present, else the env-gated global. One relaxed-ish load on the
  /// off path — this is the only cost when the mode is disabled.
  static RaceCheck* active() noexcept;

  /// RAII installation of a test instance as the active checker.
  class ScopedInstall {
   public:
    explicit ScopedInstall(RaceCheck* instance);
    ~ScopedInstall();
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    RaceCheck* previous_;
  };

  /// Replace abort() on a detected race; for tests.
  void set_failure_handler(FailureHandler handler);

  // -- dispatch-graph edges (called by the runtime) -----------------------

  /// Snapshot the calling thread's clock; returns a birth token to hand
  /// to on_block_start (0 is never returned).
  std::uint64_t on_dispatch(std::string_view target);

  /// Join the birth clock on the thread now running the block.
  void on_block_start(std::uint64_t birth);

  /// Park the finishing thread's clock on the completion (and merge it
  /// into the tag group, when the block was dispatched name_as). Must
  /// run before the completion is published.
  void on_block_finish(const void* completion, const void* tag_group);

  /// A blocking wait / await on `completion` returned: join its clock.
  void on_join(const void* completion);

  /// A wait(tag) on `tag_group` returned: join the merged producer clock.
  void on_tag_join(const void* tag_group);

  // -- shadow state for evmp::shared<T> -----------------------------------

  void* create_shadow(std::string name);
  void destroy_shadow(void* shadow);
  void on_read(void* shadow);
  void on_write(void* shadow);

 private:
  struct ThreadState {
    int slot = -1;       ///< index into vector clocks
    Clock clock;         ///< the thread's current vector clock
    std::string chain;   ///< dispatch chain, e.g. "external:123 -> worker"
  };

  struct Birth {
    Clock clock;
    std::string chain;
  };

  struct Shadow {
    std::string name;
    int write_slot = -1;
    std::uint64_t write_epoch = 0;
    std::string write_chain;
    Clock reads;  ///< last read epoch per slot (0 = none)
    std::vector<std::string> read_chains;
  };

  ThreadState& self_locked();
  [[nodiscard]] std::string report_locked(const Shadow& shadow,
                                          const ThreadState& self,
                                          const char* current,
                                          const char* prior,
                                          const std::string& prior_chain) const;
  void fail(const std::string& report);

  static std::atomic<RaceCheck*> override_;

  std::mutex mu_;
  std::map<std::thread::id, ThreadState> threads_;
  std::map<std::uint64_t, Birth> births_;
  std::map<const void*, Clock> deaths_;      ///< keyed by CompletionState*
  std::map<const void*, Clock> tag_clocks_;  ///< keyed by TagGroup*
  int next_slot_ = 0;
  std::uint64_t next_birth_ = 1;
  FailureHandler handler_;
};

}  // namespace evmp::analysis

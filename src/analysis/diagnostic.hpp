#pragma once
// Diagnostic model for the evmpcc static analyzer (`--analyze`).
//
// A Diagnostic is one finding of the directive lint: a rule id (E1..E5
// errors, W1..W4 warnings, P1 for unparseable directives), a severity, the
// 1-based source line (via SourceScanner::line_of) and a human-readable
// message. Multi-TU invocations additionally stamp the file the finding is
// anchored in. Renderers produce the three CLI output formats:
// compiler-style `file:line: severity[RULE]: message` text, a stable JSON
// schema for CI tooling, and SARIF 2.1.0 for code-scanning uploads.

#include <string>
#include <string_view>
#include <vector>

namespace evmp::analysis {

enum class Severity : unsigned char { kWarning, kError };

[[nodiscard]] const char* to_string(Severity severity) noexcept;

/// One analyzer finding, anchored to a source line.
struct Diagnostic {
  std::string rule;  ///< "E1".."E5", "W1".."W4", "P1"
  Severity severity = Severity::kWarning;
  int line = 0;  ///< 1-based; 0 when the finding has no line anchor
  std::string message;
  std::string file{};  ///< anchoring TU; empty in single-TU mode (the
                       ///< renderers then fall back to their `file` argument)
};

struct DiagnosticCounts {
  int errors = 0;
  int warnings = 0;
};

[[nodiscard]] DiagnosticCounts count(const std::vector<Diagnostic>& diags);

/// Stable ordering for output: by file, then line, then rule id.
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Compiler-style text, one finding per line:
///   `<file>:<line>: error[E1]: <message>`
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diags,
                                      std::string_view file);

/// JSON object:
///   {"file": "...", "diagnostics": [{"rule": "E1", "severity": "error",
///    "line": 7, "message": "..."}], "errors": N, "warnings": M}
/// Findings anchored in another TU carry an extra per-entry "file" key.
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diags,
                                      std::string_view file);

/// SARIF 2.1.0 log (one run, tool driver "evmpcc") for code-scanning
/// ingestion. `file` is the artifact URI for findings without their own.
[[nodiscard]] std::string render_sarif(const std::vector<Diagnostic>& diags,
                                       std::string_view file);

}  // namespace evmp::analysis

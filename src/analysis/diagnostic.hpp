#pragma once
// Diagnostic model for the evmpcc static analyzer (`--analyze`).
//
// A Diagnostic is one finding of the directive lint: a rule id (E1..E4
// errors, W1..W3 warnings, P1 for unparseable directives), a severity, the
// 1-based source line (via SourceScanner::line_of) and a human-readable
// message. Renderers produce the two CLI output formats: compiler-style
// `file:line: severity[RULE]: message` text and a stable JSON schema for
// CI tooling.

#include <string>
#include <string_view>
#include <vector>

namespace evmp::analysis {

enum class Severity : unsigned char { kWarning, kError };

[[nodiscard]] const char* to_string(Severity severity) noexcept;

/// One analyzer finding, anchored to a source line.
struct Diagnostic {
  std::string rule;  ///< "E1".."E4", "W1".."W3", "P1"
  Severity severity = Severity::kWarning;
  int line = 0;  ///< 1-based; 0 when the finding has no line anchor
  std::string message;
};

struct DiagnosticCounts {
  int errors = 0;
  int warnings = 0;
};

[[nodiscard]] DiagnosticCounts count(const std::vector<Diagnostic>& diags);

/// Stable ordering for output: by line, then rule id.
void sort_diagnostics(std::vector<Diagnostic>& diags);

/// Compiler-style text, one finding per line:
///   `<file>:<line>: error[E1]: <message>`
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diags,
                                      std::string_view file);

/// JSON object:
///   {"file": "...", "diagnostics": [{"rule": "E1", "severity": "error",
///    "line": 7, "message": "..."}], "errors": N, "warnings": M}
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diags,
                                      std::string_view file);

}  // namespace evmp::analysis

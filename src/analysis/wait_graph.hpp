#pragma once
// EVMP_VERIFY: the runtime wait-for-graph deadlock verifier.
//
// When the environment variable EVMP_VERIFY is truthy, the runtime records
// every *hard* blocking wait as an edge in a process-wide graph: a thread
// of executor A (or an external thread) is blocked until executor B — or a
// name_as tag group — makes progress. On each hard-edge insertion the
// graph runs a cycle search; a cycle through *saturated* executors (every
// serving thread blocked) is a real deadlock, and the verifier prints the
// full blocking chain — executor names, per-edge pending-task counts, the
// tracer's counters — then aborts, turning a silent hang into a report.
//
// `await` barriers from member threads are recorded as *soft* edges: the
// waiting thread keeps pumping its own queue (Algorithm 1), so it does not
// wedge its executor. Soft edges appear in reports but never saturate a
// node. EVMP_VERIFY_TIMEOUT_MS additionally arms a watchdog on every
// instrumented wait for hangs a wait-for cycle cannot express (e.g. a
// pump-starved tag join).
//
// Cost when disabled: WaitGraph::global() is a single static pointer load
// returning nullptr; no edge is ever recorded. This library deliberately
// depends only on evmp_common — the runtime hands in plain names and
// counts, so core does not pull the compiler-side analysis code.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace evmp::analysis {

class WaitGraph {
 public:
  /// The blocking side of an edge. `concurrency` is the number of threads
  /// serving the named executor; 0 marks a non-executor waiter (external
  /// thread), which can never saturate.
  struct Waiter {
    std::string name;
    std::size_t concurrency = 0;
  };

  explicit WaitGraph(std::chrono::milliseconds timeout = {});

  /// Process-wide verifier, or nullptr when EVMP_VERIFY is off. The
  /// instance is created on first use and intentionally leaked (executor
  /// threads may still record waits during static teardown).
  static WaitGraph* global();

  [[nodiscard]] std::chrono::milliseconds timeout() const noexcept {
    return timeout_;
  }

  /// Record that a thread of `from` blocks until `to` makes progress.
  /// `hard` waits count toward saturation and trigger the cycle search;
  /// soft waits (pumping awaits) are informational. Returns the edge id
  /// for remove_wait. Deadlock detection reports via fail().
  std::uint64_t add_wait(const Waiter& from, const std::string& to,
                         std::size_t to_pending, const char* what, bool hard);
  void remove_wait(std::uint64_t id);

  /// Watchdog escalation from an instrumented wait that exceeded
  /// timeout(). Renders the whole graph and fails.
  void fail_timeout(const Waiter& from, const std::string& to,
                    const char* what);

  /// Test hook: route failure reports here instead of stderr + abort().
  void set_failure_handler(std::function<void(const std::string&)> handler);

  /// Human-readable dump of the current edges (diagnostics, tests).
  [[nodiscard]] std::string describe() const;

 private:
  struct Edge {
    std::uint64_t id = 0;
    std::string from;
    std::string to;
    std::size_t pending = 0;
    const char* what = "";
    bool hard = false;
    std::string site;  ///< dispatch-site call path of the waiting thread
                       ///< (evmpcc --annotate-sites); empty otherwise
  };
  struct NodeState {
    std::size_t blocked = 0;      ///< hard-blocked waiter threads
    std::size_t concurrency = 0;  ///< 0 = not an executor
  };

  [[nodiscard]] bool saturated_locked(const std::string& node) const;
  bool find_cycle_locked(const std::string& origin, const std::string& start,
                         std::vector<const Edge*>& path,
                         std::vector<std::string>& visited) const;
  [[nodiscard]] std::string describe_locked() const;
  [[nodiscard]] std::string report_cycle_locked(
      const std::vector<const Edge*>& cycle) const;
  void fail(const std::string& report);

  mutable std::mutex mu_;
  std::vector<Edge> edges_;
  std::map<std::string, NodeState> nodes_;
  std::uint64_t next_id_ = 1;
  std::chrono::milliseconds timeout_{0};
  std::function<void(const std::string&)> handler_;
};

/// RAII edge registration around one blocking wait.
class WaitScope {
 public:
  WaitScope(WaitGraph& graph, const WaitGraph::Waiter& from, std::string to,
            std::size_t to_pending, const char* what, bool hard)
      : graph_(&graph),
        id_(graph.add_wait(from, std::move(to), to_pending, what, hard)) {}
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;
  ~WaitScope() { graph_->remove_wait(id_); }

 private:
  WaitGraph* graph_;
  std::uint64_t id_;
};

}  // namespace evmp::analysis

#pragma once
// The static-analysis substrate: every directive occurrence in one
// translation unit, with its lexical nesting.
//
// Nodes are parsed directives (target regions with their virtual-target
// name and async mode, standalone waits, traditional parallel regions);
// the parent edges are lexical containment in the directive's structured
// block. Rule passes (analyzer.cpp) layer the semantic edges — blocking
// default-mode dispatches and name_as -> wait(tag) joins — on top of this.

#include <cstddef>
#include <string_view>
#include <vector>

#include "compilerlib/directive.hpp"
#include "compilerlib/source_scanner.hpp"

namespace evmp::analysis {

/// One directive occurrence and its structured block, if any.
struct RegionNode {
  compiler::Directive directive;
  int parent = -1;                  ///< index of the enclosing node, or -1
  std::size_t directive_begin = 0;  ///< byte offset of the directive marker
  std::size_t block_begin = 0;      ///< structured block [begin, end);
  std::size_t block_end = 0;        ///< 0,0 for the standalone wait
};

/// Lexical directive graph of one source buffer. The buffer must outlive
/// the graph (the scanner keeps a view into it).
class DirectiveGraph {
 public:
  /// Scans and parses every directive. Throws compiler::TranslateError on
  /// malformed directives or unextractable structured blocks.
  explicit DirectiveGraph(std::string_view source);

  [[nodiscard]] const std::vector<RegionNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const compiler::SourceScanner& scanner() const noexcept {
    return scanner_;
  }

  /// Nearest enclosing *target-region* ancestor of `node`, or -1. A
  /// traditional parallel/parallel-for ancestor stops the walk: its team
  /// threads are not the enclosing target's thread, so the execution
  /// context is no longer that executor.
  [[nodiscard]] int enclosing_target(int node) const;

 private:
  compiler::SourceScanner scanner_;
  std::vector<RegionNode> nodes_;
};

}  // namespace evmp::analysis

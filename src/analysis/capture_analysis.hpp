#pragma once
// Capture/access dataflow for the cross-region race rules (E4/W3).
//
// For every target region with a structured block, scans the block's
// code bytes (nested target regions, comments, strings, and preprocessor
// lines excluded) and records each use of an identifier that is neither
// declared inside the block nor listed in firstprivate(...) — i.e. a
// by-reference capture of enclosing state. Each use is classified along
// three axes the race rules combine into a severity:
//
//   write        does the expression (possibly) mutate the variable?
//   direct       plain `v = ...` / `++v` style, vs element, member, or
//                pointer-mediated access (`v[i] = ...`, `v.push(x)`,
//                `*v = ...`) where aliasing blurs what is written
//   conditional  lexically under an if/else/loop/switch/catch inside
//                the block, so the access may not execute
//
// A bare call `v(...)` counts as a plain read: invoking a callable
// capture (lambdas, function references) observes but does not mutate
// the binding itself — its body is analyzed where it is written, not at
// every call site. This is a token-level approximation, not a C++
// frontend; the EVMP_RACECHECK runtime verifier (race_check.hpp) is the
// precise backstop for what this pass can only flag heuristically.

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/directive_graph.hpp"

namespace evmp::analysis {

/// One occurrence of a captured (non-local) identifier in a region.
struct VarAccess {
  std::string name;
  std::size_t pos = 0;  ///< byte offset of the identifier
  int line = 0;
  bool write = false;
  bool direct = true;
  bool conditional = false;
};

/// All captured-variable accesses of one target region's direct body
/// (nested target regions report under their own node).
struct RegionAccesses {
  int node = -1;  ///< index into DirectiveGraph::nodes()
  std::vector<VarAccess> accesses;
};

/// Classify every captured-variable access of every target region with
/// a block. Regions marked default(none) are skipped: they declare no
/// shared state, and rule W2-style enforcement belongs to translation.
[[nodiscard]] std::vector<RegionAccesses> analyze_captures(
    const DirectiveGraph& graph);

}  // namespace evmp::analysis

#include "analysis/wait_graph.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/dispatch_site.hpp"
#include "common/env.hpp"
#include "common/tracing.hpp"

namespace evmp::analysis {

WaitGraph::WaitGraph(std::chrono::milliseconds timeout) : timeout_(timeout) {}

WaitGraph* WaitGraph::global() {
  static WaitGraph* const graph = []() -> WaitGraph* {
    if (!common::env_bool("EVMP_VERIFY").value_or(false)) return nullptr;
    const long ms = common::env_long("EVMP_VERIFY_TIMEOUT_MS").value_or(0);
    return new WaitGraph(std::chrono::milliseconds(ms < 0 ? 0 : ms));
  }();
  return graph;
}

std::uint64_t WaitGraph::add_wait(const Waiter& from, const std::string& to,
                                  std::size_t to_pending, const char* what,
                                  bool hard) {
  std::uint64_t id = 0;
  std::string report;
  // Sampled outside the lock: the site stack is the calling thread's own.
  std::string site = dispatch_site_path();
  {
    std::scoped_lock lk(mu_);
    NodeState& origin = nodes_[from.name];
    origin.concurrency = from.concurrency;
    if (hard) ++origin.blocked;
    nodes_.try_emplace(to);
    id = next_id_++;
    edges_.push_back({id, from.name, to, to_pending, what, hard,
                      std::move(site)});
    // Only a newly saturated origin can close a cycle: every cycle needs
    // all of its executors fully blocked, and this insertion is the only
    // state change since the last check.
    if (hard && saturated_locked(from.name)) {
      std::vector<const Edge*> path;
      std::vector<std::string> visited;
      if (find_cycle_locked(from.name, from.name, path, visited)) {
        report = report_cycle_locked(path);
      }
    }
  }
  if (!report.empty()) fail(report);
  return id;
}

void WaitGraph::remove_wait(std::uint64_t id) {
  std::scoped_lock lk(mu_);
  const auto it =
      std::find_if(edges_.begin(), edges_.end(),
                   [id](const Edge& e) { return e.id == id; });
  if (it == edges_.end()) return;
  if (it->hard) {
    NodeState& origin = nodes_[it->from];
    if (origin.blocked > 0) --origin.blocked;
  }
  edges_.erase(it);
}

bool WaitGraph::saturated_locked(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return false;
  return it->second.concurrency > 0 &&
         it->second.blocked >= it->second.concurrency;
}

bool WaitGraph::find_cycle_locked(const std::string& origin,
                                  const std::string& start,
                                  std::vector<const Edge*>& path,
                                  std::vector<std::string>& visited) const {
  for (const Edge& e : edges_) {
    if (e.from != start) continue;
    if (e.to == origin) {
      path.push_back(&e);
      return true;
    }
    if (std::find(visited.begin(), visited.end(), e.to) != visited.end()) {
      continue;
    }
    visited.push_back(e.to);
    // A cycle is a deadlock only if every executor on it is saturated:
    // one free (or pumping) thread anywhere on the chain can drain it.
    if (!saturated_locked(e.to)) continue;
    path.push_back(&e);
    if (find_cycle_locked(origin, e.to, path, visited)) return true;
    path.pop_back();
  }
  return false;
}

std::string WaitGraph::describe_locked() const {
  std::ostringstream out;
  for (const Edge& e : edges_) {
    const auto it = nodes_.find(e.from);
    out << "  '" << e.from << "'";
    if (it != nodes_.end() && it->second.concurrency > 0) {
      out << " (" << it->second.blocked << "/" << it->second.concurrency
          << " threads blocked)";
    }
    out << (e.hard ? " waits on '" : " pumps while awaiting '") << e.to
        << "' via " << e.what << " (pending=" << e.pending << ")";
    if (!e.site.empty()) out << " [at " << e.site << "]";
    out << "\n";
  }
  return out.str();
}

std::string WaitGraph::report_cycle_locked(
    const std::vector<const Edge*>& cycle) const {
  std::ostringstream out;
  out << "EVMP_VERIFY: deadlock detected — blocking wait cycle:\n";
  std::string chain = cycle.empty() ? std::string{} : cycle.front()->from;
  for (const Edge* e : cycle) {
    chain += " -> " + e->to;
    out << "  '" << e->from << "' waits on '" << e->to << "' via " << e->what
        << " (pending=" << e->pending << ")";
    if (!e->site.empty()) out << " [at " << e->site << "]";
    out << "\n";
  }
  out << "cycle: " << chain << "\n";
  out << "wait-for graph:\n" << describe_locked();
  out << "tracer counters:\n";
  for (const auto& [name, value] : common::Tracer::instance().counters()) {
    out << "  " << name << "=" << value << "\n";
  }
  return out.str();
}

void WaitGraph::fail_timeout(const Waiter& from, const std::string& to,
                             const char* what) {
  std::string report;
  {
    std::scoped_lock lk(mu_);
    std::ostringstream out;
    out << "EVMP_VERIFY: wait timeout after " << timeout_.count() << " ms — '"
        << from.name << "' still blocked on '" << to << "' via " << what
        << "\n";
    out << "wait-for graph:\n" << describe_locked();
    out << "tracer counters:\n";
    for (const auto& [name, value] : common::Tracer::instance().counters()) {
      out << "  " << name << "=" << value << "\n";
    }
    report = out.str();
  }
  fail(report);
}

void WaitGraph::set_failure_handler(
    std::function<void(const std::string&)> handler) {
  std::scoped_lock lk(mu_);
  handler_ = std::move(handler);
}

std::string WaitGraph::describe() const {
  std::scoped_lock lk(mu_);
  return describe_locked();
}

void WaitGraph::fail(const std::string& report) {
  std::function<void(const std::string&)> handler;
  {
    std::scoped_lock lk(mu_);
    handler = handler_;
  }
  if (handler) {
    handler(report);
    return;
  }
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace evmp::analysis

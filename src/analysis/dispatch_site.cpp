#include "analysis/dispatch_site.hpp"

#include <algorithm>
#include <cstddef>

namespace evmp::analysis {

namespace {

// Fixed-depth per-thread stack: push/pop never allocate, so annotated
// dispatch sites cost two thread-local stores even in tight loops.
constexpr std::size_t kMaxFrames = 16;
thread_local const char* t_frames[kMaxFrames];
thread_local std::size_t t_depth = 0;

}  // namespace

void push_dispatch_site(const char* frame) noexcept {
  if (t_depth < kMaxFrames) t_frames[t_depth] = frame;
  ++t_depth;
}

void pop_dispatch_site() noexcept {
  if (t_depth > 0) --t_depth;
}

bool has_dispatch_site() noexcept { return t_depth > 0; }

std::string dispatch_site_path() {
  std::string out;
  const std::size_t stored = std::min(t_depth, kMaxFrames);
  for (std::size_t i = 0; i < stored; ++i) {
    if (!out.empty()) out += " -> ";
    out += t_frames[i];
  }
  if (t_depth > kMaxFrames) out += " -> ...";
  return out;
}

}  // namespace evmp::analysis

#pragma once
// Fork-join thread team: the traditional OpenMP execution model the paper's
// event-driven extension coexists with.
//
// Semantics mirror `#pragma omp parallel`: the encountering thread becomes
// the master (thread id 0) and *participates* in the region, and the region
// has an implicit join — the encountering thread cannot proceed until every
// member finished. That inherent "join" is exactly what the paper identifies
// as incompatible with event dispatching (the EDT is trapped in the region),
// which the benchmarks reproduce via the "synchronous parallel" approach.
//
// Synchronisation: fork, join and barrier() are built on C++20 atomic
// wait/notify with a spin-then-park ladder (common::SpinWait) instead of
// the previous mutex + two condition variables + mutex-based barrier. A
// fork is one release store (the task pointer) plus one epoch bump; a
// helper wakes from the epoch word; the join is an atomic countdown the
// master spins on briefly before parking; barrier() is sense-reversing on
// an arrival counter + generation epoch. DESIGN.md §9 documents the
// protocol. For the per-event-region thread-creation pathology (Figure 9)
// and its fix, see TeamPool in team_pool.hpp.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace evmp::fj {

/// Process-wide count of fork-join helper threads ever created. The paper's
/// Figure 9 attributes the throughput level-off of per-event parallelisation
/// to "the total number of threads in the system soar[ing] to a high value";
/// this counter makes that observable in the reproduction.
std::uint64_t total_helper_threads_created() noexcept;

/// omp_get_thread_num(): the calling thread's id within the innermost
/// active fork-join region, or 0 outside any region.
int thread_num() noexcept;

/// omp_get_num_threads(): the innermost active region's team size, or 1
/// outside any region.
int num_threads() noexcept;

/// omp_in_parallel(): true while inside a fork-join region.
bool in_parallel() noexcept;

/// A reusable fork-join team of `num_threads` members (1 master = the
/// thread calling parallel(), plus num_threads-1 pool helpers).
class Team {
 public:
  /// Creates the helper threads immediately. num_threads >= 1.
  explicit Team(int num_threads);
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run `fn(thread_id, team_size)` on every member; the caller runs as
  /// thread 0 and blocks until all members return (fork-join). If any member
  /// throws, the first exception is rethrown here after the join.
  /// Not reentrant: a region body must not call parallel() on the same team.
  void parallel(const std::function<void(int, int)>& fn);

  /// In-region barrier: every team member must call it the same number of
  /// times (like `#pragma omp barrier`). Only valid inside parallel().
  void barrier();

  /// In-region mutual exclusion (like `#pragma omp critical`).
  void critical(const std::function<void()>& fn);

  [[nodiscard]] int num_threads() const noexcept { return n_; }

  /// Fork-join regions executed so far.
  [[nodiscard]] std::uint64_t regions() const noexcept {
    return regions_.load(std::memory_order_relaxed);
  }

 private:
  void helper_main(int tid);
  void run_member(int tid, const std::function<void(int, int)>& fn);

  const int n_;

  // Fork protocol: the master publishes task_ (release), then bumps the
  // fork epoch (release) and notifies; a helper acquiring the new epoch
  // therefore sees the task pointer. fork_epoch_ is also bumped (without a
  // region) at destruction so parked helpers wake and observe stopping_.
  std::atomic<const std::function<void(int, int)>*> task_{nullptr};
  std::atomic<std::uint64_t> fork_epoch_{0};
  std::atomic<std::uint64_t> regions_{0};
  std::atomic<bool> stopping_{false};

  // Join protocol: helpers count themselves done; the master spins briefly,
  // then parks on the count. Only the final helper notifies.
  std::atomic<int> helpers_done_{0};

  // Sense-reversing barrier: arrivals accumulate; the last arriver resets
  // the count *before* releasing the generation, so the next barrier's
  // arrivals (which can only start after the release) find zero.
  std::atomic<int> bar_arrived_{0};
  std::atomic<std::uint64_t> bar_generation_{0};

  std::mutex crit_mu_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::vector<std::jthread> helpers_;  // last member: starts after state init,
                                       // joins (in ~Team) before state dies
};

}  // namespace evmp::fj

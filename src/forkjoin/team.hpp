#pragma once
// Fork-join thread team: the traditional OpenMP execution model the paper's
// event-driven extension coexists with.
//
// Semantics mirror `#pragma omp parallel`: the encountering thread becomes
// the master (thread id 0) and *participates* in the region, and the region
// has an implicit join — the encountering thread cannot proceed until every
// member finished. That inherent "join" is exactly what the paper identifies
// as incompatible with event dispatching (the EDT is trapped in the region),
// which the benchmarks reproduce via the "synchronous parallel" approach.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace evmp::fj {

/// Process-wide count of fork-join helper threads ever created. The paper's
/// Figure 9 attributes the throughput level-off of per-event parallelisation
/// to "the total number of threads in the system soar[ing] to a high value";
/// this counter makes that observable in the reproduction.
std::uint64_t total_helper_threads_created() noexcept;

/// omp_get_thread_num(): the calling thread's id within the innermost
/// active fork-join region, or 0 outside any region.
int thread_num() noexcept;

/// omp_get_num_threads(): the innermost active region's team size, or 1
/// outside any region.
int num_threads() noexcept;

/// omp_in_parallel(): true while inside a fork-join region.
bool in_parallel() noexcept;

/// A reusable fork-join team of `num_threads` members (1 master = the
/// thread calling parallel(), plus num_threads-1 pool helpers).
class Team {
 public:
  /// Creates the helper threads immediately. num_threads >= 1.
  explicit Team(int num_threads);
  ~Team();
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Run `fn(thread_id, team_size)` on every member; the caller runs as
  /// thread 0 and blocks until all members return (fork-join). If any member
  /// throws, the first exception is rethrown here after the join.
  /// Not reentrant: a region body must not call parallel() on the same team.
  void parallel(const std::function<void(int, int)>& fn);

  /// In-region barrier: every team member must call it the same number of
  /// times (like `#pragma omp barrier`). Only valid inside parallel().
  void barrier();

  /// In-region mutual exclusion (like `#pragma omp critical`).
  void critical(const std::function<void()>& fn);

  [[nodiscard]] int num_threads() const noexcept { return n_; }

  /// Fork-join regions executed so far.
  [[nodiscard]] std::uint64_t regions() const;

 private:
  void helper_main(int tid);
  void run_member(int tid, const std::function<void(int, int)>& fn);

  const int n_;

  mutable std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int, int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int helpers_done_ = 0;
  bool stopping_ = false;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_arrived_ = 0;
  std::uint64_t bar_generation_ = 0;

  std::mutex crit_mu_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::vector<std::jthread> helpers_;  // last member: starts after state init
};

}  // namespace evmp::fj

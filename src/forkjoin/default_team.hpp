#pragma once
// Process-wide default fork-join team: the execution context behind
// translated `#pragma omp parallel [for]` directives that carry no
// num_threads clause (OpenMP's nthreads-var ICV).
//
// Team::parallel is not reentrant and a Team must not run two regions
// concurrently, so access to the default team is serialised — concurrent
// regions from different threads simply queue, which matches OpenMP's
// behaviour of a single contended machine rather than crashing.

#include <mutex>

#include "forkjoin/parallel_for.hpp"
#include "forkjoin/team.hpp"

namespace evmp::fj {

/// The default team, sized from EVMP_NUM_THREADS (else
/// hardware_concurrency, else 4). Created on first use.
Team& default_team();

/// Serialises regions on the default team.
std::mutex& default_team_mutex();

/// `#pragma omp parallel` on the default team.
template <class F>
void default_parallel(F&& fn) {
  std::scoped_lock lk(default_team_mutex());
  default_team().parallel(std::forward<F>(fn));
}

/// `#pragma omp parallel for` on the default team.
template <class F>
void default_parallel_for(long lo, long hi, F&& body,
                          Schedule sched = Schedule::kStatic,
                          long chunk = 0) {
  std::scoped_lock lk(default_team_mutex());
  parallel_for(default_team(), lo, hi, std::forward<F>(body), sched, chunk);
}

/// Range-based form used by translated reductions.
template <class PerRange>
void default_parallel_ranges(long lo, long hi, PerRange&& body,
                             Schedule sched = Schedule::kStatic,
                             long chunk = 0) {
  std::scoped_lock lk(default_team_mutex());
  parallel_ranges(default_team(), lo, hi, std::forward<PerRange>(body),
                  sched, chunk);
}

}  // namespace evmp::fj

#include "forkjoin/width_governor.hpp"

#include <algorithm>
#include <bit>
#include <string>
#include <thread>

#include "common/tracing.hpp"

namespace evmp::fj {

namespace {

int hardware_cores() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

WidthGovernor::WidthGovernor(int cores) noexcept {
  if (cores > 0) cores_override_.store(cores, std::memory_order_relaxed);
}

void WidthGovernor::set_cores(int cores) noexcept {
  cores_override_.store(cores > 0 ? cores : 0, std::memory_order_relaxed);
}

int WidthGovernor::cores() const noexcept {
  const int v = cores_override_.load(std::memory_order_relaxed);
  return v > 0 ? v : hardware_cores();
}

void WidthGovernor::on_lease() noexcept {
  const int now = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  int seen = high_water_.load(std::memory_order_relaxed);
  while (now > seen &&
         !high_water_.compare_exchange_weak(seen, now,
                                            std::memory_order_relaxed)) {
  }
  // The decaying estimate rides the same peaks; only decay() lowers it.
  seen = decayed_high_water_.load(std::memory_order_relaxed);
  while (now > seen && !decayed_high_water_.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
}

void WidthGovernor::on_release() noexcept {
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void WidthGovernor::set_queue_depth(std::size_t depth) noexcept {
  queue_depth_.store(depth, std::memory_order_relaxed);
}

int WidthGovernor::active() const noexcept {
  return active_.load(std::memory_order_relaxed);
}

int WidthGovernor::high_water() const noexcept {
  return high_water_.load(std::memory_order_relaxed);
}

int WidthGovernor::decayed_high_water() const noexcept {
  return decayed_high_water_.load(std::memory_order_relaxed);
}

int WidthGovernor::decide(int hint) noexcept {
  WidthSignals signals;
  signals.active_leases = active_.load(std::memory_order_relaxed);
  signals.queue_depth = static_cast<int>(std::min<std::size_t>(
      queue_depth_.load(std::memory_order_relaxed), 1u << 20));
  signals.cores = cores();
  return decide(hint, signals);
}

int WidthGovernor::decide(int hint, const WidthSignals& signals) noexcept {
  const int budget = signals.cores > 0 ? signals.cores : cores();
  if (hint <= 0) hint = budget;
  // Demand counts the requester itself plus everything running or queued.
  const int demand = std::max(1, signals.active_leases + 1 +
                                     std::max(0, signals.queue_depth));
  const int share = std::max(1, (kOversubscription * budget) / demand);
  const int width = std::clamp(share, 1, std::max(1, hint));
  decisions_.fetch_add(1, std::memory_order_relaxed);
  count(requested_, hint);
  count(granted_, width);
  return width;
}

bool WidthGovernor::decay_due() noexcept {
  const std::uint32_t n =
      decisions_since_decay_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < kDecayPeriod) return false;
  decisions_since_decay_.store(0, std::memory_order_relaxed);
  return true;
}

std::size_t WidthGovernor::decay() noexcept {
  const int current = std::max(0, active_.load(std::memory_order_relaxed));
  const int estimate = decayed_high_water_.load(std::memory_order_relaxed);
  // Halve toward current activity; a sustained load keeps the estimate at
  // its level, a finished burst halves it every period. Rounds up so a
  // live adaptive load (which is what triggers decay) never trims its
  // last warm team — sequential leases would otherwise recreate helper
  // threads every period.
  const int next = std::max(current, (estimate + current + 1) / 2);
  decayed_high_water_.store(next, std::memory_order_relaxed);
  return static_cast<std::size_t>(next);
}

std::size_t WidthGovernor::bucket_of(int width) noexcept {
  if (width < 1) width = 1;
  const auto bits =
      std::bit_width(static_cast<unsigned>(width - 1));  // 1→0, 2→1, 4→2 ...
  return std::min<std::size_t>(bits, kHistogramBuckets - 1);
}

void WidthGovernor::count(
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets>& h,
    int width) noexcept {
  h[bucket_of(width)].fetch_add(1, std::memory_order_relaxed);
}

std::array<std::uint64_t, WidthGovernor::kHistogramBuckets>
WidthGovernor::requested_histogram() const noexcept {
  std::array<std::uint64_t, kHistogramBuckets> out{};
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out[i] = requested_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::array<std::uint64_t, WidthGovernor::kHistogramBuckets>
WidthGovernor::granted_histogram() const noexcept {
  std::array<std::uint64_t, kHistogramBuckets> out{};
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out[i] = granted_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void WidthGovernor::publish_counters(std::string_view prefix) const {
  auto& tracer = common::Tracer::instance();
  const std::string base(prefix);
  tracer.set_counter(base + ".decisions",
                     decisions_.load(std::memory_order_relaxed));
  const auto requested = requested_histogram();
  const auto granted = granted_histogram();
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    // Bucket label = the bucket's upper width bound (1, 2, 4, 8, ...).
    const std::string label = std::to_string(1u << i);
    if (requested[i] != 0) {
      tracer.set_counter(base + ".requested_w" + label, requested[i]);
    }
    if (granted[i] != 0) {
      tracer.set_counter(base + ".granted_w" + label, granted[i]);
    }
  }
}

}  // namespace evmp::fj

#pragma once
// Worksharing constructs over a fork-join Team: the `#pragma omp for`
// equivalents (static / dynamic / guided schedules) plus reductions.

#include <algorithm>
#include <atomic>
#include <limits>
#include <type_traits>
#include <vector>

#include "forkjoin/team.hpp"

namespace evmp::fj {

/// Loop schedule, mirroring OpenMP's schedule(kind[, chunk]) clause.
enum class Schedule {
  kStatic,   ///< contiguous blocks (chunk==0) or round-robin chunks
  kDynamic,  ///< first-come-first-served chunks from a shared counter
  kGuided,   ///< shrinking chunks: max(chunk, remaining / (2 * team))
};

/// Spelling for reports ("static", "dynamic", "guided").
constexpr const char* to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "?";
}

/// Dispatch contiguous index ranges of [lo, hi) to team members under a
/// schedule. `body(tid, range_lo, range_hi)` is invoked once per assigned
/// range; ranges partition [lo, hi) exactly. This is the primitive both
/// parallel_for and the kernels' batched work model build on.
template <class PerRange>
void parallel_ranges(Team& team, long lo, long hi, PerRange&& body,
                     Schedule sched = Schedule::kStatic, long chunk = 0) {
  const long n = hi - lo;
  if (n <= 0) return;
  switch (sched) {
    case Schedule::kStatic: {
      if (chunk <= 0) {
        // Block partition: thread t gets [lo + t*n/p, lo + (t+1)*n/p).
        team.parallel([&](int tid, int nth) {
          const long begin = lo + tid * n / nth;
          const long end = lo + (tid + 1) * n / nth;
          if (begin < end) body(tid, begin, end);
        });
      } else {
        // Round-robin chunks of fixed size.
        team.parallel([&](int tid, int nth) {
          const long stride = static_cast<long>(nth) * chunk;
          for (long base = lo + tid * chunk; base < hi; base += stride) {
            body(tid, base, std::min(hi, base + chunk));
          }
        });
      }
      break;
    }
    case Schedule::kDynamic: {
      const long c = chunk <= 0 ? 1 : chunk;
      std::atomic<long> next{lo};
      team.parallel([&](int tid, int) {
        for (;;) {
          const long base = next.fetch_add(c, std::memory_order_relaxed);
          if (base >= hi) break;
          body(tid, base, std::min(hi, base + c));
        }
      });
      break;
    }
    case Schedule::kGuided: {
      const long min_chunk = chunk <= 0 ? 1 : chunk;
      std::atomic<long> next{lo};
      team.parallel([&](int tid, int nth) {
        long seen = next.load(std::memory_order_relaxed);
        while (seen < hi) {
          // Claim by CAS, clamped to what actually remains: the shared
          // counter can never move past hi, so back-to-back long-running
          // loops cannot creep it toward overflow (a fetch_add here used
          // to overshoot by one chunk per exiting thread). A failed CAS
          // reloads `seen` and re-sizes the chunk from fresh state.
          const long remaining = hi - seen;
          const long take = std::min(
              remaining,
              std::max(min_chunk, remaining / (2 * static_cast<long>(nth))));
          if (next.compare_exchange_weak(seen, seen + take,
                                         std::memory_order_relaxed)) {
            body(tid, seen, seen + take);
            seen = next.load(std::memory_order_relaxed);
          }
        }
      });
      break;
    }
  }
}

namespace detail {

/// Cache-line padded accumulator slot to avoid false sharing in reductions.
template <class T>
struct alignas(64) Padded {
  T value;
};

// Reduction identity elements, referenced by evmpcc-generated code for
// `reduction(op: var)` clauses (OpenMP initialises each private copy with
// the operator's identity).
template <class T> constexpr T ident_plus() { return T{}; }
template <class T> constexpr T ident_mul() { return static_cast<T>(1); }
template <class T> constexpr T ident_min() { return std::numeric_limits<T>::max(); }
template <class T> constexpr T ident_max() { return std::numeric_limits<T>::lowest(); }
template <class T> constexpr T ident_band() { return static_cast<T>(~T{}); }
template <class T> constexpr T ident_land() { return static_cast<T>(true); }

/// Shared tail of parallel_reduce over an externally provided partials
/// array (inline stack slots or heap fallback).
template <class T, class Op, class F>
T reduce_into(Team& team, long lo, long hi, T identity, Op& op, F& body,
              Schedule sched, long chunk, Padded<T>* partials,
              std::size_t num_slots) {
  parallel_ranges(
      team, lo, hi,
      [&](int tid, long range_lo, long range_hi) {
        auto& slot = partials[static_cast<std::size_t>(tid)].value;
        T local = slot;
        for (long i = range_lo; i < range_hi; ++i) local = op(local, body(i));
        slot = local;
      },
      sched, chunk);
  T result = identity;
  for (std::size_t i = 0; i < num_slots; ++i) {
    result = op(result, partials[i].value);
  }
  return result;
}

}  // namespace detail

/// `#pragma omp parallel for`: run body(i) for every i in [lo, hi).
/// Blocks the calling thread (which participates) until the loop completes.
template <class F>
void parallel_for(Team& team, long lo, long hi, F&& body,
                  Schedule sched = Schedule::kStatic, long chunk = 0) {
  parallel_ranges(
      team, lo, hi,
      [&](int, long range_lo, long range_hi) {
        for (long i = range_lo; i < range_hi; ++i) body(i);
      },
      sched, chunk);
}

/// `#pragma omp parallel for reduction(op:acc)`: fold body(i) over [lo, hi).
/// `op(T, T) -> T` must be associative; `identity` is its neutral element.
///
/// Teams of up to 16 members keep their padded partials on the caller's
/// stack (SBO) — hot per-event reductions perform no heap allocation. Wider
/// teams, and element types that cannot be default-constructed into the
/// inline slots, fall back to the heap vector.
template <class T, class Op, class F>
T parallel_reduce(Team& team, long lo, long hi, T identity, Op op, F&& body,
                  Schedule sched = Schedule::kStatic, long chunk = 0) {
  const auto nth = static_cast<std::size_t>(team.num_threads());
  constexpr std::size_t kInlineSlots = 16;
  if constexpr (std::is_default_constructible_v<T>) {
    if (nth <= kInlineSlots) {
      detail::Padded<T> partials[kInlineSlots];
      for (std::size_t i = 0; i < nth; ++i) partials[i].value = identity;
      return detail::reduce_into(team, lo, hi, identity, op, body, sched,
                                 chunk, partials, nth);
    }
  }
  std::vector<detail::Padded<T>> partials(nth, detail::Padded<T>{identity});
  return detail::reduce_into(team, lo, hi, identity, op, body, sched, chunk,
                             partials.data(), nth);
}

}  // namespace evmp::fj

#include "forkjoin/default_team.hpp"

#include <thread>

#include "common/env.hpp"

namespace evmp::fj {

namespace {

int default_thread_count() {
  if (auto v = common::env_long("EVMP_NUM_THREADS"); v && *v > 0) {
    return static_cast<int>(*v);
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 4;
}

}  // namespace

Team& default_team() {
  static Team team(default_thread_count());
  return team;
}

std::mutex& default_team_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace evmp::fj

#include "forkjoin/team.hpp"

#include <atomic>

namespace evmp::fj {

namespace {
std::atomic<std::uint64_t> g_helpers_created{0};

// Innermost-region context of the current thread (omp_get_thread_num /
// omp_get_num_threads). Saved/restored around run_member so nested teams
// report their own region.
thread_local int t_thread_num = 0;
thread_local int t_num_threads = 1;
thread_local bool t_in_parallel = false;
}  // namespace

std::uint64_t total_helper_threads_created() noexcept {
  return g_helpers_created.load(std::memory_order_relaxed);
}

int thread_num() noexcept { return t_thread_num; }
int num_threads() noexcept { return t_num_threads; }
bool in_parallel() noexcept { return t_in_parallel; }

Team::Team(int num_threads) : n_(num_threads < 1 ? 1 : num_threads) {
  helpers_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int tid = 1; tid < n_; ++tid) {
    helpers_.emplace_back([this, tid] { helper_main(tid); });
  }
  g_helpers_created.fetch_add(static_cast<std::uint64_t>(n_ - 1),
                              std::memory_order_relaxed);
}

Team::~Team() {
  {
    std::scoped_lock lk(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  helpers_.clear();  // jthread joins
}

void Team::run_member(int tid, const std::function<void(int, int)>& fn) {
  const int prev_tid = t_thread_num;
  const int prev_n = t_num_threads;
  const bool prev_in = t_in_parallel;
  t_thread_num = tid;
  t_num_threads = n_;
  t_in_parallel = true;
  try {
    fn(tid, n_);
  } catch (...) {
    std::scoped_lock lk(err_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  t_thread_num = prev_tid;
  t_num_threads = prev_n;
  t_in_parallel = prev_in;
}

void Team::parallel(const std::function<void(int, int)>& fn) {
  if (n_ == 1) {
    // Degenerate team: run on the encountering thread, but keep the
    // exception contract identical to the multi-threaded path.
    {
      std::scoped_lock lk(mu_);
      ++generation_;
    }
    run_member(0, fn);
  } else {
    {
      std::scoped_lock lk(mu_);
      task_ = &fn;
      helpers_done_ = 0;
      ++generation_;
    }
    cv_start_.notify_all();
    run_member(0, fn);  // master participates (fork-join)
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [&] { return helpers_done_ == n_ - 1; });
    task_ = nullptr;
  }
  std::exception_ptr err;
  {
    std::scoped_lock lk(err_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void Team::helper_main(int tid) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int, int)>* fn = nullptr;
    {
      std::unique_lock lk(mu_);
      cv_start_.wait(lk, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      fn = task_;
    }
    if (fn != nullptr) run_member(tid, *fn);
    {
      // Notify under the lock: the master may return from parallel() and
      // destroy the Team the instant helpers_done_ reaches its target.
      std::scoped_lock lk(mu_);
      ++helpers_done_;
      cv_done_.notify_one();
    }
  }
}

void Team::barrier() {
  std::unique_lock lk(bar_mu_);
  const std::uint64_t gen = bar_generation_;
  if (++bar_arrived_ == n_) {
    bar_arrived_ = 0;
    ++bar_generation_;
    bar_cv_.notify_all();
  } else {
    bar_cv_.wait(lk, [&] { return bar_generation_ != gen; });
  }
}

void Team::critical(const std::function<void()>& fn) {
  std::scoped_lock lk(crit_mu_);
  fn();
}

std::uint64_t Team::regions() const {
  std::scoped_lock lk(mu_);
  return generation_;
}

}  // namespace evmp::fj

#include "forkjoin/team.hpp"

#include "common/event_count.hpp"

namespace evmp::fj {

namespace {
std::atomic<std::uint64_t> g_helpers_created{0};

// Innermost-region context of the current thread (omp_get_thread_num /
// omp_get_num_threads). Saved/restored around run_member so nested teams
// report their own region.
thread_local int t_thread_num = 0;
thread_local int t_num_threads = 1;
thread_local bool t_in_parallel = false;
}  // namespace

std::uint64_t total_helper_threads_created() noexcept {
  return g_helpers_created.load(std::memory_order_relaxed);
}

int thread_num() noexcept { return t_thread_num; }
int num_threads() noexcept { return t_num_threads; }
bool in_parallel() noexcept { return t_in_parallel; }

Team::Team(int num_threads) : n_(num_threads < 1 ? 1 : num_threads) {
  helpers_.reserve(static_cast<std::size_t>(n_ - 1));
  for (int tid = 1; tid < n_; ++tid) {
    helpers_.emplace_back([this, tid] { helper_main(tid); });
  }
  g_helpers_created.fetch_add(static_cast<std::uint64_t>(n_ - 1),
                              std::memory_order_relaxed);
}

Team::~Team() {
  // stopping_ before the epoch bump: a helper woken by the bump must see
  // the stop flag. Helpers are joined (jthread) before any member dies, so
  // a straggler mid-notify still addresses live atomics.
  stopping_.store(true, std::memory_order_release);
  fork_epoch_.fetch_add(1, std::memory_order_release);
  fork_epoch_.notify_all();
  helpers_.clear();  // jthread joins
}

void Team::run_member(int tid, const std::function<void(int, int)>& fn) {
  const int prev_tid = t_thread_num;
  const int prev_n = t_num_threads;
  const bool prev_in = t_in_parallel;
  t_thread_num = tid;
  t_num_threads = n_;
  t_in_parallel = true;
  try {
    fn(tid, n_);
  } catch (...) {
    std::scoped_lock lk(err_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  t_thread_num = prev_tid;
  t_num_threads = prev_n;
  t_in_parallel = prev_in;
}

void Team::parallel(const std::function<void(int, int)>& fn) {
  regions_.fetch_add(1, std::memory_order_relaxed);
  if (n_ == 1) {
    // Degenerate team: run on the encountering thread, but keep the
    // exception contract identical to the multi-threaded path.
    run_member(0, fn);
  } else {
    // Fork: publish the task, then open the gate. The epoch's release
    // bump + the helpers' acquire load order the task_ store before any
    // helper's read.
    task_.store(&fn, std::memory_order_release);
    helpers_done_.store(0, std::memory_order_relaxed);
    fork_epoch_.fetch_add(1, std::memory_order_release);
    fork_epoch_.notify_all();

    run_member(0, fn);  // master participates (fork-join)

    // Join: spin briefly (helpers usually finish within the master's own
    // tail), then park on the countdown word.
    common::SpinWait spin;
    for (;;) {
      const int done = helpers_done_.load(std::memory_order_acquire);
      if (done == n_ - 1) break;
      if (!spin.spin()) helpers_done_.wait(done, std::memory_order_acquire);
    }
    task_.store(nullptr, std::memory_order_relaxed);
  }
  std::exception_ptr err;
  {
    std::scoped_lock lk(err_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void Team::helper_main(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next fork (or stop): spin-then-park on the epoch word.
    common::SpinWait spin;
    std::uint64_t epoch = fork_epoch_.load(std::memory_order_acquire);
    while (epoch == seen) {
      if (!spin.spin()) fork_epoch_.wait(seen, std::memory_order_acquire);
      epoch = fork_epoch_.load(std::memory_order_acquire);
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    seen = epoch;
    const auto* fn = task_.load(std::memory_order_acquire);
    if (fn != nullptr) run_member(tid, *fn);
    // Countdown; only the final helper pays the wake syscall. The master
    // may be parked at any intermediate value, but atomic wait re-checks
    // on wake, and a master parked mid-count is always woken by this final
    // notify.
    if (helpers_done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        n_ - 1) {
      helpers_done_.notify_one();
    }
  }
}

void Team::barrier() {
  const std::uint64_t gen = bar_generation_.load(std::memory_order_acquire);
  if (bar_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
    // Last arriver: reset, then release the generation. Threads released
    // below can only re-arrive after the generation store, so they always
    // observe the reset count.
    bar_arrived_.store(0, std::memory_order_relaxed);
    bar_generation_.fetch_add(1, std::memory_order_release);
    bar_generation_.notify_all();
  } else {
    common::SpinWait spin;
    while (bar_generation_.load(std::memory_order_acquire) == gen) {
      if (!spin.spin()) bar_generation_.wait(gen, std::memory_order_acquire);
    }
  }
}

void Team::critical(const std::function<void()>& fn) {
  std::scoped_lock lk(crit_mu_);
  fn();
}

}  // namespace evmp::fj

#pragma once
// WidthGovernor: elastic team-width decisions for adaptive parallel regions.
//
// Figure 9's level-off is the paper's core scaling pathology: per-event
// `parallel` regions lease a fixed-width team regardless of load, so teams
// oversubscribe the cores exactly when the machine is busiest. TeamPool
// (PR 5) fixed thread *creation* cost; width was the remaining static knob.
// The governor closes it: a region asks for up to `hint` threads and is
// granted a width sized from live load signals —
//
//  * the number of concurrently leased teams (each is a running region
//    competing for the same cores),
//  * a queue-depth hint (regions already waiting behind them), and
//  * the core budget (hardware_concurrency, or the simulated machine's
//    core count in the Figure 9 model benches).
//
// Granted width = clamp(kOversubscription * cores / demand, 1, hint): a
// lone request on an idle 16-core host gets its full hint (e.g. 8); fifty
// concurrent requests get width 1-2. The off-path cost is a handful of
// relaxed atomic loads — no locks, no allocation (the CI alloc budget
// `allocs_per_adaptive_lease` enforces the latter).
//
// The governor also tracks a decaying high-water estimate of concurrent
// leases. TeamPool consults it (decay_due()/decay()) every
// kDecayPeriod adaptive leases and trims its idle team cache down to the
// decayed floor, so a burst that grew the cache doesn't pin helper threads
// forever. DESIGN.md §11 documents the signals and the decay schedule.

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace evmp::fj {

/// Deterministic signal set for decide() — tests inject these directly
/// instead of racing real leases.
struct WidthSignals {
  int active_leases = 0;  ///< regions running now (excluding the requester)
  int queue_depth = 0;    ///< regions queued behind them
  int cores = 0;          ///< core budget; <= 0 means hardware_concurrency
};

/// Sizes adaptive team leases from live load; all state is relaxed
/// atomics, safe to read and update concurrently from any thread.
class WidthGovernor {
 public:
  /// Width histogram buckets: 1, 2, 3-4, 5-8, ..., 65+ (bit-width based).
  static constexpr std::size_t kHistogramBuckets = 8;
  /// Adaptive leases between decay/trim sweeps (see TeamPool).
  static constexpr std::uint32_t kDecayPeriod = 64;
  /// Demand is allowed to oversubscribe the cores by this factor before
  /// widths shrink below the hint: mild oversubscription is benign (blocked
  /// ranges queue briefly), and the headroom keeps widths from collapsing
  /// to 1 the moment demand reaches the core count.
  static constexpr int kOversubscription = 2;

  /// cores <= 0 selects std::thread::hardware_concurrency().
  explicit WidthGovernor(int cores = 0) noexcept;

  /// Override the core budget (benches model virtual machines; 0 restores
  /// hardware_concurrency).
  void set_cores(int cores) noexcept;
  [[nodiscard]] int cores() const noexcept;

  // --- live load feeds (relaxed atomics; called by TeamPool) --------------
  void on_lease() noexcept;
  void on_release() noexcept;
  /// Latest queue-depth observation (regions waiting to start); connectors
  /// and executors may publish theirs, 0 clears it.
  void set_queue_depth(std::size_t depth) noexcept;

  [[nodiscard]] int active() const noexcept;
  /// Monotone high-water mark of concurrent leases.
  [[nodiscard]] int high_water() const noexcept;
  /// Decaying estimate of concurrent leases (the trim floor source).
  [[nodiscard]] int decayed_high_water() const noexcept;

  /// Width for a region that can use up to `hint` threads (hint <= 0 means
  /// "as wide as useful" = the core budget). Always in [1, max(1, hint)].
  /// Records the requested and granted widths in the histograms.
  int decide(int hint) noexcept;
  /// Deterministic variant: same policy over injected signals.
  int decide(int hint, const WidthSignals& signals) noexcept;

  /// True every kDecayPeriod decide() calls — the caller should then run
  /// decay() and trim its caches to the returned floor.
  [[nodiscard]] bool decay_due() noexcept;
  /// Halve the high-water estimate toward current activity; returns the
  /// new estimate as the idle-cache floor (teams worth keeping parked).
  std::size_t decay() noexcept;

  /// Width-decision histograms (bucket k counts widths in
  /// (2^(k-1), 2^k], i.e. 1, 2, 3-4, 5-8, ... ; the last bucket is open).
  [[nodiscard]] std::array<std::uint64_t, kHistogramBuckets>
  requested_histogram() const noexcept;
  [[nodiscard]] std::array<std::uint64_t, kHistogramBuckets>
  granted_histogram() const noexcept;

  /// Copy the histograms into common::Tracer counters
  /// ("<prefix>.requested_w<bucket>" / "<prefix>.granted_w<bucket>",
  /// zero buckets skipped) plus "<prefix>.decisions".
  void publish_counters(std::string_view prefix) const;

 private:
  static std::size_t bucket_of(int width) noexcept;
  void count(std::array<std::atomic<std::uint64_t>, kHistogramBuckets>& h,
             int width) noexcept;

  std::atomic<int> cores_override_{0};
  std::atomic<int> active_{0};
  std::atomic<int> high_water_{0};
  std::atomic<int> decayed_high_water_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::uint32_t> decisions_since_decay_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> requested_{};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> granted_{};
};

}  // namespace evmp::fj

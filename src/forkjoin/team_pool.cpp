#include "forkjoin/team_pool.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/tracing.hpp"

namespace evmp::fj {

TeamPool& TeamPool::instance() {
  // Leaked on purpose (see header): leases unwinding during late static
  // teardown must find a live pool, and a pool destructor would join
  // helper threads at exit.
  static TeamPool* pool = new TeamPool();
  return *pool;
}

TeamPool::Lease TeamPool::lease(int width) {
  if (width < 1) width = 1;
  leases_granted_.fetch_add(1, std::memory_order_relaxed);
  governor_.on_lease();  // every lease is a running region: a load signal
  Bucket& bucket = bucket_for(width);
  {
    std::unique_lock lk(bucket.mu, std::try_to_lock);
    if (!lk.owns_lock()) {
      lease_contentions_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
    }
    // Direct-mapped buckets hold one width; the overflow bucket (> 64)
    // mixes widths and needs an exact-match scan.
    auto& teams = bucket.teams;
    if (width <= kMaxBucketWidth) {
      if (!teams.empty()) {
        std::unique_ptr<Team> team = std::move(teams.back());
        teams.pop_back();
        idle_total_.fetch_sub(1, std::memory_order_relaxed);
        return Lease(this, std::move(team));
      }
    } else {
      for (auto it = teams.begin(); it != teams.end(); ++it) {
        if ((*it)->num_threads() == width) {
          std::unique_ptr<Team> team = std::move(*it);
          *it = std::move(teams.back());
          teams.pop_back();
          idle_total_.fetch_sub(1, std::memory_order_relaxed);
          return Lease(this, std::move(team));
        }
      }
    }
  }
  // Miss: construct outside the lock (Team's constructor spawns helper
  // threads; holding the bucket lock across that would serialise every
  // concurrent first-touch lease of this width).
  teams_created_.fetch_add(1, std::memory_order_relaxed);
  return Lease(this, std::make_unique<Team>(width));
}

TeamPool::Lease TeamPool::lease_adaptive(int hint) {
  const int width = governor_.decide(hint);
  if (governor_.decay_due()) {
    // Load has had kDecayPeriod leases to re-peak the estimate; anything
    // the decayed floor no longer covers is a stale burst remnant whose
    // helper threads can be released.
    trim(governor_.decay());
  }
  return lease(width);
}

void TeamPool::give_back(std::unique_ptr<Team> team) {
  governor_.on_release();
  Bucket& bucket = bucket_for(team->num_threads());
  std::scoped_lock lk(bucket.mu);
  bucket.teams.push_back(std::move(team));
  idle_total_.fetch_add(1, std::memory_order_relaxed);
}

void TeamPool::trim(std::size_t floor) {
  if (idle_total_.load(std::memory_order_relaxed) <= floor) return;
  std::vector<std::unique_ptr<Team>> drained;
  // Walk widest-first: wide teams pin the most helper threads per slot.
  // The overflow bucket (index 0) holds the widest teams of all, then the
  // direct-mapped buckets from kMaxBucketWidth down to 1.
  for (std::size_t step = 0; step <= static_cast<std::size_t>(kMaxBucketWidth);
       ++step) {
    const std::size_t index =
        step == 0 ? 0 : static_cast<std::size_t>(kMaxBucketWidth) + 1 - step;
    Bucket& bucket = buckets_[index];
    std::scoped_lock lk(bucket.mu);
    while (!bucket.teams.empty() &&
           idle_total_.load(std::memory_order_relaxed) > floor) {
      drained.push_back(std::move(bucket.teams.back()));
      bucket.teams.pop_back();
      idle_total_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (idle_total_.load(std::memory_order_relaxed) <= floor) break;
  }
  // Teams (and their helper-thread joins) die outside the locks.
}

void TeamPool::publish_counters(std::string_view prefix) const {
  auto& tracer = common::Tracer::instance();
  const std::string base(prefix);
  tracer.set_counter(base + ".teams_created",
                     teams_created_.load(std::memory_order_relaxed));
  tracer.set_counter(base + ".leases_granted",
                     leases_granted_.load(std::memory_order_relaxed));
  tracer.set_counter(base + ".lease_contentions",
                     lease_contentions_.load(std::memory_order_relaxed));
  tracer.set_counter(base + ".leased_high_water",
                     static_cast<std::uint64_t>(
                         std::max(0, governor_.high_water())));
  tracer.set_counter(base + ".idle_teams",
                     idle_total_.load(std::memory_order_relaxed));
  governor_.publish_counters(base);
}

}  // namespace evmp::fj

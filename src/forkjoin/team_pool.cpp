#include "forkjoin/team_pool.hpp"

namespace evmp::fj {

TeamPool& TeamPool::instance() {
  // Leaked on purpose (see header): leases unwinding during late static
  // teardown must find a live pool, and a pool destructor would join
  // helper threads at exit.
  static TeamPool* pool = new TeamPool();
  return *pool;
}

TeamPool::Lease TeamPool::lease(int width) {
  if (width < 1) width = 1;
  leases_granted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lk(mu_);
    auto it = idle_.find(width);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Team> team = std::move(it->second.back());
      it->second.pop_back();
      return Lease(this, std::move(team));
    }
  }
  // Miss: construct outside the lock (Team's constructor spawns helper
  // threads; holding mu_ across that would serialise every concurrent
  // first-touch lease).
  teams_created_.fetch_add(1, std::memory_order_relaxed);
  return Lease(this, std::make_unique<Team>(width));
}

void TeamPool::give_back(std::unique_ptr<Team> team) {
  std::scoped_lock lk(mu_);
  idle_[team->num_threads()].push_back(std::move(team));
}

std::size_t TeamPool::cached() const {
  std::scoped_lock lk(mu_);
  std::size_t total = 0;
  for (const auto& [width, teams] : idle_) total += teams.size();
  return total;
}

void TeamPool::clear() {
  std::unordered_map<int, std::vector<std::unique_ptr<Team>>> drained;
  {
    std::scoped_lock lk(mu_);
    drained.swap(idle_);
  }
  // Teams (and their helper joins) die outside the lock.
}

}  // namespace evmp::fj

#pragma once
// TeamPool: process-wide cache of fork-join teams, leased per parallel
// region instead of constructed per event.
//
// The paper's Figure 9 shows per-event `parallel` regions levelling off
// because every request handler spawns a fresh helper-thread team — "the
// total number of threads in the system soars". The reproduction keeps
// that pathology observable (baselines::kAsyncParallel and the default
// httpsim EncryptionService path still construct a Team per event), and
// this pool is the fix the paper's analysis implies: a handler leases a
// cached team of the width it needs, runs its region, and the lease
// returns the team — helper threads are created once per (width, peak
// concurrency) and fj::total_helper_threads_created() stays flat as
// request load grows (the new pooled series in results/fig9.csv).
//
// Leasing rules (DESIGN.md §9):
//  * lease(width) hands out an idle cached team of exactly that width,
//    creating one only when none is idle — so the population equals the
//    peak number of simultaneously active regions per width;
//  * a Lease is an exclusive handle (move-only RAII): the team is never
//    shared, so Team's non-reentrancy contract is unchanged;
//  * returned teams are parked, not destroyed (their helpers cost their
//    creation once; parked helpers sleep on a futex, not the scheduler);
//  * the pool itself is a leaked singleton, like common::Tracer: leases
//    may unwind during late static teardown, and a destructed pool (or
//    one joining helper threads at exit) would turn every such unwind
//    into a use-after-free or a join deadlock. The OS reclaims the parked
//    threads at process exit.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "forkjoin/team.hpp"

namespace evmp::fj {

/// Process-wide lease pool of reusable fork-join teams, keyed by width.
class TeamPool {
 public:
  /// Exclusive RAII handle to a pooled team; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), team_(std::move(other.team_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        team_ = std::move(other.team_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Team& operator*() const noexcept { return *team_; }
    [[nodiscard]] Team* operator->() const noexcept { return team_.get(); }
    explicit operator bool() const noexcept { return team_ != nullptr; }

   private:
    friend class TeamPool;
    Lease(TeamPool* pool, std::unique_ptr<Team> team)
        : pool_(pool), team_(std::move(team)) {}

    void release() noexcept {
      if (pool_ != nullptr && team_ != nullptr) {
        pool_->give_back(std::move(team_));
      }
      pool_ = nullptr;
      team_.reset();
    }

    TeamPool* pool_ = nullptr;
    std::unique_ptr<Team> team_;
  };

  /// The process-wide pool (leaked singleton — see header comment).
  static TeamPool& instance();

  TeamPool() = default;
  TeamPool(const TeamPool&) = delete;
  TeamPool& operator=(const TeamPool&) = delete;

  /// Lease an idle team of exactly `width` members, creating one if none
  /// is cached. width < 1 is clamped to 1.
  [[nodiscard]] Lease lease(int width);

  /// Teams ever constructed by this pool (flat under steady request load —
  /// the pooled Figure 9 series).
  [[nodiscard]] std::uint64_t teams_created() const noexcept {
    return teams_created_.load(std::memory_order_relaxed);
  }
  /// Leases ever granted (cache hits + misses).
  [[nodiscard]] std::uint64_t leases_granted() const noexcept {
    return leases_granted_.load(std::memory_order_relaxed);
  }
  /// Idle teams currently parked in the cache (all widths).
  [[nodiscard]] std::size_t cached() const;

  /// Destroy all idle cached teams (tests / memory-pressure hook). Teams
  /// currently out on lease are unaffected and return to the cache later.
  void clear();

 private:
  void give_back(std::unique_ptr<Team> team);

  mutable std::mutex mu_;
  std::unordered_map<int, std::vector<std::unique_ptr<Team>>> idle_;
  std::atomic<std::uint64_t> teams_created_{0};
  std::atomic<std::uint64_t> leases_granted_{0};
};

}  // namespace evmp::fj

#pragma once
// TeamPool: process-wide cache of fork-join teams, leased per parallel
// region instead of constructed per event.
//
// The paper's Figure 9 shows per-event `parallel` regions levelling off
// because every request handler spawns a fresh helper-thread team — "the
// total number of threads in the system soars". The reproduction keeps
// that pathology observable (baselines::kAsyncParallel and the default
// httpsim EncryptionService path still construct a Team per event), and
// this pool is the fix the paper's analysis implies: a handler leases a
// cached team of the width it needs, runs its region, and the lease
// returns the team — helper threads are created once per (width, peak
// concurrency) and fj::total_helper_threads_created() stays flat as
// request load grows (the pooled series in results/fig9.csv).
//
// Leasing rules (DESIGN.md §9, elasticity in §11):
//  * lease(width) hands out an idle cached team of exactly that width,
//    creating one only when none is idle — so the population equals the
//    peak number of simultaneously active regions per width;
//  * lease_adaptive(hint) asks the WidthGovernor for a width first: a lone
//    region on an idle machine gets its full hint, concurrent regions get
//    proportionally narrower teams (the Figure 9 elasticity fix);
//  * the idle cache is bucketed by width with one lock per bucket, so
//    concurrent same-width leases (the Figure 9 request storm) contend on
//    a try_lock, not a global mutex — lease_contentions() counts the
//    times a locked bucket was actually hit;
//  * a Lease is an exclusive handle (move-only RAII): the team is never
//    shared, so Team's non-reentrancy contract is unchanged;
//  * returned teams are parked, not destroyed (their helpers cost their
//    creation once; parked helpers sleep on a futex, not the scheduler);
//    trim() releases parked teams down to a floor when load decays — the
//    governor triggers it automatically every WidthGovernor::kDecayPeriod
//    adaptive leases;
//  * the pool itself is a leaked singleton, like common::Tracer: leases
//    may unwind during late static teardown, and a destructed pool (or
//    one joining helper threads at exit) would turn every such unwind
//    into a use-after-free or a join deadlock. The OS reclaims the parked
//    threads at process exit.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "forkjoin/team.hpp"
#include "forkjoin/width_governor.hpp"

namespace evmp::fj {

/// Process-wide lease pool of reusable fork-join teams, keyed by width.
class TeamPool {
 public:
  /// Exclusive RAII handle to a pooled team; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), team_(std::move(other.team_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        team_ = std::move(other.team_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Team& operator*() const noexcept { return *team_; }
    [[nodiscard]] Team* operator->() const noexcept { return team_.get(); }
    explicit operator bool() const noexcept { return team_ != nullptr; }

   private:
    friend class TeamPool;
    Lease(TeamPool* pool, std::unique_ptr<Team> team)
        : pool_(pool), team_(std::move(team)) {}

    void release() noexcept {
      if (pool_ != nullptr && team_ != nullptr) {
        pool_->give_back(std::move(team_));
      }
      pool_ = nullptr;
      team_.reset();
    }

    TeamPool* pool_ = nullptr;
    std::unique_ptr<Team> team_;
  };

  /// The process-wide pool (leaked singleton — see header comment).
  static TeamPool& instance();

  TeamPool() = default;
  TeamPool(const TeamPool&) = delete;
  TeamPool& operator=(const TeamPool&) = delete;

  /// Lease an idle team of exactly `width` members, creating one if none
  /// is cached. width < 1 is clamped to 1.
  [[nodiscard]] Lease lease(int width);

  /// Lease a team whose width the WidthGovernor sizes from live load:
  /// up to `hint` members (hint <= 0 means "as wide as useful", i.e. the
  /// governor's core budget). Every kDecayPeriod adaptive leases the
  /// governor decays its load estimate and trims the idle cache to it.
  /// Allocation-free after warm-up (the allocs_per_adaptive_lease budget).
  [[nodiscard]] Lease lease_adaptive(int hint);

  /// The governor sizing adaptive leases (benches override its core
  /// budget; tests read its histograms).
  [[nodiscard]] WidthGovernor& governor() noexcept { return governor_; }

  /// Teams ever constructed by this pool (flat under steady request load —
  /// the pooled Figure 9 series).
  [[nodiscard]] std::uint64_t teams_created() const noexcept {
    return teams_created_.load(std::memory_order_relaxed);
  }
  /// Leases ever granted (cache hits + misses).
  [[nodiscard]] std::uint64_t leases_granted() const noexcept {
    return leases_granted_.load(std::memory_order_relaxed);
  }
  /// lease() calls that found their width bucket's lock held by a
  /// concurrent lease/return (the serialisation the bucketing removes
  /// relative to the old single-mutex cache).
  [[nodiscard]] std::uint64_t lease_contentions() const noexcept {
    return lease_contentions_.load(std::memory_order_relaxed);
  }
  /// Teams currently out on lease.
  [[nodiscard]] int active_leases() const noexcept {
    return governor_.active();
  }
  /// Peak number of simultaneously leased teams (monotone).
  [[nodiscard]] int leased_high_water() const noexcept {
    return governor_.high_water();
  }
  /// Idle teams currently parked in the cache (all widths).
  [[nodiscard]] std::size_t idle_count() const noexcept {
    return idle_total_.load(std::memory_order_relaxed);
  }
  /// Deprecated spelling of idle_count().
  [[nodiscard]] std::size_t cached() const { return idle_count(); }

  /// Release idle cached teams until at most `floor` remain parked
  /// (destroying a team joins its helper threads). Teams out on lease are
  /// unaffected and return to the cache later. Widest teams are dropped
  /// first — they pin the most helper threads per cache slot.
  void trim(std::size_t floor = 0);

  /// Destroy all idle cached teams (tests / memory-pressure hook).
  void clear() { trim(0); }

  /// Copy pool + governor statistics into common::Tracer counters under
  /// "<prefix>." (e.g. "pool.lease_contentions", "pool.granted_w2").
  void publish_counters(std::string_view prefix = "pool") const;

 private:
  // Widths 1..kMaxBucketWidth get a direct-mapped bucket; wider teams
  // share the overflow bucket (index 0) and are matched by exact width.
  static constexpr int kMaxBucketWidth = 64;

  struct Bucket {
    std::mutex mu;
    std::vector<std::unique_ptr<Team>> teams;
  };

  Bucket& bucket_for(int width) noexcept {
    return buckets_[width >= 1 && width <= kMaxBucketWidth
                        ? static_cast<std::size_t>(width)
                        : 0];
  }

  void give_back(std::unique_ptr<Team> team);

  std::array<Bucket, static_cast<std::size_t>(kMaxBucketWidth) + 1> buckets_;
  std::atomic<std::size_t> idle_total_{0};
  std::atomic<std::uint64_t> teams_created_{0};
  std::atomic<std::uint64_t> leases_granted_{0};
  std::atomic<std::uint64_t> lease_contentions_{0};
  WidthGovernor governor_;
};

}  // namespace evmp::fj

#include "event/event_loop.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/tracing.hpp"

namespace evmp::event {

namespace {
// Min-heap ordering for TimedEvent (std::push_heap builds a max-heap, so
// invert the comparison).
struct TimerLater {
  template <class T>
  bool operator()(const T& a, const T& b) const {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};
}  // namespace

EventLoop::EventLoop(std::string loop_name) : Executor(std::move(loop_name)) {}

EventLoop::~EventLoop() {
  stop();
  if (thread_ && thread_->joinable()) thread_->join();
}

void EventLoop::start() {
  if (thread_) return;
  thread_.emplace([this] { run(); });
}

void EventLoop::post(exec::Task task) {
  // The notify happens while holding the lock: once we unlock, a consumer
  // may dispatch the event, observe program completion, and destroy this
  // loop — notifying after unlock would then touch a dead cv.
  std::scoped_lock lk(mu_);
  if (stop_requested_) {
    EVMP_LOG_WARN << "event posted to stopped loop '" << name()
                  << "' was dropped";
    return;
  }
  queue_.push_back(QueuedEvent{common::now(), std::move(task)});
  cv_.notify_all();
}

void EventLoop::post_batch(std::span<exec::Task> tasks) {
  if (tasks.empty()) return;
  std::scoped_lock lk(mu_);
  if (stop_requested_) {
    EVMP_LOG_WARN << "batch of " << tasks.size()
                  << " events posted to stopped loop '" << name()
                  << "' was dropped";
    return;
  }
  const auto posted = common::now();  // one timestamp for the whole burst
  for (exec::Task& task : tasks) {
    queue_.push_back(QueuedEvent{posted, std::move(task)});
  }
  batch_posts_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();  // under the lock: see post()
}

void EventLoop::post_delayed(exec::Task task, common::Nanos delay) {
  std::scoped_lock lk(mu_);
  if (stop_requested_) return;
  timers_.push_back(
      TimedEvent{common::now() + delay, timer_seq_++, std::move(task)});
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
  cv_.notify_all();  // under the lock: see post()
}

void EventLoop::invoke_and_wait(exec::Task task) {
  if (is_dispatch_thread()) {
    task();
    return;
  }
  exec::CompletionRef state = exec::CompletionState::make();
  post([state, fn = std::move(task)]() mutable {
    try {
      fn();
      state->set_done();
    } catch (...) {
      state->set_exception(std::current_exception());
    }
  });
  state->wait();
}

std::size_t EventLoop::pending() const {
  std::scoped_lock lk(mu_);
  return queue_.size();
}

void EventLoop::promote_due_timers_locked(common::TimePoint now_tp) {
  while (!timers_.empty() && timers_.front().due <= now_tp) {
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    TimedEvent te = std::move(timers_.back());
    timers_.pop_back();
    // A timer's "posted" instant is its due time: dispatch delay measures
    // queue lateness, not the programmed delay.
    queue_.push_back(QueuedEvent{te.due, std::move(te.fn)});
  }
}

std::optional<common::TimePoint> EventLoop::next_timer_locked() const {
  if (timers_.empty()) return std::nullopt;
  return timers_.front().due;
}

void EventLoop::dispatch(QueuedEvent ev) {
  const auto begin = common::now();
  delay_hist_.record(
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, common::elapsed_ns(ev.posted, begin))));
  ++nesting_;
  int snapshot = max_nesting_.load(std::memory_order_relaxed);
  while (nesting_ > snapshot &&
         !max_nesting_.compare_exchange_weak(snapshot, nesting_,
                                             std::memory_order_relaxed)) {
  }
  try {
    ev.fn();
  } catch (...) {
    exec::unhandled_exception_hook()(name(), std::current_exception());
  }
  if (common::Tracer::instance().enabled()) {
    common::Tracer::instance().record(
        nesting_ > 1 ? "edt.dispatch.nested" : "edt.dispatch", "event",
        begin, common::now());
  }
  --nesting_;
  if (nesting_ == 0) {
    busy_ns_.fetch_add(common::elapsed_ns(begin, common::now()),
                       std::memory_order_relaxed);
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
}

bool EventLoop::pump_one() {
  if (!is_dispatch_thread()) return false;
  QueuedEvent ev;
  {
    std::scoped_lock lk(mu_);
    promote_due_timers_locked(common::now());
    if (queue_.empty()) return false;
    ev = queue_.pop_front();
  }
  dispatch(std::move(ev));
  return true;
}

bool EventLoop::try_run_one() { return pump_one(); }

void EventLoop::run() {
  ThreadBinding bind(this);
  running_.store(true, std::memory_order_release);
  std::unique_lock lk(mu_);
  while (true) {
    promote_due_timers_locked(common::now());
    if (stop_requested_) break;
    if (queue_.empty()) {
      if (auto due = next_timer_locked()) {
        cv_.wait_until(lk, *due);
      } else {
        cv_.wait(lk, [&] {
          return stop_requested_ || !queue_.empty() || !timers_.empty();
        });
      }
      continue;
    }
    QueuedEvent ev = queue_.pop_front();
    ++active_handlers_;
    lk.unlock();
    dispatch(std::move(ev));
    lk.lock();
    --active_handlers_;
    if (queue_.empty() && active_handlers_ == 0) idle_cv_.notify_all();
  }
  running_.store(false, std::memory_order_release);
  idle_cv_.notify_all();
}

void EventLoop::stop() {
  {
    std::scoped_lock lk(mu_);
    stop_requested_ = true;
    cv_.notify_all();  // under the lock: see post()
  }
  auto& tracer = common::Tracer::instance();
  const std::string prefix(name());
  tracer.set_counter(prefix + ".dispatched",
                     dispatched_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".batch_posts",
                     batch_posts_.load(std::memory_order_relaxed));
}

void EventLoop::wait_until_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [&] {
    return (queue_.empty() && active_handlers_ == 0) || stop_requested_;
  });
}

void EventLoop::reset_stats() {
  dispatched_.store(0, std::memory_order_relaxed);
  busy_ns_.store(0, std::memory_order_relaxed);
  max_nesting_.store(0, std::memory_order_relaxed);
  delay_hist_.reset();
}

}  // namespace evmp::event

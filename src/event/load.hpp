#pragma once
// Load generation and responsiveness probing for event-driven benchmarks.
//
// The paper's §V.A methodology: events are fired at a fixed request load
// (10..100 requests/sec); "response time shows the time flow from the event
// firing to the finish of its event handling". OpenLoopDriver reproduces
// that: an external thread (the "user") posts events at the configured rate
// regardless of how backed up the EDT is (open-loop), and each request's
// response time is measured from fire to the handler's logical completion —
// which, for asynchronous approaches, the handler signals explicitly once
// the final (GUI) step ran.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "event/event_loop.hpp"

namespace evmp::event {

/// Signals the logical completion of one request's handling; thread-safe,
/// copyable, and idempotent (second call is ignored).
class CompletionToken {
 public:
  CompletionToken() = default;

  /// Record the response time now. Safe from any thread.
  void complete() const;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }

 private:
  friend class OpenLoopDriver;
  struct Impl;
  explicit CompletionToken(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

/// Result of one open-loop run.
struct LoadResult {
  common::PercentileSampler response_ms;  ///< per-request response times
  std::uint64_t fired = 0;                ///< requests posted
  std::uint64_t completed = 0;            ///< requests that signalled done
  double wall_seconds = 0.0;              ///< fire of first .. last completion
  bool all_completed = false;
};

/// Fires `count` requests at `rate_hz` onto an EventLoop and collects
/// response-time statistics.
class OpenLoopDriver {
 public:
  struct Options {
    std::size_t count = 100;       ///< requests to fire
    double rate_hz = 50.0;         ///< request load (requests/second)
    bool poisson = false;          ///< exponential vs constant inter-arrival
    std::uint64_t seed = 42;       ///< arrival-jitter RNG seed
    common::Millis drain_timeout{30'000};  ///< wait for stragglers
  };

  /// `handler(index, token)` runs on the EDT for each request; it (or the
  /// asynchronous continuation it spawns) must eventually call
  /// token.complete() to end that request's response-time measurement.
  using Handler =
      std::function<void(std::size_t index, const CompletionToken& token)>;

  /// Run one load round to completion. Blocks the calling thread.
  static LoadResult run(EventLoop& edt, const Options& options,
                        const Handler& handler);
};

/// Periodically posts no-op probe events to an EventLoop and measures how
/// long each waits before being dispatched — the direct responsiveness
/// metric behind Figure 8 (an unresponsive EDT shows as high probe latency).
class ResponseProbe {
 public:
  ResponseProbe(EventLoop& loop, common::Nanos period);
  ~ResponseProbe();

  void start();
  void stop();

  /// Probe latency distribution (post → dispatch start), nanoseconds.
  [[nodiscard]] const common::LatencyHistogram& latencies() const noexcept {
    return hist_;
  }

 private:
  void probe_main(const std::stop_token& st);

  EventLoop& loop_;
  common::Nanos period_;
  common::LatencyHistogram hist_;
  std::optional<std::jthread> thread_;
};

}  // namespace evmp::event

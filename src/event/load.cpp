#include "event/load.hpp"

#include <mutex>

#include "common/sync.hpp"

namespace evmp::event {

struct CompletionToken::Impl {
  common::TimePoint fired;
  std::atomic<bool> completed{false};
  // Shared across all requests of one run:
  std::mutex* mu = nullptr;
  common::PercentileSampler* sampler = nullptr;
  common::CountdownLatch* latch = nullptr;
  common::TimePoint* last_completion = nullptr;
};

void CompletionToken::complete() const {
  if (!impl_) return;
  if (impl_->completed.exchange(true)) return;  // idempotent
  const auto now_tp = common::now();
  {
    std::scoped_lock lk(*impl_->mu);
    impl_->sampler->add(common::to_ms(now_tp - impl_->fired));
    if (now_tp > *impl_->last_completion) *impl_->last_completion = now_tp;
  }
  impl_->latch->count_down();
}

LoadResult OpenLoopDriver::run(EventLoop& edt, const Options& options,
                               const Handler& handler) {
  LoadResult result;
  std::mutex mu;
  common::CountdownLatch latch(options.count);
  common::TimePoint last_completion = common::now();
  common::Xoshiro256 rng(options.seed);

  const auto mean_gap_ns = 1e9 / options.rate_hz;
  const auto start = common::now();
  common::TimePoint next_fire = start;

  for (std::size_t i = 0; i < options.count; ++i) {
    // Open loop: the fire schedule is fixed up front and never waits for
    // the system; lateness piles up in the EDT queue, as in the paper.
    const auto gap_ns = options.poisson
                            ? rng.next_exponential(mean_gap_ns)
                            : mean_gap_ns;
    if (common::now() < next_fire) {
      common::precise_sleep(std::chrono::duration_cast<common::Nanos>(
          next_fire - common::now()));
    }
    auto impl = std::make_shared<CompletionToken::Impl>();
    impl->fired = common::now();
    impl->mu = &mu;
    impl->sampler = &result.response_ms;
    impl->latch = &latch;
    impl->last_completion = &last_completion;
    CompletionToken token(std::move(impl));
    edt.post([&handler, i, token] { handler(i, token); });
    ++result.fired;
    next_fire += common::Nanos{static_cast<std::int64_t>(gap_ns)};
  }

  result.all_completed = latch.wait_for(options.drain_timeout);
  {
    std::scoped_lock lk(mu);
    result.completed = result.response_ms.count();
    result.wall_seconds = common::to_sec(last_completion - start);
  }
  return result;
}

ResponseProbe::ResponseProbe(EventLoop& loop, common::Nanos period)
    : loop_(loop), period_(period) {}

ResponseProbe::~ResponseProbe() { stop(); }

void ResponseProbe::start() {
  if (thread_) return;
  thread_.emplace([this](const std::stop_token& st) { probe_main(st); });
}

void ResponseProbe::stop() {
  if (!thread_) return;
  thread_->request_stop();
  if (thread_->joinable()) thread_->join();
  thread_.reset();
}

void ResponseProbe::probe_main(const std::stop_token& st) {
  while (!st.stop_requested()) {
    const auto posted = common::now();
    loop_.post([this, posted] {
      hist_.record(static_cast<std::uint64_t>(
          common::elapsed_ns(posted, common::now())));
    });
    common::precise_sleep(period_);
  }
}

}  // namespace evmp::event

#pragma once
// Simulated GUI toolkit.
//
// Reproduces the structural property of Swing the paper leans on (§II.A):
// "GUI components are not thread-safe and access is strictly confined to the
// EDT". Every widget mutation checks the calling thread; violations are
// counted and can be configured to throw. Benchmarks assert zero violations,
// which is how we verify that every approach routes GUI updates correctly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "event/event_loop.hpp"
#include "executor/unique_function.hpp"

namespace evmp::event {

/// Thrown on off-EDT widget access when the policy is kThrow.
class ThreadConfinementError : public std::logic_error {
 public:
  explicit ThreadConfinementError(const std::string& what)
      : std::logic_error(what) {}
};

/// What to do when a widget is touched off the EDT.
enum class ConfinementPolicy {
  kCount,  ///< record the violation, continue (benchmark mode)
  kThrow,  ///< throw ThreadConfinementError (test mode)
};

/// A trivially small raster image; what ImageView "renders".
struct Image {
  int width = 0;
  int height = 0;
  std::vector<std::uint32_t> pixels;

  /// FNV-1a over the pixel data; used to validate pipelines end-to-end.
  [[nodiscard]] std::uint64_t checksum() const noexcept;
};

class Gui;

/// Base class: ties a widget to its Gui and enforces confinement.
class Widget {
 public:
  Widget(Gui& gui, std::string id);
  virtual ~Widget() = default;
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 protected:
  /// Verify the calling thread may touch this widget; applies the policy.
  void confine(const char* operation) const;
  Gui& gui_;

 private:
  std::string id_;
};

/// A text label (Panel.showMsg / Label.setText in the paper's examples).
class Label final : public Widget {
 public:
  using Widget::Widget;

  void set_text(std::string text);
  [[nodiscard]] std::string text() const;
  /// Number of set_text calls (EDT-confined writes observed).
  [[nodiscard]] std::uint64_t updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  std::string text_;
  std::atomic<std::uint64_t> updates_{0};
};

/// Progress indicator for interim updates (paper Figure 2's S2).
class ProgressBar final : public Widget {
 public:
  using Widget::Widget;

  void set_value(int percent);
  [[nodiscard]] int value() const;
  [[nodiscard]] std::uint64_t updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  int value_ = 0;
  std::atomic<std::uint64_t> updates_{0};
};

/// Displays an image (Panel.displayImg in paper Figure 6).
class ImageView final : public Widget {
 public:
  using Widget::Widget;

  void display(const Image& img);
  /// Checksum of the most recently displayed image (0 when none).
  [[nodiscard]] std::uint64_t displayed_checksum() const;
  [[nodiscard]] std::uint64_t images_shown() const noexcept {
    return shown_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t checksum_ = 0;
  std::atomic<std::uint64_t> shown_{0};
};

/// A clickable button whose handler runs on the EDT, like Swing's.
class Button final : public Widget {
 public:
  using Widget::Widget;

  /// Register the click callback (replaces any previous one). EDT-confined
  /// like any widget mutation.
  void on_click(exec::UniqueFunction<void()> handler);

  /// Fire a click: enqueues the handler on the EDT. Unlike widget mutation,
  /// clicks may be generated from any thread (they model the windowing
  /// system's input source).
  void click();

  [[nodiscard]] std::uint64_t clicks() const noexcept {
    return clicks_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<exec::UniqueFunction<void()>> handler_;
  std::atomic<std::uint64_t> clicks_{0};
};

/// The application window: owns widgets and the confinement accounting.
class Gui {
 public:
  explicit Gui(EventLoop& edt, ConfinementPolicy policy = ConfinementPolicy::kThrow);

  Label& add_label(std::string id);
  ProgressBar& add_progress_bar(std::string id);
  ImageView& add_image_view(std::string id);
  Button& add_button(std::string id);

  [[nodiscard]] EventLoop& edt() noexcept { return edt_; }
  [[nodiscard]] const EventLoop& edt() const noexcept { return edt_; }
  [[nodiscard]] ConfinementPolicy policy() const noexcept { return policy_; }

  /// Off-EDT accesses observed so far (should stay 0 in a correct program).
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }

  /// Called by widgets on a confinement breach; applies the policy.
  void report_violation(const std::string& widget_id, const char* operation);

 private:
  EventLoop& edt_;
  ConfinementPolicy policy_;
  std::atomic<std::uint64_t> violations_{0};
  std::vector<std::unique_ptr<Widget>> widgets_;
};

}  // namespace evmp::event

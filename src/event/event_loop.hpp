#pragma once
// The event-dispatch thread (EDT) and its event queue.
//
// This is the C++ equivalent of the Swing/AWT machinery the paper builds on:
// a single thread drains a FIFO queue of events; every handler runs on that
// thread. Two properties matter for the reproduction:
//
//  * re-entrant pumping: pump_one() lets a handler dispatch *other* queued
//    events from inside itself. The paper implements its `await` logical
//    barrier by "slightly modifying the event queue dispatching mechanism in
//    the Java AWT runtime library" — pump_one() is that modification.
//  * instrumentation: the queue records per-event dispatch delay (time from
//    post to handler start), handler busy time and nesting depth, which the
//    responsiveness benchmarks (Figures 7-8) report.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ring_buffer.hpp"
#include "common/stats.hpp"
#include "executor/completion.hpp"
#include "executor/executor.hpp"

namespace evmp::event {

/// Single-threaded event loop; doubles as an Executor so it can be
/// registered as the `edt` virtual target (paper Table II,
/// virtual_target_register_edt).
class EventLoop final : public exec::Executor {
 public:
  explicit EventLoop(std::string name = "edt");
  ~EventLoop() override;

  // --- lifecycle --------------------------------------------------------
  /// Spawn an internal thread that runs the loop. Alternative to run().
  void start();

  /// Run the loop on the calling thread until stop(). A GUI application's
  /// main thread would call this; tests/benches normally use start().
  void run();

  /// Ask the loop to exit after the currently running handler returns.
  /// Events still queued are discarded (call wait_until_idle() first if
  /// they matter). Safe from any thread; idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // --- Executor interface ------------------------------------------------
  /// Enqueue an event handler for execution on the EDT.
  void post(exec::Task task) override;

  /// Enqueue a burst of handlers under one queue lock with one wakeup;
  /// dispatch order within the batch matches submission order, exactly as
  /// N consecutive post() calls from the same thread would. Keeps the EDT's
  /// global FIFO (single ready queue) — batching only amortises the
  /// producer-side synchronisation.
  void post_batch(std::span<exec::Task> tasks) override;

  /// EDT-only: dispatch one pending event from inside a running handler
  /// (re-entrant pump). Foreign threads get false.
  bool try_run_one() override;

  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }
  [[nodiscard]] std::size_t pending() const override;

  // --- Swing-style helpers -----------------------------------------------
  /// True when the calling thread is the EDT
  /// (SwingUtilities.isEventDispatchThread()).
  [[nodiscard]] bool is_dispatch_thread() const noexcept {
    return owns_current_thread();
  }

  /// SwingUtilities.invokeLater: enqueue and return immediately.
  void invoke_later(exec::Task task) { post(std::move(task)); }

  /// SwingUtilities.invokeAndWait: enqueue and block until the handler ran.
  /// Called from the EDT itself the task runs inline (Swing would throw;
  /// inline execution preserves our sequential-equivalence property).
  void invoke_and_wait(exec::Task task);

  /// Enqueue a handler to run no earlier than `delay` from now
  /// (javax.swing.Timer one-shot equivalent).
  void post_delayed(exec::Task task, common::Nanos delay);

  /// EDT-only: dispatch exactly one pending due event. Returns false when
  /// nothing is pending. This is the "processAnotherEventHandler()" of
  /// Algorithm 1 line 15.
  bool pump_one();

  /// Block the calling (non-EDT) thread until the queue is empty and no
  /// handler is running. Pending delayed events are not waited for.
  void wait_until_idle();

  // --- instrumentation ---------------------------------------------------
  /// Events fully dispatched so far.
  [[nodiscard]] std::uint64_t dispatched() const noexcept {
    return dispatched_.load(std::memory_order_relaxed);
  }
  /// Total time the EDT has spent inside top-level handlers.
  [[nodiscard]] common::Nanos busy_time() const noexcept {
    return common::Nanos{busy_ns_.load(std::memory_order_relaxed)};
  }
  /// Deepest observed re-entrant dispatch nesting.
  [[nodiscard]] int max_nesting() const noexcept {
    return max_nesting_.load(std::memory_order_relaxed);
  }
  /// post_batch() calls accepted (events they carried count in pending()/
  /// dispatched() as usual).
  [[nodiscard]] std::uint64_t batch_posts() const noexcept {
    return batch_posts_.load(std::memory_order_relaxed);
  }
  /// Distribution of post→dispatch-start delays (EDT responsiveness).
  [[nodiscard]] const common::LatencyHistogram& dispatch_delay() const noexcept {
    return delay_hist_;
  }
  void reset_stats();

 private:
  struct QueuedEvent {
    common::TimePoint posted;
    exec::Task fn;
  };
  struct TimedEvent {
    common::TimePoint due;
    std::uint64_t seq;  // tiebreak: preserve post order among equal deadlines
    exec::Task fn;
  };

  void dispatch(QueuedEvent ev);
  /// Move due timed events to the ready queue. Caller holds mu_.
  void promote_due_timers_locked(common::TimePoint now_tp);
  /// Earliest pending timer deadline, if any. Caller holds mu_.
  [[nodiscard]] std::optional<common::TimePoint> next_timer_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  // Grow-only ring, not std::deque: the ready queue reaches a high-water
  // capacity once and then never allocates on the post/dispatch path.
  common::RingBuffer<QueuedEvent> queue_;
  std::vector<TimedEvent> timers_;  // min-heap by (due, seq)
  std::uint64_t timer_seq_ = 0;
  bool stop_requested_ = false;
  int active_handlers_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> batch_posts_{0};
  std::atomic<std::int64_t> busy_ns_{0};
  std::atomic<int> max_nesting_{0};
  int nesting_ = 0;  // touched only by the EDT
  common::LatencyHistogram delay_hist_;

  std::optional<std::jthread> thread_;
};

}  // namespace evmp::event

#include "event/gui.hpp"

namespace evmp::event {

std::uint64_t Image::checksum() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<std::uint64_t>(width));
  mix(static_cast<std::uint64_t>(height));
  for (std::uint32_t p : pixels) mix(p);
  return h;
}

Widget::Widget(Gui& gui, std::string id) : gui_(gui), id_(std::move(id)) {}

void Widget::confine(const char* operation) const {
  if (!gui_.edt().is_dispatch_thread()) {
    gui_.report_violation(id_, operation);
  }
}

void Label::set_text(std::string text) {
  confine("Label::set_text");
  text_ = std::move(text);
  updates_.fetch_add(1, std::memory_order_relaxed);
}

std::string Label::text() const {
  confine("Label::text");
  return text_;
}

void ProgressBar::set_value(int percent) {
  confine("ProgressBar::set_value");
  value_ = percent;
  updates_.fetch_add(1, std::memory_order_relaxed);
}

int ProgressBar::value() const {
  confine("ProgressBar::value");
  return value_;
}

void ImageView::display(const Image& img) {
  confine("ImageView::display");
  checksum_ = img.checksum();
  shown_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ImageView::displayed_checksum() const {
  confine("ImageView::displayed_checksum");
  return checksum_;
}

void Button::on_click(exec::UniqueFunction<void()> handler) {
  confine("Button::on_click");
  handler_ = std::make_shared<exec::UniqueFunction<void()>>(std::move(handler));
}

void Button::click() {
  clicks_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot the handler so a concurrent on_click cannot race the dispatch.
  auto handler = handler_;
  if (!handler) return;
  gui_.edt().post([handler] {
    if (*handler) (*handler)();
  });
}

Gui::Gui(EventLoop& edt, ConfinementPolicy policy)
    : edt_(edt), policy_(policy) {}

Label& Gui::add_label(std::string id) {
  auto w = std::make_unique<Label>(*this, std::move(id));
  Label& ref = *w;
  widgets_.push_back(std::move(w));
  return ref;
}

ProgressBar& Gui::add_progress_bar(std::string id) {
  auto w = std::make_unique<ProgressBar>(*this, std::move(id));
  ProgressBar& ref = *w;
  widgets_.push_back(std::move(w));
  return ref;
}

ImageView& Gui::add_image_view(std::string id) {
  auto w = std::make_unique<ImageView>(*this, std::move(id));
  ImageView& ref = *w;
  widgets_.push_back(std::move(w));
  return ref;
}

Button& Gui::add_button(std::string id) {
  auto w = std::make_unique<Button>(*this, std::move(id));
  Button& ref = *w;
  widgets_.push_back(std::move(w));
  return ref;
}

void Gui::report_violation(const std::string& widget_id,
                           const char* operation) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  if (policy_ == ConfinementPolicy::kThrow) {
    throw ThreadConfinementError(std::string(operation) + " on widget '" +
                                 widget_id +
                                 "' called off the event-dispatch thread");
  }
}

}  // namespace evmp::event

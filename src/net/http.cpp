#include "net/http.hpp"

#include <cstdio>
#include <cstring>

namespace evmp::net {

namespace {

constexpr std::size_t kNoHeaderEnd = static_cast<std::size_t>(-1);

/// Offset just past the "\r\n\r\n" terminating the header block, or
/// kNoHeaderEnd when the block is still incomplete.
std::size_t find_header_end(std::span<const std::uint8_t> in) noexcept {
  for (std::size_t i = 0; i + 3 < in.size(); ++i) {
    if (in[i] == '\r' && in[i + 1] == '\n' && in[i + 2] == '\r' &&
        in[i + 3] == '\n') {
      return i + 4;
    }
  }
  return kNoHeaderEnd;
}

std::string_view as_view(std::span<const std::uint8_t> bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

char lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

bool parse_u64_dec(std::string_view s, std::uint64_t* out) noexcept {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_u64_hex(std::string_view s, std::uint64_t* out) noexcept {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    const char l = lower(c);
    std::uint64_t d = 0;
    if (l >= '0' && l <= '9') {
      d = static_cast<std::uint64_t>(l - '0');
    } else if (l >= 'a' && l <= 'f') {
      d = static_cast<std::uint64_t>(l - 'a' + 10);
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

/// Shared header-block walk: invokes `on_header(name, value)` per line.
/// Returns false on a malformed line.
template <class Fn>
bool walk_headers(std::string_view block, Fn&& on_header) {
  while (!block.empty()) {
    const std::size_t eol = block.find("\r\n");
    if (eol == std::string_view::npos) return false;  // block ends in CRLF
    const std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol + 2);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    on_header(trim(line.substr(0, colon)), trim(line.substr(colon + 1)));
  }
  return true;
}

struct CommonHeaders {
  std::uint64_t content_length = 0;
  bool content_length_seen = false;
  bool content_length_bad = false;
  std::uint64_t id = 0;
  std::uint64_t checksum = 0;
  bool connection_close = false;
  bool connection_keep_alive = false;
};

void note_header(CommonHeaders* h, std::string_view hname,
                 std::string_view value) {
  if (iequals(hname, "content-length")) {
    h->content_length_seen = true;
    if (!parse_u64_dec(value, &h->content_length)) {
      h->content_length_bad = true;
    }
  } else if (iequals(hname, "x-request-id")) {
    (void)parse_u64_dec(value, &h->id);
  } else if (iequals(hname, "x-checksum")) {
    (void)parse_u64_hex(value, &h->checksum);
  } else if (iequals(hname, "connection")) {
    if (iequals(value, "close")) h->connection_close = true;
    if (iequals(value, "keep-alive")) h->connection_keep_alive = true;
  }
}

void append_text(std::vector<std::uint8_t>& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

}  // namespace

ParseStatus parse_http_request(std::span<const std::uint8_t> in,
                               std::size_t* consumed, HttpRequest* out) {
  const std::size_t header_end = find_header_end(in);
  if (header_end == kNoHeaderEnd) {
    return in.size() > kMaxHeaderBytes ? ParseStatus::kError
                                       : ParseStatus::kNeedMore;
  }
  if (header_end > kMaxHeaderBytes) return ParseStatus::kError;
  const std::string_view head = as_view(in.subspan(0, header_end - 2));

  const std::size_t line_end = head.find("\r\n");
  const std::string_view start = head.substr(0, line_end);
  const std::size_t sp1 = start.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : start.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return ParseStatus::kError;
  const std::string_view version = start.substr(sp2 + 1);
  if (!version.starts_with("HTTP/1.")) return ParseStatus::kError;

  CommonHeaders h;
  if (!walk_headers(head.substr(line_end + 2),
                    [&h](std::string_view hname, std::string_view value) {
                      note_header(&h, hname, value);
                    })) {
    return ParseStatus::kError;
  }
  if (h.content_length_bad || h.content_length > kMaxBodyBytes) {
    return ParseStatus::kError;
  }
  if (in.size() - header_end < h.content_length) return ParseStatus::kNeedMore;

  out->method = start.substr(0, sp1);
  out->target = start.substr(sp1 + 1, sp2 - sp1 - 1);
  out->id = h.id;
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  // Connection header overrides either way.
  out->keep_alive = h.connection_close
                        ? false
                        : (version == "HTTP/1.0" ? h.connection_keep_alive
                                                 : true);
  out->body = in.subspan(header_end, h.content_length);
  *consumed = header_end + h.content_length;
  return ParseStatus::kOk;
}

ParseStatus parse_http_response(std::span<const std::uint8_t> in,
                                std::size_t* consumed, HttpResponse* out) {
  const std::size_t header_end = find_header_end(in);
  if (header_end == kNoHeaderEnd) {
    return in.size() > kMaxHeaderBytes ? ParseStatus::kError
                                       : ParseStatus::kNeedMore;
  }
  if (header_end > kMaxHeaderBytes) return ParseStatus::kError;
  const std::string_view head = as_view(in.subspan(0, header_end - 2));

  const std::size_t line_end = head.find("\r\n");
  const std::string_view start = head.substr(0, line_end);
  if (!start.starts_with("HTTP/1.")) return ParseStatus::kError;
  const std::size_t sp1 = start.find(' ');
  if (sp1 == std::string_view::npos) return ParseStatus::kError;
  std::string_view code = start.substr(sp1 + 1);
  const std::size_t sp2 = code.find(' ');
  if (sp2 != std::string_view::npos) code = code.substr(0, sp2);
  std::uint64_t status = 0;
  if (!parse_u64_dec(code, &status) || status < 100 || status > 599) {
    return ParseStatus::kError;
  }

  CommonHeaders h;
  if (!walk_headers(head.substr(line_end + 2),
                    [&h](std::string_view hname, std::string_view value) {
                      note_header(&h, hname, value);
                    })) {
    return ParseStatus::kError;
  }
  if (h.content_length_bad || h.content_length > kMaxBodyBytes) {
    return ParseStatus::kError;
  }
  if (in.size() - header_end < h.content_length) return ParseStatus::kNeedMore;

  out->status = static_cast<int>(status);
  out->id = h.id;
  out->checksum = h.checksum;
  out->body = in.subspan(header_end, h.content_length);
  *consumed = header_end + h.content_length;
  return ParseStatus::kOk;
}

void encode_http_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         std::span<const std::uint8_t> payload) {
  char head[160];
  const int n = std::snprintf(
      head, sizeof(head),
      "POST /encrypt HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Request-Id: %llu\r\n"
      "Content-Length: %zu\r\n"
      "\r\n",
      static_cast<unsigned long long>(id), payload.size());
  out.reserve(out.size() + static_cast<std::size_t>(n) + payload.size());
  append_text(out, std::string_view(head, static_cast<std::size_t>(n)));
  out.insert(out.end(), payload.begin(), payload.end());
}

void encode_http_response(std::vector<std::uint8_t>& out, int status,
                          std::uint64_t id, std::uint64_t checksum,
                          std::span<const std::uint8_t> body) {
  char head[192];
  int n = 0;
  if (status == kStatusOk) {
    n = std::snprintf(head, sizeof(head),
                      "HTTP/1.1 200 OK\r\n"
                      "X-Request-Id: %llu\r\n"
                      "X-Checksum: %016llx\r\n"
                      "Content-Length: %zu\r\n"
                      "\r\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(checksum), body.size());
  } else {
    n = std::snprintf(head, sizeof(head),
                      "HTTP/1.1 %d %s\r\n"
                      "X-Request-Id: %llu\r\n"
                      "Retry-After: 0\r\n"
                      "Content-Length: 0\r\n"
                      "\r\n",
                      status,
                      status == kStatusShed ? "Service Unavailable" : "Error",
                      static_cast<unsigned long long>(id));
    body = {};
  }
  out.reserve(out.size() + static_cast<std::size_t>(n) + body.size());
  append_text(out, std::string_view(head, static_cast<std::size_t>(n)));
  out.insert(out.end(), body.begin(), body.end());
}

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace evmp::net
